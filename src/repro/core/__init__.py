"""Flame's contribution: RBQ/RPT hardware, WCDL-aware warp scheduling,
the recovery protocol, fault injection, and hardware-cost accounting.
"""

from .campaign import (CampaignJournal, CampaignSpec, CellAggregate,
                       TrialResult, TrialSpec, aggregate, run_trial,
                       wilson_interval)
from .competitors import (AbftSgemmRuntime, DmrRuntime, PartialThreadRuntime)
from .hwcost import HardwareCost, flame_hardware_cost
from .injection import (ALL_FAULT_SITES, FAULT_SITES, FaultInjector,
                        FaultSite, InjectionRecord, fault_site_by_name,
                        register_fault_site)
from .rbq import RbqEntry, RegionBoundaryQueue
from .rpt import RecoveryPcTable
from .runtime import FlameRuntime, FlameSmRuntime
from .schemes import (RUNTIME_SCHEMES, RuntimeScheme, build_runtime,
                      campaign_schemes, default_campaign_schemes,
                      register_scheme, runtime_scheme_by_name)

__all__ = [
    "ALL_FAULT_SITES", "AbftSgemmRuntime", "CampaignJournal", "CampaignSpec",
    "CellAggregate", "DmrRuntime", "FAULT_SITES", "FaultInjector",
    "FaultSite", "FlameRuntime", "FlameSmRuntime", "HardwareCost",
    "InjectionRecord", "PartialThreadRuntime", "RUNTIME_SCHEMES", "RbqEntry",
    "RecoveryPcTable", "RegionBoundaryQueue", "RuntimeScheme", "TrialResult",
    "TrialSpec", "aggregate", "build_runtime", "campaign_schemes",
    "default_campaign_schemes", "fault_site_by_name", "flame_hardware_cost",
    "register_fault_site", "register_scheme", "run_trial",
    "runtime_scheme_by_name", "wilson_interval",
]
