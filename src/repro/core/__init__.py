"""Flame's contribution: RBQ/RPT hardware, WCDL-aware warp scheduling,
the recovery protocol, fault injection, and hardware-cost accounting.
"""

from .hwcost import HardwareCost, flame_hardware_cost
from .injection import FaultInjector, InjectionRecord
from .rbq import RbqEntry, RegionBoundaryQueue
from .rpt import RecoveryPcTable
from .runtime import FlameRuntime, FlameSmRuntime

__all__ = [
    "FaultInjector", "FlameRuntime", "FlameSmRuntime", "HardwareCost",
    "InjectionRecord", "RbqEntry", "RecoveryPcTable", "RegionBoundaryQueue",
    "flame_hardware_cost",
]
