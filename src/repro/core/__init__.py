"""Flame's contribution: RBQ/RPT hardware, WCDL-aware warp scheduling,
the recovery protocol, fault injection, and hardware-cost accounting.
"""

from .campaign import (CampaignJournal, CampaignSpec, CellAggregate,
                       TrialResult, TrialSpec, aggregate, run_trial,
                       wilson_interval)
from .hwcost import HardwareCost, flame_hardware_cost
from .injection import (ALL_FAULT_SITES, FAULT_SITES, FaultInjector,
                        FaultSite, InjectionRecord, fault_site_by_name,
                        register_fault_site)
from .rbq import RbqEntry, RegionBoundaryQueue
from .rpt import RecoveryPcTable
from .runtime import FlameRuntime, FlameSmRuntime

__all__ = [
    "ALL_FAULT_SITES", "CampaignJournal", "CampaignSpec", "CellAggregate",
    "FAULT_SITES", "FaultInjector", "FaultSite", "FlameRuntime",
    "FlameSmRuntime", "HardwareCost", "InjectionRecord", "RbqEntry",
    "RecoveryPcTable", "RegionBoundaryQueue", "TrialResult", "TrialSpec",
    "aggregate", "fault_site_by_name", "flame_hardware_cost",
    "register_fault_site", "run_trial", "wilson_interval",
]
