"""Flame's contribution: RBQ/RPT hardware, WCDL-aware warp scheduling,
the recovery protocol, fault injection, and hardware-cost accounting.
"""

from .campaign import (CampaignJournal, CampaignSpec, CellAggregate,
                       TrialResult, TrialSpec, aggregate, run_trial,
                       wilson_interval)
from .hwcost import HardwareCost, flame_hardware_cost
from .injection import FaultInjector, InjectionRecord
from .rbq import RbqEntry, RegionBoundaryQueue
from .rpt import RecoveryPcTable
from .runtime import FlameRuntime, FlameSmRuntime

__all__ = [
    "CampaignJournal", "CampaignSpec", "CellAggregate", "FaultInjector",
    "FlameRuntime", "FlameSmRuntime", "HardwareCost", "InjectionRecord",
    "RbqEntry", "RecoveryPcTable", "RegionBoundaryQueue", "TrialResult",
    "TrialSpec", "aggregate", "flame_hardware_cost", "run_trial",
    "wilson_interval",
]
