"""Region Boundary Queue — the verification conveyor (Section III-D2).

One RBQ per warp scheduler, WCDL entries long.  A warp hitting a region
boundary is enqueued and descheduled; the conveyor advances one entry
per cycle, so an entry pops — verified — exactly WCDL cycles after it
was pushed, provided no error was detected in between.  On detection the
whole queue is flushed (every in-flight verification is invalidated).

Hardware cost: each entry is a warp id plus a valid bit (6 bits for 32
warps per scheduler), i.e. WCDL x 6 bits per scheduler — Section VI-A2's
120 bits for the default 20-cycle WCDL.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from ..errors import ConfigError

if TYPE_CHECKING:
    from ..sim import Warp, WarpSnapshot


@dataclass
class RbqEntry:
    """One conveyor slot: the warp under verification and the recovery
    context its RPT entry receives once the pop verifies the region."""

    warp: "Warp"
    snapshot: "WarpSnapshot"
    enqueued_at: int
    final: bool = False      # verification of the warp's last region


@dataclass
class RegionBoundaryQueue:
    """The verification conveyor of one warp scheduler.

    ``hardened`` models the paper's assumption that Flame's own tiny
    structures are protected (parity/ECC, like the hardened AGUs of the
    Section IV discussion): a particle strike on a hardened conveyor is
    absorbed rather than corrupting an in-flight verification.  The
    fault injector's ``rbq`` site consults this flag.
    """

    wcdl: int
    hardened: bool = True
    _entries: deque = field(default_factory=deque)
    _last_enqueue_cycle: int = -1

    def __post_init__(self) -> None:
        if self.wcdl < 1:
            raise ConfigError("WCDL must be at least one cycle")

    def can_enqueue(self, cycle: int) -> bool:
        """One enqueue per cycle (the conveyor moves one slot per cycle)."""
        return cycle > self._last_enqueue_cycle

    def enqueue(self, entry: RbqEntry, cycle: int) -> None:
        assert self.can_enqueue(cycle), "RBQ accepts one entry per cycle"
        self._last_enqueue_cycle = cycle
        entry.enqueued_at = cycle
        self._entries.append(entry)

    def pop_verified(self, cycle: int) -> RbqEntry | None:
        """Pop the head entry if it has ridden the conveyor for WCDL."""
        if self._entries and cycle - self._entries[0].enqueued_at >= self.wcdl:
            return self._entries.popleft()
        return None

    def flush(self) -> list[RbqEntry]:
        """Discard all in-flight verifications (error detected)."""
        flushed = list(self._entries)
        self._entries.clear()
        return flushed

    def next_pop_cycle(self) -> int | None:
        if not self._entries:
            return None
        return self._entries[0].enqueued_at + self.wcdl

    def __len__(self) -> int:
        return len(self._entries)

    # -- checkpoint support --------------------------------------------
    def capture_state(self) -> tuple:
        """Plain-data conveyor state: warps become ids, snapshots become
        :meth:`WarpSnapshot.to_state` tuples."""
        return (self._last_enqueue_cycle,
                tuple((e.warp.id, e.snapshot.to_state(), e.enqueued_at,
                       e.final) for e in self._entries))

    def restore_state(self, state: tuple, warp_map: dict) -> None:
        from ..sim import WarpSnapshot

        self._last_enqueue_cycle, entries = state
        self._entries = deque(
            RbqEntry(warp=warp_map[wid],
                     snapshot=WarpSnapshot.from_state(snap),
                     enqueued_at=enq, final=final)
            for wid, snap, enq, final in entries)

    @property
    def storage_bits(self) -> int:
        """Hardware cost: WCDL entries x (5-bit warp id + valid)."""
        return self.wcdl * 6
