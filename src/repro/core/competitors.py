"""Competitor resilience runtimes: DMR, partial protection, ABFT.

These give the compile-time competitor schemes real detection/recovery
semantics under the six-site fault injector, reproducing the paper's
comparative axis (Flame's sub-percent overhead against 15-45% for
duplication-based protection, Figure 16) plus two schemes from the
related work: Yang et al.'s partial thread protection (only the
vulnerability-ranked warp subset pays the duplication/verify cost) and
Wu et al.'s online-ABFT GEMM (checksum verification with single-warp
correction).

All three share one mechanism — *compare at region end*: when a warp
crosses an idempotent-region boundary it parks (``IN_RBQ``) for the
scheme's check latency; a strike recorded against the warp since its
last verified boundary fails the check and triggers recovery through
the same :class:`RecoveryPcTable` machinery Flame uses.  Unlike Flame
there is no sensor and no conveyor: detection rides the redundant
computation itself, which is exactly why these schemes pay per-region
cost on the fault-free path.
"""

from __future__ import annotations

import math

from ..errors import ConfigError
from ..sim import (CONTROL_TID, NEVER, ResilienceRuntime, Sm, Warp,
                   WarpSnapshot, WarpState)
from ..sim.snapshot import plain_equal
from .rpt import RecoveryPcTable

#: Injection sites a compare/checksum check cannot observe: a strike on
#: the recovery metadata itself corrupts the rollback target, not the
#: warp's redundantly-computed architectural work.
_UNOBSERVABLE_SITES = frozenset({"rpt", "rbq"})


class VerifyEntry:
    """One parked region awaiting its end-of-region check.

    Deliberately a plain class (identity comparison): entries are held
    in a list that must treat membership as *this* entry, never a
    field-equal twin captured after a rollback.
    """

    __slots__ = ("warp", "snapshot", "enqueued_at", "ready_at", "final")

    def __init__(self, warp: Warp, snapshot: WarpSnapshot, enqueued_at: int,
                 ready_at: int, final: bool) -> None:
        self.warp = warp
        self.snapshot = snapshot
        self.enqueued_at = enqueued_at
        self.ready_at = ready_at
        self.final = final


class _CompareSmRuntime(ResilienceRuntime):
    """Per-SM base for compare-at-region-end schemes.

    Subclasses define :meth:`_check_delay` (cycles a warp parks at a
    boundary; ``None`` means this warp crosses unprotected) and may
    override :meth:`_detected` (recovery policy on a failed check).
    """

    needs_boundaries = True
    verify_cause = "verify_dmr"

    def __init__(self, sm: Sm, rollback_cycles: int,
                 harden_rpt: bool) -> None:
        self.sm = sm
        self.rollback_cycles = rollback_cycles
        self.rpt = RecoveryPcTable(hardened=harden_rpt)
        self._verify: list[VerifyEntry] = []
        #: Warp id -> strikes landed on its work since its last verified
        #: boundary.  A non-zero count at check time is a mismatch.
        self._dirty: dict[int, int] = {}
        self._rollback_until: int | None = None

    def bind(self, sm: Sm) -> "_CompareSmRuntime":
        return self

    # ------------------------------------------------------------------
    # Hooks
    # ------------------------------------------------------------------
    def on_warp_attached(self, sm: Sm, warp: Warp) -> None:
        self.rpt.register_warp(warp)

    def on_warp_detached(self, sm: Sm, warp: Warp) -> None:
        self.rpt.drop(warp)
        self._dirty.pop(warp.id, None)

    def on_strike(self, sm: Sm, record, cycle: int) -> None:
        """The injector landed a strike on ``record.warp_id``'s work."""
        if record.site in _UNOBSERVABLE_SITES or record.warp_id is None:
            return
        wid = record.warp_id
        self._dirty[wid] = self._dirty.get(wid, 0) + 1

    def on_reach_boundary(self, sm: Sm, warp: Warp, cycle: int) -> None:
        insts = warp.insts_since_boundary
        sm.note_region_end(warp)
        warp.advance()
        self._cross(sm, warp, cycle, insts, final=False)

    def on_warp_exit(self, sm: Sm, warp: Warp, cycle: int) -> bool:
        # A protected warp's last region must verify before it retires.
        insts = warp.insts_since_boundary
        sm.note_region_end(warp)
        parked = self._cross(sm, warp, cycle, insts, final=True)
        return not parked

    def _cross(self, sm: Sm, warp: Warp, cycle: int, insts: int,
               final: bool) -> bool:
        """A warp crossed a region boundary; park it for its check (True)
        or let it continue unprotected (False)."""
        self._account_region(warp, insts)
        delay = self._check_delay(sm, warp, insts)
        if delay is None:
            # Unprotected crossing: the recovery point still advances
            # (commit whatever the region produced — corrupted or not:
            # this is exactly where partial protection trades SDC risk
            # for overhead), and the warp keeps running.
            self._note_unprotected(sm)
            if not final:
                self.rpt.update(warp, WarpSnapshot.capture(warp))
                sm.skip_markers(warp, cycle)
            return False
        entry = VerifyEntry(warp, WarpSnapshot.capture(warp), cycle,
                            cycle + delay, final)
        warp.state = WarpState.IN_RBQ
        self._verify.append(entry)
        self._note_check(sm)
        if sm.tracer is not None:
            sm.tracer.event("verify_park", cycle, sm.id, warp.id,
                            {"final": final, "ready": entry.ready_at})
        return True

    def tick(self, sm: Sm, cycle: int) -> None:
        if not self._verify:
            return
        due = [e for e in self._verify if e.ready_at <= cycle]
        for entry in due:
            if entry not in self._verify:
                continue  # flushed by a rollback earlier this same cycle
            self._verify.remove(entry)
            self._checked(sm, entry, cycle)

    def _checked(self, sm: Sm, entry: VerifyEntry, cycle: int) -> None:
        warp = entry.warp
        if warp.state is not WarpState.IN_RBQ:
            return  # stale entry (warp recovered meanwhile)
        if self._dirty.get(warp.id):
            self._detected(sm, entry, cycle)
            return
        if sm.tracer is not None:
            sm.tracer.event("region_verify", cycle, sm.id, warp.id,
                            {"final": entry.final,
                             "wait": cycle - entry.enqueued_at})
        if entry.final:
            warp.state = WarpState.DONE
            sm._note_warp_done(warp)
            sm._check_barrier_release(warp.block, cycle)
            return
        self.rpt.update(warp, entry.snapshot)
        warp.state = WarpState.ACTIVE
        warp.wake(cycle)
        sm.skip_markers(warp, cycle)

    def next_event(self, sm: Sm) -> int:
        best = NEVER
        for entry in self._verify:
            if entry.ready_at < best:
                best = entry.ready_at
        return best

    def stall_cause(self, sm: Sm, cycle: int) -> str | None:
        until = self._rollback_until
        if until is not None and cycle < until:
            return "rollback"
        return None

    # ------------------------------------------------------------------
    # Recovery
    # ------------------------------------------------------------------
    def _detected(self, sm: Sm, entry: VerifyEntry, cycle: int) -> None:
        """A check failed.  Default policy: SM-wide rollback (the
        compared streams disagree; nothing localizes the corruption)."""
        self._rollback(sm, cycle)

    def _rollback(self, sm: Sm, cycle: int) -> None:
        """Flush every pending check and reset all live warps to their
        recovery PCs (mirrors the flame runtime's recovery storm
        handling, including coalescing nested detections)."""
        nested = (self._rollback_until is not None
                  and cycle < self._rollback_until)
        resume = cycle + self.rollback_cycles
        self._verify.clear()
        self._dirty.clear()
        for warp in sm.warps:
            if warp.state is WarpState.DONE:
                continue
            self.rpt.recover(warp)
            warp.state = WarpState.ACTIVE
            warp.wake(resume)
            warp.pending.clear()
            warp.pending_mem.clear()
            warp.insts_since_boundary = 0
            warp.clear_inflight()
            sm.skip_markers(warp, resume)
        self._rollback_until = resume
        if nested:
            sm.stats.coalesced_recoveries += 1
        else:
            sm.stats.recoveries += 1
        sm.stats.detected_errors += 1
        if sm.tracer is not None:
            sm.tracer.event("rollback", cycle, sm.id, CONTROL_TID,
                            {"resume": resume, "coalesced": nested},
                            ph="X", dur=resume - cycle)

    # ------------------------------------------------------------------
    # Checkpoint support
    # ------------------------------------------------------------------
    _STATE_KEYS = ("rpt", "verify", "dirty")

    def capture_state(self, sm: Sm) -> dict:
        return {
            "rpt": self.rpt.capture_state(),
            "verify": tuple((e.warp.id, e.snapshot.to_state(),
                             e.enqueued_at, e.ready_at, e.final)
                            for e in self._verify),
            "dirty": dict(self._dirty),
            "rollback_until": self._rollback_until,
        }

    def restore_state(self, state: dict, sm: Sm, warp_map: dict) -> None:
        self.rpt.restore_state(state["rpt"])
        self._verify = [
            VerifyEntry(warp_map[wid], WarpSnapshot.from_state(snap),
                        enqueued_at, ready_at, final)
            for wid, snap, enqueued_at, ready_at, final in state["verify"]]
        self._dirty = dict(state["dirty"])
        self._rollback_until = state["rollback_until"]

    def state_equals(self, sm: Sm, state) -> bool:
        """Excludes ``rollback_until`` for the same reason the flame
        runtime does: a spent window is only read when a later detection
        coalesces into it, and the convergence monitor compares only at
        quiescent boundaries — with ``dirty`` compared (and empty in the
        golden run), no future check can fail, so no such detection can
        exist."""
        if not isinstance(state, dict):
            return False
        live = self.capture_state(sm)
        return all(plain_equal(live[key], state[key])
                   for key in self._STATE_KEYS)

    # ------------------------------------------------------------------
    # Subclass surface
    # ------------------------------------------------------------------
    def _check_delay(self, sm: Sm, warp: Warp, insts: int) -> int | None:
        raise NotImplementedError

    def _account_region(self, warp: Warp, insts: int) -> None:
        """Per-boundary accounting hook (vulnerability tracking)."""

    def _note_check(self, sm: Sm) -> None:
        """A warp parked for a check (scheme-specific counter)."""

    def _note_unprotected(self, sm: Sm) -> None:
        """A warp crossed unprotected (scheme-specific counter)."""


# ==========================================================================
# DMR / full duplication
# ==========================================================================

class DmrRuntime(ResilienceRuntime):
    """Factory for full duplication (DMR) with compare-at-region-end.

    Binds to the ``duplication_renaming`` compile scheme: every eligible
    instruction issues twice (the compiler's shadow stream — the 15-45%
    overhead the paper positions Flame against), and at each region
    boundary the two result streams are compared for ``compare_cycles``
    before the region may commit.  A mismatch rolls every warp of the SM
    back to its recovery PC (DUE, never SDC: the region's stores are not
    committed past a failed compare).
    """

    needs_boundaries = True

    def __init__(self, compare_cycles: int = 2, rollback_cycles: int = 1,
                 harden_rpt: bool = True, harden_rbq: bool = True) -> None:
        if compare_cycles < 1:
            raise ConfigError("DMR compare must take at least one cycle")
        if rollback_cycles < 1:
            raise ConfigError("rollback must take at least one cycle")
        self.compare_cycles = compare_cycles
        self.rollback_cycles = rollback_cycles
        self.harden_rpt = harden_rpt

    def bind(self, sm: Sm) -> "DmrSmRuntime":
        return DmrSmRuntime(sm, compare_cycles=self.compare_cycles,
                            rollback_cycles=self.rollback_cycles,
                            harden_rpt=self.harden_rpt)


class DmrSmRuntime(_CompareSmRuntime):
    verify_cause = "verify_dmr"

    def __init__(self, sm: Sm, compare_cycles: int, rollback_cycles: int,
                 harden_rpt: bool) -> None:
        super().__init__(sm, rollback_cycles, harden_rpt)
        self.compare_cycles = compare_cycles

    def _check_delay(self, sm: Sm, warp: Warp, insts: int) -> int:
        return self.compare_cycles

    def _note_check(self, sm: Sm) -> None:
        sm.stats.dmr_compares += 1


# ==========================================================================
# Partial thread protection
# ==========================================================================

class PartialThreadRuntime(ResilienceRuntime):
    """Factory for vulnerability-ranked partial protection.

    Only the top ``protect_fraction`` of resident warps — ranked by a
    vulnerability score fed from the stall/liveness ledger (cumulative
    region instructions plus accumulated ``memory_latency`` stall
    cycles, i.e. how long values sit exposed in registers) — pay the
    duplication/verify cost: a protected warp re-executes its region
    redundantly before committing (``dup_factor`` cycles per original
    instruction: the redundant pass runs while the warp is parked, so
    unlike the primary pass it cannot hide its latency behind other
    warps' memory traffic).  Unprotected warps commit regions
    unverified, converting any strike on their work into SDC risk.
    """

    needs_boundaries = True

    def __init__(self, protect_fraction: float = 0.5,
                 dup_factor: float = 3.0, compare_cycles: int = 2,
                 rollback_cycles: int = 1, harden_rpt: bool = True,
                 harden_rbq: bool = True) -> None:
        if not 0.0 < protect_fraction <= 1.0:
            raise ConfigError("protect_fraction must be in (0, 1]")
        if dup_factor <= 0.0:
            raise ConfigError("dup_factor must be positive")
        if compare_cycles < 1:
            raise ConfigError("compare must take at least one cycle")
        if rollback_cycles < 1:
            raise ConfigError("rollback must take at least one cycle")
        self.protect_fraction = protect_fraction
        self.dup_factor = dup_factor
        self.compare_cycles = compare_cycles
        self.rollback_cycles = rollback_cycles
        self.harden_rpt = harden_rpt

    def bind(self, sm: Sm) -> "PartialThreadSmRuntime":
        return PartialThreadSmRuntime(
            sm, protect_fraction=self.protect_fraction,
            dup_factor=self.dup_factor, compare_cycles=self.compare_cycles,
            rollback_cycles=self.rollback_cycles,
            harden_rpt=self.harden_rpt)


class PartialThreadSmRuntime(_CompareSmRuntime):
    verify_cause = "verify_dmr"

    def __init__(self, sm: Sm, protect_fraction: float, dup_factor: float,
                 compare_cycles: int, rollback_cycles: int,
                 harden_rpt: bool) -> None:
        super().__init__(sm, rollback_cycles, harden_rpt)
        self.protect_fraction = protect_fraction
        self.dup_factor = dup_factor
        self.compare_cycles = compare_cycles
        #: Warp id -> cumulative instructions retired across regions
        #: (the liveness half of the vulnerability score).
        self._exposure: dict[int, int] = {}

    def on_warp_detached(self, sm: Sm, warp: Warp) -> None:
        super().on_warp_detached(sm, warp)
        self._exposure.pop(warp.id, None)

    def _account_region(self, warp: Warp, insts: int) -> None:
        self._exposure[warp.id] = self._exposure.get(warp.id, 0) + insts

    def _score(self, sm: Sm, warp: Warp) -> int:
        """Vulnerability: work retired (register-file residency proxy)
        plus memory-latency stall cycles (values parked in registers
        across long-latency loads are the classic AVF hotspot)."""
        stalls = sm.stats.warp_stalls.get(warp.id, {})
        return (self._exposure.get(warp.id, 0)
                + stalls.get("memory_latency", 0))

    def _protected(self, sm: Sm, warp: Warp) -> bool:
        warps = sm.warps
        count = max(1, math.ceil(self.protect_fraction * len(warps)))
        if count >= len(warps):
            return True
        ranked = sorted(warps,
                        key=lambda w: (-self._score(sm, w), w.id))
        for candidate in ranked[:count]:
            if candidate is warp:
                return True
        return False

    def _check_delay(self, sm: Sm, warp: Warp, insts: int) -> int | None:
        if not self._protected(sm, warp):
            return None
        # The redundant re-execution of the region plus the compare.
        return self.compare_cycles + int(math.ceil(insts * self.dup_factor))

    def _note_check(self, sm: Sm) -> None:
        sm.stats.partial_protected_regions += 1

    def _note_unprotected(self, sm: Sm) -> None:
        sm.stats.partial_unprotected_regions += 1

    # ------------------------------------------------------------------
    # Checkpoint support (adds the exposure ledger)
    # ------------------------------------------------------------------
    _STATE_KEYS = ("rpt", "verify", "dirty", "exposure")

    def capture_state(self, sm: Sm) -> dict:
        state = super().capture_state(sm)
        state["exposure"] = dict(self._exposure)
        return state

    def restore_state(self, state: dict, sm: Sm, warp_map: dict) -> None:
        super().restore_state(state, sm, warp_map)
        self._exposure = dict(state["exposure"])


# ==========================================================================
# ABFT checksum SGEMM
# ==========================================================================

class AbftSgemmRuntime(ResilienceRuntime):
    """Factory for online-ABFT GEMM verification.

    The kernel carries checksum-encoded inputs (the ``SGEMM_ABFT``
    workload variant computes row/column checksum vectors alongside C);
    at each region boundary the runtime validates the checksum relation
    in ``check_cycles``.  Because the checksum localizes a mismatch to
    the single corrupted warp, recovery is online: only that warp
    re-derives its region from its recovery PC — no SM-wide rollback
    unless the corruption cannot be localized.
    """

    needs_boundaries = True

    def __init__(self, check_cycles: int = 3, rollback_cycles: int = 1,
                 harden_rpt: bool = True, harden_rbq: bool = True) -> None:
        if check_cycles < 1:
            raise ConfigError("ABFT check must take at least one cycle")
        if rollback_cycles < 1:
            raise ConfigError("rollback must take at least one cycle")
        self.check_cycles = check_cycles
        self.rollback_cycles = rollback_cycles
        self.harden_rpt = harden_rpt

    def bind(self, sm: Sm) -> "AbftSgemmSmRuntime":
        return AbftSgemmSmRuntime(sm, check_cycles=self.check_cycles,
                                  rollback_cycles=self.rollback_cycles,
                                  harden_rpt=self.harden_rpt)


class AbftSgemmSmRuntime(_CompareSmRuntime):
    verify_cause = "abft_check"

    def __init__(self, sm: Sm, check_cycles: int, rollback_cycles: int,
                 harden_rpt: bool) -> None:
        super().__init__(sm, rollback_cycles, harden_rpt)
        self.check_cycles = check_cycles

    def _check_delay(self, sm: Sm, warp: Warp, insts: int) -> int:
        return self.check_cycles

    def _note_check(self, sm: Sm) -> None:
        sm.stats.abft_checks += 1

    def _detected(self, sm: Sm, entry: VerifyEntry, cycle: int) -> None:
        warp = entry.warp
        if self._dirty.get(warp.id, 0) >= 1 and len(self._dirty) == 1:
            self._correct(sm, warp, cycle)
        else:
            # Corruption spread across warps: the checksum flags the
            # mismatch but cannot localize it — fall back to rollback.
            self._rollback(sm, cycle)

    def _correct(self, sm: Sm, warp: Warp, cycle: int) -> None:
        """Online correction: re-derive only the corrupted warp's region
        from its recovery point; the rest of the SM keeps running."""
        resume = cycle + self.rollback_cycles
        self._dirty.pop(warp.id, None)
        self.rpt.recover(warp)
        warp.state = WarpState.ACTIVE
        warp.wake(resume)
        warp.pending.clear()
        warp.pending_mem.clear()
        warp.insts_since_boundary = 0
        warp.clear_inflight()
        sm.skip_markers(warp, resume)
        self._rollback_until = resume
        sm.stats.recoveries += 1
        sm.stats.detected_errors += 1
        sm.stats.abft_corrections += 1
        if sm.tracer is not None:
            sm.tracer.event("abft_correct", cycle, sm.id, warp.id,
                            {"resume": resume})
