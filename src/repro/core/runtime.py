"""The Flame runtime: WCDL-aware warp scheduling over RBQ + RPT.

This is the paper's hardware contribution (Sections III-C/III-D) plugged
into the simulator's resilience hooks:

* when a warp's PC reaches a region-boundary marker it is descheduled
  and pushed into its scheduler's Region Boundary Queue — boundary
  hitting behaves like a long-latency instruction, so the scheduler
  naturally switches to another ready warp;
* the RBQ conveyor advances one slot per cycle; a popped entry means the
  region verified error-free, so the warp's Recovery PC Table entry
  advances to the start of its next region and the warp becomes
  schedulable again;
* a warp's exit also rides the conveyor (the final region must verify
  before the warp — and hence its block — may retire);
* on error detection all in-flight verifications are flushed and every
  warp of the SM resumes from its RPT entry (Figure 9, example B).
"""

from __future__ import annotations

from ..errors import ConfigError
from ..sim import (CONTROL_TID, NEVER, ResilienceRuntime, Sm, Warp,
                   WarpSnapshot, WarpState)
from ..sim.snapshot import plain_equal
from .rbq import RbqEntry, RegionBoundaryQueue
from .rpt import RecoveryPcTable


class FlameRuntime(ResilienceRuntime):
    """Factory bound per-SM; construct with the sensor mesh's WCDL.

    ``rollback_cycles`` models the latency of a rollback (flush the
    pipeline and verification conveyor, reset every warp from its RPT
    entry): warps resume that many cycles after detection.  Strikes
    landing inside that window raise their own detections, which
    coalesce into the in-progress rollback instead of being silently
    credited to it (see :meth:`FlameSmRuntime.recover`).

    ``harden_rpt`` / ``harden_rbq`` set the :class:`RecoveryPcTable` /
    :class:`RegionBoundaryQueue` ``hardened`` flags, which the fault
    injector's ``rpt`` / ``rbq`` sites honor (a hardened structure
    absorbs strikes, per the paper's hardened-AGU discussion).
    """

    needs_boundaries = True

    def __init__(self, wcdl: int = 20, rollback_cycles: int = 1,
                 harden_rpt: bool = True, harden_rbq: bool = True) -> None:
        if wcdl < 1:
            raise ConfigError("WCDL must be at least one cycle")
        if rollback_cycles < 1:
            raise ConfigError("rollback must take at least one cycle")
        self.wcdl = wcdl
        self.rollback_cycles = rollback_cycles
        self.harden_rpt = harden_rpt
        self.harden_rbq = harden_rbq

    def bind(self, sm: Sm) -> "FlameSmRuntime":
        return FlameSmRuntime(self.wcdl, sm,
                              rollback_cycles=self.rollback_cycles,
                              harden_rpt=self.harden_rpt,
                              harden_rbq=self.harden_rbq)


class FlameSmRuntime(ResilienceRuntime):
    """Per-SM RBQ/RPT state."""

    needs_boundaries = True

    def __init__(self, wcdl: int, sm: Sm, rollback_cycles: int = 1,
                 harden_rpt: bool = True, harden_rbq: bool = True) -> None:
        self.wcdl = wcdl
        self.sm = sm
        self.rollback_cycles = rollback_cycles
        self.harden_rbq = harden_rbq
        self.rpt = RecoveryPcTable(hardened=harden_rpt)
        self._rbqs: dict[int, RegionBoundaryQueue] = {}
        self._pending: list[RbqEntry] = []
        #: Cycle the in-progress rollback completes, if one is running.
        self._rollback_until: int | None = None

    def bind(self, sm: Sm) -> "FlameSmRuntime":
        return self

    def _rbq_for(self, warp: Warp) -> RegionBoundaryQueue:
        key = id(warp.scheduler)
        rbq = self._rbqs.get(key)
        if rbq is None:
            rbq = RegionBoundaryQueue(self.wcdl, hardened=self.harden_rbq)
            self._rbqs[key] = rbq
        return rbq

    # ------------------------------------------------------------------
    # Hooks
    # ------------------------------------------------------------------
    def on_warp_attached(self, sm: Sm, warp: Warp) -> None:
        self.rpt.register_warp(warp)

    def on_warp_detached(self, sm: Sm, warp: Warp) -> None:
        self.rpt.drop(warp)

    def on_reach_boundary(self, sm: Sm, warp: Warp, cycle: int) -> None:
        sm.note_region_end(warp)
        warp.advance()
        self._deschedule(sm, warp, cycle, final=False)

    def on_warp_exit(self, sm: Sm, warp: Warp, cycle: int) -> bool:
        # The warp's last region must verify before the warp retires.
        sm.note_region_end(warp)
        self._deschedule(sm, warp, cycle, final=True)
        return False

    def _deschedule(self, sm: Sm, warp: Warp, cycle: int, final: bool) -> None:
        snapshot = WarpSnapshot.capture(warp)
        entry = RbqEntry(warp=warp, snapshot=snapshot, enqueued_at=cycle,
                         final=final)
        warp.state = WarpState.IN_RBQ
        rbq = self._rbq_for(warp)
        if rbq.can_enqueue(cycle):
            rbq.enqueue(entry, cycle)
            sm.stats.rbq_enqueues += 1
            stalled = False
        else:
            self._pending.append(entry)
            sm.stats.rbq_full_stalls += 1
            stalled = True
        if sm.tracer is not None:
            sm.tracer.event("rbq_enqueue", cycle, sm.id, warp.id,
                            {"final": final, "stalled": stalled})

    def tick(self, sm: Sm, cycle: int) -> None:
        for rbq in self._rbqs.values():
            entry = rbq.pop_verified(cycle)
            if entry is not None:
                self._verified(sm, entry, cycle)
        if self._pending:
            still_pending: list[RbqEntry] = []
            for entry in self._pending:
                rbq = self._rbq_for(entry.warp)
                if rbq.can_enqueue(cycle):
                    rbq.enqueue(entry, cycle)
                    sm.stats.rbq_enqueues += 1
                else:
                    still_pending.append(entry)
            self._pending = still_pending

    def _verified(self, sm: Sm, entry: RbqEntry, cycle: int) -> None:
        warp = entry.warp
        if warp.state is not WarpState.IN_RBQ:
            return  # stale entry (warp recovered meanwhile)
        if sm.tracer is not None:
            sm.tracer.event("region_verify", cycle, sm.id, warp.id,
                            {"final": entry.final,
                             "wait": cycle - entry.enqueued_at})
        if entry.final:
            warp.state = WarpState.DONE
            self.sm._note_warp_done(warp)
            self.sm._check_barrier_release(warp.block, cycle)
            return
        self.rpt.update(warp, entry.snapshot)
        warp.state = WarpState.ACTIVE
        warp.wake(cycle)
        if sm.tracer is not None:
            sm.tracer.event("warp_wake", cycle, sm.id, warp.id)
        sm.skip_markers(warp, cycle)

    def next_event(self, sm: Sm) -> int:
        best = NEVER
        for rbq in self._rbqs.values():
            pop = rbq.next_pop_cycle()
            if pop is not None:
                best = min(best, pop)
        return best

    def stall_cause(self, sm: Sm, cycle: int) -> str | None:
        """SM-level attribution: an in-progress rollback window claims
        the cycle outright; a boundary blocked on a full conveyor is an
        RBQ-capacity stall (the structural hazard Flame sizes the
        conveyor to avoid)."""
        until = self._rollback_until
        if until is not None and cycle < until:
            return "rollback"
        if self._pending:
            return "rbq_full"
        return None

    # ------------------------------------------------------------------
    # Checkpoint support
    # ------------------------------------------------------------------
    def capture_state(self, sm: Sm) -> dict:
        """Plain-data snapshot of the RPT, the per-scheduler conveyors
        (keyed by scheduler *index* — ``id()`` keys don't survive a
        restore onto a fresh GPU), the stalled-entry overflow list, and
        the in-progress rollback window."""
        sched_index = {id(s): i for i, s in enumerate(sm.schedulers)}
        return {
            "rpt": self.rpt.capture_state(),
            "rbqs": {sched_index[key]: rbq.capture_state()
                     for key, rbq in self._rbqs.items()},
            "pending": tuple((e.warp.id, e.snapshot.to_state(),
                              e.enqueued_at, e.final)
                             for e in self._pending),
            "rollback_until": self._rollback_until,
        }

    def restore_state(self, state: dict, sm: Sm, warp_map: dict) -> None:
        from ..sim import WarpSnapshot

        self.rpt.restore_state(state["rpt"])
        self._rbqs = {}
        for index, rbq_state in state["rbqs"].items():
            rbq = RegionBoundaryQueue(self.wcdl, hardened=self.harden_rbq)
            rbq.restore_state(rbq_state, warp_map)
            self._rbqs[id(sm.schedulers[index])] = rbq
        self._pending = [
            RbqEntry(warp=warp_map[wid],
                     snapshot=WarpSnapshot.from_state(snap),
                     enqueued_at=enq, final=final)
            for wid, snap, enq, final in state["pending"]]
        self._rollback_until = state["rollback_until"]

    def state_equals(self, sm: Sm, state) -> bool:
        """Convergence-comparison equality against :meth:`capture_state`
        data.

        Excludes ``rollback_until``: the spent rollback window is read
        only when a *later* sensor detection coalesces into a running
        rollback (:meth:`recover`), and the convergence monitor only
        compares at boundaries where the injector is quiescent — no
        further detections exist, so a stale window value cannot
        influence the continuation.
        """
        if not isinstance(state, dict):
            return False
        live = self.capture_state(sm)
        return all(plain_equal(live[key], state[key])
                   for key in ("rpt", "rbqs", "pending"))

    # ------------------------------------------------------------------
    # Error detection and recovery (Figure 9, example B)
    # ------------------------------------------------------------------
    def recover(self, cycle: int) -> None:
        """Sensor fired: flush verifications, reset all warps to their
        recovery PCs, and restart execution.

        A detection while a rollback is already in progress (the
        recovery storm of a strike landing between detection and
        rollback completion) coalesces into it: the flush/reset is
        re-applied — the late strike may have corrupted state the first
        reset already wrote — and the rollback window extends, but it is
        counted as a ``coalesced_recoveries`` rather than a fresh
        recovery.  Either way the detection itself is always counted.
        """
        sm = self.sm
        nested = self._rollback_until is not None and cycle < self._rollback_until
        resume = cycle + self.rollback_cycles
        for rbq in self._rbqs.values():
            rbq.flush()
        self._pending.clear()
        for warp in sm.warps:
            if warp.state is WarpState.DONE:
                continue
            self.rpt.recover(warp)
            warp.state = WarpState.ACTIVE
            warp.wake(resume)
            warp.pending.clear()
            warp.pending_mem.clear()
            warp.insts_since_boundary = 0
            # The rollback flushes the pipeline: nothing of the warp's
            # doomed in-flight work can be struck anymore.
            warp.clear_inflight()
            # A recovery PC may sit on a boundary marker (kernel entry of
            # a loop-header-led kernel); re-deliver it rather than issue it.
            sm.skip_markers(warp, resume)
        self._rollback_until = resume
        if nested:
            sm.stats.coalesced_recoveries += 1
        else:
            sm.stats.recoveries += 1
        sm.stats.detected_errors += 1
        if sm.tracer is not None:
            sm.tracer.event("rollback", cycle, sm.id, CONTROL_TID,
                            {"resume": resume, "coalesced": nested},
                            ph="X", dur=resume - cycle)
