"""Hardware cost accounting (Section VI-A2).

The paper's arithmetic for the default configuration (GTX480, two warp
schedulers of 32 warps each, 20-cycle WCDL):

* one RBQ entry = 5 bits of warp id + 1 valid bit = 6 bits;
* RBQ = WCDL x 6 = 120 bits per scheduler;
* RPT = 32 warps x 32-bit PC = 1024 bits per scheduler.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..arch import GpuConfig, GTX480, SensorMesh, sensors_for_wcdl


@dataclass(frozen=True)
class HardwareCost:
    """Flame's added state for one GPU configuration."""

    gpu_name: str
    wcdl: int
    warps_per_scheduler: int
    rbq_entry_bits: int
    rbq_bits: int
    rpt_bits: int
    sensors_per_sm: int
    sensor_area_overhead: float

    @property
    def total_bits_per_scheduler(self) -> int:
        return self.rbq_bits + self.rpt_bits


def flame_hardware_cost(gpu: GpuConfig = GTX480, wcdl: int = 20,
                        pc_bits: int = 32) -> HardwareCost:
    """Compute the Section VI-A2 numbers for any configuration."""
    warps = gpu.warps_per_scheduler
    warp_id_bits = max(1, math.ceil(math.log2(warps)))
    entry_bits = warp_id_bits + 1
    sensors = sensors_for_wcdl(gpu, wcdl)
    mesh = SensorMesh(gpu, sensors)
    return HardwareCost(
        gpu_name=gpu.name,
        wcdl=wcdl,
        warps_per_scheduler=warps,
        rbq_entry_bits=entry_bits,
        rbq_bits=wcdl * entry_bits,
        rpt_bits=warps * pc_bits,
        sensors_per_sm=sensors,
        sensor_area_overhead=mesh.area_overhead,
    )
