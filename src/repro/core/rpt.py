"""Recovery PC Table (Section III-D1).

One entry per warp, holding the warp's recovery context: the beginning
of its youngest *verified*-boundary-delimited region (initially the
kernel entry).  On error detection every warp's PC is reset from its
RPT entry.  In hardware each entry is a PC (32 bits x 32 warps =
1024 bits per scheduler, Section VI-A2); our model additionally carries
the SIMT-stack/barrier-counter snapshot that hardware keeps alongside.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

if TYPE_CHECKING:
    from ..sim import Warp, WarpSnapshot


@dataclass
class RecoveryPcTable:
    """Per-warp recovery contexts.

    ``hardened`` models the paper's assumption that the table (1 Kbit
    per scheduler) is parity/ECC-protected like the hardened AGUs of
    the Section IV discussion: a strike on a hardened table is absorbed.
    Disabling hardening exposes the table to the fault injector's
    ``rpt`` site — a corrupted entry silently redirects the next
    rollback, which the architectural sanitizer's region-start invariant
    is designed to catch.
    """

    hardened: bool = True
    entries: dict[int, "WarpSnapshot"] = field(default_factory=dict)

    def register_warp(self, warp: "Warp") -> None:
        """Initialize a warp's recovery PC to its current (entry) state."""
        from ..sim import WarpSnapshot

        self.entries[warp.id] = WarpSnapshot.capture(warp)

    def update(self, warp: "Warp", snapshot: "WarpSnapshot") -> None:
        """A region boundary verified: advance the warp's recovery PC."""
        self.entries[warp.id] = snapshot

    def recover(self, warp: "Warp") -> None:
        """Reset the warp to its most recent verified region start."""
        self.entries[warp.id].restore(warp)

    def drop(self, warp: "Warp") -> None:
        self.entries.pop(warp.id, None)

    # -- checkpoint support --------------------------------------------
    def capture_state(self) -> dict:
        return {wid: snap.to_state() for wid, snap in self.entries.items()}

    def restore_state(self, state: dict) -> None:
        from ..sim import WarpSnapshot

        self.entries = {wid: WarpSnapshot.from_state(data)
                        for wid, data in state.items()}

    def storage_bits(self, max_warps: int = 32, pc_bits: int = 32) -> int:
        """Hardware cost of the PC portion (Section VI-A2)."""
        return max_warps * pc_bits
