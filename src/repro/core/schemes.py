"""Pluggable resilience-scheme registry.

A *runtime scheme* couples a compile-time :class:`~repro.compiler.Scheme`
(what code the kernel runs) with a :class:`~repro.sim.ResilienceRuntime`
factory (what the hardware model does about faults at region boundaries)
plus campaign metadata.  The fault-injection campaign, the overhead
runner, and the tracer all resolve scheme names here, so adding a new
competitor is one ``@register_scheme`` declaration:

    @register_scheme("my_scheme", compile_scheme="renaming",
                     detects=True, description="...")
    def _my_scheme(wcdl=20, harden_rpt=True, harden_rbq=True):
        return MyRuntime(...)

Names resolve via :func:`runtime_scheme_by_name`; unknown names raise
:class:`ConfigError` listing the campaign-runnable choices.  Compile-only
entries (``campaign=False``) exist so timing studies (Figures 13-16) can
route through the same table, but campaigns reject them up front.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from ..compiler.pipeline import scheme_by_name as compile_scheme_by_name
from ..errors import ConfigError

#: Factory signature every registered scheme provides: build a fresh
#: (stateless, bindable) ResilienceRuntime for one kernel launch.
RuntimeFactory = Callable[..., object]


@dataclass(frozen=True)
class RuntimeScheme:
    """One registry entry: name -> compile binding + runtime factory."""

    name: str
    #: Key into the compiler's ``SCHEMES`` table (validated eagerly at
    #: registration so a typo fails at import, not mid-campaign).
    compile_scheme: str
    description: str
    factory: RuntimeFactory
    #: Eligible as a fault-injection campaign scheme.  Compile-only
    #: timing variants (hybrid_*, bare renaming/checkpointing) are not:
    #: they have no runtime detection story, so campaigning them would
    #: just re-measure the baseline outcome distribution.
    campaign: bool = True
    #: The runtime detects strikes (gates injection in traced runs).
    detects: bool = False
    #: Restrict to specific workloads (None = any).  ABFT only makes
    #: sense where the checksum relation holds.
    workloads: Optional[tuple] = None

    def build(self, wcdl: int = 20, harden_rpt: bool = True,
              harden_rbq: bool = True):
        """Instantiate the runtime for one launch."""
        return self.factory(wcdl=wcdl, harden_rpt=harden_rpt,
                            harden_rbq=harden_rbq)

    def supports_workload(self, workload: str) -> bool:
        return self.workloads is None or workload in self.workloads


#: Registration-ordered name -> entry table.  Ordering is meaningful:
#: ``campaign_schemes()`` preserves it for CLI listings and defaults.
RUNTIME_SCHEMES: "dict[str, RuntimeScheme]" = {}


def register_scheme(name: str, *, compile_scheme: str, description: str,
                    campaign: bool = True, detects: bool = False,
                    workloads=None):
    """Decorator registering ``factory`` under ``name``.

    Raises :class:`ConfigError` on duplicate names or on a
    ``compile_scheme`` the compiler does not know.
    """

    def decorate(factory: RuntimeFactory) -> RuntimeFactory:
        if name in RUNTIME_SCHEMES:
            raise ConfigError(f"resilience scheme {name!r} is already "
                              f"registered")
        compile_scheme_by_name(compile_scheme)  # validate the binding now
        RUNTIME_SCHEMES[name] = RuntimeScheme(
            name=name, compile_scheme=compile_scheme,
            description=description, factory=factory, campaign=campaign,
            detects=detects,
            workloads=None if workloads is None else tuple(workloads))
        return factory

    return decorate


def runtime_scheme_by_name(name: str) -> RuntimeScheme:
    """Resolve a scheme name, or raise :class:`ConfigError` naming the
    campaign-runnable choices (the set a user can actually ask for)."""
    try:
        return RUNTIME_SCHEMES[name]
    except KeyError:
        runnable = ", ".join(campaign_schemes())
        raise ConfigError(
            f"unknown resilience scheme {name!r}; campaign-runnable "
            f"schemes: {runnable}") from None


def campaign_schemes() -> tuple:
    """Campaign-eligible scheme names, in registration order."""
    return tuple(name for name, scheme in RUNTIME_SCHEMES.items()
                 if scheme.campaign)


def default_campaign_schemes() -> tuple:
    """The out-of-the-box campaign comparison (paper Figure 16 axis)."""
    return ("baseline", "flame")


def build_runtime(name: str, wcdl: int = 20, harden_rpt: bool = True,
                  harden_rbq: bool = True):
    """Shorthand: resolve ``name`` and build its runtime."""
    return runtime_scheme_by_name(name).build(
        wcdl=wcdl, harden_rpt=harden_rpt, harden_rbq=harden_rbq)


# --------------------------------------------------------------------------
# Built-in registrations.  Factories import lazily so this module stays
# importable from both the compiler and simulator layers without cycles.

@register_scheme("baseline", compile_scheme="baseline",
                 description="unprotected kernel, no runtime (the "
                             "overhead and SDC reference point)")
def _baseline(wcdl=20, harden_rpt=True, harden_rbq=True):
    from ..sim import NULL_RESILIENCE
    return NULL_RESILIENCE


@register_scheme("flame", compile_scheme="flame", detects=True,
                 description="acoustic-sensor detection with RBQ/RPT "
                             "idempotent-region rollback (the paper)")
def _flame(wcdl=20, harden_rpt=True, harden_rbq=True):
    from .runtime import FlameRuntime
    return FlameRuntime(wcdl, harden_rpt=harden_rpt, harden_rbq=harden_rbq)


@register_scheme("dmr", compile_scheme="duplication_renaming", detects=True,
                 description="full duplication (DMR): redundant issue with "
                             "compare-at-region-end, rollback on mismatch "
                             "(the 15-45% strawman)")
def _dmr(wcdl=20, harden_rpt=True, harden_rbq=True):
    from .competitors import DmrRuntime
    return DmrRuntime(harden_rpt=harden_rpt, harden_rbq=harden_rbq)


@register_scheme("partial_thread", compile_scheme="renaming", detects=True,
                 description="partial thread protection: only the "
                             "vulnerability-ranked warp subset pays "
                             "duplicate/verify cost; unprotected warps "
                             "carry SDC risk")
def _partial_thread(wcdl=20, harden_rpt=True, harden_rbq=True):
    from .competitors import PartialThreadRuntime
    return PartialThreadRuntime(harden_rpt=harden_rpt, harden_rbq=harden_rbq)


@register_scheme("abft_sgemm", compile_scheme="renaming", detects=True,
                 workloads=("SGEMM", "SGEMM_ABFT"),
                 description="ABFT checksum GEMM: row/column checksum "
                             "verification at region ends, single-warp "
                             "online correction")
def _abft_sgemm(wcdl=20, harden_rpt=True, harden_rbq=True):
    from .competitors import AbftSgemmRuntime
    return AbftSgemmRuntime(harden_rpt=harden_rpt, harden_rbq=harden_rbq)


@register_scheme("sensor_checkpointing", compile_scheme="sensor_checkpointing",
                 detects=True,
                 description="sensor detection over checkpoint-based "
                             "recovery regions")
@register_scheme("sensor_renaming", compile_scheme="sensor_renaming",
                 detects=True,
                 description="flame protocol without region extension "
                             "(sensor + renaming recovery)")
def _sensor(wcdl=20, harden_rpt=True, harden_rbq=True):
    from .runtime import FlameRuntime
    return FlameRuntime(wcdl, harden_rpt=harden_rpt, harden_rbq=harden_rbq)


_COMPILE_ONLY = (
    ("renaming", "register renaming only (timing study; no detection)"),
    ("checkpointing", "checkpoint stores only (timing study; no detection)"),
    ("duplication_renaming",
     "duplicated instruction stream over renaming (timing study)"),
    ("duplication_checkpointing",
     "duplicated instruction stream over checkpointing (timing study)"),
    ("hybrid_renaming", "hybrid duplication/sensor over renaming "
                        "(timing study)"),
    ("hybrid_checkpointing", "hybrid duplication/sensor over checkpointing "
                             "(timing study)"),
)

for _name, _desc in _COMPILE_ONLY:
    register_scheme(_name, compile_scheme=_name, campaign=False,
                    description=_desc)(_baseline)
del _name, _desc
