"""Zero-copy golden sharing across campaign worker processes.

Every worker of a multi-process campaign needs the same golden data per
(workload, scheme, ...) cell: the fault-free memory image, the golden
cycle count, and — in checkpoint-accelerated mode — the recorded
checkpoint set with its liveness maps.  Without sharing, each worker
re-simulates every golden run it touches; with N workers sweeping the
same cells that is N-fold duplicated work and N resident copies.

This module moves the array payload of those goldens into one
:mod:`multiprocessing.shared_memory` segment:

* the parent derives each distinct golden once (:func:`export_goldens`),
  pickles the object skeleton with every ``ndarray`` leaf swapped for a
  ``(offset, dtype, shape)`` descriptor (a ``persistent_id`` hook, so
  arbitrarily nested arrays — checkpoint register files, liveness maps,
  the memory image itself — are all caught), and lays the array bytes
  into the segment;
* a manifest file pins the segment name and the per-key descriptors;
  its path travels to workers through ``REPRO_GOLDEN_MANIFEST`` — the
  one handshake that works identically for ``--workers N`` process
  pools (inherited environment) and the subprocess/HTTP shard backends
  (``worker_env`` copies ``os.environ``);
* workers attach the segment once and hydrate entries on demand
  (:func:`shared_entry`) as **read-only** NumPy views — zero copies,
  zero re-simulation.  Read-only is sound because every consumer of
  golden data copies on restore (the snapshot protocol is deep) and
  merely reads for comparison; it is also load-bearing: an accidental
  write raises instead of silently corrupting every sibling worker.

Sharing is a pure acceleration: entries are byte-identical to what the
worker would have computed (the golden run is deterministic), so trial
outcomes and journals cannot change.  Any failure here — no manifest,
a missing key, a torn segment — degrades to local derivation.
``REPRO_SHARED_GOLDENS=0`` disables the mechanism outright.
"""

from __future__ import annotations

import atexit
import io
import os
import pickle
import tempfile

import numpy as np

#: Environment handshake: path of the manifest file (parent -> workers).
MANIFEST_ENV = "REPRO_GOLDEN_MANIFEST"

#: Kill switch: set to "0" to disable sharing end to end.
ENABLE_ENV = "REPRO_SHARED_GOLDENS"

_ALIGN = 64


def sharing_enabled() -> bool:
    return os.environ.get(ENABLE_ENV, "1") != "0"


# ----------------------------------------------------------------------
# Array-extracting (un)pickling
# ----------------------------------------------------------------------
class _ArrayPickler(pickle.Pickler):
    """Pickle everything except ``ndarray`` leaves, which are collected
    into :attr:`arrays` and replaced by their index (object-dtype
    arrays, which have no flat byte image, stay inline)."""

    def __init__(self, file) -> None:
        super().__init__(file, protocol=pickle.HIGHEST_PROTOCOL)
        self.arrays: list[np.ndarray] = []

    def persistent_id(self, obj):
        if isinstance(obj, np.ndarray) and obj.dtype != object:
            self.arrays.append(np.ascontiguousarray(obj))
            return len(self.arrays) - 1
        return None


class _ArrayUnpickler(pickle.Unpickler):
    def __init__(self, file, views: list[np.ndarray]) -> None:
        super().__init__(file)
        self._views = views

    def persistent_load(self, pid):
        return self._views[pid]


def _pack(payload) -> tuple[bytes, list[np.ndarray]]:
    buf = io.BytesIO()
    pickler = _ArrayPickler(buf)
    pickler.dump(payload)
    return buf.getvalue(), pickler.arrays


def _hydrate(blob: bytes, descriptors: list[tuple], shm_buf):
    views = []
    for offset, dtype_str, shape in descriptors:
        dtype = np.dtype(dtype_str)
        count = int(np.prod(shape, dtype=np.int64)) if shape else 1
        view = np.frombuffer(shm_buf, dtype=dtype, count=count,
                             offset=offset).reshape(shape)
        view.flags.writeable = False
        views.append(view)
    return _ArrayUnpickler(io.BytesIO(blob), views).load()


# ----------------------------------------------------------------------
# Parent side: derive + export
# ----------------------------------------------------------------------
#: Parent-held handles for cleanup (segment + manifest we created).
_EXPORTED: dict | None = None


def export_goldens(trials, manifest_dir: str | None = None) -> str | None:
    """Derive every distinct golden the given trials need and publish
    them in a fresh shared-memory segment.

    Returns the manifest path (also placed in ``os.environ`` under
    :data:`MANIFEST_ENV`) or ``None`` when sharing is disabled, there
    is nothing to share, or the platform refuses shared memory — all
    non-fatal: workers simply derive goldens locally.
    """
    global _EXPORTED
    if not sharing_enabled() or _EXPORTED is not None:
        return None
    try:
        from multiprocessing import shared_memory
    except ImportError:                       # pragma: no cover
        return None
    from .campaign import _golden, golden_key

    wants: dict[tuple, tuple] = {}
    for trial in trials:
        key = golden_key(trial)
        if key not in wants or trial.checkpoint:
            wants[key] = (trial, trial.checkpoint)
    if not wants:
        return None

    entries: dict[tuple, dict] = {}
    packed: list[tuple[tuple, bytes, list[np.ndarray]]] = []
    for key, (trial, with_checkpoints) in wants.items():
        entry, _ = _golden(trial, with_checkpoints=with_checkpoints)
        blob, arrays = _pack((entry[1], entry[2], entry[3]))
        packed.append((key, blob, arrays))

    total = 0
    layouts: list[list[tuple[int, str, tuple]]] = []
    for _, _, arrays in packed:
        layout = []
        for array in arrays:
            total = (total + _ALIGN - 1) // _ALIGN * _ALIGN
            layout.append((total, array.dtype.str, array.shape))
            total += array.nbytes
        layouts.append(layout)

    try:
        segment = shared_memory.SharedMemory(create=True, size=max(total, 1))
    except OSError:                           # pragma: no cover
        return None
    for (key, blob, arrays), layout in zip(packed, layouts):
        for array, (offset, dtype_str, shape) in zip(arrays, layout):
            if array.nbytes:
                dst = np.frombuffer(segment.buf, dtype=array.dtype,
                                    count=array.size,
                                    offset=offset).reshape(shape)
                dst[...] = array
        entries[key] = {"payload": blob, "arrays": layout}
    del packed

    manifest = {"version": 1, "shm": segment.name, "entries": entries}
    directory = manifest_dir or tempfile.gettempdir()
    os.makedirs(directory, exist_ok=True)
    fd, path = tempfile.mkstemp(prefix="repro_goldens_", suffix=".manifest",
                                dir=directory)
    with os.fdopen(fd, "wb") as handle:
        pickle.dump(manifest, handle, protocol=pickle.HIGHEST_PROTOCOL)

    _EXPORTED = {"segment": segment, "path": path,
                 "previous": os.environ.get(MANIFEST_ENV)}
    os.environ[MANIFEST_ENV] = path
    return path


def release_goldens() -> None:
    """Tear down what :func:`export_goldens` published (parent only).

    Safe after workers exit: attached views die with their processes;
    unlinking just drops the name and frees the pages.
    """
    global _EXPORTED
    if _EXPORTED is None:
        return
    exported, _EXPORTED = _EXPORTED, None
    previous = exported["previous"]
    if previous is None:
        os.environ.pop(MANIFEST_ENV, None)
    else:
        os.environ[MANIFEST_ENV] = previous
    try:
        os.remove(exported["path"])
    except OSError:
        pass
    segment = exported["segment"]
    try:
        segment.unlink()
    except OSError:                           # pragma: no cover
        pass
    try:
        segment.close()
    except (OSError, BufferError):
        # Hydrated views (an inline consumer in this very process)
        # still reference the mapping; the kernel frees it when the
        # last view dies.  The name is already unlinked — nothing
        # outlives the processes — so silence the destructor's retry.
        segment.close = lambda: None


# ----------------------------------------------------------------------
# Worker side: attach + hydrate
# ----------------------------------------------------------------------
#: Per-process attachment: {"path", "entries", "shm"} or False after a
#: failed attach (so a dead manifest is probed once, not per trial).
_ATTACHED = None


def _attach():
    global _ATTACHED
    path = os.environ.get(MANIFEST_ENV)
    if not path or not sharing_enabled():
        return None
    if _ATTACHED is not None:
        if _ATTACHED is False or _ATTACHED["path"] != path:
            return _ATTACHED or None
        return _ATTACHED
    try:
        from multiprocessing import shared_memory

        with open(path, "rb") as handle:
            manifest = pickle.load(handle)
        if (_EXPORTED is not None
                and _EXPORTED["segment"].name == manifest["shm"]):
            # Exporter and consumer are the same process (inline
            # backend, single-process tests): reuse the exporter's
            # handle instead of opening — and later closing — a second
            # one on the segment we own.
            shm, owned = _EXPORTED["segment"], True
        else:
            shm, owned = shared_memory.SharedMemory(name=manifest["shm"]), \
                False
            # Python < 3.13 registers *attached* segments with the
            # resource tracker, which would unlink them when this worker
            # exits and tear the goldens out from under every sibling.
            # The parent owns the segment's lifetime; untrack ours.
            try:
                from multiprocessing import resource_tracker

                resource_tracker.unregister(shm._name, "shared_memory")
            except Exception:                 # pragma: no cover
                pass
    except Exception:
        _ATTACHED = False
        return None
    _ATTACHED = {"path": path, "entries": manifest["entries"], "shm": shm,
                 "owned": owned}
    return _ATTACHED


def shared_entry(key: tuple):
    """Hydrate ``(golden_cycles, golden_mem, recorder)`` for one golden
    key from the published segment, or ``None`` when unavailable."""
    attached = _attach()
    if not attached:
        return None
    entry = attached["entries"].get(key)
    if entry is None:
        return None
    try:
        return _hydrate(entry["payload"], entry["arrays"],
                        attached["shm"].buf)
    except Exception:                         # pragma: no cover
        return None


def _reset_attachment() -> None:
    """Forget this process's attachment state (tests, worker exit).

    ``close`` legitimately fails with :class:`BufferError` while
    hydrated views are still alive (e.g. parked in the golden cache);
    the mapping then simply lives until the last view dies.
    """
    global _ATTACHED
    attached, _ATTACHED = _ATTACHED, None
    if attached and not attached.get("owned"):
        shm = attached["shm"]
        try:
            shm.close()
        except (OSError, BufferError):
            shm.close = lambda: None  # views outlive us; OS reclaims


def _drop_views_at_exit() -> None:          # pragma: no cover
    """Release golden-cache views before interpreter teardown so the
    segment's ``SharedMemory.__del__`` can close its mapping quietly."""
    try:
        from .campaign import _GOLDEN_CACHE

        _GOLDEN_CACHE.clear()
    except Exception:
        pass
    _reset_attachment()


atexit.register(_drop_views_at_exit)


__all__ = ["ENABLE_ENV", "MANIFEST_ENV", "export_goldens",
           "release_goldens", "shared_entry", "sharing_enabled"]
