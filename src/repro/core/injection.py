"""Cycle-accurate fault injection (the paper's fault model, Section III-B).

A particle strike corrupts the in-flight destination register of a warp
executing on the struck SM (the register file itself is ECC-protected,
so errors enter through pipeline logic — i.e. through values being
produced).  The acoustic sensors report the strike within a uniformly
distributed delay of at most WCDL cycles; on detection the SM's Flame
runtime performs all-warp rollback.

Running the injector against a non-Flame GPU models an unprotected
machine: the corruption lands and nothing recovers it (the SDC case the
negative tests assert).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..errors import ConfigError
from ..sim import Gpu, Sm, WarpState


@dataclass
class InjectionRecord:
    """One injected strike and its outcome."""

    strike_cycle: int
    detect_cycle: int
    sm_id: int
    warp_id: int | None = None
    corrupted_reg: int | None = None
    landed: bool = False
    recovered: bool = False


@dataclass
class FaultInjector:
    """Injects strikes at given cycles and drives sensor detection.

    Attach via ``gpu.fault_injector = injector`` before launching.
    ``wcdl`` bounds the sensing delay; detection delay is sampled
    uniformly from [1, wcdl].
    """

    strike_cycles: list[int]
    wcdl: int = 20
    seed: int = 0
    records: list[InjectionRecord] = field(default_factory=list)
    _pending_detect: list[tuple[int, int]] = field(default_factory=list)
    _next_strike: int = 0

    def __post_init__(self) -> None:
        if self.wcdl < 1:
            raise ConfigError("WCDL must be at least one cycle")
        self.strike_cycles = sorted(self.strike_cycles)
        self._rng = np.random.default_rng(self.seed)
        self._addr_cache: dict[int, set[int]] = {}

    # ------------------------------------------------------------------
    def tick(self, gpu: Gpu, cycle: int) -> None:
        while (self._next_strike < len(self.strike_cycles)
               and self.strike_cycles[self._next_strike] <= cycle):
            self._strike(gpu, cycle)
            self._next_strike += 1
        if self._pending_detect:
            due = [(c, s) for (c, s) in self._pending_detect if c <= cycle]
            self._pending_detect = [(c, s) for (c, s) in self._pending_detect
                                    if c > cycle]
            for _, sm_id in due:
                self._detect(gpu, sm_id, cycle)

    def next_event(self, cycle: int) -> int:
        candidates = []
        if self._next_strike < len(self.strike_cycles):
            candidates.append(max(self.strike_cycles[self._next_strike],
                                  cycle + 1))
        candidates.extend(c for c, _ in self._pending_detect)
        return min(candidates) if candidates else 1 << 62

    # ------------------------------------------------------------------
    def _strike(self, gpu: Gpu, cycle: int) -> None:
        sm = gpu.sms[int(self._rng.integers(len(gpu.sms)))]
        record = InjectionRecord(strike_cycle=cycle,
                                 detect_cycle=cycle
                                 + int(self._rng.integers(1, self.wcdl + 1)),
                                 sm_id=sm.id)
        self.records.append(record)
        victim = self._pick_victim(sm)
        if victim is not None:
            warp, reg = victim
            record.warp_id = warp.id
            record.corrupted_reg = reg
            record.landed = True
            lanes = warp.ctx.regs[reg]
            garbage = self._rng.uniform(-1e9, 1e9, size=lanes.shape)
            mask = warp.last_write_mask
            if mask is None:
                mask = np.ones(lanes.shape, dtype=bool)
            np.copyto(lanes, garbage, where=mask)
        # The sensor hears the strike regardless of whether it flipped
        # architecturally relevant bits (false positives included).
        self._pending_detect.append((record.detect_cycle, sm.id))

    def _address_defs(self, kernel) -> set[int]:
        """Definition sites whose values (transitively) become memory
        addresses.

        The paper assumes hardened address-generation units and register
        file controllers (Section IV, Discussion), so strikes never
        produce misaddressed loads or stores; we honour that by keeping
        every address-feeding definition out of the victim pool.  The
        analysis is def-site precise (via reaching definitions), so
        register reuse after allocation does not over-exclude values.
        """
        key = id(kernel)
        cached = self._addr_cache.get(key)
        if cached is None:
            from ..compiler.dataflow import ReachingDefs
            from ..isa import Cfg, Reg

            rdefs = ReachingDefs(Cfg(kernel))
            tainted: set[int] = set()
            work = []

            def seed(use_index, var):
                for d in rdefs.defs_reaching_use(use_index, var):
                    if d >= 0 and d not in tainted:
                        tainted.add(d)
                        work.append(d)

            for u, inst in enumerate(kernel.instructions):
                info = inst.info
                is_mem = info.is_load or info.is_store or info.is_atomic
                if is_mem and isinstance(inst.srcs[0], Reg):
                    seed(u, inst.srcs[0])
                # Predicates steering branches or predicating memory ops
                # bound addresses (e.g. `if i < n` before a load); a
                # corrupted guard would misaddress, which the hardened
                # front end rules out.
                if inst.guard is not None and (info.is_branch or is_mem
                                               or info.is_exit):
                    seed(u, inst.guard)
            while work:
                d = work.pop()
                inst = kernel.instructions[d]
                for src in inst.read_regs():
                    for d2 in rdefs.defs_reaching_use(d, src):
                        if d2 >= 0 and d2 not in tainted:
                            tainted.add(d2)
                            work.append(d2)
            cached = tainted
            self._addr_cache[key] = cached
        return cached

    def _pick_victim(self, sm: Sm):
        """The most recently issued instruction's destination on this SM
        (excluding AGU-protected address-feeding definitions)."""
        candidates = []
        for warp in sm.warps:
            if warp.state not in (WarpState.ACTIVE, WarpState.IN_RBQ):
                continue
            last = getattr(warp, "last_write", None)
            if last is None:
                continue
            if warp.last_write_pc in self._address_defs(warp.kernel):
                continue
            candidates.append(warp)
        if not candidates:
            return None
        warp = candidates[int(self._rng.integers(len(candidates)))]
        return warp, warp.last_write.index

    def _detect(self, gpu: Gpu, sm_id: int, cycle: int) -> None:
        sm = next(s for s in gpu.sms if s.id == sm_id)
        runtime = sm.resilience
        recover = getattr(runtime, "recover", None)
        for record in self.records:
            # Only credit records whose own sensing delay has elapsed:
            # with overlapping strikes on one SM, a later strike must
            # not be attributed to an earlier detection event (its
            # corruption may land *after* this rollback).
            if (record.sm_id == sm_id and not record.recovered
                    and record.detect_cycle <= cycle):
                record.recovered = recover is not None
        if recover is not None:
            recover(cycle)

    @property
    def undetected(self) -> int:
        return sum(1 for r in self.records if r.landed and not r.recovered)
