"""Cycle-accurate fault injection (the paper's fault model, Section III-B).

A particle strike deposits charge somewhere on the struck SM.  *Where*
is the fault site — a pluggable taxonomy registered in
:data:`FAULT_SITES`:

``dest_reg``
    the in-flight destination register of a warp (the register file
    itself is ECC-protected, so errors enter through pipeline logic —
    i.e. through values being produced);
``shared_mem``
    the store datapath of an in-flight shared-memory store (the SRAM
    array is ECC-protected at rest; the value is corruptible while
    being written);
``predicate``
    an in-flight predicate-register write (guards of pure arithmetic —
    guards that bound addresses or steer branches are excluded under
    the paper's hardened-AGU assumption, like address-feeding general
    registers);
``simt_stack``
    one lane bit of a divergence-stack entry's active mask;
``rpt`` / ``rbq``
    Flame's own recovery structures.  Both default to ``hardened``
    (parity-protected, Section IV Discussion) and then absorb strikes;
    un-hardening them exposes the recovery path itself to corruption.

The acoustic sensors report a strike within a bounded delay; the
:class:`~repro.arch.SensorModel` adds per-strike miss probability and
detection-latency jitter on top of the WCDL bound.  On detection the
SM's Flame runtime performs all-warp rollback.

Running the injector against a non-Flame GPU models an unprotected
machine: the corruption lands and nothing recovers it (the SDC case the
negative tests assert).
"""

from __future__ import annotations

import dataclasses
import weakref
from dataclasses import dataclass, field

import numpy as np

from ..arch import SensorModel
from ..errors import ConfigError
from ..sim import CONTROL_TID, Gpu, Sm, WarpState

_ACTIVE_STATES = (WarpState.ACTIVE, WarpState.IN_RBQ)


@dataclass
class InjectionRecord:
    """One injected strike and its outcome."""

    strike_cycle: int
    detect_cycle: int            # -1 when the sensors missed the strike
    sm_id: int
    site: str = "dest_reg"
    warp_id: int | None = None
    corrupted_reg: int | None = None
    landed: bool = False
    recovered: bool = False
    missed: bool = False         # sensors never heard this strike
    absorbed: bool = False       # struck structure is hardened
    detail: str = ""


class FaultSite:
    """Where on the SM a strike deposits charge.

    Subclasses implement :meth:`inject`, which corrupts simulator state
    and fills in the record's ``warp_id``/``landed``/``absorbed``/
    ``detail`` fields.  A strike that finds nothing corruptible (no
    in-flight value, hardened structure, non-Flame scheme) leaves
    ``landed`` False — the sensors still hear it (false positives
    included).
    """

    name = "?"
    description = ""

    def inject(self, injector: "FaultInjector", gpu: Gpu, sm: Sm,
               record: InjectionRecord, rng: np.random.Generator) -> None:
        raise NotImplementedError


FAULT_SITES: dict[str, FaultSite] = {}


def register_fault_site(site: FaultSite) -> FaultSite:
    """Add a site to the taxonomy (extension point for new structures)."""
    if not site.name or site.name == "?":
        raise ConfigError("fault site needs a name")
    if site.name in FAULT_SITES:
        raise ConfigError(f"fault site {site.name!r} already registered")
    FAULT_SITES[site.name] = site
    return site


def fault_site_by_name(name: str) -> FaultSite:
    try:
        return FAULT_SITES[name]
    except KeyError:
        known = ", ".join(sorted(FAULT_SITES))
        raise ConfigError(
            f"unknown fault site {name!r} (known: {known})") from None


class DestRegSite(FaultSite):
    """Corrupt the in-flight destination register of a resident warp."""

    name = "dest_reg"
    description = "in-flight destination register write"

    def inject(self, injector, gpu, sm, record, rng):
        candidates = []
        for warp in sm.warps:
            if warp.state not in _ACTIVE_STATES:
                continue
            if warp.last_write is None:
                continue
            if warp.last_write_pc in injector._address_defs(warp.kernel):
                continue
            candidates.append(warp)
        if not candidates:
            record.detail = "no in-flight register write"
            return
        warp = candidates[int(rng.integers(len(candidates)))]
        reg = warp.last_write.index
        record.warp_id = warp.id
        record.corrupted_reg = reg
        record.landed = True
        record.detail = f"r{reg}"
        lanes = warp.ctx.regs[reg]
        garbage = rng.uniform(-1e9, 1e9, size=lanes.shape)
        mask = warp.last_write_mask
        if mask is None:
            mask = np.ones(lanes.shape, dtype=bool)
        np.copyto(lanes, garbage, where=mask)


class SharedMemSite(FaultSite):
    """Corrupt one word just stored to shared memory (store datapath)."""

    name = "shared_mem"
    description = "in-flight shared-memory store datapath"

    def inject(self, injector, gpu, sm, record, rng):
        candidates = [w for w in sm.warps
                      if w.state in _ACTIVE_STATES
                      and w.last_shared_write is not None
                      and len(w.last_shared_write)]
        if not candidates:
            record.detail = "no in-flight shared store"
            return
        warp = candidates[int(rng.integers(len(candidates)))]
        addrs = warp.last_shared_write
        addr = int(addrs[int(rng.integers(len(addrs)))])
        record.warp_id = warp.id
        record.landed = True
        record.detail = f"shared[{addr}]"
        warp.block.shared[addr] = rng.uniform(-1e9, 1e9)


class PredicateSite(FaultSite):
    """Flip an in-flight predicate write (arithmetic guards only)."""

    name = "predicate"
    description = "in-flight predicate-register write"

    def inject(self, injector, gpu, sm, record, rng):
        candidates = []
        for warp in sm.warps:
            if warp.state not in _ACTIVE_STATES:
                continue
            if warp.last_pred_write is None:
                continue
            # A corrupted guard of a branch/memory op would misaddress,
            # which the hardened front end rules out (Section IV).
            if warp.last_pred_write_pc in injector._address_defs(warp.kernel):
                continue
            candidates.append(warp)
        if not candidates:
            record.detail = "no in-flight predicate write"
            return
        warp = candidates[int(rng.integers(len(candidates)))]
        pred = warp.last_pred_write.index
        record.warp_id = warp.id
        record.landed = True
        record.detail = f"p{pred}"
        row = warp.ctx.preds[pred]
        mask = warp.last_pred_write_mask
        if mask is None:
            mask = np.ones(row.shape, dtype=bool)
        row[mask] = ~row[mask]


class SimtStackSite(FaultSite):
    """Flip one lane bit of a divergence-stack entry's active mask."""

    name = "simt_stack"
    description = "SIMT divergence-stack entry (active mask bit)"

    def inject(self, injector, gpu, sm, record, rng):
        candidates = [w for w in sm.warps
                      if w.state in _ACTIVE_STATES and w.stack]
        if not candidates:
            record.detail = "no resident warp"
            return
        warp = candidates[int(rng.integers(len(candidates)))]
        depth = int(rng.integers(len(warp.stack)))
        entry = warp.stack[depth]
        lane = int(rng.integers(len(entry.mask)))
        entry.mask[lane] = not entry.mask[lane]
        record.warp_id = warp.id
        record.landed = True
        record.detail = f"stack[{depth}] lane{lane}"


class RptSite(FaultSite):
    """Corrupt a Recovery PC Table entry (absorbed when hardened)."""

    name = "rpt"
    description = "Recovery PC Table entry (Flame structure)"

    def inject(self, injector, gpu, sm, record, rng):
        rpt = getattr(sm.resilience, "rpt", None)
        if rpt is None:
            record.detail = "no RPT on this scheme"
            return
        if rpt.hardened:
            record.absorbed = True
            record.detail = "absorbed (RPT hardened)"
            return
        warps = {w.id: w for w in sm.warps if w.state is not WarpState.DONE}
        ids = sorted(set(rpt.entries) & set(warps))
        if not ids:
            record.detail = "no live RPT entry"
            return
        warp_id = ids[int(rng.integers(len(ids)))]
        snapshot = rpt.entries[warp_id]
        kernel = warps[warp_id].kernel
        bad_pc = int(rng.integers(len(kernel.instructions)))
        record.warp_id = warp_id
        record.landed = True
        record.detail = f"recovery pc {snapshot.pc} -> {bad_pc}"
        snapshot.pc = bad_pc


class RbqSite(FaultSite):
    """Corrupt an in-flight RBQ conveyor entry (absorbed when hardened)."""

    name = "rbq"
    description = "Region Boundary Queue entry (Flame structure)"

    def inject(self, injector, gpu, sm, record, rng):
        rbqs = getattr(sm.resilience, "_rbqs", None)
        if rbqs is None:
            record.detail = "no RBQ on this scheme"
            return
        if getattr(sm.resilience, "harden_rbq", True):
            record.absorbed = True
            record.detail = "absorbed (RBQ hardened)"
            return
        entries = [e for rbq in rbqs.values() for e in rbq._entries]
        if not entries:
            record.detail = "no in-flight verification"
            return
        entry = entries[int(rng.integers(len(entries)))]
        kernel = entry.warp.kernel
        bad_pc = int(rng.integers(len(kernel.instructions)))
        record.warp_id = entry.warp.id
        record.landed = True
        record.detail = f"conveyor snapshot pc {entry.snapshot.pc} -> {bad_pc}"
        entry.snapshot.pc = bad_pc


for _site in (DestRegSite(), SharedMemSite(), PredicateSite(),
              SimtStackSite(), RptSite(), RbqSite()):
    register_fault_site(_site)

#: Every registered site name, in registration order.
ALL_FAULT_SITES: tuple[str, ...] = tuple(FAULT_SITES)


@dataclass
class FaultInjector:
    """Injects strikes at given cycles and drives sensor detection.

    Attach via ``gpu.fault_injector = injector`` before launching.
    ``site`` names the struck structure (see :data:`FAULT_SITES`).
    ``sensor`` models the detector; when omitted a perfect sensor with
    this injector's ``wcdl`` is used (detection delay uniform in
    [1, wcdl], never missed).  Passing a sensor overrides ``wcdl``.
    """

    strike_cycles: list[int]
    wcdl: int = 20
    seed: int = 0
    site: str = "dest_reg"
    sensor: SensorModel | None = None
    records: list[InjectionRecord] = field(default_factory=list)
    _pending_detect: list[tuple[int, int]] = field(default_factory=list)
    _next_strike: int = 0

    def __post_init__(self) -> None:
        if self.wcdl < 1:
            raise ConfigError("WCDL must be at least one cycle")
        cycles = []
        for c in self.strike_cycles:
            if isinstance(c, bool) or not isinstance(c, (int, np.integer)):
                raise ConfigError(
                    f"strike cycles must be integers, got {c!r}")
            if c < 0:
                raise ConfigError(f"strike cycles must be >= 0, got {c}")
            cycles.append(int(c))
        self.strike_cycles = sorted(cycles)
        if self.sensor is None:
            self.sensor = SensorModel(wcdl=self.wcdl)
        else:
            self.wcdl = self.sensor.wcdl
        self._site = fault_site_by_name(self.site)
        self._rng = np.random.default_rng(self.seed)
        # Keyed by id(kernel) but validated against a weakref: ids are
        # reused after garbage collection, and a recycled id must not
        # serve another kernel's address-def set.
        self._addr_cache: dict[int, tuple[weakref.ref, set[int]]] = {}

    # ------------------------------------------------------------------
    def tick(self, gpu: Gpu, cycle: int) -> bool:
        """Process due strikes and detections; returns True when any
        fired (callers use this to invalidate precomputed superblock
        values — see ``Gpu.launch``)."""
        acted = False
        while (self._next_strike < len(self.strike_cycles)
               and self.strike_cycles[self._next_strike] <= cycle):
            self._strike(gpu, cycle)
            self._next_strike += 1
            acted = True
        if self._pending_detect:
            due = [(c, s) for (c, s) in self._pending_detect if c <= cycle]
            self._pending_detect = [(c, s) for (c, s) in self._pending_detect
                                    if c > cycle]
            for _, sm_id in due:
                self._detect(gpu, sm_id, cycle)
                acted = True
        return acted

    def next_event(self, cycle: int) -> int:
        candidates = []
        if self._next_strike < len(self.strike_cycles):
            candidates.append(max(self.strike_cycles[self._next_strike],
                                  cycle + 1))
        candidates.extend(c for c, _ in self._pending_detect)
        return min(candidates) if candidates else 1 << 62

    # ------------------------------------------------------------------
    def _strike(self, gpu: Gpu, cycle: int) -> None:
        sm = gpu.sms[int(self._rng.integers(len(gpu.sms)))]
        record = InjectionRecord(strike_cycle=cycle, detect_cycle=-1,
                                 sm_id=sm.id, site=self.site)
        self.records.append(record)
        self._site.inject(self, gpu, sm, record, self._rng)
        if record.landed:
            # Compare/checksum runtimes observe corruption of a warp's
            # architectural work (the acoustic sensor below is a separate,
            # always-on channel that only the flame runtime consumes).
            notify = getattr(sm.resilience, "on_strike", None)
            if notify is not None:
                notify(sm, record, cycle)
        tracer = getattr(gpu, "tracer", None)
        if tracer is not None:
            tracer.event("strike", cycle, sm.id, CONTROL_TID,
                         {"site": self.site, "landed": record.landed})
        delay = self.sensor.sample_delay(self._rng)
        if delay is None:
            record.missed = True
            return
        # The sensor hears the strike regardless of whether it flipped
        # architecturally relevant bits (false positives included).
        record.detect_cycle = cycle + delay
        self._pending_detect.append((record.detect_cycle, sm.id))

    def _address_defs(self, kernel) -> set[int]:
        """Definition sites whose values (transitively) become memory
        addresses.

        The paper assumes hardened address-generation units and register
        file controllers (Section IV, Discussion), so strikes never
        produce misaddressed loads or stores; we honour that by keeping
        every address-feeding definition out of the victim pool.  The
        analysis is def-site precise (via reaching definitions), so
        register reuse after allocation does not over-exclude values.
        """
        cached = self._addr_cache.get(id(kernel))
        if cached is not None and cached[0]() is kernel:
            return cached[1]
        from ..compiler.dataflow import ReachingDefs
        from ..isa import Cfg, Reg

        rdefs = ReachingDefs(Cfg(kernel))
        tainted: set[int] = set()
        work = []

        def seed(use_index, var):
            for d in rdefs.defs_reaching_use(use_index, var):
                if d >= 0 and d not in tainted:
                    tainted.add(d)
                    work.append(d)

        for u, inst in enumerate(kernel.instructions):
            info = inst.info
            is_mem = info.is_load or info.is_store or info.is_atomic
            if is_mem and isinstance(inst.srcs[0], Reg):
                seed(u, inst.srcs[0])
            # Predicates steering branches or predicating memory ops
            # bound addresses (e.g. `if i < n` before a load); a
            # corrupted guard would misaddress, which the hardened
            # front end rules out.
            if inst.guard is not None and (info.is_branch or is_mem
                                           or info.is_exit):
                seed(u, inst.guard)
        while work:
            d = work.pop()
            inst = kernel.instructions[d]
            for src in (*inst.read_regs(), *inst.read_preds()):
                for d2 in rdefs.defs_reaching_use(d, src):
                    if d2 >= 0 and d2 not in tainted:
                        tainted.add(d2)
                        work.append(d2)
        self._addr_cache[id(kernel)] = (weakref.ref(kernel), tainted)
        return tainted

    def _detect(self, gpu: Gpu, sm_id: int, cycle: int) -> None:
        sm = next(s for s in gpu.sms if s.id == sm_id)
        runtime = sm.resilience
        recover = getattr(runtime, "recover", None)
        tracer = getattr(gpu, "tracer", None)
        if tracer is not None:
            tracer.event("detection", cycle, sm_id, CONTROL_TID,
                         {"recoverable": recover is not None})
        for record in self.records:
            # Only credit records whose own sensing delay has elapsed:
            # with overlapping strikes on one SM, a later strike must
            # not be attributed to an earlier detection event (its
            # corruption may land *after* this rollback).
            if (record.sm_id == sm_id and not record.recovered
                    and not record.missed
                    and record.detect_cycle <= cycle):
                record.recovered = recover is not None
        if recover is not None:
            recover(cycle)

    @property
    def undetected(self) -> int:
        return sum(1 for r in self.records if r.landed and not r.recovered)

    def quiescent(self) -> bool:
        """True once every strike has fired and every sensed detection
        has been delivered — after this the injector can never perturb
        the machine again (the precondition for early-outcome state
        comparison against the golden run)."""
        return (self._next_strike >= len(self.strike_cycles)
                and not self._pending_detect)

    # ------------------------------------------------------------------
    # Checkpoint support
    # ------------------------------------------------------------------
    def capture_state(self) -> dict:
        """Corruption tracking and the trial RNG stream, as plain data.
        The address-def memo is derived (and keyed by object identity)
        so it is rebuilt, not serialized."""
        return {
            "records": tuple(dataclasses.replace(r) for r in self.records),
            "pending_detect": tuple(self._pending_detect),
            "next_strike": self._next_strike,
            "rng_state": self._rng.bit_generator.state,
        }

    def restore_state(self, state: dict) -> None:
        self.records = [dataclasses.replace(r) for r in state["records"]]
        self._pending_detect = [tuple(p) for p in state["pending_detect"]]
        self._next_strike = state["next_strike"]
        self._rng.bit_generator.state = state["rng_state"]
