"""Monte Carlo fault-injection campaigns.

Statistical validation of the paper's resilience claim: sample N
independent strike trials per (workload, scheme, GPU, WCDL) cell, run
each against a fault-free golden execution, and classify the outcome
into the standard taxonomy —

* **masked** — the strike never became architecturally visible (it
  missed every live destination register, or the corrupted value was
  overwritten / never propagated to memory);
* **sdc** — silent data corruption: the run finished but its memory
  image differs from the golden run;
* **due_hang** — detected unrecoverable event: the corrupted state
  drove the kernel past its cycle budget (or wall clock) — the trial's
  :class:`~repro.errors.SimTimeout`;
* **due_crash** — the simulator raised (deadlock, launch fault, …)
  instead of finishing;
* **recovered** — a landed strike was sensed within WCDL and the
  all-warp rollback restored bit-exact output;
* **infra_error** — the trial itself could not be executed (worker
  death after bounded retries); reported separately, never counted in
  resilience rates.

Rates come with Wilson score confidence intervals, the standard choice
for small-count binomial proportions (an SDC count of 0 out of 200
still yields an honest nonzero upper bound).

Every completed trial is journaled as one JSON line, appended
atomically, so an interrupted campaign resumes exactly where it
stopped and partial results are always reportable.  Trial sampling is
a pure function of ``(campaign seed, workload, scheme, trial index)``
— resume order cannot change any outcome.
"""

from __future__ import annotations

import json
import math
import os
import zlib
from collections import OrderedDict
from dataclasses import asdict, dataclass, field

import numpy as np

from ..errors import ConfigError, ReproError, SimTimeout

#: Outcome taxonomy (string constants so records serialize naturally).
MASKED = "masked"
SDC = "sdc"
DUE_HANG = "due_hang"
DUE_CRASH = "due_crash"
RECOVERED = "recovered"
INFRA_ERROR = "infra_error"

OUTCOMES = (MASKED, SDC, DUE_HANG, DUE_CRASH, RECOVERED, INFRA_ERROR)

#: Outcomes that falsify the resilience claim when seen under a
#: sensor-protected scheme.
UNRECOVERED = (SDC, DUE_HANG, DUE_CRASH)


#: Spec fields that steer *how* trials are executed, not *what* they
#: compute — excluded from :meth:`CampaignSpec.campaign_id` so direct
#: and checkpointed runs share journals.
_NON_IDENTITY_FIELDS = ("checkpoint", "checkpoint_interval")


# ----------------------------------------------------------------------
# Specs
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class CampaignSpec:
    """One campaign: ``trials`` independent strikes per (workload,
    scheme) cell, all sharing one GPU / scheduler / WCDL / scale."""

    workloads: tuple[str, ...]
    schemes: tuple[str, ...] = ("baseline", "flame")
    trials: int = 200
    seed: int = 0
    scale: str = "tiny"
    gpu: str = "GTX480"
    scheduler: str = "GTO"
    wcdl: int = 20
    strikes_per_trial: int = 1
    #: Fault sites to sweep (each is its own campaign cell dimension).
    sites: tuple[str, ...] = ("dest_reg",)
    #: Imperfect-sensor knobs (0/0 = the paper's ideal detector).
    sensor_miss_probability: float = 0.0
    sensor_jitter_cycles: int = 0
    #: Attach the per-cycle architectural sanitizer to every run.
    sanitize: bool = False
    #: Parity protection of Flame's own structures.
    harden_rpt: bool = True
    harden_rbq: bool = True
    #: Faulty-run cycle budget = max(min_cycle_budget,
    #: golden_cycles * max_cycles_factor).
    max_cycles_factor: float = 20.0
    min_cycle_budget: int = 10_000
    #: Per-trial wall-clock budget (seconds); 0 disables the alarm.
    timeout_s: float = 120.0
    #: Checkpoint-accelerated execution: fast-start each trial from the
    #: golden checkpoint at/below its earliest strike cycle, and stop
    #: early once the faulty machine state reconverges with the
    #: golden run.  Pure execution strategy — per-trial classifications
    #: and aggregates are byte-identical to direct mode.
    checkpoint: bool = True
    #: Golden checkpoint spacing in cycles (0 = adaptive, ~64 evenly
    #: spaced checkpoints regardless of run length).
    checkpoint_interval: int = 0

    def __post_init__(self) -> None:
        if not self.workloads:
            raise ConfigError("campaign needs at least one workload")
        if not self.schemes:
            raise ConfigError("campaign needs at least one scheme")
        if not self.sites:
            raise ConfigError("campaign needs at least one fault site")
        from .injection import fault_site_by_name
        for site in self.sites:
            fault_site_by_name(site)  # fail fast on unknown sites
        from .schemes import runtime_scheme_by_name
        seen = set()
        for name in self.schemes:
            scheme = runtime_scheme_by_name(name)  # unknown -> ConfigError
            if name in seen:
                raise ConfigError(
                    f"scheme {name!r} appears more than once in the "
                    f"campaign spec")
            seen.add(name)
            if not scheme.campaign:
                from .schemes import campaign_schemes
                raise ConfigError(
                    f"scheme {name!r} is compile-only and cannot be "
                    f"campaigned; campaign-runnable schemes: "
                    f"{', '.join(campaign_schemes())}")
            for workload in self.workloads:
                if not scheme.supports_workload(workload):
                    raise ConfigError(
                        f"scheme {name!r} only supports workloads "
                        f"{', '.join(scheme.workloads)}; campaign names "
                        f"{workload!r}")
        if not 0.0 <= self.sensor_miss_probability < 1.0:
            raise ConfigError("sensor miss probability must be in [0, 1)")
        if self.sensor_jitter_cycles < 0:
            raise ConfigError("sensor jitter must be >= 0 cycles")
        if self.trials < 1:
            raise ConfigError("campaign needs at least one trial")
        if self.strikes_per_trial < 1:
            raise ConfigError("each trial needs at least one strike")
        if self.max_cycles_factor <= 0 or self.min_cycle_budget < 1:
            raise ConfigError("cycle budget parameters must be positive")
        if self.checkpoint_interval < 0:
            raise ConfigError("checkpoint interval must be >= 0 (0 = auto)")

    def campaign_id(self) -> str:
        """Stable identifier for journaling / resume.

        Execution-strategy fields are excluded: a checkpointed campaign
        produces byte-identical trials to a direct one, so both may
        share (and resume) the same journal.
        """
        fields = {name: value for name, value in asdict(self).items()
                  if name not in _NON_IDENTITY_FIELDS}
        ident = json.dumps(fields, sort_keys=True)
        return f"{zlib.crc32(ident.encode()) & 0xFFFFFFFF:08x}"

    def cells(self) -> list[tuple[str, str, str]]:
        return [(w, s, f) for w in self.workloads for s in self.schemes
                for f in self.sites]

    @staticmethod
    def from_dict(data: dict) -> "CampaignSpec":
        """Rebuild a spec from ``asdict`` output (journal headers, shard
        assignment files) — JSON round-trips lists; the spec wants
        tuples."""
        data = dict(data)
        for name in ("workloads", "schemes", "sites"):
            data[name] = tuple(data[name])
        return CampaignSpec(**data)

    def trial_specs(self) -> list["TrialSpec"]:
        return [
            TrialSpec(workload=w, scheme=s, site=f, index=i,
                      campaign_seed=self.seed,
                      scale=self.scale, gpu=self.gpu,
                      scheduler=self.scheduler, wcdl=self.wcdl,
                      strikes=self.strikes_per_trial,
                      sensor_miss_probability=self.sensor_miss_probability,
                      sensor_jitter_cycles=self.sensor_jitter_cycles,
                      sanitize=self.sanitize,
                      harden_rpt=self.harden_rpt,
                      harden_rbq=self.harden_rbq,
                      max_cycles_factor=self.max_cycles_factor,
                      min_cycle_budget=self.min_cycle_budget,
                      timeout_s=self.timeout_s,
                      checkpoint=self.checkpoint,
                      checkpoint_interval=self.checkpoint_interval)
            for w, s, f in self.cells() for i in range(self.trials)
        ]


@dataclass(frozen=True)
class TrialSpec:
    """One Monte Carlo trial, self-contained and picklable."""

    workload: str
    scheme: str
    index: int
    campaign_seed: int
    site: str = "dest_reg"
    scale: str = "tiny"
    gpu: str = "GTX480"
    scheduler: str = "GTO"
    wcdl: int = 20
    strikes: int = 1
    sensor_miss_probability: float = 0.0
    sensor_jitter_cycles: int = 0
    sanitize: bool = False
    harden_rpt: bool = True
    harden_rbq: bool = True
    max_cycles_factor: float = 20.0
    min_cycle_budget: int = 10_000
    timeout_s: float = 120.0
    checkpoint: bool = True
    checkpoint_interval: int = 0

    @property
    def key(self) -> tuple[str, str, str, int]:
        return (self.workload, self.scheme, self.site, self.index)

    def rng(self) -> np.random.Generator:
        """Per-trial generator: a pure function of the campaign seed and
        the trial's coordinates, so outcomes are independent of the
        order (or process) in which trials execute."""
        return np.random.default_rng([
            self.campaign_seed & 0xFFFFFFFF,
            zlib.crc32(self.workload.encode()),
            zlib.crc32(self.scheme.encode()),
            zlib.crc32(self.site.encode()),
            self.index,
        ])


@dataclass
class TrialResult:
    """Outcome of one trial (also the journal record schema)."""

    workload: str
    scheme: str
    index: int
    outcome: str
    site: str = "dest_reg"
    strike_cycles: list[int] = field(default_factory=list)
    injector_seed: int = 0
    golden_cycles: int = 0
    cycles: int = 0
    landed: int = 0
    recoveries: int = 0
    detail: str = ""
    attempts: int = 1
    # Telemetry (heartbeat metrics; not part of outcome classification).
    # Excluded from as_dict so journal records stay deterministic and
    # byte-identical across execution strategies (direct vs
    # checkpoint-accelerated, cold vs warm golden cache).
    wall_time_s: float = 0.0
    fast_start: bool = False
    converged: bool = False
    golden_cache_hit: bool = False
    #: Golden data came from the cross-worker shared-memory segment
    #: (repro.core.goldens) instead of a local simulation.
    golden_shared: bool = False
    #: Superblock batching counters of the faulty run (fast-path
    #: bookkeeping — the trial's outcome is independent of batching).
    superblocks_executed: int = 0
    superblock_fallbacks: dict = field(default_factory=dict)
    #: SM-level memory-window scripting counters (same caveat).
    mem_windows_executed: int = 0
    mem_window_insts: int = 0
    #: Post-run simulator aggregates feeding the metrics plane: stall
    #: cycles by cause (the PR-5 ledger), instruction count, and L1
    #: traffic of the faulty run.  Convergence early-exit makes these
    #: execution-strategy-dependent, hence telemetry, not outcome.
    stall_cycles: dict = field(default_factory=dict)
    instructions: int = 0
    l1_hits: int = 0
    l1_misses: int = 0

    #: Attribute names carrying run-environment telemetry, not outcome.
    TELEMETRY_FIELDS = ("wall_time_s", "fast_start", "converged",
                        "golden_cache_hit", "golden_shared",
                        "superblocks_executed", "superblock_fallbacks",
                        "mem_windows_executed", "mem_window_insts",
                        "stall_cycles", "instructions", "l1_hits",
                        "l1_misses")

    @property
    def key(self) -> tuple[str, str, str, int]:
        return (self.workload, self.scheme, self.site, self.index)

    def as_dict(self) -> dict:
        data = asdict(self)
        for name in self.TELEMETRY_FIELDS:
            del data[name]
        return data

    @staticmethod
    def from_dict(data: dict) -> "TrialResult":
        return TrialResult(**data)


# ----------------------------------------------------------------------
# Trial execution (runs inside worker processes — module-level and
# import-light so it pickles cleanly)
# ----------------------------------------------------------------------
#: Per-process memo of golden runs: compiling a workload and simulating
#: it fault-free once per worker amortizes across that worker's trials.
#: Bounded LRU (``REPRO_GOLDEN_CACHE`` entries, default 8) — sweeping
#: many (workload, scheme, scheduler) cells in one process no longer
#: accumulates a golden memory image plus checkpoint set per cell.
#: Entries are ``[launch_once, golden_cycles, golden_mem, recorder]``;
#: ``recorder`` stays ``None`` until a checkpointed trial needs it, so
#: direct-mode campaigns never pay for checkpoint recording.
_GOLDEN_CACHE: "OrderedDict[tuple, list]" = OrderedDict()

_GOLDEN_CACHE_DEFAULT = 8


def _golden_cache_limit() -> int:
    raw = os.environ.get("REPRO_GOLDEN_CACHE", "")
    try:
        limit = int(raw)
    except ValueError:
        limit = _GOLDEN_CACHE_DEFAULT
    return max(1, limit if raw else _GOLDEN_CACHE_DEFAULT)


def golden_key(trial: TrialSpec) -> tuple:
    """Cache/sharing identity of a trial's golden run: every spec field
    that steers the fault-free simulation (and nothing that doesn't)."""
    return (trial.workload, trial.scheme, trial.scale, trial.gpu,
            trial.scheduler, trial.wcdl, trial.sanitize,
            trial.harden_rpt, trial.harden_rbq)


def _build_launch_once(trial: TrialSpec):
    """Compile the trial's workload and return the launch closure every
    golden/faulty execution of its cell goes through."""
    from ..arch import gpu_by_name
    from ..compiler import compile_kernel, prepare_launch, scheme_by_name
    from ..sim import Gpu, LaunchConfig, Sanitizer
    from ..workloads import workload_by_name
    from .schemes import runtime_scheme_by_name

    workload = workload_by_name(trial.workload)
    instance = workload.instance(trial.scale)
    rscheme = runtime_scheme_by_name(trial.scheme)
    scheme = scheme_by_name(rscheme.compile_scheme)
    compiled = compile_kernel(instance.kernel, scheme, wcdl=trial.wcdl)
    config = gpu_by_name(trial.gpu)

    def launch_once(injector=None, max_cycles=None, recorder=None,
                    resume_from=None, monitor=None):
        runtime = rscheme.build(wcdl=trial.wcdl,
                                harden_rpt=trial.harden_rpt,
                                harden_rbq=trial.harden_rbq)
        sanitizer = Sanitizer() if trial.sanitize else None
        gpu = Gpu(config, resilience=runtime, scheduler=trial.scheduler,
                  sanitizer=sanitizer)
        gpu.fault_injector = injector
        mem = instance.fresh_memory()
        params, mem = prepare_launch(
            compiled, instance.launch.params, mem,
            instance.launch.num_blocks,
            instance.launch.threads_per_block,
            warp_size=config.warp_size)
        launch = LaunchConfig(grid=instance.launch.grid,
                              block=instance.launch.block, params=params)
        result = gpu.launch(compiled.kernel, launch, mem,
                            regs_per_thread=compiled.regs_per_thread,
                            max_cycles=max_cycles, recorder=recorder,
                            resume_from=resume_from, monitor=monitor)
        return result, mem

    return launch_once


def _golden(trial: TrialSpec,
            with_checkpoints: bool = False) -> tuple[list, bool]:
    """Return ``(cache entry, cache_hit)`` for the trial's golden run.

    Entries are ``[launch_once, golden_cycles, golden_mem, recorder,
    shared]`` where ``shared`` records that the golden data was adopted
    from the cross-worker shared-memory segment rather than simulated
    here (telemetry only — the data is byte-identical either way).
    """
    key = golden_key(trial)
    entry = _GOLDEN_CACHE.get(key)
    cache_hit = entry is not None
    if entry is not None:
        _GOLDEN_CACHE.move_to_end(key)
    else:
        launch_once = _build_launch_once(trial)
        from .goldens import shared_entry

        shared = shared_entry(key)
        if shared is not None:
            golden_cycles, golden_mem, recorder = shared
            entry = [launch_once, golden_cycles, golden_mem, recorder,
                     True]
        else:
            recorder = None
            if with_checkpoints:
                from ..sim import CheckpointRecorder

                recorder = CheckpointRecorder(trial.checkpoint_interval)
            result, golden_mem = launch_once(recorder=recorder)
            entry = [launch_once, result.cycles, golden_mem, recorder,
                     False]
        _GOLDEN_CACHE[key] = entry
        while len(_GOLDEN_CACHE) > _golden_cache_limit():
            _GOLDEN_CACHE.popitem(last=False)
    if with_checkpoints and entry[3] is None:
        # A direct-mode trial populated this cell without checkpoints;
        # replay the golden run once with a recorder attached.  The
        # replay is deterministic, so its checkpoints (and the
        # read/write liveness maps) describe the cached golden
        # execution exactly.
        from ..sim import CheckpointRecorder

        recorder = CheckpointRecorder(trial.checkpoint_interval)
        replay, _ = entry[0](recorder=recorder)
        if replay.cycles != entry[1]:
            raise ReproError(
                "golden replay diverged while recording checkpoints "
                f"({replay.cycles} cycles vs {entry[1]}); the simulator "
                "is not deterministic")
        entry[3] = recorder
    return entry, cache_hit


class _WallClockTimeout(Exception):
    """Internal: the per-trial SIGALRM fired."""


def _alarm_guard(seconds: float):
    """Arm a per-trial wall-clock alarm where the platform allows it
    (POSIX, main thread); returns a disarm callable."""
    import signal
    import threading

    if (seconds <= 0 or not hasattr(signal, "SIGALRM")
            or threading.current_thread() is not threading.main_thread()):
        return lambda: None

    def fire(signum, frame):
        raise _WallClockTimeout()

    previous = signal.signal(signal.SIGALRM, fire)
    signal.alarm(max(1, math.ceil(seconds)))

    def disarm():
        signal.alarm(0)
        signal.signal(signal.SIGALRM, previous)

    return disarm


def run_trial(trial: TrialSpec) -> TrialResult:
    """Execute one trial and classify it.

    Simulation-level failures are *classified*, never raised: the only
    exceptions escaping this function are infrastructure faults (import
    errors, worker death), which the pool layer retries.
    """
    import time

    from ..arch import SensorModel
    from .injection import FaultInjector

    started = time.perf_counter()
    entry, golden_cache_hit = _golden(trial,
                                      with_checkpoints=trial.checkpoint)
    launch_once, golden_cycles, golden_mem, recorder = entry[:4]
    rng = trial.rng()
    # Strike cycles are sampled over the fault-free execution window so
    # every trial has a chance to land (a strike after kernel end is a
    # guaranteed no-op and would just dilute the campaign).
    high = max(2, golden_cycles)
    strike_cycles = sorted(int(c) for c in rng.integers(1, high,
                                                        size=trial.strikes))
    injector_seed = int(rng.integers(0, 2**31 - 1))
    budget = max(trial.min_cycle_budget,
                 int(golden_cycles * trial.max_cycles_factor))
    result = TrialResult(workload=trial.workload, scheme=trial.scheme,
                         index=trial.index, outcome=MASKED,
                         site=trial.site,
                         strike_cycles=strike_cycles,
                         injector_seed=injector_seed,
                         golden_cycles=golden_cycles,
                         golden_cache_hit=golden_cache_hit,
                         golden_shared=entry[4])
    sensor = SensorModel(wcdl=trial.wcdl,
                         miss_probability=trial.sensor_miss_probability,
                         jitter_cycles=trial.sensor_jitter_cycles)
    injector = FaultInjector(strike_cycles=list(strike_cycles),
                             wcdl=trial.wcdl, seed=injector_seed,
                             site=trial.site, sensor=sensor)
    resume_from = monitor = None
    if recorder is not None:
        # Fast-start: any golden checkpoint at or below the earliest
        # strike cycle is exactly this trial's state there (the injector
        # is a no-op before its first strike), so the fault-free prefix
        # need not be re-simulated.  Early out: once the faulty machine
        # state matches golden at a checkpoint boundary (or diverges
        # only in provably dead data) the suffix's outcome is known and
        # the run stops immediately.
        from ..sim import ConvergenceMonitor

        resume_from = recorder.best_at_or_below(strike_cycles[0])
        monitor = ConvergenceMonitor(recorder.checkpoints, golden_cycles,
                                     liveness=recorder.liveness)
        result.fast_start = resume_from is not None
    disarm = _alarm_guard(trial.timeout_s)
    try:
        sim_result, faulty_mem = launch_once(injector, max_cycles=budget,
                                             resume_from=resume_from,
                                             monitor=monitor)
    except SimTimeout as exc:
        result.outcome = DUE_HANG
        result.cycles = exc.cycles
        result.detail = str(exc)
        return result
    except _WallClockTimeout:
        result.outcome = DUE_HANG
        result.detail = f"wall-clock timeout after {trial.timeout_s:g}s"
        return result
    except ReproError as exc:
        result.outcome = DUE_CRASH
        result.detail = f"{type(exc).__name__}: {exc}"
        return result
    finally:
        disarm()
        result.wall_time_s = time.perf_counter() - started

    result.converged = sim_result.converged
    result.superblocks_executed = sim_result.stats.superblocks_executed
    result.superblock_fallbacks = dict(sim_result.stats.superblock_fallbacks)
    result.mem_windows_executed = sim_result.stats.mem_windows_executed
    result.mem_window_insts = sim_result.stats.mem_window_insts
    result.stall_cycles = {cause: cycles for cause, cycles
                           in sim_result.stats.stall_cycles.items()
                           if cycles}
    result.instructions = sim_result.stats.instructions
    result.l1_hits = sim_result.stats.l1_hits
    result.l1_misses = sim_result.stats.l1_misses
    result.cycles = sim_result.cycles
    result.landed = sum(1 for r in injector.records if r.landed)
    # Coalesced recoveries count: a strike landing during an in-progress
    # rollback is still answered by a (re-applied) rollback.
    result.recoveries = (sim_result.stats.recoveries
                         + sim_result.stats.coalesced_recoveries)
    # A converged run's final memory equality is proven, not simulated:
    # True on a full state match (the suffix is byte-identical to
    # golden), and decided by golden's write liveness on an
    # inert-divergence match.  Landed and recovery counts were already
    # final when convergence was checked (the injector was quiescent),
    # so the classification below is exactly what a full run would
    # produce.
    if sim_result.converged:
        memory_equal = monitor.memory_equal
    else:
        memory_equal = np.array_equal(faulty_mem, golden_mem)
    if not memory_equal:
        result.outcome = SDC
    elif result.landed and result.recoveries:
        result.outcome = RECOVERED
    else:
        # Output bit-exact without a landed-and-rolled-back strike:
        # either the strike missed every live register or (baseline) the
        # corruption was overwritten before reaching memory.
        result.outcome = MASKED
    return result


# ----------------------------------------------------------------------
# Aggregation
# ----------------------------------------------------------------------
def wilson_interval(successes: int, n: int,
                    z: float = 1.96) -> tuple[float, float]:
    """Wilson score interval for a binomial proportion."""
    if n <= 0:
        return (0.0, 1.0)
    p = successes / n
    zz = z * z
    denom = 1.0 + zz / n
    center = (p + zz / (2 * n)) / denom
    half = z * math.sqrt(p * (1 - p) / n + zz / (4 * n * n)) / denom
    return (max(0.0, center - half), min(1.0, center + half))


@dataclass
class CellAggregate:
    """Outcome counts and rates for one (workload, scheme, site) cell."""

    workload: str
    scheme: str
    trials: int
    counts: dict[str, int]
    rates: dict[str, tuple[float, float, float]]  # rate, ci_lo, ci_hi
    site: str = "dest_reg"

    @property
    def unrecovered(self) -> int:
        return sum(self.counts[o] for o in UNRECOVERED)

    def as_dict(self) -> dict:
        return {"workload": self.workload, "scheme": self.scheme,
                "site": self.site,
                "trials": self.trials, "counts": dict(self.counts),
                "rates": {k: list(v) for k, v in self.rates.items()},
                "unrecovered": self.unrecovered}


def _rates_from_counts(counts: dict[str, int],
                       measured: int) -> dict[str, tuple[float, float, float]]:
    rates = {}
    for o in OUTCOMES:
        if o == INFRA_ERROR:
            continue
        lo, hi = wilson_interval(counts[o], measured)
        rate = counts[o] / measured if measured else 0.0
        rates[o] = (rate, lo, hi)
    return rates


def dedupe_results(results: list[TrialResult]) -> list[TrialResult]:
    """Collapse duplicate trial records into one representative per key,
    deterministically under ANY input ordering.

    Duplicates arise from resumed campaigns and from shards re-executed
    after a lost lease.  Because trials are pure functions of their
    coordinates, duplicates are normally byte-identical — but a trial
    that failed as ``infra_error`` on one worker and succeeded on a
    reclaiming worker yields two *different* rows.  The winner is chosen
    by value, not by arrival order: prefer a measured outcome over
    ``infra_error``, then the smallest canonical JSON encoding, so every
    merge of the same record set picks the same representative.
    """
    best: dict[tuple[str, str, str, int], tuple] = {}
    order: list[tuple[str, str, str, int]] = []
    for r in results:
        rank = (r.outcome == INFRA_ERROR,
                json.dumps(r.as_dict(), sort_keys=True))
        held = best.get(r.key)
        if held is None:
            order.append(r.key)
            best[r.key] = (rank, r)
        elif rank < held[0]:
            best[r.key] = (rank, r)
    return [best[k][1] for k in order]


def aggregate(results: list[TrialResult]) -> list[CellAggregate]:
    """Collapse trial results into per-cell aggregates.

    Deterministic and order-independent: duplicates (a trial journaled
    by both a killed and a resumed campaign, or by overlapping shard
    re-executions) collapse via :func:`dedupe_results`, and cells render
    in sorted order.
    """
    unique = {r.key: r for r in dedupe_results(results)}
    cells: dict[tuple[str, str, str], list[TrialResult]] = {}
    for r in sorted(unique.values(), key=lambda r: r.key):
        cells.setdefault((r.workload, r.scheme, r.site), []).append(r)
    out = []
    for (workload, scheme, site), rows in sorted(cells.items()):
        counts = {o: 0 for o in OUTCOMES}
        for r in rows:
            counts[r.outcome] = counts.get(r.outcome, 0) + 1
        measured = len(rows) - counts[INFRA_ERROR]
        out.append(CellAggregate(workload=workload, scheme=scheme, site=site,
                                 trials=len(rows), counts=counts,
                                 rates=_rates_from_counts(counts, measured)))
    return out


def merge_cells(cells: list[CellAggregate], workload: str,
                scheme: str) -> CellAggregate | None:
    """Site-agnostic view of one (workload, scheme): sum the per-site
    counts and recompute rates over the pooled trials."""
    rows = [c for c in cells if c.workload == workload and c.scheme == scheme]
    if not rows:
        return None
    if len(rows) == 1:
        return rows[0]
    counts = {o: 0 for o in OUTCOMES}
    for c in rows:
        for o, n in c.counts.items():
            counts[o] = counts.get(o, 0) + n
    trials = sum(c.trials for c in rows)
    measured = trials - counts[INFRA_ERROR]
    return CellAggregate(workload=workload, scheme=scheme, site="all",
                         trials=trials, counts=counts,
                         rates=_rates_from_counts(counts, measured))


# ----------------------------------------------------------------------
# Journal
# ----------------------------------------------------------------------
class CampaignJournal:
    """Append-only JSONL trial journal with crash-safe records.

    Each completed trial is one ``json.dumps`` line written with a
    single ``write`` + flush, fsynced on a configurable cadence
    (``fsync_interval`` appends; default every append), so a killed
    campaign loses at most the un-synced window plus one truncated
    *final* line — which ``load`` skips — and every synced record
    survives.  A header line pins the campaign spec; resuming against a
    journal from a different spec is refused rather than silently
    mixing incompatible trials.
    """

    def __init__(self, path: str, fsync_interval: int = 1) -> None:
        if fsync_interval < 1:
            raise ConfigError("fsync interval must be >= 1 append")
        self.path = path
        self.fsync_interval = fsync_interval
        self._handle = None
        self._unsynced = 0

    # -- writing -------------------------------------------------------
    def _append_line(self, record: dict) -> None:
        if self._handle is None:
            os.makedirs(os.path.dirname(self.path) or ".", exist_ok=True)
            self._handle = open(self.path, "a", encoding="utf-8")
        line = json.dumps(record, sort_keys=True) + "\n"
        self._handle.write(line)
        self._handle.flush()
        self._unsynced += 1
        if self._unsynced >= self.fsync_interval:
            self.sync()

    def sync(self) -> None:
        """Force outstanding appends to stable storage (the durability
        checkpoint between interval fsyncs)."""
        if self._handle is not None and self._unsynced:
            os.fsync(self._handle.fileno())
        self._unsynced = 0

    def close(self) -> None:
        """Sync and release the append handle (safe to append again —
        the handle reopens lazily)."""
        if self._handle is not None:
            self.sync()
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "CampaignJournal":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def repair(self) -> None:
        """Drop a torn final line left by a killed writer, so records
        appended on resume start on a fresh line instead of gluing onto
        the partial one."""
        self.close()
        if not os.path.exists(self.path):
            return
        with open(self.path, "rb+") as handle:
            data = handle.read()
            if not data or data.endswith(b"\n"):
                return
            handle.seek(data.rfind(b"\n") + 1)
            handle.truncate()

    def write_header(self, spec: CampaignSpec) -> None:
        self._append_line({"type": "header",
                           "campaign_id": spec.campaign_id(),
                           "spec": asdict(spec)})

    def append(self, result: TrialResult) -> None:
        record = result.as_dict()
        record["type"] = "trial"
        self._append_line(record)

    # -- reading -------------------------------------------------------
    def load(self, spec: CampaignSpec | None = None) -> list[TrialResult]:
        """Read every intact trial record; verify the header against
        ``spec`` when given."""
        if not os.path.exists(self.path):
            return []
        results: list[TrialResult] = []
        with open(self.path, encoding="utf-8") as handle:
            for line in handle:
                if not line.endswith("\n"):
                    break  # truncated tail from a killed writer
                try:
                    record = json.loads(line)
                except json.JSONDecodeError:
                    continue
                kind = record.pop("type", "trial")
                if kind == "header":
                    if (spec is not None and
                            record.get("campaign_id") != spec.campaign_id()):
                        raise ConfigError(
                            f"journal {self.path} belongs to campaign "
                            f"{record.get('campaign_id')}, not "
                            f"{spec.campaign_id()}; use a fresh journal "
                            f"path or delete the stale one")
                    continue
                try:
                    results.append(TrialResult.from_dict(record))
                except TypeError:
                    continue  # unknown schema — ignore, don't crash
        return results

    def has_header(self) -> bool:
        return os.path.exists(self.path) and os.path.getsize(self.path) > 0

    def load_spec(self) -> CampaignSpec:
        """Reconstruct the campaign spec pinned in the header line —
        lets post-hoc tools (the ``report`` command) work from a journal
        alone, with no need to re-state the original CLI flags."""
        if not os.path.exists(self.path):
            raise ConfigError(f"journal {self.path} does not exist")
        with open(self.path, encoding="utf-8") as handle:
            for line in handle:
                if not line.endswith("\n"):
                    break
                try:
                    record = json.loads(line)
                except json.JSONDecodeError:
                    continue
                if record.get("type") == "header" and "spec" in record:
                    return CampaignSpec.from_dict(record["spec"])
        raise ConfigError(
            f"journal {self.path} has no spec header (written by "
            f"pre-header tooling?); re-run the campaign or pass the "
            f"spec explicitly")


__all__ = [
    "CampaignJournal", "CampaignSpec", "CellAggregate", "DUE_CRASH",
    "DUE_HANG", "INFRA_ERROR", "MASKED", "OUTCOMES", "RECOVERED", "SDC",
    "TrialResult", "TrialSpec", "UNRECOVERED", "aggregate",
    "dedupe_results", "golden_key", "merge_cells", "run_trial",
    "wilson_interval",
]
