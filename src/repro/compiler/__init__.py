"""The Flame compiler: register allocation, idempotent region formation,
anti-dependent register renaming, live-out checkpointing, SwapCodes
duplication, and tail-DMR — composed into the paper's evaluated schemes.
"""

from .antidep import (MemLoc, RegionState, ScanResult, scan_kernel,
                      structural_boundaries)
from .checkpointing import CheckpointResult, insert_checkpoints
from .dataflow import (Liveness, ParamOrigin, Provenance, ReachingDefs)
from .duplication import DuplicationResult, duplicate_instructions
from .editing import insert_instructions, remove_instructions
from .pipeline import (CompiledKernel, Detection, Recovery, SCHEMES, Scheme,
                       compile_kernel, prepare_launch, scheme_by_name)
from .regalloc import AllocationResult, allocate_registers
from .regions import (RegionFormation, RegWarPolicy,
                      eligible_extension_barriers, form_regions,
                      region_size_profile)
from .renaming import try_rename
from .taildmr import apply_tail_dmr, tail_indices

__all__ = [
    "AllocationResult", "CheckpointResult", "CompiledKernel", "Detection",
    "DuplicationResult", "Liveness", "MemLoc", "ParamOrigin", "Provenance",
    "ReachingDefs", "Recovery", "RegWarPolicy", "RegionFormation",
    "RegionState", "SCHEMES", "ScanResult", "Scheme", "allocate_registers",
    "apply_tail_dmr", "compile_kernel", "duplicate_instructions",
    "eligible_extension_barriers", "form_regions", "insert_checkpoints",
    "insert_instructions", "prepare_launch", "region_size_profile",
    "remove_instructions", "scan_kernel", "scheme_by_name",
    "structural_boundaries", "tail_indices", "try_rename",
]
