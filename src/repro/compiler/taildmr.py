"""Tail-DMR hybrid detection (Section V-B2, Figure 11).

Each idempotent region's *tail* — the last instructions whose duplicated
execution time covers the sensors' WCDL — is protected by SwapCodes-style
instruction duplication; the head relies on the acoustic sensors.  Any
error is then guaranteed to be detected before the region ends, so no
verification wait is needed between regions (the runtime is the plain
scheduler), at the cost of duplicating roughly WCDL-worth of work per
region.
"""

from __future__ import annotations

from ..isa import Instruction, Kernel, Op
from .duplication import DuplicationResult, duplicate_instructions


def tail_indices(kernel: Kernel, wcdl: int) -> set[int]:
    """Instruction indices in some region tail.

    For every region end (an RB marker or an EXIT), the preceding
    ``wcdl`` duplicable instructions of the same basic-block run are
    marked — each replica adds about one issue cycle, so the duplicated
    tail spans at least WCDL cycles of execution (or the whole region,
    if shorter).
    """
    ends = [i for i, inst in enumerate(kernel.instructions)
            if inst.op in (Op.RB, Op.EXIT)]
    marked: set[int] = set()
    for end in ends:
        budget = wcdl
        i = end - 1
        while i >= 0 and budget > 0:
            inst = kernel.instructions[i]
            if inst.op in (Op.RB, Op.BAR) or inst.info.is_branch:
                break  # stop at region/block seams
            if inst.info.duplicable:
                marked.add(i)
                budget -= 1
            i -= 1
    return marked


def apply_tail_dmr(kernel: Kernel, wcdl: int) -> DuplicationResult:
    """Duplicate every region tail so in-region detection covers WCDL."""
    marked = tail_indices(kernel, wcdl)
    return duplicate_instructions(
        kernel, should_duplicate=lambda i, inst: i in marked)
