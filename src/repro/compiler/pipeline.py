"""Compilation pipeline: compose the Flame passes into the evaluated schemes.

Section VI-B's nine configurations are combinations of:

* recovery preparation — idempotent regions with register *renaming*
  (Flame) or live-out register *checkpointing* (Penny);
* detection — acoustic *sensors* (RBQ/RPT runtime), SwapCodes
  *duplication*, or the *hybrid* tail-DMR;
* the Section III-E region-extension optimization (Flame only).

Every scheme, including the baseline, goes through the same PTX-level
register allocation so comparisons are apples-to-apples.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

import numpy as np

from ..errors import ConfigError
from ..isa import Kernel
from .checkpointing import CheckpointResult, insert_checkpoints
from .duplication import DuplicationResult, duplicate_instructions
from .regalloc import AllocationResult, allocate_registers
from .regions import RegionFormation, RegWarPolicy, form_regions
from .taildmr import apply_tail_dmr


class Recovery(enum.Enum):
    NONE = "none"
    RENAMING = "renaming"
    CHECKPOINTING = "checkpointing"


class Detection(enum.Enum):
    NONE = "none"
    SENSOR = "sensor"          # RBQ/RPT verification runtime
    DUPLICATION = "duplication"  # full SwapCodes DMR
    HYBRID = "hybrid"          # tail-DMR: sensors + tail duplication


@dataclass(frozen=True)
class Scheme:
    """One evaluated resilience configuration."""

    name: str
    recovery: Recovery
    detection: Detection
    extend_regions: bool = False

    @property
    def forms_regions(self) -> bool:
        return self.recovery is not Recovery.NONE

    @property
    def uses_sensor_runtime(self) -> bool:
        return self.detection is Detection.SENSOR


#: The paper's evaluated schemes (Section VI-B1).  ``flame`` is
#: Sensor+Renaming with the region-extension optimization enabled;
#: ``sensor_renaming`` is the same scheme with the optimization off
#: (the Figure 16 comparison point).
SCHEMES: dict[str, Scheme] = {
    "baseline": Scheme("baseline", Recovery.NONE, Detection.NONE),
    "renaming": Scheme("renaming", Recovery.RENAMING, Detection.NONE),
    "checkpointing": Scheme("checkpointing", Recovery.CHECKPOINTING,
                            Detection.NONE),
    "flame": Scheme("flame", Recovery.RENAMING, Detection.SENSOR,
                    extend_regions=True),
    "sensor_renaming": Scheme("sensor_renaming", Recovery.RENAMING,
                              Detection.SENSOR),
    "sensor_checkpointing": Scheme("sensor_checkpointing",
                                   Recovery.CHECKPOINTING, Detection.SENSOR),
    "duplication_renaming": Scheme("duplication_renaming", Recovery.RENAMING,
                                   Detection.DUPLICATION),
    "duplication_checkpointing": Scheme("duplication_checkpointing",
                                        Recovery.CHECKPOINTING,
                                        Detection.DUPLICATION),
    "hybrid_renaming": Scheme("hybrid_renaming", Recovery.RENAMING,
                              Detection.HYBRID),
    "hybrid_checkpointing": Scheme("hybrid_checkpointing",
                                   Recovery.CHECKPOINTING, Detection.HYBRID),
}


def scheme_by_name(name: str) -> Scheme:
    try:
        return SCHEMES[name]
    except KeyError:
        raise ConfigError(
            f"unknown scheme {name!r}; choose from {sorted(SCHEMES)}"
        ) from None


@dataclass
class CompiledKernel:
    """A kernel compiled under one scheme, plus pass metadata."""

    kernel: Kernel
    scheme: Scheme
    regs_per_thread: int
    allocation: AllocationResult
    regions: RegionFormation | None = None
    checkpoints: CheckpointResult | None = None
    duplication: DuplicationResult | None = None
    wcdl: int = 0

    @property
    def needs_ckpt_param(self) -> bool:
        return self.checkpoints is not None

    @property
    def static_region_count(self) -> int:
        return self.regions.static_regions if self.regions else 1


def compile_kernel(kernel: Kernel, scheme: Scheme | str, wcdl: int = 20,
                   use_provenance: bool = True,
                   compact: bool = True) -> CompiledKernel:
    """Run the full pass pipeline for one scheme.

    ``use_provenance``/``compact`` toggle the alias-analysis and
    rename-compaction design choices for ablation studies.
    """
    if isinstance(scheme, str):
        scheme = scheme_by_name(scheme)
    allocation = allocate_registers(kernel)
    work = allocation.kernel
    regions = None
    checkpoints = None
    duplication = None

    if scheme.forms_regions:
        policy = (RegWarPolicy.RENAME if scheme.recovery is Recovery.RENAMING
                  else RegWarPolicy.KEEP)
        regions = form_regions(work, policy,
                               extend_regions=scheme.extend_regions,
                               use_provenance=use_provenance,
                               compact=compact)
        work = regions.kernel
        if scheme.recovery is Recovery.CHECKPOINTING:
            war_regs = {var for _, var in regions.residual_reg_wars}
            checkpoints = insert_checkpoints(work, war_regs, prune=True)
            work = checkpoints.kernel

    # Occupancy counts architectural registers only: SwapCodes replicas
    # retire into the register file's ECC bits (that is the scheme's whole
    # point), so shadow registers exist functionally but cost no RF space.
    architectural_regs = max(work.num_regs, 1)

    if scheme.detection is Detection.DUPLICATION:
        duplication = duplicate_instructions(work)
        work = duplication.kernel
    elif scheme.detection is Detection.HYBRID:
        duplication = apply_tail_dmr(work, wcdl)
        work = duplication.kernel

    return CompiledKernel(
        kernel=work,
        scheme=scheme,
        regs_per_thread=architectural_regs,
        allocation=allocation,
        regions=regions,
        checkpoints=checkpoints,
        duplication=duplication,
        wcdl=wcdl,
    )


def prepare_launch(compiled: CompiledKernel, params: tuple[float, ...],
                   global_mem: np.ndarray, num_blocks: int,
                   threads_per_block: int,
                   warp_size: int = 32) -> tuple[tuple[float, ...], np.ndarray]:
    """Extend the launch with checkpoint storage when the scheme needs it.

    Returns (params, global_mem) ready for :func:`repro.sim.run_kernel`:
    the checkpoint area is appended to global memory and its base address
    passed as the extra parameter the checkpointing pass declared.
    """
    if not compiled.needs_ckpt_param:
        return params, global_mem
    warps_per_block = -(-threads_per_block // warp_size)
    total_warps = num_blocks * warps_per_block
    words = compiled.checkpoints.storage_words(total_warps, warp_size)
    base = float(global_mem.size)
    extended = np.concatenate([global_mem, np.zeros(max(words, 1))])
    return params + (base,), extended
