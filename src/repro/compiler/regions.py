"""Idempotent region formation (Sections II-C, III-A, III-E).

The driver inserts RB (region boundary) markers so that no region
contains a memory anti-dependence, then — depending on the chosen
register-WAR policy — renames anti-dependent registers or leaves them
for the checkpointing pass to circumvent.

Boundary sources:

* structural: control-flow merge points and loop headers;
* synchronization: barriers and atomics get their own single-instruction
  regions (synchronization-level error containment), except barriers
  proven eligible for the region-extension optimization (Figure 10);
* memory WAR cuts from the anti-dependence scan;
* register WAR cuts where renaming is unsound (definition merges).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from ..errors import CompileError
from ..isa import Cfg, Instruction, Kernel, Op, Space
from .antidep import scan_kernel, structural_boundaries
from .editing import insert_instructions, remove_instructions
from .renaming import try_rename

_RB = Instruction(op=Op.RB)

#: Fixed-point iteration cap (each round renames or cuts at least once).
MAX_ROUNDS = 400


class RegWarPolicy(enum.Enum):
    """How register anti-dependences are handled."""

    RENAME = "rename"            # Flame: anti-dependent register renaming
    KEEP = "keep"                # checkpointing circumvents them later


@dataclass
class RegionFormation:
    """Result of region formation."""

    kernel: Kernel
    boundaries: int = 0
    war_cuts: int = 0
    renames: int = 0
    rename_fallback_cuts: int = 0
    extended_barriers: int = 0
    residual_reg_wars: list = field(default_factory=list)

    @property
    def static_regions(self) -> int:
        return self.boundaries + 1


def eligible_extension_barriers(kernel: Kernel) -> set[int]:
    """Barriers whose boundary can be removed by the Section III-E
    region-extension optimization.

    The paper's conservative pattern, operationalized flow-insensitively:
    a barrier is eligible iff (1) a shared-memory store (the
    initialization) precedes it with no global store/atomic in between,
    and (2) no global store/atomic occurs between it and the next barrier
    (or exit).  Within such a section every write goes to block-shared
    state, so errors cannot escape the block and all-warp rollback in
    the SM recovers them (Section III-E3).
    """
    instructions = kernel.instructions
    bars = [i for i, inst in enumerate(instructions) if inst.op is Op.BAR]
    if not bars:
        return set()
    hard = [i for i, inst in enumerate(instructions)
            if (inst.info.is_store and inst.space is Space.GLOBAL)
            or inst.info.is_atomic]
    shared_stores = [i for i, inst in enumerate(instructions)
                     if inst.info.is_store and inst.space is Space.SHARED]
    eligible = set()
    for pos, bar in enumerate(bars):
        prev_hard = max((h for h in hard if h < bar), default=-1)
        has_init = any(prev_hard < s < bar for s in shared_stores)
        next_bar = bars[pos + 1] if pos + 1 < len(bars) else len(instructions)
        clean_after = not any(bar < h < next_bar for h in hard)
        if has_init and clean_after:
            eligible.add(bar)
    return eligible


def _sync_boundaries(kernel: Kernel, extend: bool) -> tuple[set[int], int]:
    """Synchronization-level containment: a region boundary right
    *before* every barrier and atomic.

    Under WCDL-aware scheduling this boundary doubles as a verification
    gate: a warp only arrives at the barrier after its pre-barrier
    region has verified, so once the barrier releases, no warp can ever
    roll back past it — which is what makes cross-warp flow *and*
    anti-dependences through the barrier safe (Section IV, Error
    Containment).
    """
    points: set[int] = set()
    skipped = eligible_extension_barriers(kernel) if extend else set()
    for i, inst in enumerate(kernel.instructions):
        if inst.op is Op.BAR and i not in skipped:
            points.add(i)
        elif inst.info.is_atomic:
            points.add(i)
    points.discard(0)
    return points, len(skipped)


def form_regions(kernel: Kernel, policy: RegWarPolicy = RegWarPolicy.RENAME,
                 extend_regions: bool = False, use_provenance: bool = True,
                 compact: bool = True) -> RegionFormation:
    """Partition ``kernel`` into idempotent regions.

    Returns a kernel with RB markers inserted (and registers renamed
    under the RENAME policy) such that no region contains a memory WAR,
    and — under RENAME — no register WAR either.

    ``use_provenance`` and ``compact`` are ablation knobs: disabling
    provenance makes the alias analysis blind to pointer origins (more
    cuts), and disabling compaction keeps one fresh register per rename
    (more register pressure -> lower occupancy).
    """
    work = kernel.clone()
    result = RegionFormation(kernel=work)
    regs_before = kernel.num_regs

    # Seed boundaries: structural + synchronization.
    cfg = Cfg(work)
    seed = structural_boundaries(cfg)
    sync, extended = _sync_boundaries(work, extend_regions)
    result.extended_barriers = extended
    seed |= sync
    work = insert_instructions(work, {i: [_RB] for i in sorted(seed)})

    for _ in range(MAX_ROUNDS):
        cfg = Cfg(work)
        scan = scan_kernel(work, cfg, use_provenance=use_provenance)
        if scan.mem_cuts:
            cuts = {i: [_RB] for i in sorted(set(scan.mem_cuts))}
            work = insert_instructions(work, cuts)
            result.war_cuts += len(cuts)
            continue
        if scan.reg_wars and policy is RegWarPolicy.RENAME:
            index, var = scan.reg_wars[0]
            renamed = try_rename(work, cfg, index, var)
            if renamed is not None:
                work = renamed
                result.renames += 1
            elif _reads_own_dst(work.instructions[index]):
                # Self-update (e.g. ``add i, i, 1``): no cut placement can
                # separate the read from the write, so split into a fresh
                # temporary plus a boundary-started copy-back — the WAR
                # then spans the boundary, which is harmless.
                work = _split_self_war(work, index)
                result.rename_fallback_cuts += 1
            else:
                work = insert_instructions(work, {index: [_RB]})
                result.rename_fallback_cuts += 1
            continue
        result.residual_reg_wars = list(scan.reg_wars)
        break
    else:
        raise CompileError(
            f"region formation did not converge for kernel {kernel.name!r}"
        )

    # Collapse adjacent markers: dropping the *first* of each RB pair
    # keeps every control-flow path (including branches targeting the
    # second marker's label) crossing a boundary.
    redundant = {
        i for i in range(len(work.instructions) - 1)
        if work.instructions[i].op is Op.RB
        and work.instructions[i + 1].op is Op.RB
    }
    if redundant:
        work = remove_instructions(work, redundant)

    if compact and policy is RegWarPolicy.RENAME \
            and work.num_regs > regs_before:
        # Idempotence-aware reuse of the rename registers, so an unrolled
        # accumulator chain costs one fresh register instead of N.
        from .compaction import compact_fresh_registers

        work = compact_fresh_registers(work, regs_before)

    work.validate()
    result.kernel = work
    result.boundaries = sum(
        1 for inst in work.instructions if inst.op is Op.RB)
    return result


def _reads_own_dst(inst: Instruction) -> bool:
    return inst.dst is not None and (
        inst.dst in inst.read_regs() or inst.dst in inst.read_preds())


def _split_self_war(kernel: Kernel, index: int) -> Kernel:
    """Rewrite ``op d, ...d...`` into ``op t, ...d...; RB; mov d, t``."""
    from ..isa import Pred, Reg

    inst = kernel.instructions[index]
    if isinstance(inst.dst, Reg):
        temp = Reg(kernel.num_regs)
        copy_back = Instruction(op=Op.MOV, dst=inst.dst, srcs=(temp,),
                                guard=inst.guard,
                                guard_sense=inst.guard_sense)
    else:
        temp = Pred(kernel.num_preds)
        copy_back = Instruction(op=Op.POR, dst=inst.dst, srcs=(temp, temp),
                                guard=inst.guard,
                                guard_sense=inst.guard_sense)
    new_instructions = list(kernel.instructions)
    new_instructions[index] = inst.with_(dst=temp)
    split = Kernel(
        name=kernel.name,
        instructions=new_instructions,
        labels=dict(kernel.labels),
        num_params=kernel.num_params,
        shared_words=kernel.shared_words,
    )
    # Branch targets at index+1 never executed the op, so they must skip
    # the copy-back (their `dst` still holds the right value).
    return insert_instructions(split, {index + 1: [_RB, copy_back]},
                               capture_labels=False)


def region_size_profile(kernel: Kernel) -> list[int]:
    """Static straight-line distances between consecutive boundaries —
    a cheap proxy for the dynamic region-size statistic of Section IV."""
    sizes = []
    count = 0
    for inst in kernel.instructions:
        if inst.op is Op.RB:
            sizes.append(count)
            count = 0
        else:
            count += 1
    sizes.append(count)
    return [s for s in sizes if s > 0]
