"""Anti-dependence (WAR) analysis over idempotent-region candidates.

One scan pass walks the kernel in reverse post-order, carrying a region
state (memory reads/writes since the last boundary, register versions,
registers read/written) across single-predecessor block edges.  It
reports:

* memory WAR violations — stores that may alias a location read earlier
  in the same region without an earlier covering write (the WARAW
  exception, Section II-C) -> these become region boundary cuts;
* register/predicate WAR violations -> these are fixed by renaming
  (Figure 3a) or circumvented by checkpointing (Figure 3b).

Aliasing uses (a) pointer provenance — addresses derived from different
kernel pointer parameters reference disjoint allocations — and (b)
base+offset reasoning: same base register version with different
constant offsets cannot alias.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..isa import Cfg, Instruction, Kernel, Op, Pred, Reg, Space
from .dataflow import BOTTOM, ParamOrigin, Provenance

#: Cap on tracked locations per region; beyond it the analysis cuts,
#: which is always sound (hardware RBQ pressure grows, correctness kept).
MAX_TRACKED_LOCS = 256


@dataclass(frozen=True)
class MemLoc:
    """An abstract memory location: space + provenance + base reg version
    + constant offset."""

    space: Space
    prov: ParamOrigin | None
    base: Reg
    version: int
    offset: int

    def may_alias(self, other: "MemLoc") -> bool:
        if self.space is not other.space:
            return False
        if (self.prov is not None and other.prov is not None
                and self.prov != other.prov):
            return False
        if self.base == other.base and self.version == other.version:
            return self.offset == other.offset
        return True

    def same_location(self, other: "MemLoc") -> bool:
        """Provably the exact same address (for WARAW covering)."""
        return (self.space is other.space and self.base == other.base
                and self.version == other.version
                and self.offset == other.offset)


@dataclass
class RegionState:
    """Accumulated reads/writes since the current region's start."""

    mem_reads: list[MemLoc] = field(default_factory=list)
    mem_writes: list[MemLoc] = field(default_factory=list)
    reg_reads: set = field(default_factory=set)
    reg_writes: set = field(default_factory=set)
    versions: dict[Reg, int] = field(default_factory=dict)

    def reset(self) -> None:
        self.mem_reads.clear()
        self.mem_writes.clear()
        self.reg_reads.clear()
        self.reg_writes.clear()

    def copy(self) -> "RegionState":
        state = RegionState()
        state.mem_reads = list(self.mem_reads)
        state.mem_writes = list(self.mem_writes)
        state.reg_reads = set(self.reg_reads)
        state.reg_writes = set(self.reg_writes)
        state.versions = dict(self.versions)
        return state


@dataclass
class ScanResult:
    """Violations found by one analysis pass."""

    mem_cuts: list[int] = field(default_factory=list)
    reg_wars: list[tuple[int, object]] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        return not self.mem_cuts and not self.reg_wars


def structural_boundaries(cfg: Cfg) -> set[int]:
    """Instruction indices needing a boundary for structural reasons:
    control-flow merge points and loop headers (so no dynamic region
    wraps around a back edge or joins differing histories)."""
    points = set()
    for b in cfg.merge_blocks() | cfg.loop_headers():
        points.add(cfg.blocks[b].start)
    return points


def scan_kernel(kernel: Kernel, cfg: Cfg | None = None,
                prov: Provenance | None = None,
                use_provenance: bool = True) -> ScanResult:
    """One WAR-analysis pass.  RB instructions already present in the
    kernel act as region resets; the result lists the *additional*
    cuts/renames needed.

    ``use_provenance=False`` disables pointer-provenance disambiguation
    (every cross-base access pair may alias) — the ablation knob that
    quantifies how much the provenance analysis buys.
    """
    cfg = cfg or Cfg(kernel)
    prov = prov or Provenance(cfg)
    result = ScanResult()
    block_exit_state: dict[int, RegionState] = {}
    prov_state_cache: dict[int, dict] = {}

    for b in cfg.rpo():
        block = cfg.blocks[b]
        preds = block.preds
        inherit = (len(preds) == 1 and preds[0] in block_exit_state
                   and b != 0)
        state = block_exit_state[preds[0]].copy() if inherit else RegionState()
        prov_state = dict(prov.block_in[b]) if use_provenance else {}
        prov_state_cache[b] = prov_state
        for i in range(block.start, block.end):
            inst = kernel.instructions[i]
            _scan_instruction(kernel, inst, i, state, prov_state, result,
                              use_provenance)
        block_exit_state[b] = state
    return result


def _loc_for(inst: Instruction, state: RegionState,
             prov_state: dict) -> MemLoc | None:
    base = inst.srcs[0]
    if not isinstance(base, Reg):
        return None
    origin = prov_state.get(base, BOTTOM)
    prov_origin = origin if isinstance(origin, ParamOrigin) else None
    return MemLoc(space=inst.space, prov=prov_origin, base=base,
                  version=state.versions.get(base, 0), offset=inst.offset)


def _scan_instruction(kernel: Kernel, inst: Instruction, index: int,
                      state: RegionState, prov_state: dict,
                      result: ScanResult, use_provenance: bool = True) -> None:
    op = inst.op
    if op is Op.RB:
        state.reset()
        return
    if op in (Op.BRA, Op.EXIT):
        return
    if op is Op.BAR:
        # An un-cut barrier (extension optimization): execution continues
        # in the same region; nothing to track.
        if use_provenance:
            Provenance.transfer_inst(inst, prov_state)
        return

    info = inst.info
    if info.is_load and inst.space is not Space.PARAM:
        loc = _loc_for(inst, state, prov_state)
        if loc is not None and len(state.mem_reads) < MAX_TRACKED_LOCS:
            state.mem_reads.append(loc)
    elif info.is_store or info.is_atomic:
        loc = _loc_for(inst, state, prov_state)
        covered = loc is not None and inst.guard is None and any(
            loc.same_location(w) for w in state.mem_writes)
        if not covered:
            hazard = loc is None or any(
                loc.may_alias(r) for r in state.mem_reads)
            if hazard and index not in result.mem_cuts:
                result.mem_cuts.append(index)
                state.reset()
        # Only an unguarded store fully covers its location for the
        # WARAW exception; a predicated store may not execute.
        if (loc is not None and inst.guard is None
                and len(state.mem_writes) < MAX_TRACKED_LOCS):
            state.mem_writes.append(loc)
        if info.is_atomic:
            # The atomic also reads its location.
            if loc is not None and len(state.mem_reads) < MAX_TRACKED_LOCS:
                state.mem_reads.append(loc)

    # Register/predicate WARs.  A guarded write is a partial definition:
    # it destroys the region input in true lanes (so it is a WAR if the
    # register was read) but also *keeps reading* the old value in false
    # lanes, so it never covers later writes.
    reads = list(inst.read_regs()) + list(inst.read_preds())
    dst = inst.dst
    for var in reads:
        state.reg_reads.add(var)
    if dst is not None:
        if dst in state.reg_reads and dst not in state.reg_writes:
            result.reg_wars.append((index, dst))
        if inst.guard is None:
            state.reg_writes.add(dst)
        else:
            state.reg_reads.add(dst)
        if isinstance(dst, Reg):
            state.versions[dst] = state.versions.get(dst, 0) + 1
    if use_provenance:
        Provenance.transfer_inst(inst, prov_state)
