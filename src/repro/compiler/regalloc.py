"""Register allocation on the virtual ISA.

The paper's toolchain performs register allocation at the PTX level as a
proxy for the machine binary (Section V-A); we do the same.  The
KernelBuilder hands out a fresh virtual register per expression, so this
pass maps them onto a compact physical set via interference-graph
coloring.  It runs *before* region formation: the register
anti-dependences Flame must fix (Figure 2b) are precisely the WARs this
reuse introduces.
"""

from __future__ import annotations

from dataclasses import dataclass

import networkx as nx

from ..errors import CompileError
from ..isa import Cfg, Instruction, Kernel, Pred, Reg
from .dataflow import Liveness


@dataclass
class AllocationResult:
    """Outcome of register allocation."""

    kernel: Kernel
    num_regs: int
    num_preds: int
    reg_map: dict[Reg, Reg]
    pred_map: dict[Pred, Pred]


def _interference(cfg: Cfg, liveness: Liveness, kind) -> nx.Graph:
    graph = nx.Graph()
    kernel = cfg.kernel
    for block in cfg.blocks:
        live = {v for v in liveness.live_out[block.index]
                if isinstance(v, kind)}
        graph.add_nodes_from(live)
        for i in range(block.end - 1, block.start - 1, -1):
            inst = kernel.instructions[i]
            dst = inst.dst if isinstance(inst.dst, kind) else None
            if dst is not None:
                graph.add_node(dst)
                for other in live:
                    if other != dst:
                        graph.add_edge(dst, other)
                if inst.guard is None:
                    live.discard(dst)
                else:
                    live.add(dst)  # partial def: old value still needed
            for var in list(inst.read_regs()) + list(inst.read_preds()):
                if isinstance(var, kind):
                    graph.add_node(var)
                    live.add(var)
    return graph


def allocate_registers(kernel: Kernel) -> AllocationResult:
    """Color the virtual registers and rewrite the kernel.

    Returns a kernel whose register indices are compact physical numbers;
    the count feeds the occupancy model.
    """
    cfg = Cfg(kernel)
    liveness = Liveness(cfg)
    reg_graph = _interference(cfg, liveness, Reg)
    pred_graph = _interference(cfg, liveness, Pred)
    reg_colors = nx.coloring.greedy_color(reg_graph, strategy="largest_first")
    pred_colors = nx.coloring.greedy_color(pred_graph, strategy="largest_first")
    reg_map = {reg: Reg(color) for reg, color in reg_colors.items()}
    pred_map = {pred: Pred(color) for pred, color in pred_colors.items()}

    def rewrite_operand(operand):
        if isinstance(operand, Reg):
            return reg_map.get(operand, operand)
        if isinstance(operand, Pred):
            return pred_map.get(operand, operand)
        return operand

    new_instructions: list[Instruction] = []
    for inst in kernel.instructions:
        changes = {}
        if inst.dst is not None:
            changes["dst"] = rewrite_operand(inst.dst)
        if inst.srcs:
            changes["srcs"] = tuple(rewrite_operand(s) for s in inst.srcs)
        if inst.guard is not None:
            changes["guard"] = rewrite_operand(inst.guard)
        new_instructions.append(inst.with_(**changes) if changes else inst)
    allocated = Kernel(
        name=kernel.name,
        instructions=new_instructions,
        labels=dict(kernel.labels),
        num_params=kernel.num_params,
        shared_words=kernel.shared_words,
    )
    allocated.validate()
    num_regs = max((r.index for r in reg_map.values()), default=-1) + 1
    num_preds = max((p.index for p in pred_map.values()), default=-1) + 1
    if num_regs > 255:
        raise CompileError(
            f"kernel {kernel.name!r} needs {num_regs} registers after "
            "allocation — beyond any real per-thread budget"
        )
    return AllocationResult(kernel=allocated, num_regs=num_regs,
                            num_preds=num_preds, reg_map=reg_map,
                            pred_map=pred_map)
