"""SwapCodes-style instruction duplication (Section V-B1).

Every duplicable value-producing instruction (ALU/MUL/SFU/compare/select)
gets a replica writing a *shadow* register; replicas read shadow copies
of their sources where those exist, forming an independent redundant
dataflow.  SwapCodes checks originals against replicas through the
register file's ECC logic, so no explicit compare instructions are
emitted — the overhead is purely the replicated issue slots and the
shadow register pressure, which is exactly what we model.

Loads and stores are not duplicated (memory is ECC-protected); control
instructions are not duplicated (the SIMT front end is covered by the
replicated predicate computations feeding it).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from ..isa import Instruction, Kernel, Pred, Reg


@dataclass
class DuplicationResult:
    """Outcome of a duplication pass."""

    kernel: Kernel
    duplicated: int = 0
    shadow_regs: int = 0
    shadow_preds: int = 0


def duplicate_instructions(
    kernel: Kernel,
    should_duplicate: Callable[[int, Instruction], bool] | None = None,
) -> DuplicationResult:
    """Insert a shadow replica after each selected instruction.

    ``should_duplicate(index, inst)`` filters which (duplicable)
    instructions are replicated; the default replicates all of them
    (full SwapCodes).  Tail-DMR passes a region-tail filter.
    """
    reg_base = kernel.num_regs
    pred_base = kernel.num_preds
    shadowed_regs: set[Reg] = set()
    shadowed_preds: set[Pred] = set()
    selected: list[int] = []
    for i, inst in enumerate(kernel.instructions):
        if not inst.info.duplicable or inst.shadow or inst.ckpt:
            continue
        if should_duplicate is not None and not should_duplicate(i, inst):
            continue
        selected.append(i)
        if isinstance(inst.dst, Reg):
            shadowed_regs.add(inst.dst)
        elif isinstance(inst.dst, Pred):
            shadowed_preds.add(inst.dst)

    if not selected:
        return DuplicationResult(kernel=kernel.clone())

    def shadow(operand):
        if isinstance(operand, Reg) and operand in shadowed_regs:
            return Reg(operand.index + reg_base)
        if isinstance(operand, Pred) and operand in shadowed_preds:
            return Pred(operand.index + pred_base)
        return operand

    selected_set = set(selected)
    new_instructions: list[Instruction] = []
    offsets: list[int] = []
    inserted = 0
    for i, inst in enumerate(kernel.instructions):
        offsets.append(inserted)
        new_instructions.append(inst)
        if i in selected_set:
            replica = inst.with_(
                dst=shadow(inst.dst),
                srcs=tuple(shadow(s) for s in inst.srcs),
                guard=shadow(inst.guard) if inst.guard is not None else None,
                shadow=True,
            )
            new_instructions.append(replica)
            inserted += 1
    offsets.append(inserted)

    new_labels = {name: index + offsets[min(index, len(offsets) - 1)]
                  for name, index in kernel.labels.items()}
    duplicated = Kernel(
        name=kernel.name,
        instructions=new_instructions,
        labels=new_labels,
        num_params=kernel.num_params,
        shared_words=kernel.shared_words,
    )
    duplicated.validate()
    return DuplicationResult(
        kernel=duplicated,
        duplicated=len(selected),
        shadow_regs=len(shadowed_regs),
        shadow_preds=len(shadowed_preds),
    )
