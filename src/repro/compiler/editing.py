"""Kernel editing utilities: inserting instructions with label remapping."""

from __future__ import annotations

from bisect import bisect_right

from ..isa import Instruction, Kernel


def insert_instructions(kernel: Kernel,
                        insertions: dict[int, list[Instruction]],
                        capture_labels: bool = True) -> Kernel:
    """Return a new kernel with instruction lists inserted *before* the
    given indices.

    With ``capture_labels=True`` (default), labels pointing at an
    insertion index move to the first inserted instruction, so branches
    targeting that point (e.g. loop back edges) execute the inserted
    code — what region boundaries and checkpoint stores need.  With
    ``capture_labels=False`` labels keep pointing at the original
    instruction, so branch targets skip the insertion — what fix-up code
    tied to the *preceding* instruction needs.
    """
    if not insertions:
        return kernel.clone()
    points = sorted(insertions)
    shift_at: list[int] = []
    total = 0
    shifts: list[int] = []
    for point in points:
        shift_at.append(point)
        shifts.append(total)
        total += len(insertions[point])

    def remap(index: int) -> int:
        pos = bisect_right(shift_at, index)
        if pos == 0:
            return index
        if shift_at[pos - 1] == index and capture_labels:
            # Label at the insertion point moves with the insertion start.
            return index + shifts[pos - 1]
        base = shifts[pos - 1] + len(insertions[shift_at[pos - 1]])
        return index + base

    new_instructions: list[Instruction] = []
    for i, inst in enumerate(kernel.instructions):
        for extra in insertions.get(i, ()):
            new_instructions.append(extra)
        new_instructions.append(inst)
    for extra in insertions.get(len(kernel.instructions), ()):
        new_instructions.append(extra)
    new_labels = {name: remap(index) for name, index in kernel.labels.items()}
    return Kernel(
        name=kernel.name,
        instructions=new_instructions,
        labels=new_labels,
        num_params=kernel.num_params,
        shared_words=kernel.shared_words,
    )


def remove_instructions(kernel: Kernel, indices: set[int]) -> Kernel:
    """Return a new kernel with the given instruction indices removed.

    Labels pointing at a removed instruction move to the next surviving
    one.  Only side-effect-free instructions (e.g. redundant RB markers)
    should be removed.
    """
    if not indices:
        return kernel.clone()
    ordered = sorted(indices)
    new_instructions = [inst for i, inst in enumerate(kernel.instructions)
                        if i not in indices]

    def remap(index: int) -> int:
        removed_before = bisect_right(ordered, index - 1)
        while index in indices:
            index += 1  # label slides to the next surviving instruction
            removed_before += 1
        return index - removed_before

    new_labels = {name: remap(i) for name, i in kernel.labels.items()}
    return Kernel(
        name=kernel.name,
        instructions=new_instructions,
        labels=new_labels,
        num_params=kernel.num_params,
        shared_words=kernel.shared_words,
    )
