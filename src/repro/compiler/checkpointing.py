"""Live-out register checkpointing (Figure 3b, Penny-style).

Instead of renaming anti-dependent registers, each region saves the
registers it defines that are live across its ending boundary; on an
error, the faulty region's overwritten inputs are restored from the
checkpoint storage before re-execution.  Checkpoints are stores into a
reserved global-memory area, laid out so a warp's 32 lanes write
consecutive words (fully coalesced): for warp ``w``, slot ``k``, lane
``l`` the address is ``ckpt_base + (w * num_slots + k) * 32 + l``.

A kernel-entry prologue computes each thread's checkpoint base from its
block/warp coordinates; the checkpoint area base pointer arrives as an
extra kernel parameter appended by this pass.

With ``prune=True`` (Penny's optimal checkpoint pruning) only registers
that actually participate in a register anti-dependence anywhere in the
kernel are saved — the others can never lose their region-input value.

Note: real Penny double-buffers each slot by region parity so recovery
reads the previous generation; we model single-buffered slots, which has
identical instruction count and memory traffic (the fault-free cost the
evaluation measures).  Recovery-time restoration is therefore only
simulated for the renaming-based schemes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..isa import (Cfg, Imm, Instruction, Kernel, Op, Reg, Space, Special)
from .dataflow import Liveness
from .editing import insert_instructions


@dataclass
class CheckpointResult:
    """Outcome of the checkpointing pass."""

    kernel: Kernel
    num_slots: int = 0
    checkpoint_stores: int = 0
    ckpt_param_index: int = -1
    slot_of: dict[Reg, int] = field(default_factory=dict)

    def storage_words(self, total_warps: int, warp_size: int = 32) -> int:
        """Global-memory words the launch must reserve."""
        return total_warps * self.num_slots * warp_size


def _region_defs_before(kernel: Kernel, cfg: Cfg, rb_index: int) -> set[Reg]:
    """Registers defined on some path from the region start to this RB
    (a conservative superset via a bounded backward block walk)."""
    defs: set[Reg] = set()
    start_block = cfg.block_at(rb_index)
    visited: set[int] = set()
    stack = [(start_block.index, rb_index)]
    while stack:
        block_index, stop = stack.pop()
        block = cfg.blocks[block_index]
        hit_boundary = False
        for i in range(stop - 1, block.start - 1, -1):
            inst = kernel.instructions[i]
            if inst.op is Op.RB:
                hit_boundary = True
                break
            dst = inst.written_reg()
            if dst is not None:
                defs.add(dst)
        if hit_boundary:
            continue
        for pred in block.preds:
            if pred not in visited:
                visited.add(pred)
                stack.append((pred, cfg.blocks[pred].end))
    return defs


def insert_checkpoints(kernel: Kernel, war_regs: set | None = None,
                       prune: bool = True) -> CheckpointResult:
    """Insert checkpoint stores before every region boundary.

    ``war_regs`` is the set of registers known to be anti-dependent
    somewhere (from the region-formation scan); pruning restricts the
    saved set to those.
    """
    cfg = Cfg(kernel)
    liveness = Liveness(cfg)
    rb_indices = [i for i, inst in enumerate(kernel.instructions)
                  if inst.op is Op.RB]
    plan: dict[int, list[Reg]] = {}
    all_regs: set[Reg] = set()
    for rb in rb_indices:
        live = {v for v in liveness.live_before(rb) if isinstance(v, Reg)}
        defs = _region_defs_before(kernel, cfg, rb)
        save = live & defs
        if prune and war_regs is not None:
            save &= {v for v in war_regs if isinstance(v, Reg)}
        if save:
            plan[rb] = sorted(save)
            all_regs |= save

    result = CheckpointResult(kernel=kernel.clone())
    result.ckpt_param_index = kernel.num_params
    slot_of = {reg: slot for slot, reg in enumerate(sorted(all_regs))}
    result.slot_of = slot_of
    result.num_slots = len(slot_of)

    base = Reg(kernel.num_regs)       # per-thread checkpoint base address
    t = Reg(kernel.num_regs + 1)      # prologue scratch
    u = Reg(kernel.num_regs + 2)      # prologue scratch
    warp_size = 32

    def alu(op: Op, dst: Reg, *srcs) -> Instruction:
        operands = tuple(s if isinstance(s, (Reg, Special)) else Imm(float(s))
                         for s in srcs)
        return Instruction(op=op, dst=dst, srcs=operands, comment="ckpt-pro")

    prologue = [
        alu(Op.MUL, t, Special.CTAID_Y, Special.NCTAID_X),
        alu(Op.ADD, t, t, Special.CTAID_X),          # linear block id
        alu(Op.MUL, u, Special.NTID_X, Special.NTID_Y),
        alu(Op.ADD, u, u, warp_size - 1),
        alu(Op.SHR, u, u, 5),                        # warps per block
        alu(Op.MUL, t, t, u),
        alu(Op.ADD, t, t, Special.WARPID),           # global warp index
        alu(Op.MUL, t, t, max(result.num_slots, 1) * warp_size),
        alu(Op.ADD, t, t, Special.LANEID),
        Instruction(op=Op.LD, dst=u,
                    srcs=(Imm(float(result.ckpt_param_index)),),
                    space=Space.PARAM),
        alu(Op.ADD, base, t, u),
    ]

    insertions: dict[int, list[Instruction]] = {}
    for rb, regs in plan.items():
        stores = [
            Instruction(op=Op.ST, srcs=(base, reg), space=Space.GLOBAL,
                        offset=slot_of[reg] * warp_size, ckpt=True)
            for reg in regs
        ]
        insertions[rb] = stores
        result.checkpoint_stores += len(stores)

    new_kernel = insert_instructions(kernel, insertions)
    if plan:
        # The prologue runs exactly once: labels at index 0 (a loop header
        # starting the kernel) must keep pointing past it.
        new_kernel = insert_instructions(new_kernel, {0: prologue},
                                         capture_labels=False)
    new_kernel = Kernel(
        name=new_kernel.name,
        instructions=new_kernel.instructions,
        labels=new_kernel.labels,
        num_params=kernel.num_params + 1,
        shared_words=kernel.shared_words,
    )
    new_kernel.validate()
    result.kernel = new_kernel
    return result
