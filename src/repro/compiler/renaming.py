"""Anti-dependent register renaming (Figure 3a).

For a register WAR — a write to ``r`` preceded in its region by a read
of ``r`` with no covering earlier write — the pass renames the writing
definition to a fresh register and rewrites every use reached by that
definition.  Renaming is only sound when those uses are reached by no
other definition (no merge) and the definition is unguarded (a
predicated write is a partial definition whose old lanes must survive);
otherwise the caller falls back to cutting the region, which is always
sound.
"""

from __future__ import annotations

from ..isa import Cfg, Instruction, Kernel, Pred, Reg
from .dataflow import ReachingDefs


def try_rename(kernel: Kernel, cfg: Cfg, def_index: int, var) -> Kernel | None:
    """Attempt to rename the definition of ``var`` at ``def_index``.

    Returns the rewritten kernel, or None when renaming is unsound and
    the caller must cut the region instead.
    """
    inst = kernel.instructions[def_index]
    if inst.dst != var:
        return None
    if inst.guard is not None:
        return None  # partial definition: old lanes still need `var`
    rdefs = ReachingDefs(cfg)
    uses = [(u, v) for (u, v) in rdefs.uses_of_def(def_index) if v == var]
    for use_index, _ in uses:
        if rdefs.defs_reaching_use(use_index, var) != {def_index}:
            return None  # merge with another definition: not renameable
    if isinstance(var, Reg):
        fresh = Reg(kernel.num_regs)
    else:
        fresh = Pred(kernel.num_preds)

    new_instructions = list(kernel.instructions)
    new_instructions[def_index] = inst.with_(dst=fresh)
    for use_index, _ in uses:
        use_inst = new_instructions[use_index]
        changes = {}
        if use_inst.srcs:
            changes["srcs"] = tuple(
                fresh if s == var else s for s in use_inst.srcs)
        if use_inst.guard == var:
            changes["guard"] = fresh
        # A guarded redefinition of `var` also *uses* var as its partial
        # destination; rewriting its dst keeps the renamed chain intact.
        if use_inst.dst == var and use_inst.guard is not None:
            changes["dst"] = fresh
        if changes:
            new_instructions[use_index] = use_inst.with_(**changes)
    renamed = Kernel(
        name=kernel.name,
        instructions=new_instructions,
        labels=dict(kernel.labels),
        num_params=kernel.num_params,
        shared_words=kernel.shared_words,
    )
    return renamed
