"""Dataflow analyses used by the Flame compiler passes.

* :class:`Liveness` — backward live-variable analysis over registers and
  predicates (for checkpointing and register allocation).
* :class:`ReachingDefs` — forward reaching-definition analysis with
  def-use chains (for anti-dependent register renaming).
* :class:`Provenance` — forward pointer-provenance analysis mapping each
  register to the kernel parameter its value (if an address) derives
  from.  Distinct pointer parameters are assumed to reference disjoint
  allocations (the standard CUDA ``__restrict__``-style contract all our
  workloads satisfy), which lets the anti-dependence analysis prove
  cross-array accesses disjoint.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..isa import Cfg, Imm, Instruction, Kernel, Op, Pred, Reg, Space

#: Lattice sentinels for provenance: TOP = not yet known, BOTTOM = unknown.
TOP = object()
BOTTOM = None

Var = Reg | Pred


def _defs_uses(inst: Instruction) -> tuple[Var | None, list[Var]]:
    """Definition and uses of one instruction.

    A guarded (predicated) write is a *partial* definition: lanes where
    the guard is false keep the old value, so the destination counts as a
    use as well and the def never kills.
    """
    uses: list[Var] = list(inst.read_regs()) + list(inst.read_preds())
    if inst.guard is not None and inst.dst is not None:
        uses.append(inst.dst)
    return inst.dst, uses


def _kills(inst: Instruction) -> bool:
    """True if the instruction's definition fully overwrites its dst."""
    return inst.guard is None


class Liveness:
    """Live variables (registers and predicates) per block and instruction."""

    def __init__(self, cfg: Cfg) -> None:
        self.cfg = cfg
        self.live_in: list[set[Var]] = []
        self.live_out: list[set[Var]] = []
        self._compute()

    def _compute(self) -> None:
        cfg = self.cfg
        kernel = cfg.kernel
        num_blocks = len(cfg.blocks)
        use: list[set[Var]] = [set() for _ in range(num_blocks)]
        defs: list[set[Var]] = [set() for _ in range(num_blocks)]
        for block in cfg.blocks:
            for i in range(block.start, block.end):
                inst = kernel.instructions[i]
                dst, uses = _defs_uses(inst)
                for var in uses:
                    if var not in defs[block.index]:
                        use[block.index].add(var)
                if dst is not None and _kills(inst):
                    defs[block.index].add(dst)
        self.live_in = [set() for _ in range(num_blocks)]
        self.live_out = [set() for _ in range(num_blocks)]
        changed = True
        while changed:
            changed = False
            for block in reversed(cfg.blocks):
                b = block.index
                out: set[Var] = set()
                for succ in block.succs:
                    out |= self.live_in[succ]
                new_in = use[b] | (out - defs[b])
                if out != self.live_out[b] or new_in != self.live_in[b]:
                    self.live_out[b] = out
                    self.live_in[b] = new_in
                    changed = True

    def live_before(self, inst_index: int) -> set[Var]:
        """Variables live immediately before the given instruction."""
        block = self.cfg.block_at(inst_index)
        live = set(self.live_out[block.index])
        kernel = self.cfg.kernel
        for i in range(block.end - 1, inst_index - 1, -1):
            inst = kernel.instructions[i]
            dst, uses = _defs_uses(inst)
            if dst is not None and _kills(inst):
                live.discard(dst)
            live.update(uses)
        return live

    def live_after(self, inst_index: int) -> set[Var]:
        """Variables live immediately after the given instruction."""
        block = self.cfg.block_at(inst_index)
        live = set(self.live_out[block.index])
        kernel = self.cfg.kernel
        for i in range(block.end - 1, inst_index, -1):
            inst = kernel.instructions[i]
            dst, uses = _defs_uses(inst)
            if dst is not None and _kills(inst):
                live.discard(dst)
            live.update(uses)
        return live


class ReachingDefs:
    """Reaching definitions with def->use and use->def chains.

    A "definition" is an instruction index that writes a variable.  The
    virtual entry definition of a variable (parameters / initial zero
    state) is represented as -1.
    """

    ENTRY = -1

    def __init__(self, cfg: Cfg) -> None:
        self.cfg = cfg
        kernel = cfg.kernel
        self.defs_of: dict[Var, list[int]] = {}
        for i, inst in enumerate(kernel.instructions):
            if inst.dst is not None:
                self.defs_of.setdefault(inst.dst, []).append(i)
        self.in_sets: list[dict[Var, set[int]]] = []
        self.use_defs: dict[tuple[int, Var], set[int]] = {}
        self.def_uses: dict[int, set[tuple[int, Var]]] = {}
        self._compute()

    def _compute(self) -> None:
        cfg = self.cfg
        kernel = cfg.kernel
        num_blocks = len(cfg.blocks)
        all_vars = set(self.defs_of)
        entry_state = {var: {self.ENTRY} for var in all_vars}
        self.in_sets = [dict() for _ in range(num_blocks)]
        out_sets: list[dict[Var, set[int]]] = [dict() for _ in range(num_blocks)]

        def transfer(state: dict[Var, set[int]], block) -> dict[Var, set[int]]:
            state = {var: set(defs) for var, defs in state.items()}
            for i in range(block.start, block.end):
                inst = kernel.instructions[i]
                if inst.dst is not None:
                    if _kills(inst):
                        state[inst.dst] = {i}
                    else:
                        state.setdefault(inst.dst, {self.ENTRY}).add(i)
            return state

        changed = True
        while changed:
            changed = False
            for block in cfg.blocks:
                b = block.index
                if b == 0:
                    merged = {var: set(defs) for var, defs in entry_state.items()}
                else:
                    merged = {}
                for pred in block.preds:
                    for var, defs in out_sets[pred].items():
                        merged.setdefault(var, set()).update(defs)
                if merged != self.in_sets[b]:
                    self.in_sets[b] = merged
                    out_sets[b] = transfer(merged, block)
                    changed = True
        # Build chains by an in-block walk.
        for block in cfg.blocks:
            state = {var: set(defs)
                     for var, defs in self.in_sets[block.index].items()}
            for i in range(block.start, block.end):
                inst = kernel.instructions[i]
                _, uses = _defs_uses(inst)
                for var in uses:
                    reaching = frozenset(state.get(var, {self.ENTRY}))
                    self.use_defs[(i, var)] = set(reaching)
                    for d in reaching:
                        self.def_uses.setdefault(d, set()).add((i, var))
                if inst.dst is not None:
                    if _kills(inst):
                        state[inst.dst] = {i}
                    else:
                        state.setdefault(inst.dst, {self.ENTRY}).add(i)

    def uses_of_def(self, def_index: int) -> set[tuple[int, Var]]:
        return self.def_uses.get(def_index, set())

    def defs_reaching_use(self, use_index: int, var: Var) -> set[int]:
        return self.use_defs.get((use_index, var), {self.ENTRY})


@dataclass(frozen=True)
class ParamOrigin:
    """Provenance: the value derives from kernel parameter ``index``."""

    index: int


class Provenance:
    """Forward provenance analysis: which pointer parameter does each
    register's value derive from (if any)?"""

    def __init__(self, cfg: Cfg) -> None:
        self.cfg = cfg
        self.block_in: list[dict[Reg, object]] = []
        self._compute()

    @staticmethod
    def _meet(a, b):
        if a is TOP:
            return b
        if b is TOP:
            return a
        return a if a == b else BOTTOM

    @classmethod
    def transfer_inst(cls, inst: Instruction, state: dict[Reg, object]) -> None:
        """Apply one instruction to a provenance state (mutates it)."""
        dst = inst.written_reg()
        if dst is None:
            return
        op = inst.op
        if op is Op.LD and inst.space is Space.PARAM:
            state[dst] = ParamOrigin(int(inst.srcs[0].value))
            return
        if op is Op.MOV and isinstance(inst.srcs[0], Reg):
            state[dst] = state.get(inst.srcs[0], BOTTOM)
            return
        if op in (Op.ADD, Op.SUB):
            provs = []
            for src in inst.srcs:
                if isinstance(src, Reg):
                    provs.append(state.get(src, BOTTOM))
                else:
                    provs.append(TOP)   # constants/specials: no provenance
            known = [p for p in provs if p is not TOP and p is not BOTTOM]
            # pointer + integer keeps the pointer's origin (the integer
            # may be BOTTOM — a computed index — without spoiling it);
            # pointer + pointer is meaningless and degrades to BOTTOM.
            if len(known) == 1:
                state[dst] = known[0]
            else:
                state[dst] = BOTTOM
            return
        state[dst] = BOTTOM

    def _compute(self) -> None:
        cfg = self.cfg
        kernel = cfg.kernel
        num_blocks = len(cfg.blocks)
        self.block_in = [dict() for _ in range(num_blocks)]
        out_states: list[dict[Reg, object] | None] = [None] * num_blocks

        def transfer(state: dict[Reg, object], block) -> dict[Reg, object]:
            state = dict(state)
            for i in range(block.start, block.end):
                self.transfer_inst(kernel.instructions[i], state)
            return state

        worklist = list(cfg.rpo())
        self.block_in[0] = {}
        iterations = 0
        while worklist and iterations < 10 * num_blocks + 100:
            iterations += 1
            b = worklist.pop(0)
            block = cfg.blocks[b]
            if b == 0:
                merged: dict[Reg, object] = {}
            else:
                merged = {}
                seen_pred = False
                for pred in block.preds:
                    pred_out = out_states[pred]
                    if pred_out is None:
                        continue
                    if not seen_pred:
                        merged = dict(pred_out)
                        seen_pred = True
                    else:
                        keys = set(merged) | set(pred_out)
                        merged = {
                            k: self._meet(merged.get(k, TOP),
                                          pred_out.get(k, TOP))
                            for k in keys
                        }
            new_out = transfer(merged, block)
            if new_out != out_states[b] or merged != self.block_in[b]:
                self.block_in[b] = merged
                out_states[b] = new_out
                for succ in block.succs:
                    if succ not in worklist:
                        worklist.append(succ)

    def origin_at(self, inst_index: int, reg: Reg) -> object:
        """Provenance of ``reg`` just before the given instruction."""
        block = self.cfg.block_at(inst_index)
        state = dict(self.block_in[block.index])
        kernel = self.cfg.kernel
        for i in range(block.start, inst_index):
            self.transfer_inst(kernel.instructions[i], state)
        return state.get(reg, BOTTOM)
