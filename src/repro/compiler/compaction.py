"""Idempotence-aware compaction of rename registers.

The renaming pass conservatively allocates one fresh register per
renamed definition, so a chained accumulator in an unrolled loop (``acc
= mad(..., acc)`` sixteen times) would cost sixteen fresh registers.  A
real idempotence-preserving allocator reuses one: consecutive chain
links may share a register because each write is covered by the
previous one (WARAW) within the region.

This pass merges fresh registers greedily: a merge is accepted iff the
two registers never simultaneously live (value correctness) *and* a
re-scan of the merged kernel reports no anti-dependence violations
(idempotence correctness).  Kernels are small, so scan-validated
merging is cheap and — unlike purely structural rules — obviously sound.
"""

from __future__ import annotations

import networkx as nx

from ..isa import Cfg, Instruction, Kernel, Reg
from .antidep import scan_kernel
from .dataflow import Liveness


def _rewrite(kernel: Kernel, mapping: dict[Reg, Reg]) -> Kernel:
    def swap(operand):
        return mapping.get(operand, operand) if isinstance(operand, Reg) \
            else operand

    new_instructions = []
    for inst in kernel.instructions:
        changes = {}
        if isinstance(inst.dst, Reg) and inst.dst in mapping:
            changes["dst"] = mapping[inst.dst]
        if any(isinstance(s, Reg) and s in mapping for s in inst.srcs):
            changes["srcs"] = tuple(swap(s) for s in inst.srcs)
        new_instructions.append(inst.with_(**changes) if changes else inst)
    return Kernel(
        name=kernel.name,
        instructions=new_instructions,
        labels=dict(kernel.labels),
        num_params=kernel.num_params,
        shared_words=kernel.shared_words,
    )


def compact_fresh_registers(kernel: Kernel, first_fresh: int) -> Kernel:
    """Merge registers with indices >= ``first_fresh`` where sound.

    Returns a kernel whose fresh registers are renumbered compactly
    (``first_fresh``, ``first_fresh + 1``, ...) after merging.
    """
    fresh = sorted({r.index for inst in kernel.instructions
                    for r in list(inst.read_regs())
                    + ([inst.dst] if isinstance(inst.dst, Reg) else [])
                    if r.index >= first_fresh})
    if len(fresh) <= 1:
        return kernel

    cfg = Cfg(kernel)
    liveness = Liveness(cfg)
    interference = nx.Graph()
    interference.add_nodes_from(Reg(i) for i in fresh)
    for block in cfg.blocks:
        live = {v for v in liveness.live_out[block.index]
                if isinstance(v, Reg) and v.index >= first_fresh}
        for i in range(block.end - 1, block.start - 1, -1):
            inst = kernel.instructions[i]
            dst = inst.dst if isinstance(inst.dst, Reg) else None
            if dst is not None and dst.index >= first_fresh:
                for other in live:
                    if other != dst:
                        interference.add_edge(dst, other)
                if inst.guard is None:
                    live.discard(dst)
                else:
                    live.add(dst)
            for reg in inst.read_regs():
                if reg.index >= first_fresh:
                    live.add(reg)

    # Greedy merge, validated by re-scanning for WAR violations.
    baseline = scan_kernel(kernel)
    if not baseline.clean:
        return kernel  # only compact fully converged kernels
    work = kernel
    groups: dict[Reg, set[Reg]] = {}
    for index in fresh:
        reg = Reg(index)
        merged = False
        for rep, members in groups.items():
            if any(interference.has_edge(reg, m) for m in members):
                continue
            candidate = _rewrite(work, {reg: rep})
            if scan_kernel(candidate).clean:
                work = candidate
                members.add(reg)
                merged = True
                break
        if not merged:
            groups[reg] = {reg}

    # Renumber the surviving representatives compactly.
    reps = sorted({rep.index for rep in groups})
    renumber = {Reg(old): Reg(first_fresh + new)
                for new, old in enumerate(reps)}
    work = _rewrite(work, renumber)
    work.validate()
    return work
