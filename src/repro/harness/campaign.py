"""Campaign orchestration: hardened worker pool, journaling, resume.

The core module (:mod:`repro.core.campaign`) defines what a trial *is*;
this module is about running thousands of them without a single bad
trial taking the campaign down:

* trials run in worker processes, each guarded by the simulator's
  cycle-budget watchdog plus a per-trial wall-clock alarm;
* worker death (OOM kill, interpreter abort) is transient — the pool is
  rebuilt and the affected trials retried with exponential backoff, up
  to a bound, after which they are journaled as ``infra_error`` rather
  than aborting the batch;
* a wall-clock backstop over each dispatch epoch classifies trials
  wedged beyond all watchdogs as DUE-hangs and abandons their workers;
* every completed trial is appended to the JSONL journal immediately,
  so killing the campaign at any point loses at most the in-flight
  trials — rerunning the same command resumes from the journal.
"""

from __future__ import annotations

import math
import os
import time
from collections import deque
from dataclasses import dataclass, field

from ..core.campaign import (CampaignJournal, CampaignSpec, CellAggregate,
                             DUE_HANG, INFRA_ERROR, TrialResult, TrialSpec,
                             aggregate, merge_cells, run_trial)
from ..service.backoff import backoff_delay
from .runner import _DEFAULT_CACHE_DIR


def default_journal_path(spec: CampaignSpec,
                         cache_dir: str | None = None) -> str:
    base = cache_dir or os.environ.get("REPRO_CACHE_DIR",
                                       _DEFAULT_CACHE_DIR)
    return os.path.join(base, "campaigns",
                        f"campaign_{spec.campaign_id()}.jsonl")


@dataclass
class CampaignReport:
    """Everything a rendered summary (or a test) needs."""

    spec: CampaignSpec
    results: list[TrialResult]
    cells: list[CellAggregate]
    journal_path: str
    complete: bool = True
    infra_failures: int = 0

    def cell(self, workload: str, scheme: str,
             site: str | None = None) -> CellAggregate:
        """One (workload, scheme[, site]) aggregate.  Without ``site``
        the per-site cells are pooled (single-site campaigns are
        returned as-is)."""
        if site is None:
            merged = merge_cells(self.cells, workload, scheme)
            if merged is None:
                raise KeyError((workload, scheme))
            return merged
        for cell in self.cells:
            if (cell.workload == workload and cell.scheme == scheme
                    and cell.site == site):
                return cell
        raise KeyError((workload, scheme, site))

    def scheme_totals(self) -> dict[str, dict[str, int]]:
        totals: dict[str, dict[str, int]] = {}
        for cell in self.cells:
            bucket = totals.setdefault(cell.scheme, {})
            for outcome, count in cell.counts.items():
                bucket[outcome] = bucket.get(outcome, 0) + count
        return totals


class CampaignRunner:
    """Dispatches a campaign's trials through a hardened process pool."""

    def __init__(self, workers: int | None = None, max_retries: int = 2,
                 backoff_s: float = 0.5, backoff_cap_s: float = 30.0,
                 epoch_slack_s: float = 60.0) -> None:
        self.workers = workers if workers is not None else \
            max(1, (os.cpu_count() or 1))
        self.max_retries = max_retries
        self.backoff_s = backoff_s
        self.backoff_cap_s = backoff_cap_s
        self.epoch_slack_s = epoch_slack_s
        #: Trial executor — an attribute so tests can inject failures.
        self._execute = run_trial
        #: Live telemetry sink while ``run`` is active (else ``None``).
        self._heartbeat = None

    # ------------------------------------------------------------------
    def run(self, spec: CampaignSpec, journal_path: str | None = None,
            progress: bool = False, fresh: bool = False,
            metrics_path: str | None = None, registry=None,
            on_snapshot=None) -> CampaignReport:
        path = journal_path or default_journal_path(spec)
        journal = CampaignJournal(path)
        if fresh and os.path.exists(path):
            os.remove(path)
        journal.repair()
        done = {r.key for r in journal.load(spec)}
        if not journal.has_header():
            journal.write_header(spec)
        pending = deque(t for t in spec.trial_specs() if t.key not in done)
        total = len(pending) + len(done)
        if progress and done:
            print(f"  resuming: {len(done)}/{total} trials journaled",
                  flush=True)
        completed = len(done)
        infra = 0
        heartbeat = None
        if (metrics_path is not None or registry is not None
                or on_snapshot is not None):
            from ..obs import CampaignHeartbeat
            heartbeat = CampaignHeartbeat(
                metrics_path, total, registry=registry,
                on_snapshot=on_snapshot).start()
            if done:
                heartbeat.note_resumed(len(done))
        self._heartbeat = heartbeat

        def record(result: TrialResult) -> None:
            nonlocal completed, infra
            journal.append(result)
            completed += 1
            if result.outcome == INFRA_ERROR:
                infra += 1
            if heartbeat is not None:
                heartbeat.note_trial(result)
            if progress and (completed % 25 == 0 or completed == total):
                print(f"  [{completed}/{total}] trials journaled",
                      flush=True)

        try:
            if pending:
                if self.workers > 1 and len(pending) > 1:
                    # Publish the goldens once, in shared memory, so the
                    # pool's workers adopt instead of re-simulating them
                    # (repro.core.goldens; non-fatal if unavailable).
                    from ..core.goldens import (export_goldens,
                                                release_goldens)
                    export_goldens(
                        pending,
                        manifest_dir=os.path.dirname(path) or ".")
                    try:
                        self._run_pool(spec, pending, record)
                    finally:
                        release_goldens()
                else:
                    self._run_inline(pending, record)
        finally:
            journal.close()
            if heartbeat is not None:
                heartbeat.stop()
            self._heartbeat = None

        results = journal.load(spec)
        keys = {r.key for r in results}
        expected = {t.key for t in spec.trial_specs()}
        return CampaignReport(spec=spec, results=results,
                              cells=aggregate(results), journal_path=path,
                              complete=expected <= keys,
                              infra_failures=infra)

    # ------------------------------------------------------------------
    def _infra_result(self, trial: TrialSpec, attempts: int,
                      error: BaseException) -> TrialResult:
        return TrialResult(workload=trial.workload, scheme=trial.scheme,
                           index=trial.index, outcome=INFRA_ERROR,
                           site=trial.site,
                           detail=f"{type(error).__name__}: {error}",
                           attempts=attempts)

    def _backoff(self, attempt: int, trial: TrialSpec | None = None) -> None:
        """Capped exponential backoff with deterministic seeded jitter:
        delays double from ``backoff_s`` up to ``backoff_cap_s`` (a
        retry storm can never sleep unboundedly), and the jitter stream
        is keyed by the trial's coordinates so concurrent retries
        de-synchronise reproducibly."""
        if self.backoff_s <= 0:
            return
        time.sleep(backoff_delay(
            attempt, base_s=self.backoff_s, cap_s=self.backoff_cap_s,
            seed=trial.campaign_seed if trial is not None else 0,
            key=trial.key if trial is not None else ()))

    def _note_retry(self) -> None:
        if self._heartbeat is not None:
            self._heartbeat.note_retry()

    def _run_inline(self, pending: deque, record) -> None:
        """Single-process path: same capture + bounded-retry semantics,
        no pool."""
        while pending:
            trial = pending.popleft()
            for attempt in range(1, self.max_retries + 2):
                try:
                    result = self._execute(trial)
                    result.attempts = attempt
                    record(result)
                    break
                except Exception as exc:  # infra fault — sim errors are
                    if attempt > self.max_retries:  # classified in-trial
                        record(self._infra_result(trial, attempt, exc))
                        break
                    self._note_retry()
                    self._backoff(attempt, trial)

    def _run_pool(self, spec: CampaignSpec, pending: deque, record) -> None:
        from concurrent.futures import (ProcessPoolExecutor, TimeoutError,
                                        as_completed)

        # A dead worker poisons every outstanding future with
        # BrokenProcessPool — there is no telling which trial killed it.
        # Everything unfinished at breakage becomes a *suspect* and is
        # retried in isolation (one trial per single-worker pool), which
        # identifies the culprit exactly and never taxes healthy trials.
        suspects: deque = deque()
        while pending:
            batch = list(pending)
            pending.clear()
            workers = min(self.workers, len(batch))
            epoch_timeout = None
            if spec.timeout_s > 0:
                epoch_timeout = (spec.timeout_s
                                 * math.ceil(len(batch) / workers)
                                 + self.epoch_slack_s)
            pool = ProcessPoolExecutor(max_workers=workers)
            futures = {pool.submit(self._execute, t): t for t in batch}
            broken = False
            try:
                for future in as_completed(futures, timeout=epoch_timeout):
                    trial = futures.pop(future)
                    try:
                        result = future.result()
                    except Exception:
                        # run_trial never raises for simulation failures,
                        # so this is worker death / a lost result.
                        suspects.append(trial)
                        broken = True
                        break
                    result.attempts = 1
                    record(result)
            except TimeoutError:
                # Watchdogs failed (worker wedged in uninterruptible
                # code): classify started stragglers as wall-clock
                # DUE-hangs and abandon their workers; never-started
                # trials just requeue.
                for future, trial in futures.items():
                    if future.cancel():
                        pending.append(trial)
                        continue
                    record(TrialResult(
                        workload=trial.workload, scheme=trial.scheme,
                        index=trial.index, outcome=DUE_HANG,
                        site=trial.site,
                        detail="wall-clock epoch timeout (worker "
                               "abandoned)"))
                pool.shutdown(wait=False, cancel_futures=True)
                continue
            if broken:
                suspects.extend(futures.values())
                pool.shutdown(wait=False, cancel_futures=True)
                if self._heartbeat is not None:
                    self._heartbeat.note_worker_restart()
            else:
                pool.shutdown(wait=True)
        if suspects:
            self._run_isolated(spec, suspects, record)

    def _run_isolated(self, spec: CampaignSpec, trials: deque,
                      record) -> None:
        """Retry suspects one at a time, each in a fresh single-worker
        pool, with bounded backoff: a trial that keeps killing its
        worker is journaled as ``infra_error`` without taking any other
        trial down with it."""
        from concurrent.futures import ProcessPoolExecutor, TimeoutError

        timeout = (spec.timeout_s + self.epoch_slack_s
                   if spec.timeout_s > 0 else None)
        for trial in trials:
            for attempt in range(1, self.max_retries + 2):
                pool = ProcessPoolExecutor(max_workers=1)
                try:
                    result = pool.submit(self._execute,
                                         trial).result(timeout=timeout)
                except TimeoutError:
                    pool.shutdown(wait=False, cancel_futures=True)
                    record(TrialResult(
                        workload=trial.workload, scheme=trial.scheme,
                        index=trial.index, outcome=DUE_HANG,
                        site=trial.site,
                        detail="wall-clock timeout (isolated worker "
                               "abandoned)", attempts=attempt))
                    break
                except Exception as exc:
                    pool.shutdown(wait=False, cancel_futures=True)
                    if self._heartbeat is not None:
                        self._heartbeat.note_worker_restart()
                    if attempt > self.max_retries:
                        record(self._infra_result(trial, attempt, exc))
                        break
                    self._note_retry()
                    self._backoff(attempt, trial)
                else:
                    pool.shutdown(wait=True)
                    result.attempts = attempt
                    record(result)
                    break


def write_aggregates(report: CampaignReport, path: str) -> None:
    """Write a campaign's per-cell aggregates as canonical JSON.

    Deterministic byte-for-byte for a given set of trial outcomes
    (cells sorted, keys sorted, fixed separators), so two reports from
    equivalent campaigns — e.g. one direct and one checkpoint-
    accelerated — can be compared with a plain ``diff``.
    """
    import json

    payload = {
        "campaign_id": report.spec.campaign_id(),
        "complete": report.complete,
        "trials": len(report.results),
        "cells": [cell.as_dict() for cell in report.cells],
    }
    os.makedirs(os.path.dirname(path) or ".", exist_ok=True)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, sort_keys=True, indent=2)
        handle.write("\n")


def run_campaign(spec: CampaignSpec, workers: int | None = None,
                 journal_path: str | None = None, progress: bool = False,
                 fresh: bool = False, metrics_path: str | None = None,
                 registry=None, on_snapshot=None) -> CampaignReport:
    """Convenience one-shot used by the CLI and the experiments module."""
    return CampaignRunner(workers=workers).run(
        spec, journal_path=journal_path, progress=progress, fresh=fresh,
        metrics_path=metrics_path, registry=registry,
        on_snapshot=on_snapshot)


__all__ = ["CampaignReport", "CampaignRunner", "default_journal_path",
           "run_campaign", "write_aggregates"]
