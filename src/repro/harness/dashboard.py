"""ANSI terminal dashboard for live campaign monitoring.

``campaign --live`` attaches a :class:`LiveDashboard` to the campaign
heartbeat's ``on_snapshot`` hook: every heartbeat tick re-renders a
full-screen view — progress bar and ETA, a trials/sec sparkline, the
per-cell verdict table with Wilson 95% CIs (from the shared metrics
registry), stall-cause bars, and (for sharded campaigns) the shard
lease board.

Rendering is a pure function of ``(snapshot, registry, status)`` so the
whole view is unit-testable without a terminal; the ANSI screen-clear
escape is only emitted when stdout is a TTY (piped output degrades to
appended frames, which is what CI logs want anyway).
"""

from __future__ import annotations

import sys
import threading

from ..core.campaign import wilson_interval
from ..obs.metrics import MetricsRegistry, trial_counts
from .reporting import render_table

#: Eight-level block characters for the trials/sec sparkline.
_SPARK = " ▁▂▃▄▅▆▇█"

#: Stall causes in severity order come from the simulator; the bar
#: width budget for the breakdown section.
_BAR_WIDTH = 30

_CLEAR = "\x1b[2J\x1b[H"


def sparkline(values: list[float], width: int = 32) -> str:
    """Render the last ``width`` samples as unicode block bars."""
    tail = [max(v, 0.0) for v in values[-width:]]
    if not tail:
        return ""
    top = max(tail)
    if top <= 0:
        return _SPARK[0] * len(tail)
    out = []
    for value in tail:
        idx = round(value / top * (len(_SPARK) - 1))
        out.append(_SPARK[max(0, min(idx, len(_SPARK) - 1))])
    return "".join(out)


def _bar(fraction: float, width: int = _BAR_WIDTH) -> str:
    filled = int(round(max(0.0, min(fraction, 1.0)) * width))
    return "#" * filled + "." * (width - filled)


def _fmt_eta(eta_s) -> str:
    if eta_s is None:
        return "--"
    eta_s = int(eta_s)
    if eta_s >= 3600:
        return f"{eta_s // 3600}h{(eta_s % 3600) // 60:02d}m"
    if eta_s >= 60:
        return f"{eta_s // 60}m{eta_s % 60:02d}s"
    return f"{eta_s}s"


def render_dashboard(snapshot: dict,
                     registry: MetricsRegistry | None = None,
                     shard_status: dict | None = None) -> str:
    """Pure renderer: one full dashboard frame as a string."""
    lines: list[str] = []
    total = snapshot.get("total_trials", 0)
    completed = snapshot.get("completed", 0)
    resumed = snapshot.get("resumed_from_journal", 0)
    done = completed + resumed
    frac = done / total if total else 0.0
    lines.append(f"campaign  {done}/{total} trials  "
                 f"[{_bar(frac)}] {100.0 * frac:5.1f}%")
    rate = snapshot.get("trials_per_sec", 0.0)
    lines.append(f"rate      {rate:8.2f} trials/s   "
                 f"eta {_fmt_eta(snapshot.get('eta_s'))}   "
                 f"elapsed {snapshot.get('elapsed_s', 0.0):.0f}s")
    history = snapshot.get("rate_history") or []
    if history:
        lines.append(f"history   {sparkline(history)}")
    accel = []
    for key, label in (("fast_start_hit_rate", "fast-start"),
                       ("convergence_early_exit_rate", "converged")):
        value = snapshot.get(key)
        if value:
            accel.append(f"{label} {100.0 * value:.0f}%")
    for key, label in (("golden_cache_hits", "golden-cache"),
                       ("golden_shared_hits", "golden-shared"),
                       ("retries", "retries"),
                       ("worker_restarts", "restarts"),
                       ("infra_failures", "infra")):
        value = snapshot.get(key)
        if value:
            accel.append(f"{label} {value}")
    if accel:
        lines.append("accel     " + "  ".join(accel))

    if registry is not None:
        cell_table = _render_cells(registry)
        if cell_table:
            lines.append("")
            lines.append(cell_table)

    stalls = snapshot.get("stall_cycles") or {}
    if stalls:
        lines.append("")
        lines.append("stall-cause breakdown (campaign aggregate)")
        total_stalls = sum(stalls.values()) or 1
        for cause, cycles in sorted(stalls.items(),
                                    key=lambda kv: -kv[1]):
            share = cycles / total_stalls
            lines.append(f"  {cause:<16} {_bar(share)} "
                         f"{100.0 * share:5.1f}%")

    if shard_status:
        lines.append("")
        lines.append(_render_shards(shard_status))
    elif snapshot.get("shard_staleness_s"):
        lines.append("")
        stale = snapshot["shard_staleness_s"]
        done_shards = snapshot.get("shards_done", 0)
        lines.append(f"shards    {done_shards} done; last heartbeat: "
                     + "  ".join(f"#{sid} {age:.0f}s ago"
                                 for sid, age in sorted(stale.items())))
    return "\n".join(lines)


def _render_cells(registry: MetricsRegistry) -> str:
    counts = trial_counts(registry)
    if not counts:
        return ""
    rows = []
    for (workload, scheme, site), verdicts in sorted(counts.items()):
        n = sum(verdicts.values())
        sdc = verdicts.get("sdc", 0)
        if n:
            lo, hi = wilson_interval(sdc, n)
            ci = f"{sdc / n:.3f} [{lo:.3f}, {hi:.3f}]"
        else:
            ci = "n/a"
        rows.append([workload, scheme, site, n,
                     verdicts.get("masked", 0),
                     verdicts.get("recovered", 0), sdc,
                     verdicts.get("due_hang", 0)
                     + verdicts.get("due_crash", 0),
                     verdicts.get("infra_error", 0), ci])
    return render_table(
        ["Workload", "Scheme", "Site", "N", "Masked", "Recov", "SDC",
         "DUE", "Infra", "SDC rate [95% CI]"],
        rows, title="per-cell verdicts (live)")


def _render_shards(status: dict) -> str:
    rows = []
    for sid, entry in sorted(status.get("shards", {}).items(),
                             key=lambda kv: int(kv[0])):
        age = entry.get("heartbeat_age_s")
        rows.append([sid, entry.get("state", "?"),
                     entry.get("worker", ""),
                     f"{age:.1f}s" if age is not None else "",
                     entry.get("failures", 0),
                     entry.get("reason", "")[:40]])
    return render_table(
        ["Shard", "State", "Worker", "HB age", "Fails", "Reason"],
        rows, title="shard lease board")


class LiveDashboard:
    """Stateful wrapper: keeps the rate history ring, clears the screen
    on TTYs, and is safe to call from the heartbeat's writer thread."""

    def __init__(self, registry: MetricsRegistry | None = None,
                 status_fn=None, stream=None, history: int = 64) -> None:
        self.registry = registry
        #: Optional callable returning the coordinator status dict
        #: (sharded campaigns); ``None`` for single-process runs.
        self.status_fn = status_fn
        self.stream = stream if stream is not None else sys.stdout
        self.history = history
        self._rates: list[float] = []
        self._lock = threading.Lock()

    def on_snapshot(self, snapshot: dict) -> None:
        """Heartbeat hook: render one frame (never raises)."""
        try:
            self.stream.write(self.render(snapshot) + "\n")
            self.stream.flush()
        except Exception:
            pass  # a wedged terminal must never kill the campaign

    def render(self, snapshot: dict) -> str:
        with self._lock:
            self._rates.append(float(snapshot.get("trials_per_sec", 0.0)))
            del self._rates[:-self.history]
            snapshot = dict(snapshot, rate_history=list(self._rates))
        status = None
        if self.status_fn is not None:
            try:
                status = self.status_fn()
            except Exception:
                status = None
        frame = render_dashboard(snapshot, registry=self.registry,
                                 shard_status=status)
        if getattr(self.stream, "isatty", lambda: False)():
            frame = _CLEAR + frame
        return frame


__all__ = ["LiveDashboard", "render_dashboard", "sparkline"]
