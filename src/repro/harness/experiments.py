"""One entry point per paper table/figure (see DESIGN.md's index).

Every function returns plain data structures; ``repro.harness.reporting``
renders them as text tables matching the paper's rows/series.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from ..arch import (ALL_GPUS, FaultRates, GTX480, SensorMesh, gpu_by_name,
                    section4_report, sensors_for_wcdl, wcdl_curve)
from ..compiler import compile_kernel, eligible_extension_barriers
from ..core import flame_hardware_cost
from ..workloads import WORKLOADS, table1_rows, workload_by_name
from .runner import Runner, RunSpec, normalized_time

#: The Figure 13/14 scheme columns, paper order.  "flame" is
#: Sensor+Renaming with the region-extension optimization (the paper's
#: headline configuration).
FIG13_SCHEMES = (
    "flame",
    "sensor_checkpointing",
    "renaming",
    "checkpointing",
    "duplication_renaming",
    "duplication_checkpointing",
    "hybrid_renaming",
    "hybrid_checkpointing",
)

ALL_BENCHMARKS = tuple(WORKLOADS)


def geomean(values: list[float]) -> float:
    if not values:
        return float("nan")
    return math.exp(sum(math.log(v) for v in values) / len(values))


# ----------------------------------------------------------------------
# Table I — benchmark roster
# ----------------------------------------------------------------------
def table1() -> list[tuple[str, str, str]]:
    return table1_rows()


# ----------------------------------------------------------------------
# Figure 12 — WCDL vs sensors per SM for four architectures
# ----------------------------------------------------------------------
def figure12(sensor_counts: tuple[int, ...] = (50, 75, 100, 125, 150, 175,
                                               200, 225, 250, 275, 300)
             ) -> dict[str, list[int]]:
    return {name: wcdl_curve(gpu, list(sensor_counts))
            for name, gpu in ALL_GPUS.items()}


# ----------------------------------------------------------------------
# Table II — sensors for 20-cycle WCDL per architecture
# ----------------------------------------------------------------------
def table2(wcdl: int = 20) -> list[dict]:
    rows = []
    for gpu in ALL_GPUS.values():
        sensors = sensors_for_wcdl(gpu, wcdl)
        mesh = SensorMesh(gpu, sensors)
        rows.append({
            "gpu": gpu.name,
            "core_frequency_mhz": gpu.core_freq_mhz,
            "sm_count": gpu.num_sms,
            "sensors_per_sm": sensors,
            "area_overhead": mesh.area_overhead,
        })
    return rows


# ----------------------------------------------------------------------
# Figures 13/14/15 — per-benchmark and geomean normalized time
# ----------------------------------------------------------------------
@dataclass
class OverheadStudy:
    """Normalized execution times per benchmark per scheme."""

    scale: str
    schemes: tuple[str, ...]
    benchmarks: tuple[str, ...]
    normalized: dict[str, dict[str, float]] = field(default_factory=dict)

    def geomeans(self) -> dict[str, float]:
        return {
            scheme: geomean([self.normalized[bench][scheme]
                             for bench in self.benchmarks])
            for scheme in self.schemes
        }


def _warm(runner: Runner, specs: list[RunSpec], progress: bool) -> None:
    runner.run_many(specs, progress=progress)


def figure13_14(scale: str = "small",
                schemes: tuple[str, ...] = FIG13_SCHEMES,
                benchmarks: tuple[str, ...] = ALL_BENCHMARKS,
                runner: Runner | None = None,
                progress: bool = False) -> OverheadStudy:
    runner = runner or Runner()
    specs = [RunSpec(workload=bench, scheme="baseline", scale=scale)
             for bench in benchmarks]
    specs += [RunSpec(workload=bench, scheme=scheme, scale=scale)
              for bench in benchmarks for scheme in schemes]
    _warm(runner, specs, progress)
    study = OverheadStudy(scale=scale, schemes=schemes,
                          benchmarks=benchmarks)
    for bench in benchmarks:
        study.normalized[bench] = {
            scheme: normalized_time(
                runner, RunSpec(workload=bench, scheme=scheme, scale=scale))
            for scheme in schemes
        }
    return study


def figure15(scale: str = "small", runner: Runner | None = None,
             progress: bool = False) -> dict[str, float]:
    return figure13_14(scale, runner=runner, progress=progress).geomeans()


# ----------------------------------------------------------------------
# Figure 16 — impact of the region-extension optimization
# ----------------------------------------------------------------------
def optimization_eligible_benchmarks() -> list[str]:
    """Benchmarks where the Section III-E analysis finds at least one
    removable barrier boundary (the paper found 7)."""
    eligible = []
    for name, workload in WORKLOADS.items():
        if not workload.uses_barriers:
            continue
        instance = workload.instance("tiny")
        compiled = compile_kernel(instance.kernel, "baseline")
        if eligible_extension_barriers(compiled.kernel):
            eligible.append(name)
    return eligible


def figure16(scale: str = "small", runner: Runner | None = None,
             progress: bool = False) -> dict[str, dict[str, float]]:
    """Normalized time without (sensor_renaming) and with (flame) the
    region-extension optimization, for the eligible benchmarks."""
    runner = runner or Runner()
    benches = optimization_eligible_benchmarks()
    specs = []
    for bench in benches:
        specs.append(RunSpec(workload=bench, scheme="baseline", scale=scale))
        specs.append(RunSpec(workload=bench, scheme="sensor_renaming",
                             scale=scale))
        specs.append(RunSpec(workload=bench, scheme="flame", scale=scale))
    _warm(runner, specs, progress)
    result = {}
    for bench in benches:
        result[bench] = {
            "without_opt": normalized_time(
                runner, RunSpec(workload=bench, scheme="sensor_renaming",
                                scale=scale)),
            "with_opt": normalized_time(
                runner, RunSpec(workload=bench, scheme="flame", scale=scale)),
        }
    return result


# ----------------------------------------------------------------------
# Figure 17 — WCDL sensitivity
# ----------------------------------------------------------------------
def figure17(scale: str = "small",
             wcdls: tuple[int, ...] = (10, 20, 30, 40, 50),
             benchmarks: tuple[str, ...] = ALL_BENCHMARKS,
             runner: Runner | None = None,
             progress: bool = False) -> dict[int, float]:
    runner = runner or Runner()
    specs = [RunSpec(workload=bench, scheme="baseline", scale=scale)
             for bench in benchmarks]
    specs += [RunSpec(workload=bench, scheme="flame", scale=scale, wcdl=w)
              for bench in benchmarks for w in wcdls]
    _warm(runner, specs, progress)
    result = {}
    for w in wcdls:
        ratios = [normalized_time(
            runner, RunSpec(workload=bench, scheme="flame", scale=scale,
                            wcdl=w)) for bench in benchmarks]
        result[w] = geomean(ratios)
    return result


# ----------------------------------------------------------------------
# Figure 18 — scheduler sensitivity
# ----------------------------------------------------------------------
def figure18(scale: str = "small",
             schedulers: tuple[str, ...] = ("GTO", "OLD", "LRR", "2LV"),
             benchmarks: tuple[str, ...] = ALL_BENCHMARKS,
             runner: Runner | None = None,
             progress: bool = False) -> dict[str, float]:
    runner = runner or Runner()
    specs = []
    for sched in schedulers:
        for bench in benchmarks:
            specs.append(RunSpec(workload=bench, scheme="baseline",
                                 scale=scale, scheduler=sched))
            specs.append(RunSpec(workload=bench, scheme="flame",
                                 scale=scale, scheduler=sched))
    _warm(runner, specs, progress)
    result = {}
    for sched in schedulers:
        ratios = [normalized_time(
            runner, RunSpec(workload=bench, scheme="flame", scale=scale,
                            scheduler=sched)) for bench in benchmarks]
        result[sched] = geomean(ratios)
    return result


# ----------------------------------------------------------------------
# Figure 19 — architecture sensitivity
# ----------------------------------------------------------------------
def figure19(scale: str = "small",
             gpus: tuple[str, ...] = ("GTX480", "TITAN X", "GV100",
                                      "RTX2060"),
             benchmarks: tuple[str, ...] = ALL_BENCHMARKS,
             runner: Runner | None = None,
             progress: bool = False) -> dict[str, float]:
    runner = runner or Runner()
    specs = []
    for gpu in gpus:
        for bench in benchmarks:
            specs.append(RunSpec(workload=bench, scheme="baseline",
                                 scale=scale, gpu=gpu))
            specs.append(RunSpec(workload=bench, scheme="flame",
                                 scale=scale, gpu=gpu))
    _warm(runner, specs, progress)
    result = {}
    for gpu in gpus:
        ratios = [normalized_time(
            runner, RunSpec(workload=bench, scheme="flame", scale=scale,
                            gpu=gpu)) for bench in benchmarks]
        result[gpu] = geomean(ratios)
    return result


# ----------------------------------------------------------------------
# Section IV arithmetic + measured region sizes
# ----------------------------------------------------------------------
def section4(scale: str = "small",
             benchmarks: tuple[str, ...] = ALL_BENCHMARKS,
             runner: Runner | None = None) -> dict:
    runner = runner or Runner()
    sizes = []
    for bench in benchmarks:
        outcome = runner.run(RunSpec(workload=bench, scheme="flame",
                                     scale=scale))
        if outcome.avg_region_size > 0:
            sizes.append(outcome.avg_region_size)
    measured = sum(sizes) / len(sizes) if sizes else 0.0
    report = section4_report(FaultRates(),
                             avg_region_instructions=measured)
    report["paper_avg_region_instructions"] = 50.23
    return report


# ----------------------------------------------------------------------
# Fault coverage — Monte Carlo injection campaign (Section V's claim,
# validated statistically rather than by hand-scheduled strikes)
# ----------------------------------------------------------------------
#: Default campaign workloads: barrier/divergence-heavy but atomic-free
#: (atomics are not replayable under the paper's data-race-free model).
CAMPAIGN_BENCHMARKS = ("SGEMM", "Triad")


def fault_coverage(scale: str = "tiny",
                   benchmarks: tuple[str, ...] = CAMPAIGN_BENCHMARKS,
                   schemes: tuple[str, ...] | None = None,
                   trials: int = 200, seed: int = 0, wcdl: int = 20,
                   gpu: str = "GTX480", scheduler: str = "GTO",
                   sites: tuple[str, ...] = ("dest_reg",),
                   sensor_miss_probability: float = 0.0,
                   sensor_jitter_cycles: int = 0, sanitize: bool = False,
                   harden_rpt: bool = True, harden_rbq: bool = True,
                   timeout_s: float = 120.0, workers: int | None = None,
                   journal_path: str | None = None, fresh: bool = False,
                   progress: bool = False, checkpoint: bool = True,
                   checkpoint_interval: int = 0,
                   metrics_path: str | None = None,
                   registry=None, on_snapshot=None,
                   backend: str = "pool", shards: int = 0,
                   shard_dir: str | None = None, fsync_interval: int = 1,
                   lease_ttl_s: float = 600.0,
                   heartbeat_timeout_s: float = 30.0, fail_limit: int = 3,
                   max_worker_restarts: int = 16,
                   http_host: str = "127.0.0.1", http_port: int = 0):
    """Run (or resume) an injection campaign and return its report.

    ``backend="pool"`` (default) keeps the classic single-host worker
    pool; any other backend routes through the sharded campaign service
    (:func:`repro.service.runner.run_sharded_campaign`), splitting the
    campaign into ``shards`` seeded shards (0 = one per worker).
    Results are byte-identical either way.
    """
    from ..core.campaign import CampaignSpec
    from ..core.injection import fault_site_by_name
    from ..core.schemes import (default_campaign_schemes,
                                runtime_scheme_by_name)
    from .campaign import run_campaign

    if schemes is None:
        schemes = default_campaign_schemes()
    # Fail fast on typos: otherwise every trial of an unknown workload or
    # scheme burns its retry budget in a worker and lands as infra_error.
    for name in benchmarks:
        workload_by_name(name)
    for name in schemes:
        runtime_scheme_by_name(name)
    for name in sites:
        fault_site_by_name(name)
    spec = CampaignSpec(workloads=tuple(benchmarks), schemes=tuple(schemes),
                        trials=trials, seed=seed, scale=scale, gpu=gpu,
                        scheduler=scheduler, wcdl=wcdl,
                        sites=tuple(sites),
                        sensor_miss_probability=sensor_miss_probability,
                        sensor_jitter_cycles=sensor_jitter_cycles,
                        sanitize=sanitize, harden_rpt=harden_rpt,
                        harden_rbq=harden_rbq, timeout_s=timeout_s,
                        checkpoint=checkpoint,
                        checkpoint_interval=checkpoint_interval)
    if backend != "pool":
        import os

        from ..service.runner import run_sharded_campaign

        num_shards = shards or max(1, workers or os.cpu_count() or 1)
        return run_sharded_campaign(
            spec, shards=num_shards, backend=backend, workers=workers,
            journal_path=journal_path, shard_dir=shard_dir, fresh=fresh,
            progress=progress, metrics_path=metrics_path,
            registry=registry, on_snapshot=on_snapshot,
            http_host=http_host, http_port=http_port,
            fsync_interval=fsync_interval, lease_ttl_s=lease_ttl_s,
            heartbeat_timeout_s=heartbeat_timeout_s,
            fail_limit=fail_limit,
            max_worker_restarts=max_worker_restarts)
    return run_campaign(spec, workers=workers, journal_path=journal_path,
                        progress=progress, fresh=fresh,
                        metrics_path=metrics_path, registry=registry,
                        on_snapshot=on_snapshot)


# ----------------------------------------------------------------------
# Section VI-A2 hardware cost
# ----------------------------------------------------------------------
def hwcost(wcdl: int = 20) -> list[dict]:
    rows = []
    for gpu in ALL_GPUS.values():
        cost = flame_hardware_cost(gpu, wcdl)
        rows.append({
            "gpu": cost.gpu_name,
            "wcdl": cost.wcdl,
            "rbq_bits": cost.rbq_bits,
            "rpt_bits": cost.rpt_bits,
            "sensors_per_sm": cost.sensors_per_sm,
            "sensor_area_overhead": cost.sensor_area_overhead,
        })
    return rows
