"""Command-line interface: regenerate any paper table or figure.

Examples::

    flame-repro table1
    flame-repro figure15 --scale small
    flame-repro figure17 --scale tiny --benchmarks SGEMM,LUD,Triad
    python -m repro.harness all --scale small
"""

from __future__ import annotations

import argparse
import sys

from . import experiments as exp
from . import reporting as rep
from .runner import Runner

EXPERIMENTS = ("table1", "figure12", "table2", "figure13", "figure15",
               "figure16", "figure17", "figure18", "figure19", "section4",
               "hwcost", "ablation", "all")


def _benchmarks(args) -> tuple[str, ...]:
    if args.benchmarks:
        return tuple(args.benchmarks.split(","))
    return exp.ALL_BENCHMARKS


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="flame-repro",
        description="Regenerate the Flame paper's tables and figures.")
    parser.add_argument("experiment", choices=EXPERIMENTS)
    parser.add_argument("--scale", default="small",
                        choices=("tiny", "small", "medium"))
    parser.add_argument("--benchmarks", default="",
                        help="comma-separated subset (default: all 34)")
    parser.add_argument("--fresh", action="store_true",
                        help="ignore cached results")
    parser.add_argument("--workers", type=int, default=None,
                        help="parallel simulation processes")
    args = parser.parse_args(argv)

    runner = Runner(fresh=args.fresh, workers=args.workers)
    benches = _benchmarks(args)
    name = args.experiment
    out: list[str] = []

    if name in ("table1", "all"):
        out.append(rep.render_table1(exp.table1()))
    if name in ("figure12", "all"):
        counts = (50, 75, 100, 125, 150, 175, 200, 225, 250, 275, 300)
        out.append(rep.render_figure12(exp.figure12(counts), counts))
    if name in ("table2", "all"):
        out.append(rep.render_table2(exp.table2()))
    if name in ("figure13", "all"):
        study = exp.figure13_14(args.scale, benchmarks=benches,
                                runner=runner, progress=True)
        out.append(rep.render_figure13_14(study))
        out.append(rep.render_figure15(study.geomeans()))
    elif name == "figure15":
        study = exp.figure13_14(args.scale, benchmarks=benches,
                                runner=runner, progress=True)
        out.append(rep.render_figure15(study.geomeans()))
    if name in ("figure16", "all"):
        out.append(rep.render_figure16(
            exp.figure16(args.scale, runner=runner, progress=True)))
    if name in ("figure17", "all"):
        out.append(rep.render_figure17(
            exp.figure17(args.scale, benchmarks=benches, runner=runner,
                         progress=True)))
    if name in ("figure18", "all"):
        out.append(rep.render_figure18(
            exp.figure18(args.scale, benchmarks=benches, runner=runner,
                         progress=True)))
    if name in ("figure19", "all"):
        out.append(rep.render_figure19(
            exp.figure19(args.scale, benchmarks=benches, runner=runner,
                         progress=True)))
    if name in ("section4", "all"):
        out.append(rep.render_section4(
            exp.section4(args.scale, benchmarks=benches, runner=runner)))
    if name in ("hwcost", "all"):
        out.append(rep.render_hwcost(exp.hwcost()))
    if name == "ablation":
        from .ablations import render_ablation, run_ablation

        out.append(render_ablation(run_ablation(scale=args.scale)))

    print("\n\n".join(out))
    return 0


if __name__ == "__main__":
    sys.exit(main())
