"""Command-line interface: regenerate any paper table or figure.

Examples::

    flame-repro table1
    flame-repro figure15 --scale small
    flame-repro figure17 --scale tiny --benchmarks SGEMM,LUD,Triad
    python -m repro.harness all --scale small
"""

from __future__ import annotations

import argparse
import sys

from ..core.schemes import (RUNTIME_SCHEMES, campaign_schemes,
                            default_campaign_schemes,
                            runtime_scheme_by_name)
from ..errors import ConfigError
from . import experiments as exp
from . import reporting as rep
from .runner import Runner

EXPERIMENTS = ("table1", "figure12", "table2", "figure13", "figure15",
               "figure16", "figure17", "figure18", "figure19", "section4",
               "hwcost", "ablation", "campaign", "report", "worker",
               "trace", "schemes", "all")


def _benchmarks(args) -> tuple[str, ...]:
    if args.benchmarks:
        return tuple(args.benchmarks.split(","))
    return exp.ALL_BENCHMARKS


def _scheme_arg(value: str) -> str:
    """argparse type for a single scheme name: registry-validated so a
    typo fails at parse time, not mid-run."""
    name = value.strip()
    try:
        runtime_scheme_by_name(name)
    except ConfigError as exc:
        raise argparse.ArgumentTypeError(str(exc)) from None
    return name


def _scheme_list(value: str) -> tuple[str, ...]:
    """argparse type for ``--schemes``: splits, rejects empty/unknown/
    duplicate/compile-only names against the registry at parse time."""
    names = tuple(part.strip() for part in value.split(","))
    seen = set()
    for name in names:
        if not name:
            raise argparse.ArgumentTypeError(
                f"empty scheme name in {value!r}")
        try:
            scheme = runtime_scheme_by_name(name)
        except ConfigError as exc:
            raise argparse.ArgumentTypeError(str(exc)) from None
        if not scheme.campaign:
            raise argparse.ArgumentTypeError(
                f"scheme {name!r} is compile-only; campaign-runnable "
                f"schemes: {', '.join(campaign_schemes())}")
        if name in seen:
            raise argparse.ArgumentTypeError(f"duplicate scheme {name!r}")
        seen.add(name)
    return names


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="flame-repro",
        description="Regenerate the Flame paper's tables and figures.")
    parser.add_argument("experiment", choices=EXPERIMENTS)
    parser.add_argument("--scale", default="small",
                        choices=("tiny", "small", "medium"))
    parser.add_argument("--benchmarks", default="",
                        help="comma-separated subset (default: all 34)")
    parser.add_argument("--fresh", action="store_true",
                        help="ignore cached results (for campaigns: "
                             "discard the journal and start over)")
    parser.add_argument("--workers", type=int, default=None,
                        help="parallel simulation processes")
    parser.add_argument("--profile", action="store_true",
                        help="run under cProfile and print the top-20 "
                             "cumulative-time hot spots afterwards")
    parser.add_argument("--profile-out", default="",
                        help="also dump raw cProfile stats to this path "
                             "(pstats format, for snakeviz/pstats; "
                             "implies --profile)")
    trace = parser.add_argument_group(
        "trace", "cycle-level tracing options (experiment 'trace')")
    trace.add_argument("--scheme", default="flame", type=_scheme_arg,
                       help="scheme to trace, validated against the "
                            "registry (default: flame)")
    trace.add_argument("--scheduler", default="GTO",
                       help="warp scheduler to trace under")
    trace.add_argument("--trace-out", default="",
                       help="write Chrome-trace/Perfetto JSON here")
    trace.add_argument("--trace-jsonl", default="",
                       help="write the compact per-event JSONL here")
    trace.add_argument("--stall-report", action="store_true",
                       help="print the stall-cause breakdown table")
    trace.add_argument("--no-inject", action="store_true",
                       help="trace a clean run (no mid-kernel strike)")
    trace.add_argument("--trace-capacity", type=int, default=1 << 20,
                       help="tracer ring-buffer capacity in events; "
                            "oldest events drop beyond it (the drop "
                            "count is reported)")
    campaign = parser.add_argument_group(
        "campaign", "Monte Carlo fault-injection campaign options")
    campaign.add_argument("--trials", type=int, default=200,
                          help="trials per (workload, scheme) cell")
    campaign.add_argument("--schemes", type=_scheme_list,
                          default=default_campaign_schemes(),
                          help="comma-separated schemes to campaign over, "
                               "validated against the registry (default: "
                               f"{','.join(default_campaign_schemes())}; "
                               "see the 'schemes' subcommand)")
    campaign.add_argument("--seed", type=int, default=0,
                          help="campaign master seed")
    campaign.add_argument("--wcdl", type=int, default=20,
                          help="worst-case detection latency in cycles")
    campaign.add_argument("--sites", default="dest_reg",
                          help="comma-separated fault sites to sweep "
                               "('all' = every registered site)")
    campaign.add_argument("--sensor-miss", type=float, default=0.0,
                          help="per-strike sensor miss probability")
    campaign.add_argument("--sensor-jitter", type=int, default=0,
                          help="extra detection-latency jitter in cycles "
                               "(beyond the WCDL bound)")
    campaign.add_argument("--sanitize", action="store_true",
                          help="attach the per-cycle architectural "
                               "sanitizer (violations classify as "
                               "DUE-crash)")
    campaign.add_argument("--no-harden-rpt", action="store_true",
                          help="expose the Recovery PC Table to strikes")
    campaign.add_argument("--no-harden-rbq", action="store_true",
                          help="expose the RBQ conveyor to strikes")
    campaign.add_argument("--trial-timeout", type=float, default=120.0,
                          help="per-trial wall-clock budget in seconds "
                               "(0 disables)")
    campaign.add_argument("--journal", default="",
                          help="campaign journal path (default: derived "
                               "from the spec under the cache dir); "
                               "rerunning with the same journal resumes")
    campaign.add_argument("--no-checkpoint", action="store_true",
                          help="disable checkpoint acceleration and "
                               "simulate every trial from cycle 0 to "
                               "natural completion (results are "
                               "byte-identical either way)")
    campaign.add_argument("--checkpoint-interval", type=int, default=0,
                          help="golden checkpoint spacing in cycles "
                               "(0 = adaptive, ~64 evenly spaced)")
    campaign.add_argument("--golden-cache", type=int, default=0,
                          help="per-process golden-run LRU entries "
                               "(0 = default 8); checkpoints are "
                               "evicted with their entry")
    campaign.add_argument("--aggregate-json", default="",
                          help="also write per-cell aggregates to this "
                               "path as canonical JSON (diff-able "
                               "across runs)")
    campaign.add_argument("--metrics-json", default="",
                          help="append periodic campaign telemetry "
                               "heartbeats (JSONL) to this path")
    campaign.add_argument("--live", action="store_true",
                          help="render a live terminal dashboard "
                               "(progress, trials/sec sparkline, "
                               "per-cell Wilson CIs, stall bars, shard "
                               "lease board) on every heartbeat tick")
    campaign.add_argument("--metrics-prom", default="",
                          help="write the final metrics snapshot in "
                               "Prometheus text exposition format to "
                               "this path (validated before writing); "
                               "for 'report': read a snapshot from "
                               "this path instead")
    campaign.add_argument("--report", dest="report_html", default="",
                          help="write a self-contained HTML campaign "
                               "report here (a markdown twin lands "
                               "next to it with the .md suffix)")
    service = parser.add_argument_group(
        "service", "distributed campaign service (sharded coordinator "
                   "+ worker backends)")
    service.add_argument("--backend", default="pool",
                         choices=("pool", "inline", "subprocess", "http"),
                         help="campaign execution backend: 'pool' is the "
                              "classic single-host worker pool; the rest "
                              "run the sharded coordinator service "
                              "(default: pool, or subprocess when "
                              "--shards is given)")
    service.add_argument("--shards", type=int, default=0,
                         help="split the campaign into this many seeded "
                              "trial shards (0 = one per worker); "
                              "implies --backend subprocess unless a "
                              "backend is named")
    service.add_argument("--shard-dir", default="",
                         help="directory for shard + coordinator "
                              "journals (default: <journal>.shards)")
    service.add_argument("--fsync-interval", type=int, default=1,
                         help="fsync shard journals every N appended "
                              "trials (a SIGKILL loses at most this "
                              "window; default 1 = every trial)")
    service.add_argument("--lease-ttl", type=float, default=600.0,
                         help="shard lease time-to-live in seconds")
    service.add_argument("--heartbeat-timeout", type=float, default=30.0,
                         help="requeue a shard whose worker missed "
                              "heartbeats for this long")
    service.add_argument("--shard-fail-limit", type=int, default=3,
                         help="quarantine a shard after this many failed "
                              "leases (its unmeasured trials degrade to "
                              "infra_error)")
    service.add_argument("--max-worker-restarts", type=int, default=16,
                         help="http backend: respawn budget for dead "
                              "workers before abandoning pending shards")
    service.add_argument("--http-port", type=int, default=0,
                         help="http backend: bind the coordinator API "
                              "(and its /v1/metrics exposition) to this "
                              "port (0 = ephemeral)")
    worker = parser.add_argument_group(
        "worker", "shard worker options (experiment 'worker')")
    worker.add_argument("--shard-json", default="",
                        help="one-shot mode: run the shard assignment "
                             "serialized at this path, then exit")
    worker.add_argument("--coordinator", default="",
                        help="polling mode: lease shards from this "
                             "coordinator URL until the campaign "
                             "finishes")
    worker.add_argument("--worker-id", default="",
                        help="stable worker identity (default: pid-<n>)")
    worker.add_argument("--poll-interval", type=float, default=0.5,
                        help="seconds between lease polls when idle")
    worker.add_argument("--heartbeat-interval", type=float, default=1.0,
                        help="seconds between worker liveness beats")
    args = parser.parse_args(argv)

    if args.profile or args.profile_out:
        import cProfile
        import pstats

        profiler = cProfile.Profile()
        profiler.enable()
        try:
            status = _run(args)
        finally:
            profiler.disable()
            stats = pstats.Stats(profiler, stream=sys.stderr)
            stats.sort_stats("cumulative")
            print("\n=== cProfile: top 20 by cumulative time ===",
                  file=sys.stderr)
            stats.print_stats(20)
            if args.profile_out:
                stats.dump_stats(args.profile_out)
                print(f"raw profile written to {args.profile_out}",
                      file=sys.stderr)
        return status
    return _run(args)


def _run(args: argparse.Namespace) -> int:
    if args.experiment == "worker":
        import os

        if bool(args.shard_json) == bool(args.coordinator):
            print("worker needs exactly one of --shard-json (one-shot) "
                  "or --coordinator (polling)", file=sys.stderr)
            return 2
        worker_id = args.worker_id or f"pid-{os.getpid()}"
        if args.coordinator:
            from ..service.api import run_polling_worker

            return run_polling_worker(
                args.coordinator, worker_id,
                poll_interval_s=args.poll_interval,
                heartbeat_interval_s=args.heartbeat_interval,
                fsync_interval=args.fsync_interval)
        from ..service.worker import (ShardAssignment, run_shard,
                                      shard_complete)

        assignment = ShardAssignment.load(args.shard_json)
        heartbeat = None
        if assignment.heartbeat_path:
            from ..obs import CampaignHeartbeat

            heartbeat = CampaignHeartbeat(
                assignment.heartbeat_path, assignment.shard.trials,
                interval=assignment.heartbeat_interval_s,
                shard_id=assignment.shard.shard_id,
                worker_id=worker_id).start()
        try:
            run_shard(assignment, heartbeat=heartbeat)
        finally:
            if heartbeat is not None:
                heartbeat.stop()
        return 0 if shard_complete(assignment) else 3

    if args.experiment == "schemes":
        rows = []
        for scheme in RUNTIME_SCHEMES.values():
            rows.append([
                scheme.name,
                scheme.compile_scheme,
                "yes" if scheme.campaign else "no",
                "yes" if scheme.detects else "no",
                ",".join(scheme.workloads) if scheme.workloads else "any",
                scheme.description,
            ])
        print(rep.render_table(
            ["scheme", "compile scheme", "campaign", "detects",
             "workloads", "description"],
            rows, title="Registered resilience schemes"))
        return 0

    if args.experiment == "trace":
        from ..obs import write_chrome_trace, write_jsonl
        from .trace import run_traced

        workload = (args.benchmarks.split(",")[0]
                    if args.benchmarks else "SGEMM")
        traced = run_traced(
            workload, scheme=args.scheme, scheduler=args.scheduler,
            scale=args.scale, wcdl=args.wcdl, seed=args.seed,
            inject=not args.no_inject, capacity=args.trace_capacity)
        line = (f"traced {traced.workload}/{traced.scheme}/"
                f"{traced.scheduler} scale={traced.scale}: "
                f"{traced.cycles} cycles, "
                f"{traced.tracer.emitted} events emitted "
                f"({traced.tracer.dropped} dropped), "
                f"verified={traced.verified}")
        if traced.strike_cycle is not None:
            line += f", strike@{traced.strike_cycle}"
        print(line)
        if traced.tracer.dropped:
            print(f"warning: trace ring buffer dropped "
                  f"{traced.tracer.dropped} events — the exported trace "
                  f"is partial; raise the tracer capacity to keep them "
                  f"all", file=sys.stderr)
        if args.trace_out:
            write_chrome_trace(traced.tracer, args.trace_out,
                               workload=traced.workload)
            print(f"chrome trace written to {args.trace_out} "
                  f"(load in https://ui.perfetto.dev)")
        if args.trace_jsonl:
            count = write_jsonl(traced.tracer, args.trace_jsonl)
            print(f"{count} events written to {args.trace_jsonl}")
        if args.stall_report:
            print()
            print(rep.render_stall_breakdown(
                traced.stats,
                title=(f"Stall-cause breakdown: {traced.workload}/"
                       f"{traced.scheme}/{traced.scheduler} "
                       f"(scale={traced.scale})"),
                dropped_events=traced.tracer.dropped))
        return 0

    if args.experiment == "report":
        from .report import (load_prom_snapshot, report_from_journal,
                             write_campaign_report)

        if not args.journal:
            print("report needs --journal (a merged campaign journal; "
                  "its header carries the spec)", file=sys.stderr)
            return 2
        report = report_from_journal(args.journal)
        families = (load_prom_snapshot(args.metrics_prom)
                    if args.metrics_prom else None)
        html_path = args.report_html or args.journal + ".report.html"
        md_path = html_path.rsplit(".html", 1)[0] + ".md" \
            if html_path.endswith(".html") else html_path + ".md"
        for path in write_campaign_report(report, html_path,
                                          md_path=md_path,
                                          families=families):
            print(f"report written to {path}")
        if not args.metrics_prom:
            print("note: no --metrics-prom snapshot given; "
                  "metric-derived sections are marked unavailable",
                  file=sys.stderr)
        return 0

    if args.experiment == "campaign":
        import os

        from ..core.injection import ALL_FAULT_SITES

        if args.golden_cache:
            os.environ["REPRO_GOLDEN_CACHE"] = str(args.golden_cache)
        benches = (tuple(args.benchmarks.split(","))
                   if args.benchmarks else exp.CAMPAIGN_BENCHMARKS)
        sites = (ALL_FAULT_SITES if args.sites == "all"
                 else tuple(args.sites.split(",")))
        backend = args.backend
        if backend == "pool" and args.shards:
            backend = "subprocess"
        registry = None
        on_snapshot = None
        if args.live or args.metrics_prom or args.report_html:
            from ..obs import MetricsRegistry

            registry = MetricsRegistry()
        if args.live:
            from .dashboard import LiveDashboard

            on_snapshot = LiveDashboard(registry=registry).on_snapshot
        report = exp.fault_coverage(
            scale=args.scale, benchmarks=benches,
            schemes=tuple(args.schemes), trials=args.trials,
            seed=args.seed, wcdl=args.wcdl, sites=sites,
            sensor_miss_probability=args.sensor_miss,
            sensor_jitter_cycles=args.sensor_jitter,
            sanitize=args.sanitize,
            harden_rpt=not args.no_harden_rpt,
            harden_rbq=not args.no_harden_rbq,
            timeout_s=args.trial_timeout,
            workers=args.workers, journal_path=args.journal or None,
            fresh=args.fresh, progress=True,
            checkpoint=not args.no_checkpoint,
            checkpoint_interval=args.checkpoint_interval,
            metrics_path=args.metrics_json or None,
            registry=registry, on_snapshot=on_snapshot,
            backend=backend, shards=args.shards,
            shard_dir=args.shard_dir or None,
            fsync_interval=args.fsync_interval,
            lease_ttl_s=args.lease_ttl,
            heartbeat_timeout_s=args.heartbeat_timeout,
            fail_limit=args.shard_fail_limit,
            max_worker_restarts=args.max_worker_restarts,
            http_port=args.http_port)
        if args.aggregate_json:
            from .campaign import write_aggregates

            write_aggregates(report, args.aggregate_json)
        if args.metrics_prom:
            from ..obs import render_prom, validate_prom_text

            text = render_prom(registry)
            problems = validate_prom_text(text)
            with open(args.metrics_prom, "w", encoding="utf-8") as fh:
                fh.write(text)
            print(f"metrics snapshot written to {args.metrics_prom}")
            if problems:  # never expected; loud beats silent corruption
                print("warning: metrics snapshot failed validation: "
                      + "; ".join(problems), file=sys.stderr)
        if args.report_html:
            from .report import write_campaign_report

            md_path = (args.report_html.rsplit(".html", 1)[0] + ".md"
                       if args.report_html.endswith(".html")
                       else args.report_html + ".md")
            for path in write_campaign_report(report, args.report_html,
                                              md_path=md_path,
                                              registry=registry):
                print(f"report written to {path}")
        print(rep.render_campaign(report))
        return 0

    runner = Runner(fresh=args.fresh, workers=args.workers)
    benches = _benchmarks(args)
    name = args.experiment
    out: list[str] = []

    if name in ("table1", "all"):
        out.append(rep.render_table1(exp.table1()))
    if name in ("figure12", "all"):
        counts = (50, 75, 100, 125, 150, 175, 200, 225, 250, 275, 300)
        out.append(rep.render_figure12(exp.figure12(counts), counts))
    if name in ("table2", "all"):
        out.append(rep.render_table2(exp.table2()))
    if name in ("figure13", "all"):
        study = exp.figure13_14(args.scale, benchmarks=benches,
                                runner=runner, progress=True)
        out.append(rep.render_figure13_14(study))
        out.append(rep.render_figure15(study.geomeans()))
    elif name == "figure15":
        study = exp.figure13_14(args.scale, benchmarks=benches,
                                runner=runner, progress=True)
        out.append(rep.render_figure15(study.geomeans()))
    if name in ("figure16", "all"):
        out.append(rep.render_figure16(
            exp.figure16(args.scale, runner=runner, progress=True)))
    if name in ("figure17", "all"):
        out.append(rep.render_figure17(
            exp.figure17(args.scale, benchmarks=benches, runner=runner,
                         progress=True)))
    if name in ("figure18", "all"):
        out.append(rep.render_figure18(
            exp.figure18(args.scale, benchmarks=benches, runner=runner,
                         progress=True)))
    if name in ("figure19", "all"):
        out.append(rep.render_figure19(
            exp.figure19(args.scale, benchmarks=benches, runner=runner,
                         progress=True)))
    if name in ("section4", "all"):
        out.append(rep.render_section4(
            exp.section4(args.scale, benchmarks=benches, runner=runner)))
    if name in ("hwcost", "all"):
        out.append(rep.render_hwcost(exp.hwcost()))
    if name == "ablation":
        from .ablations import render_ablation, run_ablation

        out.append(render_ablation(run_ablation(scale=args.scale)))

    print("\n\n".join(out))
    return 0


if __name__ == "__main__":
    sys.exit(main())
