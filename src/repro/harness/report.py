"""Self-contained campaign report artifacts (HTML + markdown).

:func:`write_campaign_report` turns a finished
:class:`~repro.harness.campaign.CampaignReport` plus an optional final
metrics snapshot into a single-file HTML report (inline CSS/JS, no CDN
or network fetches — it must render from a CI artifact tarball or an
air-gapped machine) and a markdown twin for terminals and PR comments.

The metrics snapshot arrives as parsed Prometheus families (the output
of :func:`repro.obs.metrics.parse_prom_text`), so the same code path
serves both a live registry (``families_from_registry``) and a
``--metrics-prom`` file scraped from ``/v1/metrics`` hours earlier.
Everything metric-derived degrades gracefully: a report built from a
journal alone simply notes which sections lack telemetry.
"""

from __future__ import annotations

import html
from typing import TYPE_CHECKING

from ..obs.metrics import MetricsRegistry, parse_prom_text, render_prom
from .reporting import campaign_overhead_rows

if TYPE_CHECKING:
    from .campaign import CampaignReport

#: Verdict display order for the per-cell table.
_VERDICTS = ("masked", "recovered", "sdc", "due_hang", "due_crash",
             "infra_error")

_CSS = """
body { font-family: -apple-system, 'Segoe UI', Roboto, sans-serif;
       margin: 2rem auto; max-width: 72rem; color: #1b1f24;
       line-height: 1.45; padding: 0 1rem; }
h1 { font-size: 1.5rem; border-bottom: 2px solid #d0d7de;
     padding-bottom: .4rem; }
h2 { font-size: 1.15rem; margin-top: 2rem; }
table { border-collapse: collapse; margin: .75rem 0; font-size: .85rem;
        width: 100%; }
th, td { border: 1px solid #d0d7de; padding: .3rem .55rem;
         text-align: left; white-space: nowrap; }
th { background: #f6f8fa; cursor: pointer; user-select: none; }
tr:nth-child(even) td { background: #fafbfc; }
td.num { text-align: right; font-variant-numeric: tabular-nums; }
.bar { display: inline-block; height: .7rem; background: #0969da;
       vertical-align: middle; }
.bar.warn { background: #cf222e; }
.note { color: #57606a; font-size: .85rem; font-style: italic; }
.badge { display: inline-block; padding: .1rem .5rem;
         border-radius: 1rem; font-size: .8rem; color: #fff; }
.badge.ok { background: #1a7f37; }
.badge.bad { background: #cf222e; }
code { background: #f6f8fa; padding: .1rem .3rem; border-radius: 4px; }
""".strip()

# Tiny dependency-free click-to-sort: numeric when every cell parses.
_JS = """
document.querySelectorAll('th').forEach(function (th) {
  th.addEventListener('click', function () {
    var table = th.closest('table');
    var idx = Array.prototype.indexOf.call(th.parentNode.children, th);
    var rows = Array.prototype.slice.call(
      table.querySelectorAll('tbody tr'));
    var dir = th.dataset.dir === 'asc' ? -1 : 1;
    th.dataset.dir = dir === 1 ? 'asc' : 'desc';
    rows.sort(function (a, b) {
      var x = a.children[idx].textContent.trim();
      var y = b.children[idx].textContent.trim();
      var nx = parseFloat(x), ny = parseFloat(y);
      if (!isNaN(nx) && !isNaN(ny)) return (nx - ny) * dir;
      return x.localeCompare(y) * dir;
    });
    rows.forEach(function (r) { table.tBodies[0].appendChild(r); });
  });
});
""".strip()


def families_from_registry(registry: MetricsRegistry) -> dict:
    """Parsed-family view of a live registry (round-trips through the
    exposition text so file snapshots and live scrapes are identical)."""
    families, _ = parse_prom_text(render_prom(registry))
    return families


def load_prom_snapshot(path: str) -> dict:
    """Parse a ``--metrics-prom`` / ``/v1/metrics`` snapshot file."""
    with open(path, encoding="utf-8") as fh:
        families, _ = parse_prom_text(fh.read())
    return families


# ----------------------------------------------------------------------
# Data extraction (shared by HTML and markdown renderers)
# ----------------------------------------------------------------------

def _samples(families: dict | None, name: str) -> list:
    if not families or name not in families:
        return []
    return families[name]["samples"]


def _stall_rows(families: dict | None) -> list[dict]:
    """Per-(workload, scheme, site) stall-cause cycle counts from the
    ``repro_stall_cycles_total`` family (Fig. 13's comparative axis)."""
    rows: dict[tuple, dict] = {}
    for _, labels, value in _samples(families, "repro_stall_cycles_total"):
        key = (labels.get("workload", ""), labels.get("scheme", ""),
               labels.get("site", ""))
        rows.setdefault(key, {})
        cause = labels.get("cause", "?")
        rows[key][cause] = rows[key].get(cause, 0) + value
    out = []
    for (workload, scheme, site), causes in sorted(rows.items()):
        total = sum(causes.values())
        out.append({"workload": workload, "scheme": scheme, "site": site,
                    "causes": dict(sorted(causes.items())),
                    "total": total})
    return out


def _accel_counts(families: dict | None) -> dict[str, int]:
    out = {}
    for _, labels, value in _samples(families, "repro_trial_accel_total"):
        out[labels.get("kind", "?")] = int(value)
    return out


def _wall_time_stats(families: dict | None) -> list[dict]:
    """Per-(workload, scheme) wall-time count/sum/mean from the
    ``repro_trial_wall_seconds`` histogram."""
    acc: dict[tuple, dict] = {}
    for sample, labels, value in _samples(families,
                                          "repro_trial_wall_seconds"):
        key = (labels.get("workload", ""), labels.get("scheme", ""))
        entry = acc.setdefault(key, {"count": 0, "sum": 0.0})
        if sample.endswith("_count"):
            entry["count"] = int(value)
        elif sample.endswith("_sum"):
            entry["sum"] = value
    return [{"workload": w, "scheme": s, "count": e["count"],
             "sum": e["sum"],
             "mean": e["sum"] / e["count"] if e["count"] else 0.0}
            for (w, s), e in sorted(acc.items())]


def _summary(report: "CampaignReport") -> list[tuple[str, str]]:
    spec = report.spec
    total = sum(cell.trials for cell in report.cells)
    return [
        ("Status", "complete" if report.complete else "PARTIAL"),
        ("Trials recorded", str(total)),
        ("Cells", str(len(report.cells))),
        ("Workloads", ", ".join(spec.workloads)),
        ("Schemes", ", ".join(spec.schemes)),
        ("Fault sites", ", ".join(spec.sites)),
        ("Trials/cell", str(spec.trials)),
        ("Scale / GPU / scheduler",
         f"{spec.scale} / {spec.gpu} / {spec.scheduler}"),
        ("WCDL", str(spec.wcdl)),
        ("Seed", str(spec.seed)),
        ("Infra failures", str(report.infra_failures)),
        ("Journal", str(report.journal_path)),
    ]


def _cell_rows(report: "CampaignReport") -> list[dict]:
    from ..core.campaign import INFRA_ERROR, SDC

    rows = []
    for cell in report.cells:
        measured = cell.trials - cell.counts[INFRA_ERROR]
        rate, lo, hi = cell.rates[SDC]
        rows.append({
            "workload": cell.workload, "scheme": cell.scheme,
            "site": cell.site, "trials": cell.trials,
            "counts": {v: cell.counts.get(v, 0) for v in _VERDICTS},
            "sdc_ci": (f"{rate:.3f} [{lo:.3f}, {hi:.3f}]"
                       if measured else "n/a"),
            "unrecovered": cell.unrecovered,
        })
    return rows


# ----------------------------------------------------------------------
# Renderers
# ----------------------------------------------------------------------

def _h(value) -> str:
    return html.escape(str(value), quote=True)


def _html_table(headers: list[str], rows: list[list],
                numeric: set[int] = frozenset()) -> str:
    out = ["<table><thead><tr>"]
    out += [f"<th>{_h(h)}</th>" for h in headers]
    out.append("</tr></thead><tbody>")
    for row in rows:
        out.append("<tr>")
        for i, cell in enumerate(row):
            cls = ' class="num"' if i in numeric else ""
            out.append(f"<td{cls}>{cell if str(cell).startswith('<') else _h(cell)}</td>")
        out.append("</tr>")
    out.append("</tbody></table>")
    return "".join(out)


def _md_table(headers: list[str], rows: list[list]) -> str:
    lines = ["| " + " | ".join(headers) + " |",
             "|" + "|".join("---" for _ in headers) + "|"]
    for row in rows:
        lines.append("| " + " | ".join(str(c) for c in row) + " |")
    return "\n".join(lines)


def _bar_html(fraction: float, warn: bool = False,
              scale_px: int = 120) -> str:
    width = max(1, int(round(max(0.0, min(fraction, 1.0)) * scale_px)))
    cls = "bar warn" if warn else "bar"
    return (f'<span class="{cls}" style="width:{width}px"></span> '
            f"{100.0 * fraction:.1f}%")


def _overhead_table_rows(report: "CampaignReport") -> list[list]:
    rows = []
    for row in campaign_overhead_rows(report):
        coverage = (f"{row['coverage']:.3f}"
                    if row["coverage"] is not None else "n/a")
        overhead = (f"{100.0 * row['overhead']:+.2f}%"
                    if row["overhead"] is not None else "n/a")
        rows.append([row["workload"], row["site"], row["scheme"],
                     coverage, overhead, row["sdc"], row["unrecovered"]])
    return rows


def render_campaign_html(report: "CampaignReport",
                         families: dict | None = None,
                         title: str = "") -> str:
    """The full self-contained HTML document as a string."""
    spec = report.spec
    title = title or (f"Fault-injection campaign report — "
                      f"{'/'.join(spec.workloads)} @ {spec.scale}")
    parts = [
        "<!DOCTYPE html>",
        '<html lang="en"><head><meta charset="utf-8">',
        f"<title>{_h(title)}</title>",
        f"<style>{_CSS}</style></head><body>",
        f"<h1>{_h(title)}</h1>",
    ]
    badge = ('<span class="badge ok">complete</span>' if report.complete
             else '<span class="badge bad">partial</span>')
    parts.append(f"<p>{badge}</p>")

    parts.append("<h2>Campaign summary</h2>")
    parts.append(_html_table(
        ["Quantity", "Value"],
        [[k, v] for k, v in _summary(report)]))

    parts.append("<h2>Per-cell verdicts (Wilson 95% CI)</h2>")
    cell_rows = []
    for row in _cell_rows(report):
        c = row["counts"]
        cell_rows.append([
            row["workload"], row["scheme"], row["site"], row["trials"],
            c["masked"], c["recovered"], c["sdc"], c["due_hang"],
            c["due_crash"], c["infra_error"], row["sdc_ci"],
            _bar_html(row["unrecovered"] / row["trials"]
                      if row["trials"] else 0.0,
                      warn=row["unrecovered"] > 0),
        ])
    parts.append(_html_table(
        ["Workload", "Scheme", "Site", "Trials", "Masked", "Recovered",
         "SDC", "DUE-hang", "DUE-crash", "Infra", "SDC rate [95% CI]",
         "Unrecovered"],
        cell_rows, numeric={3, 4, 5, 6, 7, 8, 9}))

    parts.append("<h2>Coverage vs overhead per fault site</h2>")
    overhead_rows = _overhead_table_rows(report)
    if overhead_rows:
        parts.append(_html_table(
            ["Workload", "Site", "Scheme", "Coverage", "Overhead",
             "SDC", "Unrecovered"],
            overhead_rows, numeric={5, 6}))
        parts.append('<p class="note">Coverage = fraction of measured '
                     "trials whose output stayed bit-exact; overhead = "
                     "fault-free cycles vs the baseline scheme on the "
                     "same workload (the paper&#8217;s Flame-vs-"
                     "duplication axis).</p>")
    else:
        parts.append('<p class="note">Unavailable: no golden cycle '
                     "counts in the journal (or no baseline scheme in "
                     "the campaign).</p>")

    parts.append("<h2>Stall-cause breakdown (Fig. 13 accounting)</h2>")
    stalls = _stall_rows(families)
    if stalls:
        causes = sorted({c for row in stalls for c in row["causes"]})
        stall_rows = []
        for row in stalls:
            cells = [row["workload"], row["scheme"], row["site"]]
            for cause in causes:
                cycles = row["causes"].get(cause, 0)
                share = cycles / row["total"] if row["total"] else 0.0
                cells.append(f"{int(cycles)} ({100.0 * share:.1f}%)")
            cells.append(int(row["total"]))
            stall_rows.append(cells)
        parts.append(_html_table(
            ["Workload", "Scheme", "Site"] + causes + ["Total"],
            stall_rows, numeric={len(causes) + 3}))
    else:
        parts.append('<p class="note">Unavailable: no metrics snapshot '
                     "was supplied (run the campaign with "
                     "<code>--metrics-prom</code> or scrape "
                     "<code>/v1/metrics</code>, then pass the file to "
                     "the report command). Journals stay telemetry-free "
                     "by design so they remain byte-deterministic.</p>")

    accel = _accel_counts(families)
    walls = _wall_time_stats(families)
    parts.append("<h2>Trial acceleration &amp; wall time</h2>")
    if accel:
        parts.append(_html_table(
            ["Acceleration", "Trials"],
            [[kind, count] for kind, count in sorted(accel.items())],
            numeric={1}))
    if walls:
        parts.append(_html_table(
            ["Workload", "Scheme", "Trials", "Wall time (s)",
             "Mean (s)"],
            [[w["workload"], w["scheme"], w["count"],
              f"{w['sum']:.2f}", f"{w['mean']:.3f}"] for w in walls],
            numeric={2, 3, 4}))
    if not accel and not walls:
        parts.append('<p class="note">Unavailable without a metrics '
                     "snapshot.</p>")

    parts.append('<p class="note">Self-contained report: inline CSS/JS '
                 "only, no external requests. Click a column header to "
                 "sort.</p>")
    parts.append(f"<script>{_JS}</script>")
    parts.append("</body></html>")
    return "\n".join(parts)


def render_campaign_markdown(report: "CampaignReport",
                             families: dict | None = None) -> str:
    spec = report.spec
    lines = [f"# Fault-injection campaign report — "
             f"{'/'.join(spec.workloads)} @ {spec.scale}", ""]
    lines.append("**Status:** "
                 + ("complete" if report.complete else "PARTIAL"))
    lines += ["", "## Campaign summary", "",
              _md_table(["Quantity", "Value"],
                        [[k, v] for k, v in _summary(report)])]

    lines += ["", "## Per-cell verdicts (Wilson 95% CI)", ""]
    rows = []
    for row in _cell_rows(report):
        c = row["counts"]
        rows.append([row["workload"], row["scheme"], row["site"],
                     row["trials"], c["masked"], c["recovered"],
                     c["sdc"], c["due_hang"], c["due_crash"],
                     c["infra_error"], row["sdc_ci"],
                     row["unrecovered"]])
    lines.append(_md_table(
        ["Workload", "Scheme", "Site", "Trials", "Masked", "Recovered",
         "SDC", "DUE-hang", "DUE-crash", "Infra", "SDC rate [95% CI]",
         "Unrecovered"], rows))

    overhead_rows = _overhead_table_rows(report)
    lines += ["", "## Coverage vs overhead per fault site", ""]
    if overhead_rows:
        lines.append(_md_table(
            ["Workload", "Site", "Scheme", "Coverage", "Overhead",
             "SDC", "Unrecovered"], overhead_rows))
    else:
        lines.append("*Unavailable: no golden cycle counts or no "
                     "baseline scheme.*")

    stalls = _stall_rows(families)
    lines += ["", "## Stall-cause breakdown (Fig. 13 accounting)", ""]
    if stalls:
        causes = sorted({c for row in stalls for c in row["causes"]})
        rows = []
        for row in stalls:
            cells = [row["workload"], row["scheme"], row["site"]]
            for cause in causes:
                cycles = row["causes"].get(cause, 0)
                share = cycles / row["total"] if row["total"] else 0.0
                cells.append(f"{int(cycles)} ({100.0 * share:.1f}%)")
            cells.append(int(row["total"]))
            rows.append(cells)
        lines.append(_md_table(
            ["Workload", "Scheme", "Site"] + causes + ["Total"], rows))
    else:
        lines.append("*Unavailable: no metrics snapshot supplied "
                     "(`--metrics-prom` / `/v1/metrics` scrape).*")

    accel = _accel_counts(families)
    if accel:
        lines += ["", "## Trial acceleration", "",
                  _md_table(["Acceleration", "Trials"],
                            [[k, v] for k, v in sorted(accel.items())])]
    return "\n".join(lines) + "\n"


def write_campaign_report(report: "CampaignReport", html_path: str,
                          md_path: str | None = None,
                          families: dict | None = None,
                          registry: MetricsRegistry | None = None
                          ) -> list[str]:
    """Write the HTML (and optional markdown) artifacts; returns the
    list of paths written.  ``registry`` is a convenience alternative to
    pre-parsed ``families``."""
    if families is None and registry is not None:
        families = families_from_registry(registry)
    written = []
    with open(html_path, "w", encoding="utf-8") as fh:
        fh.write(render_campaign_html(report, families))
    written.append(html_path)
    if md_path:
        with open(md_path, "w", encoding="utf-8") as fh:
            fh.write(render_campaign_markdown(report, families))
        written.append(md_path)
    return written


def report_from_journal(journal_path: str) -> "CampaignReport":
    """Rebuild a :class:`CampaignReport` from a merged journal alone —
    the spec rides in the journal header, so the standalone ``report``
    command needs no other inputs."""
    from ..core.campaign import CampaignJournal, INFRA_ERROR, aggregate
    from .campaign import CampaignReport

    journal = CampaignJournal(journal_path)
    spec = journal.load_spec()
    results = journal.load(spec)
    expected = {t.key for t in spec.trial_specs()}
    return CampaignReport(
        spec=spec, results=results, cells=aggregate(results),
        journal_path=journal_path,
        complete={r.key for r in results} >= expected,
        infra_failures=sum(r.outcome == INFRA_ERROR for r in results))


__all__ = ["families_from_registry", "load_prom_snapshot",
           "render_campaign_html", "render_campaign_markdown",
           "report_from_journal", "write_campaign_report"]
