"""Plain-text rendering of the experiment results."""

from __future__ import annotations

from typing import TYPE_CHECKING

from .experiments import OverheadStudy

if TYPE_CHECKING:
    from .campaign import CampaignReport


def render_table(headers: list[str], rows: list[list], title: str = "") -> str:
    """Simple fixed-width table renderer."""
    cells = [[str(c) for c in row] for row in rows]
    widths = [max(len(h), *(len(r[i]) for r in cells)) if cells else len(h)
              for i, h in enumerate(headers)]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in cells:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def pct(ratio: float) -> str:
    """Normalized time -> signed overhead percentage."""
    return f"{100.0 * (ratio - 1.0):+.2f}%"


def render_table1(rows: list[tuple[str, str, str]]) -> str:
    return render_table(["Suite", "Application", "Abbr."],
                        [list(r) for r in rows],
                        title="Table I: benchmarks used for simulation")


def render_figure12(curves: dict[str, list[int]],
                    sensor_counts: tuple[int, ...]) -> str:
    headers = ["Sensors/SM"] + list(curves)
    rows = []
    for i, n in enumerate(sensor_counts):
        rows.append([n] + [curves[gpu][i] for gpu in curves])
    return render_table(headers, rows,
                        title="Figure 12: WCDL (cycles) vs sensors per SM")


def render_table2(rows: list[dict]) -> str:
    body = [[r["gpu"], int(r["core_frequency_mhz"]), r["sm_count"],
             r["sensors_per_sm"], f"{r['area_overhead']:.4%}"]
            for r in rows]
    return render_table(
        ["GPU", "Core MHz", "SMs", "Sensors/SM", "Area overhead"], body,
        title="Table II: sensors required for 20-cycle WCDL")


def render_figure13_14(study: OverheadStudy) -> str:
    headers = ["Benchmark"] + [s for s in study.schemes]
    rows = []
    for bench in study.benchmarks:
        rows.append([bench] + [f"{study.normalized[bench][s]:.3f}"
                               for s in study.schemes])
    gm = study.geomeans()
    rows.append(["GEOMEAN"] + [f"{gm[s]:.3f}" for s in study.schemes])
    return render_table(
        headers, rows,
        title=("Figures 13/14: normalized execution time per scheme "
               f"(scale={study.scale}, WCDL=20, GTO, GTX480)"))


def render_figure15(geomeans: dict[str, float]) -> str:
    rows = [[scheme, f"{ratio:.4f}", pct(ratio)]
            for scheme, ratio in geomeans.items()]
    return render_table(["Scheme", "Normalized time", "Overhead"], rows,
                        title="Figure 15: geomean normalized execution time")


def render_figure16(result: dict[str, dict[str, float]]) -> str:
    rows = [[bench, f"{v['without_opt']:.3f}", f"{v['with_opt']:.3f}",
             pct(v["without_opt"]), pct(v["with_opt"])]
            for bench, v in result.items()]
    return render_table(
        ["Benchmark", "No-opt", "With-opt", "No-opt ovh", "With-opt ovh"],
        rows,
        title="Figure 16: impact of the idempotent-region optimization")


def render_figure17(result: dict[int, float]) -> str:
    rows = [[w, f"{r:.4f}", pct(r)] for w, r in result.items()]
    return render_table(["WCDL", "Normalized time", "Overhead"], rows,
                        title="Figure 17: Flame overhead vs WCDL")


def render_figure18(result: dict[str, float]) -> str:
    rows = [[s, f"{r:.4f}", pct(r)] for s, r in result.items()]
    return render_table(["Scheduler", "Normalized time", "Overhead"], rows,
                        title="Figure 18: Flame overhead per warp scheduler")


def render_figure19(result: dict[str, float]) -> str:
    rows = [[g, f"{r:.4f}", pct(r)] for g, r in result.items()]
    return render_table(["GPU", "Normalized time", "Overhead"], rows,
                        title="Figure 19: Flame overhead per architecture")


def render_section4(report: dict) -> str:
    rows = [[k, f"{v:.4f}" if isinstance(v, float) else v]
            for k, v in report.items()]
    return render_table(["Quantity", "Value"], rows,
                        title="Section IV: fault-rate arithmetic")


def render_campaign(report: "CampaignReport") -> str:
    """Per-cell taxonomy counts plus SDC / unrecovered rates with
    Wilson 95% confidence intervals."""
    from ..core.campaign import (DUE_CRASH, DUE_HANG, INFRA_ERROR, MASKED,
                                 RECOVERED, SDC)

    def ci(cell, outcome):
        rate, lo, hi = cell.rates[outcome]
        return f"{rate:.3f} [{lo:.3f}, {hi:.3f}]"

    rows = []
    for cell in report.cells:
        measured = cell.trials - cell.counts[INFRA_ERROR]
        rows.append([
            cell.workload, cell.scheme, cell.site, cell.trials,
            cell.counts[MASKED], cell.counts[RECOVERED], cell.counts[SDC],
            cell.counts[DUE_HANG], cell.counts[DUE_CRASH],
            cell.counts[INFRA_ERROR],
            ci(cell, SDC) if measured else "n/a",
            cell.unrecovered,
        ])
    spec = report.spec
    status = "complete" if report.complete else "PARTIAL"
    knobs = ""
    if spec.sensor_miss_probability or spec.sensor_jitter_cycles:
        knobs += (f", sensor miss={spec.sensor_miss_probability:g} "
                  f"jitter={spec.sensor_jitter_cycles}")
    if spec.sanitize:
        knobs += ", sanitizer on"
    if not spec.harden_rpt or not spec.harden_rbq:
        soft = [n for n, h in (("RPT", spec.harden_rpt),
                               ("RBQ", spec.harden_rbq)) if not h]
        knobs += f", unhardened: {'+'.join(soft)}"
    title = (f"Fault-injection campaign ({status}): {spec.trials} "
             f"trials/cell, scale={spec.scale}, {spec.gpu}, "
             f"{spec.scheduler}, WCDL={spec.wcdl}, seed={spec.seed}"
             f"{knobs}\n"
             f"journal: {report.journal_path}")
    rendered = render_table(
        ["Workload", "Scheme", "Site", "Trials", "Masked", "Recovered",
         "SDC", "DUE-hang", "DUE-crash", "Infra", "SDC rate [95% CI]",
         "Unrecovered"],
        rows, title=title)
    head_to_head = render_campaign_head_to_head(report)
    if head_to_head:
        rendered += "\n\n" + head_to_head
    return rendered


def campaign_overhead_rows(report: "CampaignReport") -> list[dict]:
    """Coverage-vs-overhead data per (workload, fault site, scheme).

    *Coverage* is the fraction of measured trials whose output stayed
    bit-exact (masked + recovered); *overhead* is the scheme's fault-free
    golden cycle count relative to the campaign's ``baseline`` scheme on
    the same workload (``None`` when baseline is not in the campaign).
    This is the paper's comparative axis — Flame's sub-percent overhead
    against the 15-45% duplication band — per fault site.  Shared by the
    plain-text head-to-head table and the HTML/markdown report artifact.
    """
    from ..core.campaign import INFRA_ERROR, MASKED, RECOVERED, SDC

    golden: dict = {}
    for result in report.results:
        if result.golden_cycles:
            golden.setdefault((result.workload, result.scheme),
                              result.golden_cycles)
    if not golden:
        return []
    rows = []
    for cell in sorted(report.cells,
                       key=lambda c: (c.workload, c.site, c.scheme)):
        measured = cell.trials - cell.counts[INFRA_ERROR]
        covered = cell.counts[MASKED] + cell.counts[RECOVERED]
        base = golden.get((cell.workload, "baseline"))
        mine = golden.get((cell.workload, cell.scheme))
        rows.append({
            "workload": cell.workload, "site": cell.site,
            "scheme": cell.scheme,
            "coverage": covered / measured if measured else None,
            "overhead": (mine / base - 1.0) if base and mine else None,
            "sdc": cell.counts[SDC],
            "unrecovered": cell.unrecovered,
        })
    return rows


def render_campaign_head_to_head(report: "CampaignReport") -> str:
    """Plain-text rendering of :func:`campaign_overhead_rows`."""
    data = campaign_overhead_rows(report)
    if not data:
        return ""
    rows = []
    for row in data:
        coverage = (f"{row['coverage']:.3f}"
                    if row["coverage"] is not None else "n/a")
        overhead = (f"{100.0 * row['overhead']:+.2f}%"
                    if row["overhead"] is not None else "n/a")
        rows.append([row["workload"], row["site"], row["scheme"],
                     coverage, overhead, row["sdc"], row["unrecovered"]])
    return render_table(
        ["Workload", "Site", "Scheme", "Coverage", "Overhead", "SDC",
         "Unrecovered"],
        rows, title="Head-to-head: coverage vs overhead per fault site")


def render_stall_breakdown(stats, title: str = "",
                           dropped_events: int = 0) -> str:
    """Normalized where-the-cycles-went table for one run's merged
    :class:`~repro.sim.stats.SimStats` (Fig. 13-style breakdown: each
    active cycle is either an issue or exactly one attributed stall
    cause, so the percentages sum to 100).

    ``dropped_events`` (the tracer's ring-buffer drop count) appends a
    caveat line when nonzero — the stall *ledger* is always complete
    (it is counted, not traced), but a reader correlating the table
    against an exported trace should know the trace itself is partial.
    """
    from ..sim.stats import STALL_CAUSES

    active = max(stats.active_cycles, 1)
    rows = [["issue", stats.issue_cycles,
             f"{100.0 * stats.issue_cycles / active:.2f}%"]]
    for cause in STALL_CAUSES:
        cycles = stats.stall_cycles.get(cause, 0)
        if cycles:
            rows.append([cause, cycles,
                         f"{100.0 * cycles / active:.2f}%"])
    rows.append(["TOTAL (active)", stats.active_cycles, "100.00%"])
    rendered = render_table(
        ["Cause", "Cycles", "Share"], rows,
        title=title or "Stall-cause breakdown (per-SM active cycles)")
    if dropped_events:
        rendered += (f"\nnote: trace ring buffer dropped "
                     f"{dropped_events} events (ledger above is still "
                     f"complete; raise --trace-capacity for a full "
                     f"trace)")
    return rendered


def render_hwcost(rows: list[dict]) -> str:
    body = [[r["gpu"], r["wcdl"], r["rbq_bits"], r["rpt_bits"],
             r["sensors_per_sm"], f"{r['sensor_area_overhead']:.4%}"]
            for r in rows]
    return render_table(
        ["GPU", "WCDL", "RBQ bits", "RPT bits", "Sensors/SM", "Area ovh"],
        body, title="Section VI-A2: Flame hardware cost")
