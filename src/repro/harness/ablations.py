"""Ablation studies for the design choices DESIGN.md calls out.

Each ablation disables one compiler design decision and measures its
effect on Flame's compiled-code shape and runtime overhead:

* ``no_provenance`` — alias analysis without pointer-provenance
  disambiguation: every load/store pair on different bases may alias,
  so the region former cuts far more often;
* ``no_compaction`` — renaming without idempotence-aware register
  reuse: one fresh register per renamed definition, inflating register
  pressure and potentially occupancy;
* ``no_region_opt`` — Flame without the Section III-E region-extension
  optimization (this is exactly the paper's Figure 16 and is included
  here for completeness of the ablation matrix).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..arch import GTX480
from ..compiler import compile_kernel, prepare_launch
from ..core import FlameRuntime
from ..sim import Gpu, LaunchConfig
from ..workloads import WORKLOADS

#: Representative mix: streaming, tiled-barrier, reduction, scatter.
DEFAULT_BENCHMARKS = ("SGEMM", "LBM", "CS", "SP", "Kmeans", "GUPS")

ABLATIONS = ("full", "no_provenance", "no_compaction", "no_region_opt")


@dataclass
class AblationRow:
    """One (benchmark, variant) measurement."""

    benchmark: str
    variant: str
    cycles: int
    normalized: float
    boundaries: int
    regs_per_thread: int
    avg_region_size: float


def _compile_variant(kernel, variant: str, wcdl: int):
    if variant == "full":
        return compile_kernel(kernel, "flame", wcdl=wcdl)
    if variant == "no_provenance":
        return compile_kernel(kernel, "flame", wcdl=wcdl,
                              use_provenance=False)
    if variant == "no_compaction":
        return compile_kernel(kernel, "flame", wcdl=wcdl, compact=False)
    if variant == "no_region_opt":
        return compile_kernel(kernel, "sensor_renaming", wcdl=wcdl)
    raise ValueError(f"unknown ablation variant {variant!r}")


def run_ablation(benchmarks=DEFAULT_BENCHMARKS, scale: str = "tiny",
                 wcdl: int = 20) -> list[AblationRow]:
    """Run every ablation variant on every benchmark.

    Returns one row per (benchmark, variant), normalized against the
    unprotected baseline of the same benchmark.
    """
    rows: list[AblationRow] = []
    for abbr in benchmarks:
        instance = WORKLOADS[abbr].instance(scale)

        def launch(compiled, runtime):
            gpu = Gpu(GTX480, resilience=runtime) if runtime \
                else Gpu(GTX480)
            mem = instance.fresh_memory()
            params, mem = prepare_launch(
                compiled, instance.launch.params, mem,
                instance.launch.num_blocks,
                instance.launch.threads_per_block)
            launch_cfg = LaunchConfig(grid=instance.launch.grid,
                                      block=instance.launch.block,
                                      params=params)
            result = gpu.launch(compiled.kernel, launch_cfg, mem,
                                regs_per_thread=compiled.regs_per_thread)
            assert instance.verify(mem), (abbr, "ablation broke semantics")
            return result

        base_compiled = compile_kernel(instance.kernel, "baseline")
        base = launch(base_compiled, None)
        for variant in ABLATIONS:
            compiled = _compile_variant(instance.kernel, variant, wcdl)
            result = launch(compiled, FlameRuntime(wcdl))
            rows.append(AblationRow(
                benchmark=abbr,
                variant=variant,
                cycles=result.cycles,
                normalized=result.cycles / base.cycles,
                boundaries=compiled.regions.boundaries,
                regs_per_thread=compiled.regs_per_thread,
                avg_region_size=result.stats.avg_region_size,
            ))
    return rows


def render_ablation(rows: list[AblationRow]) -> str:
    from .reporting import render_table

    body = [[r.benchmark, r.variant, f"{r.normalized:.3f}", r.boundaries,
             r.regs_per_thread, f"{r.avg_region_size:.1f}"]
            for r in rows]
    return render_table(
        ["Benchmark", "Variant", "Norm. time", "Boundaries", "Regs",
         "Avg region"],
        body,
        title="Ablation: Flame design choices (normalized to baseline)")
