"""Experiment harness: regenerates every table and figure of the paper."""

from . import ablations, experiments, reporting
from .campaign import (CampaignReport, CampaignRunner, default_journal_path,
                       run_campaign)
from .experiments import (ALL_BENCHMARKS, CAMPAIGN_BENCHMARKS,
                          FIG13_SCHEMES, OverheadStudy, fault_coverage,
                          figure12, figure13_14, figure15, figure16,
                          figure17, figure18, figure19, geomean, hwcost,
                          optimization_eligible_benchmarks, section4, table1,
                          table2)
from .runner import RunOutcome, Runner, RunSpec, execute, normalized_time

__all__ = [
    "ALL_BENCHMARKS", "CAMPAIGN_BENCHMARKS", "CampaignReport",
    "CampaignRunner", "FIG13_SCHEMES", "OverheadStudy", "RunOutcome",
    "Runner", "RunSpec", "default_journal_path", "execute", "experiments",
    "fault_coverage", "figure12", "figure13_14", "figure15", "figure16",
    "figure17", "figure18", "ablations", "figure19", "geomean", "hwcost",
    "normalized_time", "optimization_eligible_benchmarks", "reporting",
    "run_campaign", "section4", "table1", "table2",
]
