"""Experiment harness: regenerates every table and figure of the paper."""

from . import ablations, experiments, reporting
from .experiments import (ALL_BENCHMARKS, FIG13_SCHEMES, OverheadStudy,
                          figure12, figure13_14, figure15, figure16,
                          figure17, figure18, figure19, geomean, hwcost,
                          optimization_eligible_benchmarks, section4, table1,
                          table2)
from .runner import RunOutcome, Runner, RunSpec, execute, normalized_time

__all__ = [
    "ALL_BENCHMARKS", "FIG13_SCHEMES", "OverheadStudy", "RunOutcome",
    "Runner", "RunSpec", "execute", "experiments", "figure12",
    "figure13_14", "figure15", "figure16", "figure17", "figure18",
    "ablations", "figure19", "geomean", "hwcost", "normalized_time",
    "optimization_eligible_benchmarks", "reporting", "section4", "table1",
    "table2",
]
