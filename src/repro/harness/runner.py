"""Experiment runner: compile + launch + verify one configuration.

Results are cached on disk (keyed by the full run specification) so the
figure harnesses can share baselines and re-render cheaply; pass
``fresh=True`` to bypass the cache.
"""

from __future__ import annotations

import json
import os
import tempfile
from dataclasses import asdict, dataclass

from ..arch import gpu_by_name
from ..compiler import compile_kernel, prepare_launch, scheme_by_name
from ..core import runtime_scheme_by_name
from ..errors import ReproError
from ..sim import Gpu, LaunchConfig
from ..workloads import workload_by_name

#: Bump to invalidate cached results after behaviour-changing edits.
CACHE_VERSION = 5

_DEFAULT_CACHE_DIR = os.path.join(
    os.path.dirname(os.path.dirname(os.path.dirname(
        os.path.dirname(os.path.abspath(__file__))))), ".repro_cache")


@dataclass(frozen=True)
class RunSpec:
    """Everything identifying one simulation run."""

    workload: str
    scheme: str = "baseline"
    scale: str = "small"
    gpu: str = "GTX480"
    scheduler: str = "GTO"
    wcdl: int = 20

    def cache_key(self) -> str:
        return (f"v{CACHE_VERSION}_{self.workload}_{self.scheme}_"
                f"{self.scale}_{self.gpu.replace(' ', '')}_"
                f"{self.scheduler}_w{self.wcdl}")


@dataclass
class RunOutcome:
    """Result of one run: timing plus the stats the figures need."""

    spec: RunSpec
    cycles: int
    instructions: int
    verified: bool
    avg_region_size: float
    boundaries: int
    static_regions: int
    renames: int
    shadow_instructions: int
    ckpt_instructions: int
    rbq_enqueues: int
    l1_miss_rate: float
    shared_bank_conflicts: int
    occupancy_warps: int
    regs_per_thread: int

    def as_dict(self) -> dict:
        data = asdict(self)
        data["spec"] = asdict(self.spec)
        return data

    @staticmethod
    def from_dict(data: dict) -> "RunOutcome":
        spec = RunSpec(**data.pop("spec"))
        return RunOutcome(spec=spec, **data)


def execute(spec: RunSpec) -> RunOutcome:
    """Compile and simulate one configuration (no caching)."""
    workload = workload_by_name(spec.workload)
    instance = workload.instance(spec.scale)
    rscheme = runtime_scheme_by_name(spec.scheme)
    scheme = scheme_by_name(rscheme.compile_scheme)
    compiled = compile_kernel(instance.kernel, scheme, wcdl=spec.wcdl)
    config = gpu_by_name(spec.gpu)
    runtime = rscheme.build(wcdl=spec.wcdl)
    gpu = Gpu(config, resilience=runtime, scheduler=spec.scheduler)
    mem = instance.fresh_memory()
    params, mem = prepare_launch(
        compiled, instance.launch.params, mem,
        instance.launch.num_blocks, instance.launch.threads_per_block,
        warp_size=config.warp_size)
    launch = LaunchConfig(grid=instance.launch.grid,
                          block=instance.launch.block, params=params)
    result = gpu.launch(compiled.kernel, launch, mem,
                        regs_per_thread=compiled.regs_per_thread)
    verified = instance.verify(mem)
    if not verified:
        raise ReproError(
            f"{spec.workload} produced wrong output under {spec.scheme}")
    regions = compiled.regions
    return RunOutcome(
        spec=spec,
        cycles=result.cycles,
        instructions=result.stats.instructions,
        verified=verified,
        avg_region_size=result.stats.avg_region_size,
        boundaries=regions.boundaries if regions else 0,
        static_regions=compiled.static_region_count,
        renames=regions.renames if regions else 0,
        shadow_instructions=result.stats.shadow_instructions,
        ckpt_instructions=result.stats.ckpt_instructions,
        rbq_enqueues=result.stats.rbq_enqueues,
        l1_miss_rate=result.stats.l1_miss_rate,
        shared_bank_conflicts=result.stats.shared_bank_conflicts,
        occupancy_warps=result.stats.occupancy_warps,
        regs_per_thread=compiled.regs_per_thread,
    )


class Runner:
    """Caching, optionally parallel, experiment runner."""

    def __init__(self, cache_dir: str | None = None,
                 workers: int | None = None, fresh: bool = False) -> None:
        self.cache_dir = cache_dir or os.environ.get(
            "REPRO_CACHE_DIR", _DEFAULT_CACHE_DIR)
        self.workers = workers if workers is not None else \
            max(1, (os.cpu_count() or 1))
        self.fresh = fresh
        self._memory: dict[str, RunOutcome] = {}

    def _cache_path(self, spec: RunSpec) -> str:
        return os.path.join(self.cache_dir, spec.cache_key() + ".json")

    def _load(self, spec: RunSpec) -> RunOutcome | None:
        if self.fresh:
            return None
        key = spec.cache_key()
        if key in self._memory:
            return self._memory[key]
        path = self._cache_path(spec)
        if os.path.exists(path):
            try:
                with open(path) as handle:
                    outcome = RunOutcome.from_dict(json.load(handle))
            except (json.JSONDecodeError, TypeError, KeyError):
                return None
            self._memory[key] = outcome
            return outcome
        return None

    def _store(self, outcome: RunOutcome) -> None:
        self._memory[outcome.spec.cache_key()] = outcome
        os.makedirs(self.cache_dir, exist_ok=True)
        path = self._cache_path(outcome.spec)
        # Write-then-rename so a killed process can never leave a
        # truncated cache entry: the temp file lives in cache_dir to
        # keep os.replace on one filesystem (rename is atomic there).
        fd, tmp_path = tempfile.mkstemp(dir=self.cache_dir,
                                        prefix=".tmp_",
                                        suffix=".json")
        try:
            with os.fdopen(fd, "w") as handle:
                json.dump(outcome.as_dict(), handle)
            os.replace(tmp_path, path)
        except BaseException:
            try:
                os.unlink(tmp_path)
            except OSError:
                pass
            raise

    def run(self, spec: RunSpec) -> RunOutcome:
        cached = self._load(spec)
        if cached is not None:
            return cached
        outcome = execute(spec)
        self._store(outcome)
        return outcome

    def run_many(self, specs: list[RunSpec],
                 progress: bool = False) -> list[RunOutcome]:
        """Run a batch, using a process pool for uncached specs."""
        outcomes: dict[str, RunOutcome] = {}
        missing: list[RunSpec] = []
        seen: set[str] = set()
        for spec in specs:
            key = spec.cache_key()
            if key in seen:
                continue
            seen.add(key)
            cached = self._load(spec)
            if cached is not None:
                outcomes[key] = cached
            else:
                missing.append(spec)
        failures: list[tuple[RunSpec, BaseException]] = []
        if missing:
            if self.workers > 1 and len(missing) > 1:
                from concurrent.futures import (ProcessPoolExecutor,
                                                as_completed)

                # submit + as_completed (rather than pool.map) so one
                # failing spec surfaces its own error and the rest of
                # the batch still completes.
                with ProcessPoolExecutor(max_workers=self.workers) as pool:
                    futures = {pool.submit(execute, spec): spec
                               for spec in missing}
                    for i, future in enumerate(as_completed(futures)):
                        spec = futures[future]
                        try:
                            outcome = future.result()
                        except Exception as exc:
                            failures.append((spec, exc))
                            if progress:
                                print(f"  [{i + 1}/{len(missing)}] "
                                      f"{spec.workload}/{spec.scheme} "
                                      f"FAILED: {exc}", flush=True)
                            continue
                        self._store(outcome)
                        outcomes[outcome.spec.cache_key()] = outcome
                        if progress:
                            print(f"  [{i + 1}/{len(missing)}] "
                                  f"{outcome.spec.workload}/"
                                  f"{outcome.spec.scheme} done", flush=True)
            else:
                for i, spec in enumerate(missing):
                    try:
                        outcome = self.run(spec)
                    except Exception as exc:
                        failures.append((spec, exc))
                        if progress:
                            print(f"  [{i + 1}/{len(missing)}] "
                                  f"{spec.workload}/{spec.scheme} "
                                  f"FAILED: {exc}", flush=True)
                        continue
                    outcomes[spec.cache_key()] = outcome
                    if progress:
                        print(f"  [{i + 1}/{len(missing)}] "
                              f"{spec.workload}/{spec.scheme} done",
                              flush=True)
        if failures:
            detail = "; ".join(
                f"{spec.workload}/{spec.scheme}/{spec.scale}: "
                f"{type(exc).__name__}: {exc}" for spec, exc in failures)
            raise ReproError(
                f"{len(failures)} of {len(missing)} uncached runs failed "
                f"({len(missing) - len(failures)} completed and were "
                f"cached) — {detail}")
        return [outcomes[spec.cache_key()] for spec in specs]


def normalized_time(runner: Runner, spec: RunSpec) -> float:
    """Execution time of ``spec`` normalized to its no-resilience
    baseline on the same GPU/scheduler/scale."""
    # The baseline ignores WCDL; pin it so WCDL sweeps share one baseline.
    baseline = RunSpec(workload=spec.workload, scheme="baseline",
                       scale=spec.scale, gpu=spec.gpu,
                       scheduler=spec.scheduler, wcdl=20)
    base = runner.run(baseline)
    run = runner.run(spec)
    return run.cycles / base.cycles
