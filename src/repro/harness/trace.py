"""Traced single runs: one workload, full event timeline, stall ledger.

``run_traced`` is :func:`repro.harness.runner.execute` with the
observability stack attached: a :class:`~repro.obs.Tracer` collects the
cycle-level event stream and, when injection is enabled, a single
strike is scheduled mid-kernel so the trace also exhibits the
detection/recovery machinery (strike, detection, rollback, region
verification).  The strike cycle is sampled from an untraced golden
pre-run, which guarantees it lands while the kernel is still live.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..arch import gpu_by_name
from ..compiler import compile_kernel, prepare_launch, scheme_by_name
from ..core import runtime_scheme_by_name
from ..core.injection import FaultInjector
from ..errors import ConfigError, ReproError
from ..obs import Tracer
from ..sim import Gpu, LaunchConfig
from ..workloads import workload_by_name


@dataclass
class TracedRun:
    """Everything the trace CLI renders: timeline + stall ledger."""

    workload: str
    scheme: str
    scheduler: str
    scale: str
    cycles: int
    verified: bool
    tracer: Tracer
    stats: object  # merged SimStats of the traced run
    strike_cycle: int | None = None
    injections: list = field(default_factory=list)


def _launch_once(workload_name: str, scheme_name: str, scheduler: str,
                 scale: str, gpu_name: str, wcdl: int, tracer=None,
                 injector=None):
    """Compile, assemble a fresh GPU, and run one launch."""
    workload = workload_by_name(workload_name)
    instance = workload.instance(scale)
    rscheme = runtime_scheme_by_name(scheme_name)
    scheme = scheme_by_name(rscheme.compile_scheme)
    compiled = compile_kernel(instance.kernel, scheme, wcdl=wcdl)
    config = gpu_by_name(gpu_name)
    runtime = rscheme.build(wcdl=wcdl)
    gpu = Gpu(config, resilience=runtime, scheduler=scheduler,
              tracer=tracer)
    if injector is not None:
        gpu.fault_injector = injector
    mem = instance.fresh_memory()
    params, mem = prepare_launch(
        compiled, instance.launch.params, mem,
        instance.launch.num_blocks, instance.launch.threads_per_block,
        warp_size=config.warp_size)
    launch = LaunchConfig(grid=instance.launch.grid,
                          block=instance.launch.block, params=params)
    result = gpu.launch(compiled.kernel, launch, mem,
                        regs_per_thread=compiled.regs_per_thread)
    return instance, gpu, mem, result


def run_traced(workload: str, scheme: str = "flame",
               scheduler: str = "GTO", scale: str = "tiny",
               gpu: str = "GTX480", wcdl: int = 20, seed: int = 0,
               inject: bool = True, site: str = "dest_reg",
               capacity: int = 1 << 20) -> TracedRun:
    """Run one configuration with the tracer attached.

    With ``inject=True`` (the default) an untraced golden pre-run first
    measures the kernel's cycle count, then the traced run takes one
    strike at a seeded cycle in ``[1, golden_cycles // 2]`` — early
    enough that its detection and recovery land inside the trace.
    Injection requires a scheme whose runtime detects strikes; it is
    skipped (not an error) for unprotected ``baseline`` runs.
    """
    rscheme = runtime_scheme_by_name(scheme)
    if not rscheme.supports_workload(workload):
        raise ConfigError(
            f"scheme {scheme!r} only supports workloads "
            f"{', '.join(rscheme.workloads)}; cannot trace {workload!r}")
    inject = inject and rscheme.detects
    strike_cycle = None
    injector = None
    if inject:
        _, _, _, golden = _launch_once(workload, scheme, scheduler,
                                       scale, gpu, wcdl)
        rng = np.random.default_rng(seed)
        strike_cycle = int(rng.integers(1, max(2, golden.cycles // 2)))
        injector = FaultInjector(strike_cycles=[strike_cycle], wcdl=wcdl,
                                 seed=seed, site=site)

    tracer = Tracer(capacity=capacity)
    instance, _, mem, result = _launch_once(
        workload, scheme, scheduler, scale, gpu, wcdl,
        tracer=tracer, injector=injector)
    verified = instance.verify(mem)
    if not verified and not inject:
        raise ReproError(
            f"{workload} produced wrong output under {scheme}")
    return TracedRun(
        workload=workload, scheme=scheme, scheduler=scheduler,
        scale=scale, cycles=result.cycles, verified=verified,
        tracer=tracer, stats=result.stats, strike_cycle=strike_cycle,
        injections=list(injector.records) if injector is not None else [])


__all__ = ["TracedRun", "run_traced"]
