"""Operand kinds for the PTX-like virtual ISA.

The ISA uses virtual registers exactly like NVIDIA's PTX: an unbounded
register namespace that a later allocation step maps onto the physical
register budget.  The paper's compiler also works at the PTX level
(Section V-A), so this is a faithful substrate for the Flame passes.

Operand kinds:

* :class:`Reg`   -- general-purpose register, one 64-bit value per lane.
* :class:`Pred`  -- predicate (boolean) register, one bit per lane.
* :class:`Imm`   -- immediate constant.
* :class:`Special` -- read-only special registers (thread/block indices).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


@dataclass(frozen=True, order=True)
class Reg:
    """A general-purpose virtual register ``r<index>``."""

    index: int

    def __post_init__(self) -> None:
        # Registers are scoreboard dict keys on the simulator's issue
        # path; cache the hash instead of recomputing it per lookup.
        object.__setattr__(self, "_hash", hash((Reg, self.index)))

    def __hash__(self) -> int:
        return self._hash

    def __repr__(self) -> str:
        return f"r{self.index}"


@dataclass(frozen=True, order=True)
class Pred:
    """A predicate register ``p<index>`` holding one boolean per lane."""

    index: int

    def __post_init__(self) -> None:
        object.__setattr__(self, "_hash", hash((Pred, self.index)))

    def __hash__(self) -> int:
        return self._hash

    def __repr__(self) -> str:
        return f"p{self.index}"


@dataclass(frozen=True)
class Imm:
    """An immediate constant operand."""

    value: float

    def __repr__(self) -> str:
        value = self.value
        if isinstance(value, float) and value.is_integer():
            return str(int(value))
        return str(value)


class Special(enum.Enum):
    """Read-only special registers, mirroring PTX ``%tid``/``%ctaid`` etc."""

    TID_X = "tid.x"
    TID_Y = "tid.y"
    NTID_X = "ntid.x"
    NTID_Y = "ntid.y"
    CTAID_X = "ctaid.x"
    CTAID_Y = "ctaid.y"
    NCTAID_X = "nctaid.x"
    NCTAID_Y = "nctaid.y"
    LANEID = "laneid"
    WARPID = "warpid"

    def __repr__(self) -> str:
        return f"%{self.value}"

    __str__ = __repr__


#: Any operand readable as a source.
Operand = Reg | Pred | Imm | Special


def as_operand(value: "Operand | int | float") -> Operand:
    """Coerce a Python number into an :class:`Imm`, pass operands through."""
    if isinstance(value, (Reg, Pred, Imm, Special)):
        return value
    if isinstance(value, bool):
        raise TypeError("booleans are not valid operands; use a Pred")
    if isinstance(value, (int, float)):
        return Imm(float(value))
    raise TypeError(f"cannot use {value!r} as an instruction operand")
