"""KernelBuilder: an embedded DSL for writing virtual-ISA kernels.

The builder is how the 34 Table-I workloads are authored.  It hands out
fresh virtual registers, provides one emitter per opcode, and offers
structured-control helpers (``loop``, ``if_``) that lower to labels and
predicated branches, so kernels read like pseudo-CUDA::

    b = KernelBuilder("saxpy", num_params=4)
    n, alpha, x_ptr, y_ptr = b.params(4)
    i = b.global_index()
    with b.if_(b.setp(CmpOp.LT, i, n)):
        x = b.ld_global(b.add(x_ptr, i))
        y = b.ld_global(b.add(y_ptr, i))
        b.st_global(b.add(y_ptr, i), b.mad(alpha, x, y))
    kernel = b.build()
"""

from __future__ import annotations

from contextlib import contextmanager

from ..errors import IsaError
from .instruction import Instruction
from .opcodes import AtomOp, CmpOp, Op, Space
from .operands import Imm, Operand, Pred, Reg, Special, as_operand
from .program import Kernel

#: Negated comparison, used to branch around structured-control bodies.
_NEGATE = {
    CmpOp.EQ: CmpOp.NE, CmpOp.NE: CmpOp.EQ,
    CmpOp.LT: CmpOp.GE, CmpOp.GE: CmpOp.LT,
    CmpOp.LE: CmpOp.GT, CmpOp.GT: CmpOp.LE,
}


class KernelBuilder:
    """Incrementally builds a :class:`Kernel`."""

    def __init__(self, name: str, num_params: int = 0,
                 shared_words: int = 0) -> None:
        self.name = name
        self.num_params = num_params
        self.shared_words = shared_words
        self._instructions: list[Instruction] = []
        self._labels: dict[str, int] = {}
        self._next_reg = 0
        self._next_pred = 0
        self._next_label = 0

    # ------------------------------------------------------------------
    # Resources
    # ------------------------------------------------------------------
    def reg(self) -> Reg:
        """A fresh general register."""
        reg = Reg(self._next_reg)
        self._next_reg += 1
        return reg

    def pred(self) -> Pred:
        """A fresh predicate register."""
        pred = Pred(self._next_pred)
        self._next_pred += 1
        return pred

    def fresh_label(self, hint: str = "L") -> str:
        label = f"{hint}_{self._next_label}"
        self._next_label += 1
        return label

    def label(self, name: str) -> None:
        """Attach ``name`` to the next emitted instruction."""
        if name in self._labels:
            raise IsaError(f"duplicate label {name!r}")
        self._labels[name] = len(self._instructions)

    # ------------------------------------------------------------------
    # Raw emission
    # ------------------------------------------------------------------
    def emit(self, inst: Instruction) -> Instruction:
        self._instructions.append(inst)
        return inst

    def _emit_rr(self, op: Op, srcs, dst: Reg | None, guard: Pred | None,
                 guard_sense: bool = True) -> Reg:
        dst = dst or self.reg()
        srcs = tuple(as_operand(s) for s in srcs)
        self.emit(Instruction(op=op, dst=dst, srcs=srcs, guard=guard,
                              guard_sense=guard_sense))
        return dst

    # ------------------------------------------------------------------
    # Arithmetic emitters (value-returning; pass dst= to target a register)
    # ------------------------------------------------------------------
    def add(self, a, b, dst=None, guard=None):
        return self._emit_rr(Op.ADD, (a, b), dst, guard)

    def sub(self, a, b, dst=None, guard=None):
        return self._emit_rr(Op.SUB, (a, b), dst, guard)

    def mul(self, a, b, dst=None, guard=None):
        return self._emit_rr(Op.MUL, (a, b), dst, guard)

    def mad(self, a, b, c, dst=None, guard=None):
        return self._emit_rr(Op.MAD, (a, b, c), dst, guard)

    def div(self, a, b, dst=None, guard=None):
        return self._emit_rr(Op.DIV, (a, b), dst, guard)

    def rem(self, a, b, dst=None, guard=None):
        return self._emit_rr(Op.REM, (a, b), dst, guard)

    def min_(self, a, b, dst=None, guard=None):
        return self._emit_rr(Op.MIN, (a, b), dst, guard)

    def max_(self, a, b, dst=None, guard=None):
        return self._emit_rr(Op.MAX, (a, b), dst, guard)

    def abs_(self, a, dst=None, guard=None):
        return self._emit_rr(Op.ABS, (a,), dst, guard)

    def neg(self, a, dst=None, guard=None):
        return self._emit_rr(Op.NEG, (a,), dst, guard)

    def floor(self, a, dst=None, guard=None):
        return self._emit_rr(Op.FLOOR, (a,), dst, guard)

    def and_(self, a, b, dst=None, guard=None):
        return self._emit_rr(Op.AND, (a, b), dst, guard)

    def or_(self, a, b, dst=None, guard=None):
        return self._emit_rr(Op.OR, (a, b), dst, guard)

    def xor(self, a, b, dst=None, guard=None):
        return self._emit_rr(Op.XOR, (a, b), dst, guard)

    def not_(self, a, dst=None, guard=None):
        return self._emit_rr(Op.NOT, (a,), dst, guard)

    def shl(self, a, b, dst=None, guard=None):
        return self._emit_rr(Op.SHL, (a, b), dst, guard)

    def shr(self, a, b, dst=None, guard=None):
        return self._emit_rr(Op.SHR, (a, b), dst, guard)

    def mov(self, a, dst=None, guard=None, guard_sense=True):
        return self._emit_rr(Op.MOV, (a,), dst, guard, guard_sense)

    def selp(self, a, b, pred: Pred, dst=None, guard=None):
        return self._emit_rr(Op.SELP, (a, b, pred), dst, guard)

    def sqrt(self, a, dst=None, guard=None):
        return self._emit_rr(Op.SQRT, (a,), dst, guard)

    def rsqrt(self, a, dst=None, guard=None):
        return self._emit_rr(Op.RSQRT, (a,), dst, guard)

    def exp(self, a, dst=None, guard=None):
        return self._emit_rr(Op.EXP, (a,), dst, guard)

    def log(self, a, dst=None, guard=None):
        return self._emit_rr(Op.LOG, (a,), dst, guard)

    def sin(self, a, dst=None, guard=None):
        return self._emit_rr(Op.SIN, (a,), dst, guard)

    def cos(self, a, dst=None, guard=None):
        return self._emit_rr(Op.COS, (a,), dst, guard)

    # ------------------------------------------------------------------
    # Predicates
    # ------------------------------------------------------------------
    def setp(self, cmp: CmpOp, a, b, dst: Pred | None = None,
             guard: Pred | None = None) -> Pred:
        dst = dst or self.pred()
        srcs = (as_operand(a), as_operand(b))
        self.emit(Instruction(op=Op.SETP, dst=dst, srcs=srcs, cmp=cmp,
                              guard=guard))
        return dst

    def pand(self, a: Pred, b: Pred, dst: Pred | None = None) -> Pred:
        dst = dst or self.pred()
        self.emit(Instruction(op=Op.PAND, dst=dst, srcs=(a, b)))
        return dst

    def por(self, a: Pred, b: Pred, dst: Pred | None = None) -> Pred:
        dst = dst or self.pred()
        self.emit(Instruction(op=Op.POR, dst=dst, srcs=(a, b)))
        return dst

    def pnot(self, a: Pred, dst: Pred | None = None) -> Pred:
        dst = dst or self.pred()
        self.emit(Instruction(op=Op.PNOT, dst=dst, srcs=(a,)))
        return dst

    # ------------------------------------------------------------------
    # Memory
    # ------------------------------------------------------------------
    def ld_param(self, index: int, dst: Reg | None = None) -> Reg:
        dst = dst or self.reg()
        self.emit(Instruction(op=Op.LD, dst=dst, srcs=(Imm(float(index)),),
                              space=Space.PARAM))
        return dst

    def params(self, count: int) -> list[Reg]:
        """Load the first ``count`` kernel parameters into registers."""
        if count > self.num_params:
            raise IsaError(f"kernel declares only {self.num_params} params")
        return [self.ld_param(i) for i in range(count)]

    def ld_global(self, addr: Reg, offset: int = 0, dst=None, guard=None) -> Reg:
        dst = dst or self.reg()
        self.emit(Instruction(op=Op.LD, dst=dst, srcs=(addr,),
                              space=Space.GLOBAL, offset=offset, guard=guard))
        return dst

    def st_global(self, addr: Reg, value, offset: int = 0, guard=None) -> None:
        self.emit(Instruction(op=Op.ST, srcs=(addr, as_operand(value)),
                              space=Space.GLOBAL, offset=offset, guard=guard))

    def ld_shared(self, addr: Reg, offset: int = 0, dst=None, guard=None) -> Reg:
        dst = dst or self.reg()
        self.emit(Instruction(op=Op.LD, dst=dst, srcs=(addr,),
                              space=Space.SHARED, offset=offset, guard=guard))
        return dst

    def st_shared(self, addr: Reg, value, offset: int = 0, guard=None) -> None:
        self.emit(Instruction(op=Op.ST, srcs=(addr, as_operand(value)),
                              space=Space.SHARED, offset=offset, guard=guard))

    def atom_global(self, atom_op: AtomOp, addr: Reg, value, offset: int = 0,
                    dst=None, guard=None) -> Reg:
        dst = dst or self.reg()
        self.emit(Instruction(op=Op.ATOM, dst=dst,
                              srcs=(addr, as_operand(value)),
                              space=Space.GLOBAL, offset=offset,
                              atom_op=atom_op, guard=guard))
        return dst

    def atom_shared(self, atom_op: AtomOp, addr: Reg, value, offset: int = 0,
                    dst=None, guard=None) -> Reg:
        dst = dst or self.reg()
        self.emit(Instruction(op=Op.ATOM, dst=dst,
                              srcs=(addr, as_operand(value)),
                              space=Space.SHARED, offset=offset,
                              atom_op=atom_op, guard=guard))
        return dst

    # ------------------------------------------------------------------
    # Control
    # ------------------------------------------------------------------
    def bra(self, target: str, guard: Pred | None = None,
            guard_sense: bool = True) -> None:
        self.emit(Instruction(op=Op.BRA, target=target, guard=guard,
                              guard_sense=guard_sense))

    def barrier(self) -> None:
        self.emit(Instruction(op=Op.BAR))

    def exit(self, guard: Pred | None = None, guard_sense: bool = True) -> None:
        self.emit(Instruction(op=Op.EXIT, guard=guard,
                              guard_sense=guard_sense))

    # ------------------------------------------------------------------
    # Special-register conveniences
    # ------------------------------------------------------------------
    def tid_x(self, dst=None) -> Reg:
        return self.mov(Special.TID_X, dst=dst)

    def ctaid_x(self, dst=None) -> Reg:
        return self.mov(Special.CTAID_X, dst=dst)

    def global_index(self, dst=None) -> Reg:
        """``ctaid.x * ntid.x + tid.x`` — the canonical 1-D thread index."""
        base = self.mul(Special.CTAID_X, Special.NTID_X)
        return self.add(base, Special.TID_X, dst=dst)

    def global_index_y(self, dst=None) -> Reg:
        base = self.mul(Special.CTAID_Y, Special.NTID_Y)
        return self.add(base, Special.TID_Y, dst=dst)

    # ------------------------------------------------------------------
    # Structured control flow
    # ------------------------------------------------------------------
    @contextmanager
    def loop(self, start, stop, step: float = 1.0, counter: Reg | None = None):
        """Counted loop: yields the counter register.

        Lowered to a head test (so zero-trip loops work) and a back edge::

            mov i, start
          HEAD:
            setp.ge p, i, stop     # (le for negative step)
            @p bra END
            <body>
            add i, i, step
            bra HEAD
          END:
        """
        counter = counter if counter is not None else self.reg()
        self.mov(start, dst=counter)
        head = self.fresh_label("LOOP")
        end = self.fresh_label("ENDLOOP")
        self.label(head)
        cmp = CmpOp.GE if step > 0 else CmpOp.LE
        done = self.setp(cmp, counter, stop)
        self.bra(end, guard=done)
        yield counter
        self.add(counter, step, dst=counter)
        self.bra(head)
        self.label(end)

    @contextmanager
    def while_(self, make_cond):
        """While loop; ``make_cond`` emits code and returns the continue Pred."""
        head = self.fresh_label("WHILE")
        end = self.fresh_label("ENDWHILE")
        self.label(head)
        cond = make_cond()
        self.bra(end, guard=cond, guard_sense=False)
        yield
        self.bra(head)
        self.label(end)

    @contextmanager
    def if_(self, pred: Pred, sense: bool = True):
        """Structured if: the body runs in lanes where ``pred == sense``."""
        end = self.fresh_label("ENDIF")
        self.bra(end, guard=pred, guard_sense=not sense)
        yield
        self.label(end)

    # ------------------------------------------------------------------
    # Finalization
    # ------------------------------------------------------------------
    def build(self) -> Kernel:
        """Finalize into a validated :class:`Kernel`."""
        instructions = list(self._instructions)
        labels = dict(self._labels)
        # A trailing label (e.g. the END of a final if_) must get its own
        # EXIT so branches to it do not land inside the skipped body.
        dangling = any(index >= len(instructions) for index in labels.values())
        if not instructions or instructions[-1].op is not Op.EXIT or dangling:
            instructions.append(Instruction(op=Op.EXIT))
        kernel = Kernel(
            name=self.name,
            instructions=instructions,
            labels=labels,
            num_params=self.num_params,
            shared_words=self.shared_words,
        )
        kernel.validate()
        return kernel
