"""Textual assembler for the virtual ISA.

The syntax is what :meth:`Kernel.to_asm` emits, so assembly round-trips::

    .kernel saxpy
    .params 4
    LOOP_0:
        @p0 add r1, r1, 4
        ld.global r2, [r1+16]
        st.shared [r3], r2
        atom.global.add r4, [r5], 1
        setp.lt p0, r1, r6
        bra LOOP_0
        exit
"""

from __future__ import annotations

import re

from ..errors import AsmError
from .instruction import Instruction
from .opcodes import AtomOp, CmpOp, Op, OP_INFO, Space
from .operands import Imm, Operand, Pred, Reg, Special
from .program import Kernel, Program

_LABEL_RE = re.compile(r"^([A-Za-z_][\w.$]*):$")
_MEM_RE = re.compile(r"^\[([^\]]+)\]$")
_SPECIALS = {f"%{s.value}": s for s in Special}


def _parse_operand(text: str) -> Operand:
    text = text.strip()
    if re.fullmatch(r"r\d+", text):
        return Reg(int(text[1:]))
    if re.fullmatch(r"p\d+", text):
        return Pred(int(text[1:]))
    if text in _SPECIALS:
        return _SPECIALS[text]
    try:
        return Imm(float(text))
    except ValueError:
        raise AsmError(f"cannot parse operand {text!r}") from None


def _parse_mem(text: str) -> tuple[Operand, int]:
    match = _MEM_RE.match(text.strip())
    if not match:
        raise AsmError(f"expected memory operand, got {text!r}")
    inner = match.group(1).replace(" ", "")
    offset = 0
    body = inner
    plus = re.match(r"^(.*?)([+-]\d+)$", inner)
    if plus and not re.fullmatch(r"-?[\d.]+", inner):
        body, offset = plus.group(1), int(plus.group(2))
    if re.fullmatch(r"-?[\d.]+", body):
        return Imm(float(body)), offset
    return _parse_operand(body), offset


def _split_operands(text: str) -> list[str]:
    return [part.strip() for part in text.split(",") if part.strip()]


def parse_instruction(line: str) -> Instruction:
    """Parse one instruction line (without label or comment)."""
    line = line.strip()
    guard = None
    guard_sense = True
    if line.startswith("@"):
        guard_text, _, line = line.partition(" ")
        body = guard_text[1:]
        if body.startswith("!"):
            guard_sense = False
            body = body[1:]
        operand = _parse_operand(body)
        if not isinstance(operand, Pred):
            raise AsmError(f"guard must be a predicate, got {guard_text!r}")
        guard = operand
        line = line.strip()
    mnemonic, _, rest = line.partition(" ")
    parts = mnemonic.split(".")
    try:
        op = Op(parts[0])
    except ValueError:
        raise AsmError(f"unknown opcode {parts[0]!r}") from None
    space = cmp = atom_op = None
    for suffix in parts[1:]:
        if suffix in Space._value2member_map_:
            space = Space(suffix)
        elif suffix in CmpOp._value2member_map_:
            cmp = CmpOp(suffix)
        elif suffix in AtomOp._value2member_map_:
            atom_op = AtomOp(suffix)
        else:
            raise AsmError(f"unknown suffix {suffix!r} on {mnemonic!r}")
    operands = _split_operands(rest)
    info = OP_INFO[op]
    dst: Reg | Pred | None = None
    srcs: list[Operand] = []
    offset = 0
    target: str | None = None
    if op is Op.BRA:
        if len(operands) != 1:
            raise AsmError("bra takes exactly one label")
        target = operands[0]
    elif op is Op.LD:
        dst = _parse_operand(operands[0])
        addr, offset = _parse_mem(operands[1])
        srcs = [addr]
    elif op is Op.ST:
        addr, offset = _parse_mem(operands[0])
        srcs = [addr, _parse_operand(operands[1])]
    elif op is Op.ATOM:
        dst = _parse_operand(operands[0])
        addr, offset = _parse_mem(operands[1])
        srcs = [addr, _parse_operand(operands[2])]
    elif info.writes_reg or info.writes_pred:
        dst = _parse_operand(operands[0])
        srcs = [_parse_operand(text) for text in operands[1:]]
    else:
        srcs = [_parse_operand(text) for text in operands]
    inst = Instruction(op=op, dst=dst, srcs=tuple(srcs), guard=guard,
                       guard_sense=guard_sense, space=space, offset=offset,
                       cmp=cmp, atom_op=atom_op, target=target)
    inst.validate()
    return inst


def parse_kernel(text: str) -> Kernel:
    """Parse a single ``.kernel`` definition from assembly text."""
    kernels = parse_program(text).kernels
    if len(kernels) != 1:
        raise AsmError(f"expected exactly one kernel, found {len(kernels)}")
    return next(iter(kernels.values()))


def parse_program(text: str) -> Program:
    """Parse one or more ``.kernel`` definitions."""
    program = Program()
    name: str | None = None
    num_params = 0
    shared_words = 0
    instructions: list[Instruction] = []
    labels: dict[str, int] = {}

    def flush() -> None:
        nonlocal name, num_params, shared_words, instructions, labels
        if name is None:
            return
        kernel = Kernel(name=name, instructions=instructions, labels=labels,
                        num_params=num_params, shared_words=shared_words)
        kernel.validate()
        program.add(kernel)
        name, num_params, shared_words = None, 0, 0
        instructions, labels = [], {}

    for raw in text.splitlines():
        line = raw.split(";", 1)[0].strip()
        if not line:
            continue
        if line.startswith(".kernel"):
            flush()
            name = line.split(None, 1)[1].strip()
            continue
        if name is None:
            raise AsmError(f"directive outside kernel: {line!r}")
        if line.startswith(".params"):
            num_params = int(line.split(None, 1)[1])
            continue
        if line.startswith(".shared"):
            shared_words = int(line.split(None, 1)[1])
            continue
        match = _LABEL_RE.match(line)
        if match:
            label = match.group(1)
            if label in labels:
                raise AsmError(f"duplicate label {label!r}")
            labels[label] = len(instructions)
            continue
        instructions.append(parse_instruction(line))
    flush()
    if not program.kernels:
        raise AsmError("no kernels found in assembly text")
    return program
