"""Control-flow graph construction and analyses for kernels.

Provides basic blocks, dominator/post-dominator computation (via
networkx), immediate-post-dominator reconvergence points for the SIMT
stack, back-edge/loop-header detection, and merge-point detection used
by the idempotent region formation pass.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import networkx as nx

from ..errors import IsaError
from .opcodes import Op
from .program import Kernel

#: Virtual exit node used for post-dominator computation.
EXIT_NODE = -1


@dataclass
class BasicBlock:
    """A maximal straight-line instruction sequence ``[start, end)``."""

    index: int
    start: int
    end: int
    succs: list[int] = field(default_factory=list)
    preds: list[int] = field(default_factory=list)

    def __contains__(self, inst_index: int) -> bool:
        return self.start <= inst_index < self.end

    def __len__(self) -> int:
        return self.end - self.start


class Cfg:
    """Control-flow graph of a kernel at instruction granularity."""

    def __init__(self, kernel: Kernel) -> None:
        self.kernel = kernel
        self.blocks: list[BasicBlock] = []
        self.block_of: list[int] = []
        self._build()
        self._reconv: dict[int, int] | None = None
        self._back_edges: set[tuple[int, int]] | None = None

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def _leader_set(self) -> set[int]:
        kernel = self.kernel
        n = len(kernel.instructions)
        leaders = {0}
        for i, inst in enumerate(kernel.instructions):
            if inst.op is Op.BRA:
                leaders.add(kernel.target_of(inst))
                if i + 1 < n:
                    leaders.add(i + 1)
            elif inst.op is Op.EXIT and i + 1 < n:
                leaders.add(i + 1)
        return leaders

    def _build(self) -> None:
        kernel = self.kernel
        n = len(kernel.instructions)
        if n == 0:
            raise IsaError("cannot build CFG of an empty kernel")
        leaders = sorted(self._leader_set())
        bounds = leaders + [n]
        start_to_block: dict[int, int] = {}
        for b, (start, end) in enumerate(zip(bounds, bounds[1:])):
            self.blocks.append(BasicBlock(index=b, start=start, end=end))
            start_to_block[start] = b
        self.block_of = [0] * n
        for block in self.blocks:
            for i in range(block.start, block.end):
                self.block_of[i] = block.index
        for block in self.blocks:
            last = kernel.instructions[block.end - 1]
            succ_starts: list[int] = []
            if last.op is Op.BRA:
                succ_starts.append(kernel.target_of(last))
                if last.guard is not None and block.end < n:
                    succ_starts.append(block.end)
            elif last.op is Op.EXIT:
                # A guarded exit only retires some lanes; the rest fall
                # through, so the next block is a real successor.
                if last.guard is not None and block.end < n:
                    succ_starts.append(block.end)
            elif block.end < n:
                succ_starts.append(block.end)
            for start in succ_starts:
                succ = start_to_block[start]
                if succ not in block.succs:
                    block.succs.append(succ)
                    self.blocks[succ].preds.append(block.index)

    # ------------------------------------------------------------------
    # Graph views and analyses
    # ------------------------------------------------------------------
    def digraph(self) -> nx.DiGraph:
        """The block-level CFG as a networkx digraph (with virtual exit)."""
        graph = nx.DiGraph()
        graph.add_nodes_from(b.index for b in self.blocks)
        graph.add_node(EXIT_NODE)
        for block in self.blocks:
            for succ in block.succs:
                graph.add_edge(block.index, succ)
            last = self.kernel.instructions[block.end - 1]
            if last.op is Op.EXIT or not block.succs:
                graph.add_edge(block.index, EXIT_NODE)
        return graph

    def back_edges(self) -> set[tuple[int, int]]:
        """Edges (u, v) where v dominates u — i.e. loop back edges."""
        if self._back_edges is None:
            graph = self.digraph()
            graph.remove_node(EXIT_NODE)
            idom = nx.immediate_dominators(graph, 0)
            self._back_edges = set()
            for block in self.blocks:
                for succ in block.succs:
                    if self._dominates(idom, succ, block.index):
                        self._back_edges.add((block.index, succ))
        return self._back_edges

    @staticmethod
    def _dominates(idom: dict[int, int], a: int, b: int) -> bool:
        """True if block ``a`` dominates block ``b`` under the idom tree."""
        node = b
        while True:
            if node == a:
                return True
            parent = idom.get(node)
            if parent is None or parent == node:
                return False
            node = parent

    def loop_headers(self) -> set[int]:
        """Blocks that are targets of back edges."""
        return {v for _, v in self.back_edges()}

    def merge_blocks(self) -> set[int]:
        """Blocks with more than one predecessor (control-flow joins)."""
        return {b.index for b in self.blocks if len(b.preds) > 1}

    def reconvergence_table(self) -> dict[int, int]:
        """Map branch instruction index -> reconvergence instruction index.

        The reconvergence point of a potentially-divergent branch is the
        start of the immediate post-dominator block of the branch's block,
        the standard SIMT-stack policy.  Branches whose block post-dominator
        is the virtual exit reconverge "at exit" and are mapped to
        ``len(kernel)`` (a PC no instruction occupies).
        """
        if self._reconv is not None:
            return self._reconv
        graph = self.digraph()
        ipdom = nx.immediate_dominators(graph.reverse(copy=False), EXIT_NODE)
        table: dict[int, int] = {}
        for block in self.blocks:
            last_index = block.end - 1
            last = self.kernel.instructions[last_index]
            if last.op is Op.BRA and last.guard is not None:
                node = ipdom.get(block.index, EXIT_NODE)
                if node == EXIT_NODE:
                    table[last_index] = len(self.kernel.instructions)
                else:
                    table[last_index] = self.blocks[node].start
        self._reconv = table
        return table

    def block_at(self, inst_index: int) -> BasicBlock:
        return self.blocks[self.block_of[inst_index]]

    def rpo(self) -> list[int]:
        """Reverse post-order of reachable blocks (from the entry block)."""
        graph = self.digraph()
        graph.remove_node(EXIT_NODE)
        order = list(nx.dfs_postorder_nodes(graph, source=0))
        order.reverse()
        return order


def reconvergence_table_for(kernel: Kernel) -> dict[int, int]:
    """Content-memoized ``Cfg(kernel).reconvergence_table()``.

    ``Cfg`` memoizes per *instance*, but every launch used to build a
    fresh ``Cfg`` — so campaign trials re-ran the whole dominator
    analysis per launch of an unchanged kernel.  This helper caches the
    table on the kernel object, keyed by the identities of its
    instructions plus its labels; the cache entry holds strong
    references to those instructions, keeping their ids stable, so any
    in-place mutation of the instruction list or labels produces a
    mismatching key and transparently recomputes.
    """
    cached = kernel.__dict__.get("_reconv_memo")
    ids = tuple(map(id, kernel.instructions))
    labels = tuple(sorted(kernel.labels.items()))
    if cached is not None and cached[0] == ids and cached[1] == labels:
        return cached[3]
    table = Cfg(kernel).reconvergence_table()
    kernel.__dict__["_reconv_memo"] = (ids, labels,
                                       tuple(kernel.instructions), table)
    return table
