"""Instruction representation for the virtual ISA."""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from ..errors import IsaError
from .opcodes import AtomOp, CmpOp, FuClass, Op, OP_INFO, OpInfo, Space
from .operands import Imm, Operand, Pred, Reg, Special


@dataclass
class Instruction:
    """A single virtual-ISA instruction.

    Memory operands are expressed as ``[addr_reg + offset]`` where the
    address is a *word* index into the state space (one word = one 32-bit
    element, matching how the coalescer and bank-conflict models count).

    ``guard``/``guard_sense`` implement PTX-style predication: the
    instruction only takes effect in lanes where ``guard == guard_sense``.

    ``shadow`` marks replicas created by the SwapCodes duplication pass;
    ``ckpt`` marks checkpoint stores created by the checkpointing pass;
    both execute normally but are tracked separately in statistics.
    """

    op: Op
    dst: Reg | Pred | None = None
    srcs: tuple[Operand, ...] = ()
    guard: Pred | None = None
    guard_sense: bool = True
    space: Space | None = None
    offset: int = 0
    cmp: CmpOp | None = None
    atom_op: AtomOp | None = None
    target: str | None = None
    shadow: bool = False
    ckpt: bool = False
    comment: str = field(default="", compare=False)

    @property
    def info(self) -> OpInfo:
        return OP_INFO[self.op]

    @property
    def fu(self) -> FuClass:
        return self.info.fu

    def validate(self) -> None:
        """Check structural well-formedness; raise :class:`IsaError` if bad."""
        info = self.info
        if len(self.srcs) != info.num_srcs:
            raise IsaError(
                f"{self.op} expects {info.num_srcs} sources, got {len(self.srcs)}"
            )
        if info.writes_reg and not isinstance(self.dst, Reg):
            raise IsaError(f"{self.op} must write a general register")
        if info.writes_pred and not isinstance(self.dst, Pred):
            raise IsaError(f"{self.op} must write a predicate register")
        if not info.writes_reg and not info.writes_pred and self.dst is not None:
            raise IsaError(f"{self.op} takes no destination")
        if info.is_load or info.is_store or info.is_atomic:
            if self.space is None:
                raise IsaError(f"{self.op} requires a state space")
            if info.is_load and self.space is Space.PARAM:
                if not isinstance(self.srcs[0], Imm):
                    raise IsaError("param loads take an immediate index")
            elif not isinstance(self.srcs[0], Reg):
                raise IsaError(f"{self.op} address must be a register")
        if self.op is Op.SETP and self.cmp is None:
            raise IsaError("setp requires a comparison operator")
        if info.is_atomic and self.atom_op is None:
            raise IsaError("atom requires an atomic operator")
        if info.is_branch and self.target is None:
            raise IsaError("bra requires a target label")

    def reads(self) -> tuple[Operand, ...]:
        """All source operands, including the guard predicate and selects."""
        srcs = self.srcs
        if self.guard is not None:
            srcs = srcs + (self.guard,)
        return srcs

    def read_regs(self) -> tuple[Reg, ...]:
        """General registers read by this instruction."""
        return tuple(s for s in self.srcs if isinstance(s, Reg))

    def read_preds(self) -> tuple[Pred, ...]:
        """Predicate registers read (sources and guard)."""
        preds = [s for s in self.srcs if isinstance(s, Pred)]
        if self.guard is not None:
            preds.append(self.guard)
        return tuple(preds)

    def written_reg(self) -> Reg | None:
        return self.dst if isinstance(self.dst, Reg) else None

    def written_pred(self) -> Pred | None:
        return self.dst if isinstance(self.dst, Pred) else None

    def with_(self, **changes) -> "Instruction":
        """Return a copy with the given fields replaced."""
        return replace(self, **changes)

    def __str__(self) -> str:
        parts = []
        if self.guard is not None:
            sense = "" if self.guard_sense else "!"
            parts.append(f"@{sense}{self.guard}")
        name = self.op.value
        if self.space is not None:
            name += f".{self.space.value}"
        if self.atom_op is not None:
            name += f".{self.atom_op.value}"
        if self.cmp is not None:
            name += f".{self.cmp.value}"
        parts.append(name)
        operands = []
        if self.dst is not None:
            operands.append(repr(self.dst))
        info = self.info
        if info.is_load or info.is_store or info.is_atomic:
            addr = repr(self.srcs[0])
            if self.offset:
                addr += f"+{self.offset}" if self.offset > 0 else f"{self.offset}"
            mem = f"[{addr}]"
            rest = [repr(s) for s in self.srcs[1:]]
            if info.is_load:
                operands.append(mem)
            else:
                operands = [mem] + rest if not info.is_atomic else [repr(self.dst), mem] + rest
                if info.is_atomic:
                    operands = operands[1:]
                    operands.insert(0, repr(self.dst))
        else:
            operands.extend(repr(s) for s in self.srcs)
        if self.target is not None:
            operands.append(self.target)
        text = " ".join(parts)
        if operands:
            text += " " + ", ".join(operands)
        if self.shadow:
            text += "  ; <dup>"
        if self.ckpt:
            text += "  ; <ckpt>"
        elif self.comment:
            text += f"  ; {self.comment}"
        return text
