"""PTX-like virtual ISA: operands, opcodes, instructions, kernels, CFGs.

This is the substrate the Flame compiler transforms and the cycle-level
simulator executes.  Public surface:

* :class:`Reg`, :class:`Pred`, :class:`Imm`, :class:`Special` — operands
* :class:`Op`, :class:`Space`, :class:`CmpOp`, :class:`AtomOp` — opcodes
* :class:`Instruction`, :class:`Kernel`, :class:`Program`
* :class:`KernelBuilder` — the eDSL workloads are written in
* :class:`Cfg` — control-flow graph + SIMT reconvergence analysis
* :func:`parse_kernel`, :func:`parse_program` — textual assembler
"""

from .asmparser import parse_instruction, parse_kernel, parse_program
from .builder import KernelBuilder
from .cfg import BasicBlock, Cfg, reconvergence_table_for
from .instruction import Instruction
from .opcodes import AtomOp, CmpOp, FuClass, Op, OP_INFO, OpInfo, Space
from .operands import Imm, Operand, Pred, Reg, Special, as_operand
from .program import Kernel, Program, RegAllocator

__all__ = [
    "AtomOp", "BasicBlock", "Cfg", "CmpOp", "FuClass", "Imm", "Instruction",
    "Kernel", "KernelBuilder", "Op", "OP_INFO", "OpInfo", "Operand", "Pred",
    "Program", "Reg", "RegAllocator", "Space", "Special", "as_operand",
    "parse_instruction", "parse_kernel", "parse_program",
    "reconvergence_table_for",
]
