"""Kernels and programs: containers for virtual-ISA code."""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import IsaError
from .instruction import Instruction
from .opcodes import Op
from .operands import Pred, Reg


@dataclass
class Kernel:
    """A GPU kernel: a flat instruction list plus label and resource info.

    ``labels`` maps a label name to the index of the instruction it
    precedes.  ``shared_words`` is the per-block shared memory footprint in
    words; ``num_params`` the number of scalar parameters passed at launch.
    """

    name: str
    instructions: list[Instruction] = field(default_factory=list)
    labels: dict[str, int] = field(default_factory=dict)
    num_params: int = 0
    shared_words: int = 0

    def __post_init__(self) -> None:
        self._validate_labels()

    def _validate_labels(self) -> None:
        n = len(self.instructions)
        for label, index in self.labels.items():
            if not 0 <= index <= n:
                raise IsaError(f"label {label!r} points outside kernel ({index})")

    def validate(self) -> None:
        """Full structural validation of every instruction and branch."""
        self._validate_labels()
        if not self.instructions:
            raise IsaError(f"kernel {self.name!r} is empty")
        for i, inst in enumerate(self.instructions):
            try:
                inst.validate()
            except IsaError as exc:
                raise IsaError(f"{self.name}[{i}] {inst}: {exc}") from exc
            if inst.op is Op.BRA and inst.target not in self.labels:
                raise IsaError(
                    f"{self.name}[{i}]: branch to unknown label {inst.target!r}"
                )
        if not any(inst.op is Op.EXIT for inst in self.instructions):
            raise IsaError(f"kernel {self.name!r} has no exit instruction")

    def target_of(self, inst: Instruction) -> int:
        """Instruction index a branch jumps to."""
        assert inst.target is not None
        return self.labels[inst.target]

    @property
    def num_regs(self) -> int:
        """Number of general registers used (max index + 1)."""
        top = -1
        for inst in self.instructions:
            for reg in inst.read_regs():
                top = max(top, reg.index)
            written = inst.written_reg()
            if written is not None:
                top = max(top, written.index)
        return top + 1

    @property
    def num_preds(self) -> int:
        """Number of predicate registers used (max index + 1)."""
        top = -1
        for inst in self.instructions:
            for pred in inst.read_preds():
                top = max(top, pred.index)
            written = inst.written_pred()
            if written is not None:
                top = max(top, written.index)
        return top + 1

    def fresh_reg_allocator(self) -> "RegAllocator":
        """An allocator handing out registers above those already in use."""
        return RegAllocator(self.num_regs)

    def labels_at(self, index: int) -> list[str]:
        """All labels attached to the instruction at ``index``."""
        return [name for name, at in self.labels.items() if at == index]

    def to_asm(self) -> str:
        """Render the kernel as textual assembly (round-trips via the parser)."""
        lines = [
            f".kernel {self.name}",
            f".params {self.num_params}",
        ]
        if self.shared_words:
            lines.append(f".shared {self.shared_words}")
        by_index: dict[int, list[str]] = {}
        for name, at in self.labels.items():
            by_index.setdefault(at, []).append(name)
        for i, inst in enumerate(self.instructions):
            for name in sorted(by_index.get(i, ())):
                lines.append(f"{name}:")
            lines.append(f"    {inst}")
        for name in sorted(by_index.get(len(self.instructions), ())):
            lines.append(f"{name}:")
        return "\n".join(lines) + "\n"

    def clone(self) -> "Kernel":
        """Deep-enough copy: instructions are immutable in practice."""
        return Kernel(
            name=self.name,
            instructions=list(self.instructions),
            labels=dict(self.labels),
            num_params=self.num_params,
            shared_words=self.shared_words,
        )

    def __len__(self) -> int:
        return len(self.instructions)


class RegAllocator:
    """Hands out fresh virtual registers/predicates above a floor index."""

    def __init__(self, next_reg: int = 0, next_pred: int = 0) -> None:
        self._next_reg = next_reg
        self._next_pred = next_pred

    def reg(self) -> Reg:
        reg = Reg(self._next_reg)
        self._next_reg += 1
        return reg

    def pred(self) -> Pred:
        pred = Pred(self._next_pred)
        self._next_pred += 1
        return pred

    @property
    def regs_allocated(self) -> int:
        return self._next_reg


@dataclass
class Program:
    """A collection of kernels, addressable by name."""

    kernels: dict[str, Kernel] = field(default_factory=dict)

    def add(self, kernel: Kernel) -> None:
        if kernel.name in self.kernels:
            raise IsaError(f"duplicate kernel {kernel.name!r}")
        self.kernels[kernel.name] = kernel

    def __getitem__(self, name: str) -> Kernel:
        return self.kernels[name]

    def __iter__(self):
        return iter(self.kernels.values())
