"""Opcode definitions and static metadata for the virtual ISA.

Every opcode carries the metadata the simulator and compiler need:
which functional-unit class executes it (for latency/issue modelling),
whether it reads or writes memory, whether it is a control instruction,
and whether the SwapCodes-style duplication pass may replicate it.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class FuClass(enum.Enum):
    """Functional-unit class; the architecture config maps each to a latency."""

    ALU = "alu"          # int/fp add, logic, compare, select, mov
    MUL = "mul"          # multiply, multiply-add
    SFU = "sfu"          # special functions: div, sqrt, exp, log, sin, cos
    MEM = "mem"          # loads, stores, atomics
    CTRL = "ctrl"        # branches, barriers, exit
    META = "meta"        # region boundaries and other zero-latency markers


class Space(enum.Enum):
    """Memory state spaces."""

    GLOBAL = "global"
    SHARED = "shared"
    PARAM = "param"


class CmpOp(enum.Enum):
    """Comparison operators for SETP."""

    EQ = "eq"
    NE = "ne"
    LT = "lt"
    LE = "le"
    GT = "gt"
    GE = "ge"


class AtomOp(enum.Enum):
    """Atomic read-modify-write operators."""

    ADD = "add"
    MAX = "max"
    MIN = "min"
    EXCH = "exch"


@dataclass(frozen=True)
class OpInfo:
    """Static properties of an opcode."""

    fu: FuClass
    num_srcs: int
    writes_reg: bool = True
    writes_pred: bool = False
    is_load: bool = False
    is_store: bool = False
    is_atomic: bool = False
    is_branch: bool = False
    is_barrier: bool = False
    is_exit: bool = False
    is_boundary: bool = False
    duplicable: bool = False


class Op(enum.Enum):
    """All opcodes of the virtual ISA."""

    # Integer/float arithmetic (operates on 64-bit lane values).
    ADD = "add"
    SUB = "sub"
    MUL = "mul"
    MAD = "mad"          # d = s0 * s1 + s2
    DIV = "div"
    REM = "rem"
    MIN = "min"
    MAX = "max"
    ABS = "abs"
    NEG = "neg"
    FLOOR = "floor"
    # Bitwise/integer ops (sources truncated to int64).
    AND = "and"
    OR = "or"
    XOR = "xor"
    NOT = "not"
    SHL = "shl"
    SHR = "shr"
    # Moves and selects.
    MOV = "mov"
    SELP = "selp"        # d = p ? s0 : s1   (srcs: s0, s1, p)
    # Special-function unit.
    SQRT = "sqrt"
    RSQRT = "rsqrt"
    EXP = "exp"
    LOG = "log"
    SIN = "sin"
    COS = "cos"
    # Predicate handling.
    SETP = "setp"        # p = s0 <cmp> s1
    PAND = "pand"        # p = p0 & p1
    POR = "por"          # p = p0 | p1
    PNOT = "pnot"        # p = !p0
    # Memory.
    LD = "ld"            # d = [space][s0 + offset]
    ST = "st"            # [space][s0 + offset] = s1
    ATOM = "atom"        # d = old; [space][s0 + offset] op= s1
    # Control.
    BRA = "bra"
    BAR = "bar"
    EXIT = "exit"
    # Compiler-inserted region boundary marker (Flame).
    RB = "rb"

    def __repr__(self) -> str:
        return self.value

    __str__ = __repr__


_ALU = OpInfo(FuClass.ALU, 2, duplicable=True)
_ALU1 = OpInfo(FuClass.ALU, 1, duplicable=True)
_SFU1 = OpInfo(FuClass.SFU, 1, duplicable=True)

OP_INFO: dict[Op, OpInfo] = {
    Op.ADD: _ALU,
    Op.SUB: _ALU,
    Op.MUL: OpInfo(FuClass.MUL, 2, duplicable=True),
    Op.MAD: OpInfo(FuClass.MUL, 3, duplicable=True),
    Op.DIV: OpInfo(FuClass.SFU, 2, duplicable=True),
    Op.REM: OpInfo(FuClass.SFU, 2, duplicable=True),
    Op.MIN: _ALU,
    Op.MAX: _ALU,
    Op.ABS: _ALU1,
    Op.NEG: _ALU1,
    Op.FLOOR: _ALU1,
    Op.AND: _ALU,
    Op.OR: _ALU,
    Op.XOR: _ALU,
    Op.NOT: _ALU1,
    Op.SHL: _ALU,
    Op.SHR: _ALU,
    Op.MOV: _ALU1,
    Op.SELP: OpInfo(FuClass.ALU, 3, duplicable=True),
    Op.SQRT: _SFU1,
    Op.RSQRT: _SFU1,
    Op.EXP: _SFU1,
    Op.LOG: _SFU1,
    Op.SIN: _SFU1,
    Op.COS: _SFU1,
    Op.SETP: OpInfo(FuClass.ALU, 2, writes_reg=False, writes_pred=True,
                    duplicable=True),
    Op.PAND: OpInfo(FuClass.ALU, 2, writes_reg=False, writes_pred=True,
                    duplicable=True),
    Op.POR: OpInfo(FuClass.ALU, 2, writes_reg=False, writes_pred=True,
                   duplicable=True),
    Op.PNOT: OpInfo(FuClass.ALU, 1, writes_reg=False, writes_pred=True,
                    duplicable=True),
    Op.LD: OpInfo(FuClass.MEM, 1, is_load=True),
    Op.ST: OpInfo(FuClass.MEM, 2, writes_reg=False, is_store=True),
    Op.ATOM: OpInfo(FuClass.MEM, 2, is_atomic=True),
    Op.BRA: OpInfo(FuClass.CTRL, 0, writes_reg=False, is_branch=True),
    Op.BAR: OpInfo(FuClass.CTRL, 0, writes_reg=False, is_barrier=True),
    Op.EXIT: OpInfo(FuClass.CTRL, 0, writes_reg=False, is_exit=True),
    Op.RB: OpInfo(FuClass.META, 0, writes_reg=False, is_boundary=True),
}
