"""GPU architecture configs, acoustic sensor model, and fault model."""

from .configs import (ALL_GPUS, GTX480, GV100, RTX2060, TITAN_X, CacheConfig,
                      GpuConfig, gpu_by_name)
from .fault_model import (FaultRates, sample_strike_cycles, section4_report,
                          SECONDS_PER_DAY)
from .sensors import (MESH_CONSTANT, MESH_EXPONENT, SENSOR_AREA_MM2,
                      SOUND_SPEED_MM_PER_US, SensorMesh, SensorModel,
                      sensors_for_wcdl, wcdl_curve, wcdl_for_sensors)

__all__ = [
    "ALL_GPUS", "CacheConfig", "FaultRates", "GTX480", "GV100", "GpuConfig",
    "MESH_CONSTANT", "MESH_EXPONENT", "RTX2060", "SECONDS_PER_DAY",
    "SENSOR_AREA_MM2", "SOUND_SPEED_MM_PER_US", "SensorMesh", "SensorModel",
    "TITAN_X", "gpu_by_name", "sample_strike_cycles", "section4_report",
    "sensors_for_wcdl", "wcdl_curve", "wcdl_for_sensors",
]
