"""GPU architecture configurations.

The four architectures evaluated in the paper (GTX480 default, plus
TITAN X, GV100, RTX2060 for the Figure 19 sensitivity study).  Latency
and sizing values follow GPGPU-Sim v4.0's Fermi model, scaled per
architecture; ``sm_logic_area_mm2`` is the pipeline-logic area covered
by the acoustic sensor mesh (GTX480's 17.5 mm^2 is from the paper
Section VI-A1, the others are derived from Table II — see
`repro.arch.sensors`).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from ..errors import ConfigError


@dataclass(frozen=True)
class CacheConfig:
    """A set-associative cache with 128-byte (32-word) lines."""

    num_sets: int
    assoc: int
    line_words: int = 32

    @property
    def size_words(self) -> int:
        return self.num_sets * self.assoc * self.line_words


@dataclass(frozen=True)
class GpuConfig:
    """Everything the simulator and sensor model need about one GPU."""

    name: str
    core_freq_mhz: float
    num_sms: int
    sm_logic_area_mm2: float
    max_warps_per_sm: int = 48
    max_blocks_per_sm: int = 8
    warp_size: int = 32
    num_schedulers: int = 2
    regfile_words_per_sm: int = 32768
    shared_words_per_sm: int = 12288
    # Instruction latencies (cycles until the result is usable).
    alu_latency: int = 4
    mul_latency: int = 6
    sfu_latency: int = 16
    shared_latency: int = 24
    l1_latency: int = 30
    l2_latency: int = 160
    dram_latency: int = 380
    atomic_latency: int = 60
    l1 : CacheConfig = field(default_factory=lambda: CacheConfig(32, 4))
    l2 : CacheConfig = field(default_factory=lambda: CacheConfig(768, 8))
    # Number of SMs actually instantiated by the simulator.  Relative
    # overheads are per-SM phenomena, so simulating a subset is enough;
    # block dispatch spreads the grid over the simulated SMs.
    sim_sms: int = 2

    def __post_init__(self) -> None:
        if self.max_warps_per_sm % self.num_schedulers:
            raise ConfigError("warps must split evenly across schedulers")
        if self.sim_sms < 1:
            raise ConfigError("must simulate at least one SM")

    @property
    def warps_per_scheduler(self) -> int:
        return self.max_warps_per_sm // self.num_schedulers

    def scaled(self, **changes) -> "GpuConfig":
        """A copy with the given fields replaced."""
        return replace(self, **changes)


GTX480 = GpuConfig(
    name="GTX480",
    core_freq_mhz=700.0,
    num_sms=16,
    sm_logic_area_mm2=17.5,
    # The paper's Section VI-A2 model: 64 active warps per SM, two warp
    # schedulers of 32 warps each (hence 5+1-bit RBQ entries and a
    # 32x32-bit RPT per scheduler).
    max_warps_per_sm=64,
    num_schedulers=2,
    regfile_words_per_sm=32768,
)

TITAN_X = GpuConfig(
    name="TITAN X",
    core_freq_mhz=1000.0,
    num_sms=24,
    sm_logic_area_mm2=13.67,
    max_warps_per_sm=64,
    num_schedulers=4,
    regfile_words_per_sm=65536,
    alu_latency=4,
    l2_latency=190,
    dram_latency=350,
)

GV100 = GpuConfig(
    name="GV100",
    core_freq_mhz=1136.0,
    num_sms=80,
    sm_logic_area_mm2=5.61,
    max_warps_per_sm=64,
    num_schedulers=4,
    regfile_words_per_sm=65536,
    alu_latency=4,
    sfu_latency=14,
    l2_latency=200,
    dram_latency=330,
)

RTX2060 = GpuConfig(
    name="RTX2060",
    core_freq_mhz=1365.0,
    num_sms=30,
    sm_logic_area_mm2=8.36,
    max_warps_per_sm=32,
    num_schedulers=4,
    regfile_words_per_sm=65536,
    alu_latency=4,
    sfu_latency=14,
    l2_latency=210,
    dram_latency=315,
)

#: All architectures of the Figure 19 / Table II studies, paper order.
ALL_GPUS: dict[str, GpuConfig] = {
    cfg.name: cfg for cfg in (GTX480, RTX2060, GV100, TITAN_X)
}


def gpu_by_name(name: str) -> GpuConfig:
    """Look up one of the four evaluated architectures by name."""
    try:
        return ALL_GPUS[name]
    except KeyError:
        raise ConfigError(
            f"unknown GPU {name!r}; choose from {sorted(ALL_GPUS)}"
        ) from None
