"""Radiation fault model and the Section IV resilience arithmetic.

The paper's field-study numbers (Tiwari et al.): a supercomputer GPU
fails 0.5 times/day *after* bit-masking; typical GPU applications mask
63.5% of raw strikes (Li & Pattabiraman).  Raw strike rate is therefore
0.5 / (1 - masking) ~= 1.37/day, of which masked strikes reported by a
weak-strike-sensitive sensor are false positives.

Note: the paper's own prose uses 0.685 in the two derived expressions
(getting 1.37 and 0.93) while quoting the masking rate as 63.5%; we use
the stated 63.5% consistently, which reproduces 1.37 raw errors/day and
yields 0.87 false positives/day (the paper's 0.93 follows its internal
0.685 figure).  Both support the same conclusion: ~1 spurious recovery
per day, each costing one re-executed region.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..errors import ConfigError
from .configs import GpuConfig

SECONDS_PER_DAY = 86400.0


@dataclass(frozen=True)
class FaultRates:
    """Failure-rate parameters of the Section IV analysis."""

    post_masking_errors_per_day: float = 0.5
    masking_rate: float = 0.635

    def __post_init__(self) -> None:
        if not 0.0 <= self.masking_rate < 1.0:
            raise ConfigError("masking rate must be in [0, 1)")
        if self.post_masking_errors_per_day < 0:
            raise ConfigError("error rate cannot be negative")

    @property
    def raw_strikes_per_day(self) -> float:
        """Particle strikes causing bit flips, before masking (~1.37/day)."""
        return self.post_masking_errors_per_day / (1.0 - self.masking_rate)

    @property
    def false_positives_per_day(self) -> float:
        """Sensor detections of strikes that would have been masked."""
        return self.raw_strikes_per_day * self.masking_rate

    def strikes_per_cycle(self, gpu: GpuConfig) -> float:
        """Poisson rate of raw strikes per GPU core cycle."""
        cycles_per_day = gpu.core_freq_mhz * 1e6 * SECONDS_PER_DAY
        return self.raw_strikes_per_day / cycles_per_day

    def recovery_overhead_fraction(self, gpu: GpuConfig,
                                   avg_region_instructions: float,
                                   cpi: float = 1.0) -> float:
        """Fraction of machine time spent re-executing regions after
        detections (true errors plus false positives).

        Every detection rolls all warps of one SM back by at most one
        region; the cost is bounded by one region re-execution.
        """
        detections_per_day = self.raw_strikes_per_day
        cycles_lost = detections_per_day * avg_region_instructions * cpi
        cycles_per_day = gpu.core_freq_mhz * 1e6 * SECONDS_PER_DAY
        return cycles_lost / cycles_per_day


def sample_strike_cycles(rate_per_cycle: float, horizon_cycles: int,
                         rng: np.random.Generator) -> list[int]:
    """Sample Poisson strike arrival cycles over a simulation horizon."""
    if rate_per_cycle < 0:
        raise ConfigError("strike rate cannot be negative")
    if rate_per_cycle == 0 or horizon_cycles <= 0:
        return []
    arrivals: list[int] = []
    t = 0.0
    while True:
        t += rng.exponential(1.0 / rate_per_cycle)
        if t >= horizon_cycles:
            return arrivals
        arrivals.append(int(math.floor(t)))


def section4_report(rates: FaultRates | None = None,
                    avg_region_instructions: float = 50.23) -> dict[str, float]:
    """The Section IV arithmetic as a dict (used by the harness)."""
    rates = rates or FaultRates()
    return {
        "post_masking_errors_per_day": rates.post_masking_errors_per_day,
        "masking_rate": rates.masking_rate,
        "raw_strikes_per_day": rates.raw_strikes_per_day,
        "false_positives_per_day": rates.false_positives_per_day,
        "avg_region_instructions": avg_region_instructions,
        "instructions_reexecuted_per_day":
            rates.raw_strikes_per_day * avg_region_instructions,
    }
