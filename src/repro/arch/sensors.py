"""Acoustic sensor mesh model: WCDL as a function of sensor deployment.

A particle strike emits a sound wave travelling ~10 km/s (= 10 mm/us) in
silicon; a mesh of n sensors over the SM's logic area A detects any
strike within the time the wave needs to reach the nearest sensor, plus
mesh arbitration.  The paper quotes three operating points for GTX480
(50 sensors -> ~50 cycles, 200 -> 20, 300 -> 15, Section VI-A1) which
fit a power law

    WCDL_cycles = C * (A / n)^alpha * f_core

with alpha = 0.7 (between the sqrt law of an ideal 2-D mesh and the
linear law of a chain topology) and C calibrated so that GTX480 with
200 sensors/SM gives exactly the paper's default 20-cycle WCDL.  The
per-architecture logic areas in `repro.arch.configs` are chosen so the
inverse of this law reproduces Table II's sensors-per-SM column.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..errors import ConfigError
from .configs import GpuConfig

#: Sound-wave propagation speed in silicon, mm per microsecond (paper II-A).
SOUND_SPEED_MM_PER_US = 10.0

#: Power-law exponent fitted to the paper's quoted (sensors, WCDL) points.
MESH_EXPONENT = 0.7

#: Mesh-topology constant calibrated on GTX480 @ 200 sensors -> 20 cycles.
MESH_CONSTANT = 20.0 / (700.0 * (17.5 / 200.0) ** MESH_EXPONENT)

#: Area of a single cantilever-beam sensor, mm^2 (one square micron).
SENSOR_AREA_MM2 = 1e-6

#: Interconnect mesh multiplier: a 200-sensor mesh occupies well under
#: 0.01 mm^2 including routing (Section VI-A1).
MESH_WIRING_FACTOR = 30.0


@dataclass(frozen=True)
class SensorMesh:
    """A deployed acoustic sensor mesh on one SM."""

    gpu: GpuConfig
    sensors_per_sm: int

    def __post_init__(self) -> None:
        if self.sensors_per_sm < 1:
            raise ConfigError("a sensor mesh needs at least one sensor")

    @property
    def wcdl_cycles(self) -> int:
        """Worst-case detection latency in core cycles."""
        return wcdl_for_sensors(self.gpu, self.sensors_per_sm)

    @property
    def area_mm2(self) -> float:
        """Total silicon area of sensors plus interconnect."""
        return self.sensors_per_sm * SENSOR_AREA_MM2 * MESH_WIRING_FACTOR

    @property
    def area_overhead(self) -> float:
        """Mesh area as a fraction of the covered SM logic area."""
        return self.area_mm2 / self.gpu.sm_logic_area_mm2


def wcdl_for_sensors(gpu: GpuConfig, sensors_per_sm: int) -> int:
    """WCDL (cycles) for a given sensor count on one SM of ``gpu``."""
    if sensors_per_sm < 1:
        raise ConfigError("sensor count must be positive")
    per_sensor_area = gpu.sm_logic_area_mm2 / sensors_per_sm
    cycles = MESH_CONSTANT * per_sensor_area ** MESH_EXPONENT * gpu.core_freq_mhz
    return max(1, math.ceil(cycles - 1e-9))


def sensors_for_wcdl(gpu: GpuConfig, wcdl_cycles: int) -> int:
    """Minimum sensors per SM achieving at most ``wcdl_cycles`` WCDL."""
    if wcdl_cycles < 1:
        raise ConfigError("WCDL must be at least one cycle")
    per_sensor_area = (
        wcdl_cycles / (MESH_CONSTANT * gpu.core_freq_mhz)
    ) ** (1.0 / MESH_EXPONENT)
    count = math.ceil(gpu.sm_logic_area_mm2 / per_sensor_area)
    # Ceil twice (area then count) can overshoot by one; take the smallest
    # count whose WCDL still meets the target.
    while count > 1 and wcdl_for_sensors(gpu, count - 1) <= wcdl_cycles:
        count -= 1
    return max(1, count)


def wcdl_curve(gpu: GpuConfig, sensor_counts: list[int]) -> list[int]:
    """The Figure 12 series: WCDL for each sensor count."""
    return [wcdl_for_sensors(gpu, n) for n in sensor_counts]
