"""Acoustic sensor mesh model: WCDL as a function of sensor deployment.

A particle strike emits a sound wave travelling ~10 km/s (= 10 mm/us) in
silicon; a mesh of n sensors over the SM's logic area A detects any
strike within the time the wave needs to reach the nearest sensor, plus
mesh arbitration.  The paper quotes three operating points for GTX480
(50 sensors -> ~50 cycles, 200 -> 20, 300 -> 15, Section VI-A1) which
fit a power law

    WCDL_cycles = C * (A / n)^alpha * f_core

with alpha = 0.7 (between the sqrt law of an ideal 2-D mesh and the
linear law of a chain topology) and C calibrated so that GTX480 with
200 sensors/SM gives exactly the paper's default 20-cycle WCDL.  The
per-architecture logic areas in `repro.arch.configs` are chosen so the
inverse of this law reproduces Table II's sensors-per-SM column.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..errors import ConfigError
from .configs import GpuConfig

#: Sound-wave propagation speed in silicon, mm per microsecond (paper II-A).
SOUND_SPEED_MM_PER_US = 10.0

#: Power-law exponent fitted to the paper's quoted (sensors, WCDL) points.
MESH_EXPONENT = 0.7

#: Mesh-topology constant calibrated on GTX480 @ 200 sensors -> 20 cycles.
MESH_CONSTANT = 20.0 / (700.0 * (17.5 / 200.0) ** MESH_EXPONENT)

#: Area of a single cantilever-beam sensor, mm^2 (one square micron).
SENSOR_AREA_MM2 = 1e-6

#: Interconnect mesh multiplier: a 200-sensor mesh occupies well under
#: 0.01 mm^2 including routing (Section VI-A1).
MESH_WIRING_FACTOR = 30.0


@dataclass(frozen=True)
class SensorMesh:
    """A deployed acoustic sensor mesh on one SM."""

    gpu: GpuConfig
    sensors_per_sm: int

    def __post_init__(self) -> None:
        if self.sensors_per_sm < 1:
            raise ConfigError("a sensor mesh needs at least one sensor")

    @property
    def wcdl_cycles(self) -> int:
        """Worst-case detection latency in core cycles."""
        return wcdl_for_sensors(self.gpu, self.sensors_per_sm)

    @property
    def area_mm2(self) -> float:
        """Total silicon area of sensors plus interconnect."""
        return self.sensors_per_sm * SENSOR_AREA_MM2 * MESH_WIRING_FACTOR

    @property
    def area_overhead(self) -> float:
        """Mesh area as a fraction of the covered SM logic area."""
        return self.area_mm2 / self.gpu.sm_logic_area_mm2


def wcdl_for_sensors(gpu: GpuConfig, sensors_per_sm: int) -> int:
    """WCDL (cycles) for a given sensor count on one SM of ``gpu``."""
    if sensors_per_sm < 1:
        raise ConfigError("sensor count must be positive")
    per_sensor_area = gpu.sm_logic_area_mm2 / sensors_per_sm
    cycles = MESH_CONSTANT * per_sensor_area ** MESH_EXPONENT * gpu.core_freq_mhz
    return max(1, math.ceil(cycles - 1e-9))


def sensors_for_wcdl(gpu: GpuConfig, wcdl_cycles: int) -> int:
    """Minimum sensors per SM achieving at most ``wcdl_cycles`` WCDL."""
    if wcdl_cycles < 1:
        raise ConfigError("WCDL must be at least one cycle")
    per_sensor_area = (
        wcdl_cycles / (MESH_CONSTANT * gpu.core_freq_mhz)
    ) ** (1.0 / MESH_EXPONENT)
    count = math.ceil(gpu.sm_logic_area_mm2 / per_sensor_area)
    # Ceil twice (area then count) can overshoot by one; take the smallest
    # count whose WCDL still meets the target.
    while count > 1 and wcdl_for_sensors(gpu, count - 1) <= wcdl_cycles:
        count -= 1
    return max(1, count)


def wcdl_curve(gpu: GpuConfig, sensor_counts: list[int]) -> list[int]:
    """The Figure 12 series: WCDL for each sensor count."""
    return [wcdl_for_sensors(gpu, n) for n in sensor_counts]


@dataclass(frozen=True)
class SensorModel:
    """An imperfect acoustic detection model layered on the WCDL law.

    The paper assumes every strike is sensed within WCDL cycles.  Field
    studies of deployed detectors motivate two relaxations, both layered
    on top of the power-law WCDL of :func:`wcdl_for_sensors`:

    * ``miss_probability`` — per-strike probability that the mesh never
      reports the strike at all (dead sensor, arbitration loss, wave
      attenuated below threshold).  A missed strike is never followed by
      a rollback, so under Flame it degrades into the unprotected case.
    * ``jitter_cycles`` — extra detection latency beyond the nominal
      WCDL bound (mesh arbitration backpressure, clock-domain crossing).
      Jitter can push detection past the RBQ conveyor depth, letting a
      corrupted region verify before the sensor fires — exactly the
      failure mode the WCDL-sized conveyor was designed to exclude.

    The default model (``miss_probability=0``, ``jitter_cycles=0``) is
    the paper's perfect sensor: detection delay uniform in [1, WCDL].
    """

    wcdl: int = 20
    miss_probability: float = 0.0
    jitter_cycles: int = 0

    def __post_init__(self) -> None:
        if self.wcdl < 1:
            raise ConfigError("WCDL must be at least one cycle")
        if not 0.0 <= self.miss_probability <= 1.0:
            raise ConfigError("sensor miss probability must be in [0, 1]")
        if self.jitter_cycles < 0:
            raise ConfigError("sensor jitter must be non-negative")

    @property
    def perfect(self) -> bool:
        return self.miss_probability == 0.0 and self.jitter_cycles == 0

    def sample_delay(self, rng) -> int | None:
        """Detection delay (cycles) for one strike, or ``None`` if the
        mesh misses the strike entirely.

        The miss draw happens only when ``miss_probability > 0`` so a
        perfect model consumes exactly the generator stream the paper's
        original uniform-delay sampling did.
        """
        if self.miss_probability > 0.0 and rng.random() < self.miss_probability:
            return None
        delay = int(rng.integers(1, self.wcdl + 1))
        if self.jitter_cycles:
            delay += int(rng.integers(0, self.jitter_cycles + 1))
        return delay

    @staticmethod
    def for_mesh(mesh: SensorMesh, miss_probability: float = 0.0,
                 jitter_cycles: int = 0) -> "SensorModel":
        """Build a sensor model whose nominal WCDL comes from a deployed
        mesh's power-law latency."""
        return SensorModel(wcdl=mesh.wcdl_cycles,
                           miss_probability=miss_probability,
                           jitter_cycles=jitter_cycles)
