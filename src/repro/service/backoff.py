"""Capped exponential backoff with deterministic seeded jitter.

Every retry path in the campaign stack (worker-pool retries, shard
lease requeues) shares this schedule: delays double from ``base_s`` up
to ``cap_s``, and each delay is scaled by a jitter factor in
``[0.5, 1.0]`` drawn from a generator seeded by the retry's identity —
so concurrent retries de-synchronise (no thundering herd on a shared
coordinator) while any given retry's delay is reproducible, which keeps
chaos tests and campaign replays deterministic.
"""

from __future__ import annotations

import zlib

import numpy as np


def backoff_delay(attempt: int, *, base_s: float = 0.5,
                  cap_s: float = 30.0, seed: int = 0,
                  key: tuple = ()) -> float:
    """Delay in seconds before retry ``attempt`` (1-based).

    ``key`` identifies the retrying entity (e.g. a trial key or a shard
    id) so distinct entities jitter independently under one seed.
    """
    if attempt < 1:
        raise ValueError("attempt is 1-based")
    if base_s <= 0:
        return 0.0
    # Clamp the exponent so arbitrarily large attempt counts (a shard
    # requeued hundreds of times) can't overflow the float multiply;
    # any sane cap saturates long before 2**63 anyway.
    base = min(cap_s, base_s * (2.0 ** min(attempt - 1, 63)))
    words = [seed & 0xFFFFFFFF, attempt]
    for part in key:
        words.append(zlib.crc32(str(part).encode()))
    jitter = 0.5 + 0.5 * float(np.random.default_rng(words).random())
    return base * jitter


__all__ = ["backoff_delay"]
