"""HTTP transport for the campaign coordinator (stdlib only).

The coordinator is exposed as a tiny JSON-over-HTTP API so workers can
run in separate processes (or, with a shared filesystem for shard
journals, separate hosts) and poll for shard leases::

    POST /v1/lease      {"worker_id": ...} -> {"lease": {...}|null,
                                               "finished": bool,
                                               "retry_after_s": float}
    POST /v1/heartbeat  {"lease_id": ...,
                         "metrics": {...}?}  -> {"ok": bool}
    POST /v1/complete   {"lease_id": ...}  -> {"ok": bool}
    POST /v1/fail       {"lease_id": ..., "reason": ...} -> {"ok": true}
    GET  /v1/status                        -> coordinator status dict
    GET  /v1/metrics                       -> Prometheus text exposition

``heartbeat -> {"ok": false}`` is the revocation signal: the lease was
expired (missed heartbeats, TTL) or the coordinator restarted; the
worker must stop executing the shard and lease again.  A worker may
attach its campaign-heartbeat snapshot to the heartbeat body; the
coordinator mirrors it into per-shard gauges on ``/v1/metrics``.  Every
mutating coordinator call runs under one lock, so the threaded server
imposes the same single-writer discipline the in-process backends get
for free.

Unknown paths and methods answer with a structured JSON 404 body
(``{"error": "not_found", "path": ..., "method": ..., "endpoints":
[...]}``) — a worker pointed at the wrong URL fails fast with a
diagnosable :class:`CoordinatorApiError` instead of burning its retry
budget against an empty reply.
"""

from __future__ import annotations

import json
import threading
import time
import urllib.error
import urllib.request
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from ..errors import ReproError
from .coordinator import Coordinator
from .shard import ShardSpec
from .worker import ShardAssignment, run_shard

#: Every route the server answers, by method (also the 404 body's
#: ``endpoints`` hint and the metrics plane's path-label vocabulary).
GET_ENDPOINTS = ("/v1/status", "/v1/metrics")
POST_ENDPOINTS = ("/v1/lease", "/v1/heartbeat", "/v1/complete", "/v1/fail")


class CoordinatorUnreachable(ReproError):
    """The coordinator did not answer within the client's retry budget."""


class CoordinatorApiError(ReproError):
    """The coordinator answered with a definitive client error (4xx) —
    retrying identically cannot succeed, so the client fails fast."""

    def __init__(self, message: str, status: int = 0,
                 body: dict | None = None) -> None:
        super().__init__(message)
        self.status = status
        self.body = body or {}


class CoordinatorServer:
    """Threaded HTTP front-end over a :class:`Coordinator`.

    ``port=0`` binds an ephemeral port (tests, single-host campaigns);
    ``on_heartbeat(shard_id)`` lets the service runner mirror worker
    liveness into its metrics heartbeat.  ``metrics`` is the
    :class:`~repro.service.metrics.ServiceMetrics` hub behind
    ``GET /v1/metrics``; when not given, the server builds its own over
    the coordinator so the endpoint always exists.
    """

    def __init__(self, coordinator: Coordinator, host: str = "127.0.0.1",
                 port: int = 0, on_heartbeat=None, metrics=None) -> None:
        self.coordinator = coordinator
        self.lock = threading.Lock()
        self.on_heartbeat = on_heartbeat
        if metrics is None:
            from .metrics import ServiceMetrics

            metrics = ServiceMetrics(coordinator)
        self.metrics = metrics
        server = self

        class Handler(BaseHTTPRequestHandler):
            def log_message(self, *args) -> None:  # silence per-request log
                pass

            def _reply(self, payload: dict, status: int = 200) -> None:
                body = json.dumps(payload).encode()
                self._send(body, status, "application/json")

            def _send(self, body: bytes, status: int,
                      content_type: str) -> None:
                self.send_response(status)
                self.send_header("Content-Type", content_type)
                self.send_header("Content-Length", str(len(body)))
                self.end_headers()
                self.wfile.write(body)
                self._status = status

            def _not_found(self, method: str) -> None:
                endpoints = (GET_ENDPOINTS if method == "GET"
                             else POST_ENDPOINTS)
                self._reply({"error": "not_found", "path": self.path,
                             "method": method,
                             "endpoints": list(endpoints)}, 404)

            def _observed(self, method: str, handler) -> None:
                known = (GET_ENDPOINTS if method == "GET"
                         else POST_ENDPOINTS)
                label = self.path if self.path in known else "other"
                self._status = 500
                started = time.perf_counter()
                try:
                    handler()
                finally:
                    server.metrics.observe_http(
                        label, self._status,
                        time.perf_counter() - started)

            def do_GET(self) -> None:
                self._observed("GET", self._get)

            def do_POST(self) -> None:
                self._observed("POST", self._post)

            def _get(self) -> None:
                if self.path == "/v1/status":
                    with server.lock:
                        status = server.coordinator.status()
                    self._reply(status)
                    return
                if self.path == "/v1/metrics":
                    with server.lock:
                        server.metrics.refresh()
                    self._send(server.metrics.render().encode(), 200,
                               "text/plain; version=0.0.4; charset=utf-8")
                    return
                self._not_found("GET")

            def _post(self) -> None:
                if self.path not in POST_ENDPOINTS:
                    self._not_found("POST")
                    return
                length = int(self.headers.get("Content-Length") or 0)
                try:
                    body = json.loads(self.rfile.read(length) or b"{}")
                except json.JSONDecodeError:
                    self._reply({"error": "bad_json", "path": self.path},
                                400)
                    return
                with server.lock:
                    self._reply(server._handle(self.path, body))

        self._http = ThreadingHTTPServer((host, port), Handler)
        self._http.daemon_threads = True
        self._thread: threading.Thread | None = None

    # -- request routing (called under self.lock) -----------------------
    def _handle(self, path: str, body: dict) -> dict:
        coordinator = self.coordinator
        if path == "/v1/lease":
            lease = coordinator.lease(str(body.get("worker_id", "?")))
            delay = coordinator.next_ready_delay()
            return {"lease": lease, "finished": coordinator.finished,
                    "retry_after_s": delay if delay is not None else 0.5}
        if path == "/v1/heartbeat":
            lease_id = str(body.get("lease_id", ""))
            ok = coordinator.heartbeat(lease_id)
            if ok:
                lease = coordinator.leases.get(lease_id)
                if lease is not None:
                    if self.on_heartbeat is not None:
                        self.on_heartbeat(lease.shard_id)
                    snapshot = body.get("metrics")
                    if snapshot:
                        self.metrics.ingest_worker_snapshot(
                            lease.shard_id, snapshot)
            return {"ok": ok}
        if path == "/v1/complete":
            return {"ok": coordinator.complete(
                str(body.get("lease_id", "")))}
        # POST_ENDPOINTS routing guarantees this is /v1/fail.
        coordinator.fail(str(body.get("lease_id", "")),
                         str(body.get("reason", "")))
        return {"ok": True}

    # -- lifecycle -------------------------------------------------------
    @property
    def url(self) -> str:
        host, port = self._http.server_address[:2]
        return f"http://{host}:{port}"

    def start(self) -> "CoordinatorServer":
        self._thread = threading.Thread(target=self._http.serve_forever,
                                        name="coordinator-http",
                                        daemon=True)
        self._thread.start()
        return self

    def stop(self) -> None:
        self._http.shutdown()
        self._http.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None


class CoordinatorClient:
    """Minimal JSON client with a bounded connect-retry budget (the
    coordinator may be restarting between a worker's polls).

    Transport faults and 5xx answers retry; a definitive 4xx answer
    raises :class:`CoordinatorApiError` immediately with the parsed
    body attached — wrong URLs and malformed requests are programming
    errors, not outages.
    """

    def __init__(self, url: str, timeout_s: float = 10.0,
                 retries: int = 5, retry_delay_s: float = 0.2) -> None:
        self.url = url.rstrip("/")
        self.timeout_s = timeout_s
        self.retries = retries
        self.retry_delay_s = retry_delay_s

    def _request(self, path: str, data: bytes | None):
        return urllib.request.Request(
            self.url + path, data=data,
            headers={"Content-Type": "application/json"},
            method="POST" if data is not None else "GET")

    def _call(self, path: str, payload: dict | None = None) -> dict:
        data = None if payload is None else json.dumps(payload).encode()
        last: Exception | None = None
        for attempt in range(self.retries + 1):
            try:
                with urllib.request.urlopen(
                        self._request(path, data),
                        timeout=self.timeout_s) as response:
                    return json.loads(response.read())
            except urllib.error.HTTPError as exc:
                if 400 <= exc.code < 500:
                    try:
                        detail = json.loads(exc.read())
                    except (json.JSONDecodeError, OSError):
                        detail = {}
                    raise CoordinatorApiError(
                        f"coordinator rejected {path}: HTTP {exc.code} "
                        f"({detail.get('error', 'no body')})",
                        status=exc.code, body=detail) from None
                last = exc
            except (urllib.error.URLError, OSError,
                    json.JSONDecodeError) as exc:
                last = exc
            time.sleep(self.retry_delay_s * (attempt + 1))
        raise CoordinatorUnreachable(
            f"coordinator at {self.url} unreachable after "
            f"{self.retries + 1} attempts: {last}")

    def lease(self, worker_id: str) -> dict:
        return self._call("/v1/lease", {"worker_id": worker_id})

    def heartbeat(self, lease_id: str, metrics: dict | None = None) -> bool:
        payload: dict = {"lease_id": lease_id}
        if metrics is not None:
            payload["metrics"] = metrics
        return bool(self._call("/v1/heartbeat", payload).get("ok"))

    def complete(self, lease_id: str) -> bool:
        return bool(self._call("/v1/complete",
                               {"lease_id": lease_id}).get("ok"))

    def fail(self, lease_id: str, reason: str = "") -> None:
        self._call("/v1/fail", {"lease_id": lease_id, "reason": reason})

    def status(self) -> dict:
        return self._call("/v1/status")

    def metrics_text(self) -> str:
        """Scrape ``/v1/metrics`` (raw Prometheus text, not JSON)."""
        last: Exception | None = None
        for attempt in range(self.retries + 1):
            try:
                with urllib.request.urlopen(
                        self._request("/v1/metrics", None),
                        timeout=self.timeout_s) as response:
                    return response.read().decode("utf-8")
            except urllib.error.HTTPError as exc:
                raise CoordinatorApiError(
                    f"coordinator rejected /v1/metrics: HTTP {exc.code}",
                    status=exc.code) from None
            except (urllib.error.URLError, OSError) as exc:
                last = exc
            time.sleep(self.retry_delay_s * (attempt + 1))
        raise CoordinatorUnreachable(
            f"coordinator at {self.url} unreachable after "
            f"{self.retries + 1} attempts: {last}")


def run_polling_worker(url: str, worker_id: str, *,
                       poll_interval_s: float = 0.5,
                       heartbeat_interval_s: float = 1.0,
                       fsync_interval: int = 1,
                       max_idle_polls: int | None = None,
                       progress: bool = False) -> int:
    """Worker main loop for the HTTP backend: poll for a lease, run the
    shard (heartbeating in the background), report completion/failure;
    exit 0 once the coordinator reports the campaign finished.

    A revoked lease (heartbeat answered ``ok: false``) aborts the shard
    mid-flight — the journal keeps what was measured and whichever
    worker reclaims the shard resumes from it.  Each liveness heartbeat
    carries the worker's current telemetry snapshot, which the
    coordinator republishes as per-shard gauges on ``/v1/metrics``.
    """
    client = CoordinatorClient(url)
    idle = 0
    while True:
        reply = client.lease(worker_id)
        lease = reply.get("lease")
        if lease is None:
            if reply.get("finished"):
                return 0
            idle += 1
            if max_idle_polls is not None and idle >= max_idle_polls:
                return 0
            time.sleep(min(float(reply.get("retry_after_s") or 0.0)
                           or poll_interval_s, poll_interval_s * 4))
            continue
        idle = 0
        assignment = ShardAssignment(
            shard=ShardSpec.from_dict(lease["shard"]),
            journal_path=lease["journal_path"],
            lease_id=lease["lease_id"],
            heartbeat_path=lease.get("heartbeat_path"),
            fsync_interval=fsync_interval,
            heartbeat_interval_s=heartbeat_interval_s)
        if progress:
            print(f"[{worker_id}] leased shard "
                  f"{assignment.shard.shard_id} "
                  f"({assignment.shard.trials} trials)", flush=True)
        revoked = threading.Event()
        stop = threading.Event()
        # The telemetry heartbeat exists before the beater thread so
        # every liveness beat can attach a snapshot (path=None when the
        # coordinator did not ask for a heartbeat file — the snapshots
        # still flow over HTTP).
        from ..obs import CampaignHeartbeat

        heartbeat = CampaignHeartbeat(
            assignment.heartbeat_path or None, assignment.shard.trials,
            interval=heartbeat_interval_s,
            shard_id=assignment.shard.shard_id,
            worker_id=worker_id).start()

        def beat(lease_id=assignment.lease_id,
                 heartbeat=heartbeat) -> None:
            while not stop.wait(heartbeat_interval_s):
                try:
                    if not client.heartbeat(lease_id,
                                            metrics=heartbeat.snapshot()):
                        revoked.set()
                        return
                except (CoordinatorUnreachable, CoordinatorApiError):
                    revoked.set()
                    return

        beater = threading.Thread(target=beat, daemon=True,
                                  name=f"heartbeat-{assignment.lease_id}")
        beater.start()
        try:
            run_shard(assignment, should_abort=revoked.is_set,
                      heartbeat=heartbeat)
        except Exception as exc:  # infra fault: report and keep polling
            try:
                client.fail(assignment.lease_id,
                            f"{type(exc).__name__}: {exc}")
            except CoordinatorUnreachable:
                pass
            continue
        finally:
            stop.set()
            beater.join(timeout=heartbeat_interval_s + 1.0)
            heartbeat.stop()
        if not revoked.is_set():
            client.complete(assignment.lease_id)


__all__ = ["CoordinatorApiError", "CoordinatorClient", "CoordinatorServer",
           "CoordinatorUnreachable", "GET_ENDPOINTS", "POST_ENDPOINTS",
           "run_polling_worker"]
