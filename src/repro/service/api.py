"""HTTP transport for the campaign coordinator (stdlib only).

The coordinator is exposed as a tiny JSON-over-HTTP API so workers can
run in separate processes (or, with a shared filesystem for shard
journals, separate hosts) and poll for shard leases::

    POST /v1/lease      {"worker_id": ...} -> {"lease": {...}|null,
                                               "finished": bool,
                                               "retry_after_s": float}
    POST /v1/heartbeat  {"lease_id": ...}  -> {"ok": bool}
    POST /v1/complete   {"lease_id": ...}  -> {"ok": bool}
    POST /v1/fail       {"lease_id": ..., "reason": ...} -> {"ok": true}
    GET  /v1/status                        -> coordinator status dict

``heartbeat -> {"ok": false}`` is the revocation signal: the lease was
expired (missed heartbeats, TTL) or the coordinator restarted; the
worker must stop executing the shard and lease again.  Every mutating
coordinator call runs under one lock, so the threaded server imposes
the same single-writer discipline the in-process backends get for free.
"""

from __future__ import annotations

import json
import threading
import time
import urllib.error
import urllib.request
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from ..errors import ReproError
from .coordinator import Coordinator
from .shard import ShardSpec
from .worker import ShardAssignment, run_shard


class CoordinatorUnreachable(ReproError):
    """The coordinator did not answer within the client's retry budget."""


class CoordinatorServer:
    """Threaded HTTP front-end over a :class:`Coordinator`.

    ``port=0`` binds an ephemeral port (tests, single-host campaigns);
    ``on_heartbeat(shard_id)`` lets the service runner mirror worker
    liveness into its metrics heartbeat.
    """

    def __init__(self, coordinator: Coordinator, host: str = "127.0.0.1",
                 port: int = 0, on_heartbeat=None) -> None:
        self.coordinator = coordinator
        self.lock = threading.Lock()
        self.on_heartbeat = on_heartbeat
        server = self

        class Handler(BaseHTTPRequestHandler):
            def log_message(self, *args) -> None:  # silence per-request log
                pass

            def _reply(self, payload: dict, status: int = 200) -> None:
                body = json.dumps(payload).encode()
                self.send_response(status)
                self.send_header("Content-Type", "application/json")
                self.send_header("Content-Length", str(len(body)))
                self.end_headers()
                self.wfile.write(body)

            def do_GET(self) -> None:
                if self.path != "/v1/status":
                    self._reply({"error": "not found"}, 404)
                    return
                with server.lock:
                    self._reply(server.coordinator.status())

            def do_POST(self) -> None:
                length = int(self.headers.get("Content-Length") or 0)
                try:
                    body = json.loads(self.rfile.read(length) or b"{}")
                except json.JSONDecodeError:
                    self._reply({"error": "bad json"}, 400)
                    return
                with server.lock:
                    self._reply(server._handle(self.path, body))

        self._http = ThreadingHTTPServer((host, port), Handler)
        self._http.daemon_threads = True
        self._thread: threading.Thread | None = None

    # -- request routing (called under self.lock) -----------------------
    def _handle(self, path: str, body: dict) -> dict:
        coordinator = self.coordinator
        if path == "/v1/lease":
            lease = coordinator.lease(str(body.get("worker_id", "?")))
            delay = coordinator.next_ready_delay()
            return {"lease": lease, "finished": coordinator.finished,
                    "retry_after_s": delay if delay is not None else 0.5}
        if path == "/v1/heartbeat":
            ok = coordinator.heartbeat(str(body.get("lease_id", "")))
            if ok and self.on_heartbeat is not None:
                lease = coordinator.leases.get(str(body.get("lease_id")))
                if lease is not None:
                    self.on_heartbeat(lease.shard_id)
            return {"ok": ok}
        if path == "/v1/complete":
            return {"ok": coordinator.complete(
                str(body.get("lease_id", "")))}
        if path == "/v1/fail":
            coordinator.fail(str(body.get("lease_id", "")),
                             str(body.get("reason", "")))
            return {"ok": True}
        return {"error": "not found"}

    # -- lifecycle -------------------------------------------------------
    @property
    def url(self) -> str:
        host, port = self._http.server_address[:2]
        return f"http://{host}:{port}"

    def start(self) -> "CoordinatorServer":
        self._thread = threading.Thread(target=self._http.serve_forever,
                                        name="coordinator-http",
                                        daemon=True)
        self._thread.start()
        return self

    def stop(self) -> None:
        self._http.shutdown()
        self._http.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None


class CoordinatorClient:
    """Minimal JSON client with a bounded connect-retry budget (the
    coordinator may be restarting between a worker's polls)."""

    def __init__(self, url: str, timeout_s: float = 10.0,
                 retries: int = 5, retry_delay_s: float = 0.2) -> None:
        self.url = url.rstrip("/")
        self.timeout_s = timeout_s
        self.retries = retries
        self.retry_delay_s = retry_delay_s

    def _call(self, path: str, payload: dict | None = None) -> dict:
        data = None if payload is None else json.dumps(payload).encode()
        last: Exception | None = None
        for attempt in range(self.retries + 1):
            request = urllib.request.Request(
                self.url + path, data=data,
                headers={"Content-Type": "application/json"},
                method="POST" if data is not None else "GET")
            try:
                with urllib.request.urlopen(
                        request, timeout=self.timeout_s) as response:
                    return json.loads(response.read())
            except (urllib.error.URLError, OSError,
                    json.JSONDecodeError) as exc:
                last = exc
                time.sleep(self.retry_delay_s * (attempt + 1))
        raise CoordinatorUnreachable(
            f"coordinator at {self.url} unreachable after "
            f"{self.retries + 1} attempts: {last}")

    def lease(self, worker_id: str) -> dict:
        return self._call("/v1/lease", {"worker_id": worker_id})

    def heartbeat(self, lease_id: str) -> bool:
        return bool(self._call("/v1/heartbeat",
                               {"lease_id": lease_id}).get("ok"))

    def complete(self, lease_id: str) -> bool:
        return bool(self._call("/v1/complete",
                               {"lease_id": lease_id}).get("ok"))

    def fail(self, lease_id: str, reason: str = "") -> None:
        self._call("/v1/fail", {"lease_id": lease_id, "reason": reason})

    def status(self) -> dict:
        return self._call("/v1/status")


def run_polling_worker(url: str, worker_id: str, *,
                       poll_interval_s: float = 0.5,
                       heartbeat_interval_s: float = 1.0,
                       fsync_interval: int = 1,
                       max_idle_polls: int | None = None,
                       progress: bool = False) -> int:
    """Worker main loop for the HTTP backend: poll for a lease, run the
    shard (heartbeating in the background), report completion/failure;
    exit 0 once the coordinator reports the campaign finished.

    A revoked lease (heartbeat answered ``ok: false``) aborts the shard
    mid-flight — the journal keeps what was measured and whichever
    worker reclaims the shard resumes from it.
    """
    client = CoordinatorClient(url)
    idle = 0
    while True:
        reply = client.lease(worker_id)
        lease = reply.get("lease")
        if lease is None:
            if reply.get("finished"):
                return 0
            idle += 1
            if max_idle_polls is not None and idle >= max_idle_polls:
                return 0
            time.sleep(min(float(reply.get("retry_after_s") or 0.0)
                           or poll_interval_s, poll_interval_s * 4))
            continue
        idle = 0
        assignment = ShardAssignment(
            shard=ShardSpec.from_dict(lease["shard"]),
            journal_path=lease["journal_path"],
            lease_id=lease["lease_id"],
            heartbeat_path=lease.get("heartbeat_path"),
            fsync_interval=fsync_interval,
            heartbeat_interval_s=heartbeat_interval_s)
        if progress:
            print(f"[{worker_id}] leased shard "
                  f"{assignment.shard.shard_id} "
                  f"({assignment.shard.trials} trials)", flush=True)
        revoked = threading.Event()
        stop = threading.Event()

        def beat(lease_id=assignment.lease_id) -> None:
            while not stop.wait(heartbeat_interval_s):
                try:
                    if not client.heartbeat(lease_id):
                        revoked.set()
                        return
                except CoordinatorUnreachable:
                    revoked.set()
                    return

        beater = threading.Thread(target=beat, daemon=True,
                                  name=f"heartbeat-{assignment.lease_id}")
        beater.start()
        heartbeat = None
        if assignment.heartbeat_path:
            from ..obs import CampaignHeartbeat

            heartbeat = CampaignHeartbeat(
                assignment.heartbeat_path, assignment.shard.trials,
                interval=heartbeat_interval_s,
                shard_id=assignment.shard.shard_id,
                worker_id=worker_id).start()
        try:
            run_shard(assignment, should_abort=revoked.is_set)
        except Exception as exc:  # infra fault: report and keep polling
            stop.set()
            beater.join(timeout=heartbeat_interval_s + 1.0)
            try:
                client.fail(assignment.lease_id,
                            f"{type(exc).__name__}: {exc}")
            except CoordinatorUnreachable:
                pass
            continue
        finally:
            stop.set()
            beater.join(timeout=heartbeat_interval_s + 1.0)
            if heartbeat is not None:
                heartbeat.stop()
        if not revoked.is_set():
            client.complete(assignment.lease_id)


__all__ = ["CoordinatorClient", "CoordinatorServer",
           "CoordinatorUnreachable", "run_polling_worker"]
