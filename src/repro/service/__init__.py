"""Fault-tolerant distributed campaign service.

Lifts the single-host campaign engine behind a coordinator/worker
split: a :class:`~repro.service.coordinator.Coordinator` deterministically
splits a campaign into seeded trial shards, launcher backends
(``inline`` / ``subprocess`` / ``http``) fan them out to workers, and
:func:`~repro.service.runner.run_sharded_campaign` merges the per-shard
crash-safe journals into aggregates byte-identical to a single-process
run.  Shard leases carry heartbeat-driven liveness; dead or wedged
workers requeue their shard with capped seeded backoff; shards that
keep killing workers are quarantined so the campaign terminates with
``infra_error`` accounting instead of hanging.

Submodules are imported lazily (the harness imports
:mod:`repro.service.backoff` without pulling in the HTTP stack).
"""

from __future__ import annotations

_EXPORTS = {
    "backoff_delay": "backoff",
    "ShardSpec": "shard",
    "split_campaign": "shard",
    "merge_shard_results": "shard",
    "write_merged_journal": "shard",
    "Coordinator": "coordinator",
    "CoordinatorJournal": "coordinator",
    "ShardAssignment": "worker",
    "run_shard": "worker",
    "CoordinatorApiError": "api",
    "CoordinatorClient": "api",
    "CoordinatorServer": "api",
    "CoordinatorUnreachable": "api",
    "run_polling_worker": "api",
    "ServiceMetrics": "metrics",
    "BACKENDS": "backends",
    "BackendOptions": "backends",
    "backend_by_name": "backends",
    "run_sharded_campaign": "runner",
    "default_shard_dir": "runner",
}

__all__ = sorted(_EXPORTS)


def __getattr__(name: str):
    module = _EXPORTS.get(name)
    if module is None:
        raise AttributeError(f"module 'repro.service' has no attribute "
                             f"{name!r}")
    import importlib

    return getattr(importlib.import_module(f".{module}", __name__), name)
