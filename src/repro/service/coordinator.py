"""Campaign coordinator: shard leases, liveness, quarantine, resume.

The coordinator owns the shard state machine::

    pending --lease--> leased --complete--> done
       ^                  |
       |                  +--fail / lease expiry / missed heartbeats
       +--(requeue, capped seeded backoff)--+
                          |
                          +--after ``fail_limit`` failed leases
                                     --> quarantined

and applies the paper's fail-stop recovery discipline to our own
infrastructure: any worker may die (or wedge) at any point and the
campaign still terminates with every shard either *done* — its journal
complete and verified — or *quarantined*, its unmeasured trials
degraded to ``infra_error`` rows instead of hanging the campaign.

Every state transition is appended to a crash-safe JSONL journal of its
own (same torn-tail discipline as trial journals), so a coordinator
that is SIGKILLed mid-campaign resumes exactly: done shards stay done,
failure counts persist, and leases that were open at the crash are
reconciled against the shard journals on disk — a shard whose journal
is already complete is recognised as done without re-running anything.
"""

from __future__ import annotations

import json
import os
import time

from ..core.campaign import CampaignJournal, CampaignSpec
from ..errors import ConfigError
from .backoff import backoff_delay
from .shard import ShardSpec, split_campaign

#: Shard states.
PENDING = "pending"
LEASED = "leased"
DONE = "done"
QUARANTINED = "quarantined"


class Lease:
    """One worker's claim on one shard."""

    __slots__ = ("lease_id", "shard_id", "worker_id", "granted_at",
                 "last_heartbeat")

    def __init__(self, lease_id: str, shard_id: int, worker_id: str,
                 now: float) -> None:
        self.lease_id = lease_id
        self.shard_id = shard_id
        self.worker_id = worker_id
        self.granted_at = now
        self.last_heartbeat = now


class CoordinatorJournal:
    """Append-only JSONL journal of shard-state transitions.

    Events are tiny and rare relative to trials, so every event is
    fsynced; the torn-tail rule matches trial journals (a killed
    coordinator leaves at most one truncated final line, dropped on
    repair)."""

    def __init__(self, path: str) -> None:
        self._journal = CampaignJournal(path)
        self.path = path

    def append(self, event: dict) -> None:
        event = dict(event)
        event["time"] = time.time()
        self._journal._append_line(event)

    def close(self) -> None:
        self._journal.close()

    def load(self) -> list[dict]:
        self._journal.repair()
        events: list[dict] = []
        if not os.path.exists(self.path):
            return events
        with open(self.path, encoding="utf-8") as handle:
            for line in handle:
                if not line.endswith("\n"):
                    break
                try:
                    events.append(json.loads(line))
                except json.JSONDecodeError:
                    continue
        return events


class Coordinator:
    """Deterministic shard scheduler with heartbeat-driven liveness.

    Time is injectable (``clock``) so lease expiry, missed-heartbeat
    requeue, and backoff windows are unit-testable without sleeping.
    All mutating entry points are single-threaded from the caller's
    perspective; the HTTP layer wraps them in one lock.
    """

    def __init__(self, spec: CampaignSpec, shard_dir: str,
                 num_shards: int, *, journal_path: str | None = None,
                 lease_ttl_s: float = 600.0,
                 heartbeat_timeout_s: float = 60.0, fail_limit: int = 3,
                 backoff_base_s: float = 0.25, backoff_cap_s: float = 30.0,
                 clock=time.monotonic) -> None:
        if fail_limit < 1:
            raise ConfigError("shard fail limit must be >= 1")
        if lease_ttl_s <= 0 or heartbeat_timeout_s <= 0:
            raise ConfigError("lease ttl and heartbeat timeout must be > 0")
        self.spec = spec
        self.shard_dir = shard_dir
        self.shards = split_campaign(spec, num_shards)
        self.lease_ttl_s = lease_ttl_s
        self.heartbeat_timeout_s = heartbeat_timeout_s
        self.fail_limit = fail_limit
        self.backoff_base_s = backoff_base_s
        self.backoff_cap_s = backoff_cap_s
        self.clock = clock
        self.journal = CoordinatorJournal(
            journal_path or os.path.join(shard_dir, "coordinator.jsonl"))

        #: Optional transition observer: ``on_event(event, shard_id)``
        #: fired after each journaled state change ("lease", "done",
        #: "failed", "quarantined") plus "expired" for lease expiries.
        #: Set post-construction (the service runner wires it to the
        #: metrics hub); exceptions are swallowed — metrics must never
        #: wedge the scheduler.
        self.on_event = None
        self.state: dict[int, str] = {s.shard_id: PENDING
                                      for s in self.shards}
        self.failures: dict[int, int] = {s.shard_id: 0 for s in self.shards}
        self.not_before: dict[int, float] = {s.shard_id: 0.0
                                             for s in self.shards}
        self.quarantine_reason: dict[int, str] = {}
        self.leases: dict[str, Lease] = {}
        self._lease_counter = 0
        self._resume()

    # ------------------------------------------------------------------
    # Crash-resume
    # ------------------------------------------------------------------
    def _resume(self) -> None:
        events = self.journal.load()
        open_leases: dict[int, str] = {}
        for event in events:
            kind = event.get("type")
            if kind == "campaign":
                if event.get("campaign_id") != self.spec.campaign_id():
                    raise ConfigError(
                        f"coordinator journal {self.journal.path} belongs "
                        f"to campaign {event.get('campaign_id')}, not "
                        f"{self.spec.campaign_id()}; use a fresh shard "
                        "directory")
                if event.get("num_shards") != len(self.shards):
                    raise ConfigError(
                        "coordinator journal was written with "
                        f"{event.get('num_shards')} shards, not "
                        f"{len(self.shards)}; resume with the same "
                        "--shards or use a fresh shard directory")
            elif kind == "lease":
                shard_id = event["shard"]
                open_leases[shard_id] = event["lease"]
                self._lease_counter = max(self._lease_counter,
                                          int(event["lease"][1:]))
            elif kind == "done":
                self.state[event["shard"]] = DONE
                open_leases.pop(event["shard"], None)
            elif kind == "failed":
                self.failures[event["shard"]] += 1
                open_leases.pop(event["shard"], None)
            elif kind == "quarantined":
                self.state[event["shard"]] = QUARANTINED
                self.quarantine_reason[event["shard"]] = \
                    event.get("reason", "")
        if not events:
            self.journal.append({"type": "campaign",
                                 "campaign_id": self.spec.campaign_id(),
                                 "num_shards": len(self.shards)})
        # Reconcile: a lease open at the crash is lost, but the shard's
        # journal survives — a complete journal means the worker finished
        # even though the coordinator never heard; anything else requeues
        # (not counted against fail_limit: the coordinator died, not the
        # shard).  Quarantine still wins over a lost lease.
        for shard in self.shards:
            if self.state[shard.shard_id] in (DONE, QUARANTINED):
                continue
            if self._shard_complete(shard):
                self.state[shard.shard_id] = DONE
                self.journal.append({"type": "done",
                                     "shard": shard.shard_id,
                                     "lease": open_leases.get(
                                         shard.shard_id, ""),
                                     "recovered": True})
            else:
                self.state[shard.shard_id] = PENDING

    def _shard_complete(self, shard: ShardSpec) -> bool:
        journal = CampaignJournal(shard.journal_path(self.shard_dir))
        have = {r.key for r in journal.load(self.spec)}
        return all(t.key in have for t in shard.trial_specs())

    # ------------------------------------------------------------------
    # Worker-facing API
    # ------------------------------------------------------------------
    def lease(self, worker_id: str) -> dict | None:
        """Grant the lowest-numbered ready shard, or ``None`` when
        nothing is ready (backoff window, all leased, or finished)."""
        self.expire_stale()
        now = self.clock()
        for shard in self.shards:
            sid = shard.shard_id
            if self.state[sid] != PENDING or self.not_before[sid] > now:
                continue
            self._lease_counter += 1
            lease_id = f"L{self._lease_counter:06d}"
            self.leases[lease_id] = Lease(lease_id, sid, worker_id, now)
            self.state[sid] = LEASED
            self.journal.append({"type": "lease", "shard": sid,
                                 "lease": lease_id, "worker": worker_id})
            self._emit("lease", sid)
            return {"lease_id": lease_id,
                    "shard": shard.as_dict(),
                    "journal_path": shard.journal_path(self.shard_dir),
                    "heartbeat_path": self.heartbeat_path(sid),
                    "attempt": self.failures[sid] + 1}
        return None

    def heartbeat(self, lease_id: str) -> bool:
        """Refresh a lease's liveness; ``False`` means the lease was
        revoked (expired / coordinator restarted) and the worker must
        stop writing and re-lease."""
        lease = self.leases.get(lease_id)
        if lease is None:
            return False
        lease.last_heartbeat = self.clock()
        return True

    def complete(self, lease_id: str) -> bool:
        """Worker claims its shard finished.  The claim is verified
        against the shard journal on disk — trust, but verify: a
        completion with missing rows is a failure, not a success."""
        lease = self.leases.pop(lease_id, None)
        if lease is None:
            return False
        shard = self.shards[lease.shard_id]
        if not self._shard_complete(shard):
            self._record_failure(lease.shard_id, lease_id,
                                 "completion claimed but shard journal "
                                 "is incomplete")
            return False
        self.state[lease.shard_id] = DONE
        self.journal.append({"type": "done", "shard": lease.shard_id,
                             "lease": lease_id})
        self._emit("done", lease.shard_id)
        return True

    def fail(self, lease_id: str, reason: str = "") -> None:
        lease = self.leases.pop(lease_id, None)
        if lease is None:
            return
        self._record_failure(lease.shard_id, lease_id,
                             reason or "worker reported failure")

    # ------------------------------------------------------------------
    # Liveness and scheduling
    # ------------------------------------------------------------------
    def expire_stale(self) -> list[str]:
        """Revoke leases whose worker missed its heartbeat window or
        overstayed the lease TTL; their shards requeue with backoff."""
        now = self.clock()
        expired = []
        for lease_id, lease in list(self.leases.items()):
            if now - lease.last_heartbeat > self.heartbeat_timeout_s:
                reason = (f"missed heartbeats for "
                          f"{now - lease.last_heartbeat:.1f}s "
                          f"(worker {lease.worker_id} presumed dead)")
            elif now - lease.granted_at > self.lease_ttl_s:
                reason = (f"lease TTL {self.lease_ttl_s:g}s exceeded "
                          f"(worker {lease.worker_id} presumed wedged)")
            else:
                continue
            del self.leases[lease_id]
            self._emit("expired", lease.shard_id)
            self._record_failure(lease.shard_id, lease_id, reason)
            expired.append(lease_id)
        return expired

    def _emit(self, event: str, shard_id: int) -> None:
        if self.on_event is not None:
            try:
                self.on_event(event, shard_id)
            except Exception:
                pass  # metrics must never wedge the scheduler

    def _record_failure(self, shard_id: int, lease_id: str,
                        reason: str) -> None:
        self.failures[shard_id] += 1
        self.journal.append({"type": "failed", "shard": shard_id,
                             "lease": lease_id, "reason": reason,
                             "failures": self.failures[shard_id]})
        self._emit("failed", shard_id)
        if self.failures[shard_id] >= self.fail_limit:
            self._quarantine(shard_id,
                             f"{self.failures[shard_id]} failed leases; "
                             f"last: {reason}")
        else:
            self.state[shard_id] = PENDING
            self.not_before[shard_id] = self.clock() + backoff_delay(
                self.failures[shard_id], base_s=self.backoff_base_s,
                cap_s=self.backoff_cap_s, seed=self.spec.seed,
                key=("shard", shard_id))

    def _quarantine(self, shard_id: int, reason: str) -> None:
        self.state[shard_id] = QUARANTINED
        self.quarantine_reason[shard_id] = reason
        self.journal.append({"type": "quarantined", "shard": shard_id,
                             "reason": reason})
        self._emit("quarantined", shard_id)

    def abandon_pending(self, reason: str) -> list[int]:
        """Quarantine every shard that is not done — the backend ran out
        of workers (or restarts), and a terminating campaign with
        ``infra_error`` rows beats a hung one."""
        abandoned = []
        for lease_id in list(self.leases):
            self.fail(lease_id, reason)
        for shard in self.shards:
            if self.state[shard.shard_id] == PENDING:
                self._quarantine(shard.shard_id, reason)
                abandoned.append(shard.shard_id)
        return abandoned

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def finished(self) -> bool:
        return all(s in (DONE, QUARANTINED) for s in self.state.values())

    @property
    def quarantined(self) -> list[int]:
        return [sid for sid, s in self.state.items() if s == QUARANTINED]

    def heartbeat_path(self, shard_id: int) -> str:
        return os.path.join(self.shard_dir,
                            f"shard_{shard_id:04d}.heartbeat.jsonl")

    def next_ready_delay(self) -> float | None:
        """Seconds until the earliest pending shard leaves its backoff
        window (0.0 = one is ready now; ``None`` = nothing pending)."""
        now = self.clock()
        delays = [self.not_before[s.shard_id] - now for s in self.shards
                  if self.state[s.shard_id] == PENDING]
        if not delays:
            return None
        return max(0.0, min(delays))

    def status(self) -> dict:
        """Machine-readable snapshot (HTTP /status and metrics)."""
        now = self.clock()
        lease_by_shard = {l.shard_id: l for l in self.leases.values()}
        shards = {}
        for shard in self.shards:
            sid = shard.shard_id
            entry = {"state": self.state[sid],
                     "failures": self.failures[sid]}
            lease = lease_by_shard.get(sid)
            if lease is not None:
                entry["worker"] = lease.worker_id
                entry["lease_id"] = lease.lease_id
                entry["heartbeat_age_s"] = round(
                    now - lease.last_heartbeat, 3)
            if sid in self.quarantine_reason:
                entry["reason"] = self.quarantine_reason[sid]
            shards[str(sid)] = entry
        counts: dict[str, int] = {}
        for state in self.state.values():
            counts[state] = counts.get(state, 0) + 1
        return {"campaign_id": self.spec.campaign_id(),
                "num_shards": len(self.shards), "finished": self.finished,
                "counts": counts, "shards": shards}

    def close(self) -> None:
        self.journal.close()


__all__ = ["Coordinator", "CoordinatorJournal", "DONE", "LEASED",
           "PENDING", "QUARANTINED"]
