"""Sharded campaign service: coordinator + backend + canonical merge.

:func:`run_sharded_campaign` is the distributed counterpart of
:func:`repro.harness.campaign.run_campaign`: same spec in, same
:class:`~repro.harness.campaign.CampaignReport` out, and — when every
shard completes — a merged journal byte-identical to the one an
uninterrupted single-process run of the same spec+seed would have
written.  In between, any number of workers may be SIGKILLed and the
coordinator itself may be killed and restarted: shard journals plus the
coordinator's own journal carry the full recovery state.
"""

from __future__ import annotations

import os
import shutil

from ..core.campaign import (CampaignJournal, CampaignSpec, INFRA_ERROR,
                             aggregate)
from ..harness.campaign import CampaignReport, default_journal_path
from .backends import BackendOptions, HttpBackend, backend_by_name
from .coordinator import Coordinator
from .metrics import ServiceMetrics
from .shard import (infra_placeholder, load_shard_results,
                    merge_shard_results, missing_keys, split_campaign,
                    write_merged_journal)


def default_shard_dir(journal_path: str) -> str:
    return journal_path + ".shards"


def run_sharded_campaign(spec: CampaignSpec, *, shards: int,
                         backend: str = "subprocess",
                         workers: int | None = None,
                         journal_path: str | None = None,
                         shard_dir: str | None = None,
                         fresh: bool = False, progress: bool = False,
                         metrics_path: str | None = None,
                         registry=None, on_snapshot=None,
                         http_host: str = "127.0.0.1", http_port: int = 0,
                         fsync_interval: int = 1,
                         lease_ttl_s: float = 600.0,
                         heartbeat_timeout_s: float = 30.0,
                         fail_limit: int = 3,
                         backoff_base_s: float = 0.25,
                         backoff_cap_s: float = 30.0,
                         max_worker_restarts: int = 16,
                         poll_interval_s: float = 0.25,
                         heartbeat_interval_s: float = 0.5,
                         _backend_options: BackendOptions | None = None,
                         ) -> CampaignReport:
    """Run (or resume) ``spec`` as ``shards`` leased shards on the named
    backend and return the merged report.

    Always terminates: every shard ends *done* or *quarantined*; the
    unmeasured trials of quarantined shards degrade to ``infra_error``
    rows (never dropped, never hung).
    """
    path = journal_path or default_journal_path(spec)
    sdir = shard_dir or default_shard_dir(path)
    if fresh:
        if os.path.exists(path):
            os.remove(path)
        if os.path.isdir(sdir):
            shutil.rmtree(sdir)
    os.makedirs(sdir, exist_ok=True)

    # Rows already merged by a previous (possibly partial) service run
    # count as done — the merge dedups them against shard journals.
    merged_journal = CampaignJournal(path)
    merged_journal.repair()
    prior = merged_journal.load(spec)
    expected = {t.key for t in spec.trial_specs()}
    if {r.key for r in prior} >= expected:
        if progress:
            print(f"  campaign already complete in {path}", flush=True)
        if registry is not None:
            from ..obs.metrics import observe_trial
            for row in prior:
                observe_trial(registry, row)
        return CampaignReport(
            spec=spec, results=prior, cells=aggregate(prior),
            journal_path=path, complete=True,
            infra_failures=sum(r.outcome == INFRA_ERROR for r in prior))

    coordinator = Coordinator(
        spec, sdir, shards, lease_ttl_s=lease_ttl_s,
        heartbeat_timeout_s=heartbeat_timeout_s, fail_limit=fail_limit,
        backoff_base_s=backoff_base_s, backoff_cap_s=backoff_cap_s)
    # The metrics hub observes everything: coordinator transitions (via
    # the on_event hook), trial rows (tailed from shard journals — the
    # only path that counts trials, so nothing double-counts), worker
    # snapshots, and HTTP traffic.  Trial rows resumed from a prior
    # merged journal count too — the scrape must always agree with the
    # journal, not just with this process's work.
    hub = ServiceMetrics(coordinator, registry=registry)
    coordinator.on_event = hub.on_transition
    hub.ingest_results(prior)
    heartbeat = None
    if metrics_path is not None or on_snapshot is not None:
        from ..obs import CampaignHeartbeat

        def snapshot_hook(record):
            # Tail shard journals on every heartbeat tick so a live
            # dashboard's registry view (per-cell Wilson table) stays
            # current even when nobody is scraping /v1/metrics.
            try:
                hub.refresh()
            except Exception:
                pass
            if on_snapshot is not None:
                on_snapshot(record)

        heartbeat = CampaignHeartbeat(metrics_path,
                                      len(spec.trial_specs()),
                                      on_snapshot=snapshot_hook).start()
        if prior:
            heartbeat.note_resumed(len(prior))
    options = _backend_options or BackendOptions()
    options.workers = workers if workers is not None else \
        max(1, min(len(coordinator.shards), os.cpu_count() or 1))
    options.fsync_interval = fsync_interval
    options.poll_interval_s = poll_interval_s
    options.heartbeat_interval_s = heartbeat_interval_s
    options.max_worker_restarts = max_worker_restarts
    options.progress = progress
    options.metrics = hub

    def on_restart() -> None:
        hub.note_worker_restart()
        if heartbeat is not None:
            heartbeat.note_worker_restart()

    options.on_worker_restart = on_restart
    if heartbeat is not None:
        options.on_heartbeat = heartbeat.note_shard_heartbeat
        options.on_shard_done = \
            lambda sid, trials: heartbeat.note_shard_done(sid, trials)

    launcher = backend_by_name(backend)
    if isinstance(launcher, HttpBackend):
        launcher.host = http_host
        launcher.port = http_port
    try:
        if progress:
            print(f"  dispatching {len(coordinator.shards)} shards to "
                  f"backend '{backend}' ({options.workers} workers)",
                  flush=True)
        # Derive each distinct golden once and publish it in shared
        # memory; shard workers (subprocess/HTTP — they inherit the
        # environment via worker_env, inline — same process) adopt the
        # goldens instead of re-simulating them per worker.
        from ..core.goldens import export_goldens, release_goldens
        export_goldens(spec.trial_specs(), manifest_dir=sdir)
        try:
            launcher.run(coordinator, options)
        finally:
            release_goldens()
    finally:
        if heartbeat is not None:
            heartbeat.stop()
        coordinator.close()

    # Merge: shard journals + any previously merged rows, deduped into
    # canonical order; quarantined shards contribute infra_error
    # placeholders for whatever they never measured.
    rows = load_shard_results(spec, sdir, coordinator.shards) + prior
    placeholders = []
    if coordinator.quarantined:
        trial_by_key = {t.key: t for t in spec.trial_specs()}
        shard_of = {}
        for shard in coordinator.shards:
            if shard.shard_id in coordinator.quarantined:
                for trial in shard.trial_specs():
                    shard_of[trial.key] = shard.shard_id
        for key in missing_keys(spec, rows):
            sid = shard_of.get(key)
            if sid is None:
                continue
            reason = coordinator.quarantine_reason.get(sid, "")
            placeholders.append(infra_placeholder(
                trial_by_key[key],
                detail=f"shard {sid} quarantined: {reason}",
                attempts=coordinator.failures[sid]))
    results = merge_shard_results(spec, rows + placeholders)
    write_merged_journal(spec, results, path)
    # Final metrics truth-up: whatever the live tail missed (unscraped
    # rows, quarantine placeholders minted just above) lands now, so
    # the registry's verdict counters equal the merged journal exactly.
    hub.refresh()
    hub.ingest_results(results)
    return CampaignReport(
        spec=spec, results=results, cells=aggregate(results),
        journal_path=path,
        complete={r.key for r in results} >= expected,
        infra_failures=sum(r.outcome == INFRA_ERROR for r in results))


__all__ = ["default_shard_dir", "run_sharded_campaign"]
