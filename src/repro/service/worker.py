"""Shard worker: executes one leased shard with a crash-safe journal.

A worker is deliberately dumb — it runs its shard's trials in order,
appends each row to the shard journal, and emits heartbeats.  All
fault-tolerance intelligence lives in the coordinator; the worker's
only obligations are:

* **repair before write** — a reclaimed shard journal may end in a torn
  line from the previous worker's death; it is repaired before any
  append so resumed records start on a fresh line;
* **idempotent resume** — rows already journaled (by this worker or a
  dead predecessor) are skipped, so re-execution after a lost lease
  costs only the missing suffix, and any duplicate rows that do land
  (two workers racing one shard across a coordinator restart) are
  deduplicated deterministically at merge;
* **bounded durability** — appends fsync every ``fsync_interval`` rows,
  so a SIGKILL loses at most that window (the trials are re-run on
  reclaim; nothing is lost but time).

The ``REPRO_CHAOS_KILL`` hook (``"<shard_id>:<after>:<sentinel>"``)
SIGKILLs the worker once ``after`` fresh trials have been appended,
just before the next execution (``after=0`` = before any progress at
all), the first time the sentinel file does not exist (sentinel ``-`` =
kill on *every* lease, the poison-shard case) — the chaos lever used by
the e2e tests and the CI kill-a-worker smoke job.
"""

from __future__ import annotations

import json
import os
import signal

from ..core.campaign import CampaignJournal, TrialResult, run_trial
from ..errors import ConfigError
from .shard import ShardSpec


class ShardAssignment:
    """Everything a worker process needs to run one leased shard;
    serializable so the subprocess backend can hand it over a file."""

    def __init__(self, shard: ShardSpec, journal_path: str,
                 lease_id: str = "", heartbeat_path: str | None = None,
                 fsync_interval: int = 1,
                 heartbeat_interval_s: float = 1.0) -> None:
        self.shard = shard
        self.journal_path = journal_path
        self.lease_id = lease_id
        self.heartbeat_path = heartbeat_path
        self.fsync_interval = fsync_interval
        self.heartbeat_interval_s = heartbeat_interval_s

    def as_dict(self) -> dict:
        return {"shard": self.shard.as_dict(),
                "journal_path": self.journal_path,
                "lease_id": self.lease_id,
                "heartbeat_path": self.heartbeat_path,
                "fsync_interval": self.fsync_interval,
                "heartbeat_interval_s": self.heartbeat_interval_s}

    @staticmethod
    def from_dict(data: dict) -> "ShardAssignment":
        return ShardAssignment(
            shard=ShardSpec.from_dict(data["shard"]),
            journal_path=data["journal_path"],
            lease_id=data.get("lease_id", ""),
            heartbeat_path=data.get("heartbeat_path"),
            fsync_interval=data.get("fsync_interval", 1),
            heartbeat_interval_s=data.get("heartbeat_interval_s", 1.0))

    def save(self, path: str) -> None:
        os.makedirs(os.path.dirname(path) or ".", exist_ok=True)
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.as_dict(), handle, sort_keys=True)

    @staticmethod
    def load(path: str) -> "ShardAssignment":
        with open(path, encoding="utf-8") as handle:
            return ShardAssignment.from_dict(json.load(handle))


def _chaos_kill_plan(shard_id: int):
    """Parse REPRO_CHAOS_KILL; returns (after_trials, sentinel) when the
    hook targets this shard and has not fired yet, else ``None``."""
    raw = os.environ.get("REPRO_CHAOS_KILL", "")
    if not raw:
        return None
    try:
        target, after, sentinel = raw.split(":", 2)
        target, after = int(target), int(after)
    except ValueError as exc:
        raise ConfigError(f"bad REPRO_CHAOS_KILL {raw!r}: expected "
                          "'<shard_id>:<after_trials>:<sentinel>'") from exc
    if target != shard_id:
        return None
    if sentinel != "-" and os.path.exists(sentinel):
        return None  # already fired once
    return after, sentinel


def _chaos_fire(shard_id: int, appended: int, sentinel: str,
                journal: CampaignJournal) -> None:
    """SIGKILL the worker process mid-shard (chaos hook trigger)."""
    if sentinel != "-":  # "-" = fire on every lease (poison shard)
        with open(sentinel, "w", encoding="utf-8") as handle:
            handle.write(f"killed shard {shard_id} after "
                         f"{appended} trials\n")
    journal.close()
    os.kill(os.getpid(), signal.SIGKILL)


def run_shard(assignment: ShardAssignment, *, execute=run_trial,
              heartbeat=None, should_abort=None,
              on_trial=None) -> list[TrialResult]:
    """Run (or resume) one shard to completion; returns every row the
    shard journal now holds, in shard order.

    ``heartbeat`` is an optional :class:`repro.obs.CampaignHeartbeat`
    already started by the caller; ``should_abort()`` is polled between
    trials so a revoked lease stops the worker promptly; ``on_trial``
    observes each fresh row (HTTP workers piggyback liveness on it).
    """
    shard = assignment.shard
    spec = shard.spec
    journal = CampaignJournal(assignment.journal_path,
                              fsync_interval=assignment.fsync_interval)
    journal.repair()
    done = {r.key for r in journal.load(spec)}
    if not journal.has_header():
        journal.write_header(spec)
    chaos = _chaos_kill_plan(shard.shard_id)
    appended = 0
    try:
        for trial in shard.trial_specs():
            if trial.key in done:
                continue
            if should_abort is not None and should_abort():
                break
            if chaos is not None and appended >= chaos[0]:
                _chaos_fire(shard.shard_id, appended, chaos[1], journal)
            result = execute(trial)
            result.attempts = 1
            journal.append(result)
            done.add(trial.key)
            appended += 1
            if heartbeat is not None:
                heartbeat.note_trial(result)
            if on_trial is not None:
                on_trial(result)
    finally:
        journal.close()
    rows = journal.load(spec)
    order = {t.key: i for i, t in enumerate(shard.trial_specs())}
    rows = [r for r in rows if r.key in order]
    rows.sort(key=lambda r: order[r.key])
    return rows


def shard_complete(assignment: ShardAssignment) -> bool:
    """Does the shard journal hold every row the shard owns?"""
    journal = CampaignJournal(assignment.journal_path)
    have = {r.key for r in journal.load(assignment.shard.spec)}
    return all(t.key in have
               for t in assignment.shard.trial_specs())


__all__ = ["ShardAssignment", "run_shard", "shard_complete"]
