"""Service-side metrics hub: one registry for the whole campaign plane.

:class:`ServiceMetrics` aggregates every telemetry source the sharded
campaign service has into a single
:class:`~repro.obs.metrics.MetricsRegistry`, scrape-ready as Prometheus
text via ``GET /v1/metrics``:

* **coordinator transitions** — the shard lease state machine emits
  ``on_event`` callbacks (lease/done/failed/quarantined/expired) that
  become ``repro_shard_transitions_total{event=...}``;
* **shard journals** — trial rows are tailed incrementally from each
  shard's JSONL journal (complete lines only, deduped by trial key, so
  a shard retried after worker death never double-counts) and folded
  through ``observe_trial`` into ``repro_trials_total`` and the
  simulator aggregate counters;
* **worker heartbeats** — the snapshot each polling worker attaches to
  its HTTP heartbeat surfaces as per-shard labeled gauges
  (``repro_shard_completed_trials{shard=...}`` and friends);
* **HTTP traffic** — request counts and latency histograms per
  endpoint.

Counting trials from the journals (not from in-flight callbacks) is
what makes the acceptance invariant hold exactly: after the final
``refresh``/``ingest_results``, ``repro_trials_total`` sums to the
merged journal's row count — including quarantine placeholders — no
matter how many workers died along the way.
"""

from __future__ import annotations

import json
import os
import threading

from ..core.campaign import TrialResult
from ..obs.metrics import MetricsRegistry, observe_trial
from .coordinator import Coordinator, DONE, LEASED, PENDING, QUARANTINED

#: Latency buckets for coordinator HTTP endpoints (localhost JSON calls
#: are sub-millisecond when healthy; the tail matters when the lock is
#: contended by a large scrape).
_HTTP_BUCKETS = (0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0)

#: Worker heartbeat snapshot keys mirrored into per-shard gauges.
_SNAPSHOT_GAUGES = (
    ("completed", "repro_shard_completed_trials",
     "Trials completed by the shard's current worker (last snapshot)."),
    ("trials_per_sec", "repro_shard_trials_per_sec",
     "Trial throughput reported by the shard's current worker."),
    ("elapsed_s", "repro_shard_elapsed_seconds",
     "Wall-clock seconds the shard's current worker has been running."),
    ("sim_cycles", "repro_shard_sim_cycles",
     "Simulated cycles accumulated by the shard's current worker."),
    ("retries", "repro_shard_retries",
     "Trial retries reported by the shard's current worker."),
)

#: Sentinel for ``repro_worker_heartbeat_age_seconds`` when a shard has
#: no active lease (gauges cannot be unpublished mid-scrape).
NO_LEASE_AGE = -1.0


class ServiceMetrics:
    """Aggregates coordinator, shard-journal, and worker telemetry.

    Event callbacks (``on_transition``, ``observe_http``,
    ``ingest_worker_snapshot``) are cheap and callable from any thread;
    ``refresh()`` does the pull-side work — state gauges plus the
    incremental journal tail — and is what the ``/v1/metrics`` handler
    runs under the server lock before rendering.
    """

    def __init__(self, coordinator: Coordinator,
                 registry: MetricsRegistry | None = None) -> None:
        self.coordinator = coordinator
        self.registry = registry or MetricsRegistry()
        self._lock = threading.Lock()
        self._offsets: dict[int, int] = {}
        self._seen: set = set()
        registry = self.registry
        self._transitions = registry.counter(
            "repro_shard_transitions_total",
            "Shard lease state machine transitions by event.", ("event",))
        self._expiries = registry.counter(
            "repro_lease_expiries_total",
            "Leases revoked for missed heartbeats or TTL overrun.")
        self._restarts = registry.counter(
            "repro_worker_restarts_total",
            "Worker processes restarted by the backend.")
        self._shard_states = registry.gauge(
            "repro_shards", "Shards currently in each lease state.",
            ("state",))
        self._heartbeat_age = registry.gauge(
            "repro_worker_heartbeat_age_seconds",
            "Seconds since the last heartbeat of each shard's worker "
            "(-1 = no active lease).", ("shard",))
        self._http_requests = registry.counter(
            "repro_http_requests_total",
            "Coordinator HTTP requests by endpoint and status code.",
            ("path", "code"))
        self._http_latency = registry.histogram(
            "repro_http_request_seconds",
            "Coordinator HTTP request latency by endpoint.", ("path",),
            buckets=_HTTP_BUCKETS)

    # ------------------------------------------------------------------
    # Push-side hooks (cheap, any thread)
    # ------------------------------------------------------------------
    def on_transition(self, event: str, shard_id: int) -> None:
        """Wired to ``Coordinator.on_event``."""
        self._transitions.labels(event=event).inc()
        if event == "expired":
            self._expiries.inc()

    def note_worker_restart(self) -> None:
        self._restarts.inc()

    def observe_http(self, path: str, code: int, seconds: float) -> None:
        self._http_requests.labels(path=path, code=str(code)).inc()
        self._http_latency.labels(path=path).observe(seconds)

    def ingest_worker_snapshot(self, shard_id: int, record: dict) -> None:
        """Mirror one worker heartbeat snapshot into per-shard gauges
        (arrives with ``POST /v1/heartbeat`` from polling workers)."""
        if not isinstance(record, dict):
            return
        for key, name, help in _SNAPSHOT_GAUGES:
            value = record.get(key)
            if isinstance(value, (int, float)):
                gauge = self.registry.gauge(name, help, ("shard",))
                gauge.labels(shard=str(shard_id)).set(value)

    def ingest_results(self, results) -> None:
        """Fold already-loaded trial rows (resumed from a prior merged
        journal, or the final merged result set with quarantine
        placeholders) into the trial counters, deduped against
        everything tailed from shard journals."""
        fresh = []
        with self._lock:
            for result in results:
                if result.key in self._seen:
                    continue
                self._seen.add(result.key)
                fresh.append(result)
        for result in fresh:
            observe_trial(self.registry, result)

    # ------------------------------------------------------------------
    # Pull-side refresh (under the server lock for coordinator state)
    # ------------------------------------------------------------------
    def refresh(self) -> None:
        """Bring state gauges and journal-derived counters up to date."""
        coordinator = self.coordinator
        counts = {PENDING: 0, LEASED: 0, DONE: 0, QUARANTINED: 0}
        for state in coordinator.state.values():
            counts[state] = counts.get(state, 0) + 1
        for state, count in counts.items():
            self._shard_states.labels(state=state).set(count)
        now = coordinator.clock()
        age_by_shard = {lease.shard_id: now - lease.last_heartbeat
                        for lease in coordinator.leases.values()}
        for shard in coordinator.shards:
            self._heartbeat_age.labels(shard=str(shard.shard_id)).set(
                age_by_shard.get(shard.shard_id, NO_LEASE_AGE))
        self._tail_journals()

    def _tail_journals(self) -> None:
        """Incrementally consume new complete rows from every shard
        journal.  Only whole lines (ending ``\\n``) are parsed — a row
        being appended concurrently is picked up by the next refresh —
        and trial keys dedupe re-leased shards' overlapping rows (the
        re-run rows are byte-identical, so first-seen wins exactly)."""
        coordinator = self.coordinator
        fresh: list[TrialResult] = []
        with self._lock:
            for shard in coordinator.shards:
                sid = shard.shard_id
                path = shard.journal_path(coordinator.shard_dir)
                try:
                    size = os.path.getsize(path)
                except OSError:
                    continue
                offset = self._offsets.get(sid, 0)
                if size < offset:
                    offset = 0  # journal was reset (fresh re-run)
                if size == offset:
                    continue
                try:
                    with open(path, "rb") as handle:
                        handle.seek(offset)
                        data = handle.read()
                except OSError:
                    continue
                complete = data.rfind(b"\n") + 1
                if complete == 0:
                    continue
                self._offsets[sid] = offset + complete
                for line in data[:complete].splitlines():
                    try:
                        record = json.loads(line)
                    except (json.JSONDecodeError, UnicodeDecodeError):
                        continue
                    if record.pop("type", "trial") != "trial":
                        continue
                    try:
                        result = TrialResult.from_dict(record)
                    except TypeError:
                        continue
                    if result.key in self._seen:
                        continue
                    self._seen.add(result.key)
                    fresh.append(result)
        for result in fresh:
            observe_trial(self.registry, result)

    def render(self) -> str:
        """Prometheus text for the current registry state (call
        ``refresh()`` first for up-to-date gauges)."""
        return self.registry.render()


__all__ = ["NO_LEASE_AGE", "ServiceMetrics"]
