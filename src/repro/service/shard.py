"""Deterministic shard math: split a campaign, merge shard journals.

A *shard* is a contiguous, seeded slice of a campaign's canonical trial
sequence (``CampaignSpec.trial_specs()`` order).  Because each trial's
RNG is a pure function of ``(campaign seed, trial coordinates)``, a
shard is self-contained: any worker, on any host, at any time, produces
exactly the rows an inline run would have produced for those indices.
The merge direction therefore holds byte-for-byte — concatenating
(and deduplicating) shard journals in canonical order reconstructs the
single-process journal exactly, no matter how the shards were
partitioned, ordered, or re-executed.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field

from ..core.campaign import (CampaignJournal, CampaignSpec, INFRA_ERROR,
                             TrialResult, TrialSpec, dedupe_results)
from ..errors import ConfigError


@dataclass(frozen=True)
class ShardSpec:
    """One shard: trials ``[start, stop)`` of the campaign's canonical
    trial sequence, journaled to its own crash-safe JSONL file."""

    shard_id: int
    num_shards: int
    start: int
    stop: int
    spec: CampaignSpec = field(repr=False)

    def __post_init__(self) -> None:
        if not 0 <= self.shard_id < self.num_shards:
            raise ConfigError("shard id out of range")
        if not 0 <= self.start < self.stop:
            raise ConfigError("shard slice must be non-empty and ordered")

    @property
    def trials(self) -> int:
        return self.stop - self.start

    def trial_specs(self) -> list[TrialSpec]:
        return self.spec.trial_specs()[self.start:self.stop]

    def journal_name(self) -> str:
        return f"shard_{self.shard_id:04d}.jsonl"

    def journal_path(self, shard_dir: str) -> str:
        return os.path.join(shard_dir, self.journal_name())

    def as_dict(self) -> dict:
        from dataclasses import asdict

        return {"shard_id": self.shard_id, "num_shards": self.num_shards,
                "start": self.start, "stop": self.stop,
                "spec": asdict(self.spec)}

    @staticmethod
    def from_dict(data: dict) -> "ShardSpec":
        spec = data["spec"]
        if isinstance(spec, dict):
            spec = CampaignSpec.from_dict(spec)
        return ShardSpec(shard_id=data["shard_id"],
                         num_shards=data["num_shards"],
                         start=data["start"], stop=data["stop"], spec=spec)


def split_campaign(spec: CampaignSpec, num_shards: int) -> list[ShardSpec]:
    """Split ``spec`` into at most ``num_shards`` contiguous, balanced,
    non-empty shards over the canonical trial order.

    Deterministic in ``(spec, num_shards)``: shard ``i`` always covers
    the same trial indices, so a restarted coordinator re-derives the
    identical partition and shard journals stay valid across crashes.
    """
    if num_shards < 1:
        raise ConfigError("campaign needs at least one shard")
    total = len(spec.trial_specs())
    num_shards = min(num_shards, total)
    base, extra = divmod(total, num_shards)
    shards, start = [], 0
    for shard_id in range(num_shards):
        stop = start + base + (1 if shard_id < extra else 0)
        shards.append(ShardSpec(shard_id=shard_id, num_shards=num_shards,
                                start=start, stop=stop, spec=spec))
        start = stop
    return shards


def canonical_order(spec: CampaignSpec) -> dict[tuple, int]:
    """Trial key -> position in the canonical (inline) journal order."""
    return {t.key: i for i, t in enumerate(spec.trial_specs())}


def merge_shard_results(spec: CampaignSpec,
                        results: list[TrialResult]) -> list[TrialResult]:
    """Dedup and reorder shard rows into the canonical journal order.

    Rows whose key does not belong to ``spec`` are dropped (a stale
    shard directory from another campaign cannot pollute the merge);
    duplicates collapse deterministically via
    :func:`repro.core.campaign.dedupe_results` regardless of the order
    shards are read in.
    """
    order = canonical_order(spec)
    rows = [r for r in dedupe_results(results) if r.key in order]
    rows.sort(key=lambda r: order[r.key])
    return rows


def missing_keys(spec: CampaignSpec,
                 results: list[TrialResult]) -> list[tuple]:
    """Trial keys of ``spec`` with no row in ``results``, in canonical
    order."""
    have = {r.key for r in results}
    return [k for k, _ in sorted(canonical_order(spec).items(),
                                 key=lambda kv: kv[1]) if k not in have]


def infra_placeholder(trial: TrialSpec, detail: str,
                      attempts: int = 1) -> TrialResult:
    """The row a quarantined shard contributes for a trial it never
    managed to measure — campaigns degrade to ``infra_error`` cells
    instead of hanging or dropping rows."""
    return TrialResult(workload=trial.workload, scheme=trial.scheme,
                       index=trial.index, outcome=INFRA_ERROR,
                       site=trial.site, detail=detail, attempts=attempts)


def load_shard_results(spec: CampaignSpec, shard_dir: str,
                       shards: list[ShardSpec]) -> list[TrialResult]:
    """Read every intact row from every shard journal (torn tails and
    foreign records are skipped by the journal loader)."""
    rows: list[TrialResult] = []
    for shard in shards:
        journal = CampaignJournal(shard.journal_path(shard_dir))
        rows.extend(journal.load(spec))
    return rows


def write_merged_journal(spec: CampaignSpec, results: list[TrialResult],
                         path: str) -> None:
    """Write the canonical merged journal for ``spec`` atomically.

    Byte-identical to the journal an uninterrupted single-process run
    of the same spec+seed would have produced (header first, rows in
    canonical order, one sorted-keys JSON object per line), provided
    every trial measured — placeholder rows for quarantined shards are
    the only divergence, and only in campaigns that lost shards.
    """
    os.makedirs(os.path.dirname(path) or ".", exist_ok=True)
    tmp = path + ".tmp"
    journal = CampaignJournal(tmp)
    try:
        if os.path.exists(tmp):
            os.remove(tmp)
        journal.write_header(spec)
        for row in merge_shard_results(spec, results):
            journal.append(row)
    finally:
        journal.close()
    os.replace(tmp, path)


__all__ = ["ShardSpec", "canonical_order", "infra_placeholder",
           "load_shard_results", "merge_shard_results", "missing_keys",
           "split_campaign", "write_merged_journal"]
