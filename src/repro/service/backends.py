"""Pluggable launcher backends: how leased shards become running work.

Mirrors the SHARP launcher/backend split: the coordinator decides *what*
runs (shard leases, requeues, quarantine) and a backend decides *where*
and *how* — in-process, in a pool of one-shot worker subprocesses, or
behind an HTTP API that independent worker processes poll.

Every backend drives the same loop until the coordinator reports the
campaign finished, and every backend is kill-tolerant: a worker dying
(or wedging) mid-shard fails its lease, the shard requeues with capped
seeded backoff, and the reclaiming worker resumes from the shard
journal.  Termination is guaranteed without any global timeout — each
shard can fail at most ``fail_limit`` leases before quarantine, so the
total number of worker launches is bounded by ``shards * fail_limit``.
"""

from __future__ import annotations

import os
import subprocess
import sys
import time
import uuid
from dataclasses import dataclass, field

from ..errors import ConfigError
from .coordinator import Coordinator
from .shard import ShardSpec
from .worker import ShardAssignment, run_shard


@dataclass
class BackendOptions:
    """Knobs shared by every backend (the service runner fills these)."""

    workers: int = 2
    fsync_interval: int = 1
    poll_interval_s: float = 0.25
    heartbeat_interval_s: float = 0.5
    max_worker_restarts: int = 16
    progress: bool = False
    #: Mirror worker liveness / completions into the metrics heartbeat.
    on_heartbeat: object = None     # callable(shard_id) | None
    on_shard_done: object = None    # callable(shard_id, trials) | None
    on_worker_restart: object = None  # callable() | None
    #: Service metrics hub (repro.service.metrics.ServiceMetrics); the
    #: HTTP backend serves it at GET /v1/metrics.
    metrics: object = None
    #: Test seam: trial executor for the inline backend.
    execute: object = None

    def note_heartbeat(self, shard_id: int) -> None:
        if self.on_heartbeat is not None:
            self.on_heartbeat(shard_id)

    def note_done(self, shard_id: int, trials: int) -> None:
        if self.on_shard_done is not None:
            self.on_shard_done(shard_id, trials)

    def note_restart(self) -> None:
        if self.on_worker_restart is not None:
            self.on_worker_restart()


def _assignment_from_lease(lease: dict,
                           opts: BackendOptions) -> ShardAssignment:
    return ShardAssignment(
        shard=ShardSpec.from_dict(lease["shard"]),
        journal_path=lease["journal_path"],
        lease_id=lease["lease_id"],
        heartbeat_path=lease.get("heartbeat_path"),
        fsync_interval=opts.fsync_interval,
        heartbeat_interval_s=opts.heartbeat_interval_s)


class InlineBackend:
    """Run every shard in-process, one at a time.

    The oracle backend: zero concurrency, zero subprocesses — and the
    reference the distributed backends' merged journals are compared
    against byte-for-byte.
    """

    name = "inline"

    def run(self, coordinator: Coordinator, opts: BackendOptions) -> None:
        from ..core.campaign import run_trial

        execute = opts.execute or run_trial
        while not coordinator.finished:
            lease = coordinator.lease("inline-0")
            if lease is None:
                delay = coordinator.next_ready_delay()
                if delay is None:
                    raise ConfigError(
                        "inline backend found no leasable shard in an "
                        "unfinished campaign (leases leaked?)")
                time.sleep(min(max(delay, 0.001), 0.25))
                continue
            assignment = _assignment_from_lease(lease, opts)
            sid = assignment.shard.shard_id

            def on_trial(result, lease_id=lease["lease_id"],
                         shard_id=sid) -> None:
                coordinator.heartbeat(lease_id)
                opts.note_heartbeat(shard_id)

            if opts.progress:
                print(f"  shard {sid}: {assignment.shard.trials} trials "
                      f"(lease {lease['lease_id']})", flush=True)
            try:
                run_shard(assignment, execute=execute, on_trial=on_trial)
            except Exception as exc:
                coordinator.fail(lease["lease_id"],
                                 f"{type(exc).__name__}: {exc}")
                continue
            if coordinator.complete(lease["lease_id"]):
                opts.note_done(sid, assignment.shard.trials)


def worker_command(extra: list[str]) -> list[str]:
    return [sys.executable, "-m", "repro.harness", "worker", *extra]


def worker_env() -> dict:
    """Inherit the environment, guaranteeing the package is importable
    in the child even when the parent was launched from a checkout."""
    import repro

    env = dict(os.environ)
    package_root = os.path.dirname(os.path.dirname(
        os.path.abspath(repro.__file__)))
    existing = env.get("PYTHONPATH", "")
    if package_root not in existing.split(os.pathsep):
        env["PYTHONPATH"] = (package_root + os.pathsep + existing
                             if existing else package_root)
    return env


class _WorkerProc:
    __slots__ = ("proc", "lease_id", "shard_id", "trials", "started",
                 "heartbeat_path", "assignment_path", "last_beat")

    def __init__(self, proc, lease, assignment_path, now):
        self.proc = proc
        self.lease_id = lease["lease_id"]
        self.shard_id = lease["shard"]["shard_id"]
        self.trials = (lease["shard"]["stop"] - lease["shard"]["start"])
        self.heartbeat_path = lease.get("heartbeat_path")
        self.assignment_path = assignment_path
        self.started = now
        self.last_beat = now


class SubprocessBackend:
    """A pool of one-shot worker subprocesses, one leased shard each.

    Liveness is file-driven: each worker appends heartbeat records to
    its shard's heartbeat JSONL, and the pool relays fresh beats to the
    coordinator.  A worker that dies is reaped by exit code; one that
    wedges stops beating, the coordinator expires its lease, and the
    pool kills the orphan.  SIGKILL at any instant is recoverable.
    """

    name = "subprocess"

    def run(self, coordinator: Coordinator, opts: BackendOptions) -> None:
        env = worker_env()
        procs: list[_WorkerProc] = []
        sequence = 0
        try:
            while not coordinator.finished or procs:
                now = time.monotonic()
                # Reap exited workers.
                for worker in list(procs):
                    code = worker.proc.poll()
                    if code is None:
                        continue
                    procs.remove(worker)
                    self._cleanup(worker)
                    if code == 0:
                        if coordinator.complete(worker.lease_id):
                            opts.note_done(worker.shard_id, worker.trials)
                            continue
                    coordinator.fail(worker.lease_id,
                                     f"worker exited with code {code}")
                    opts.note_restart()
                # Relay heartbeats; kill workers whose lease was revoked
                # (expired by the coordinator, or superseded on resume).
                for worker in list(procs):
                    if self._beating(worker, now, opts):
                        worker.last_beat = now
                        if coordinator.heartbeat(worker.lease_id):
                            opts.note_heartbeat(worker.shard_id)
                coordinator.expire_stale()
                for worker in list(procs):
                    if worker.lease_id not in coordinator.leases:
                        worker.proc.kill()
                        worker.proc.wait()
                        procs.remove(worker)
                        self._cleanup(worker)
                        opts.note_restart()
                # Lease new shards into free slots.
                while len(procs) < opts.workers:
                    lease = coordinator.lease(f"subproc-{sequence}")
                    if lease is None:
                        break
                    sequence += 1
                    assignment = _assignment_from_lease(lease, opts)
                    apath = os.path.join(
                        coordinator.shard_dir,
                        f"assignment_{lease['lease_id']}.json")
                    assignment.save(apath)
                    stdout = None if opts.progress else subprocess.DEVNULL
                    proc = subprocess.Popen(
                        worker_command(["--shard-json", apath]),
                        env=env, stdout=stdout, stderr=stdout)
                    procs.append(_WorkerProc(proc, lease, apath,
                                             time.monotonic()))
                    if opts.progress:
                        print(f"  worker pid {proc.pid}: shard "
                              f"{lease['shard']['shard_id']} "
                              f"(lease {lease['lease_id']})", flush=True)
                if coordinator.finished and not procs:
                    break
                time.sleep(opts.poll_interval_s)
        finally:
            for worker in procs:
                worker.proc.kill()
                worker.proc.wait()
                self._cleanup(worker)

    def _beating(self, worker: _WorkerProc, now: float,
                 opts: BackendOptions) -> bool:
        """Fresh heartbeat evidence: the heartbeat file advanced
        recently, or the worker only just started (grace window)."""
        grace = max(2.0, 4 * opts.heartbeat_interval_s)
        if now - worker.started < grace:
            return True
        path = worker.heartbeat_path
        if not path or not os.path.exists(path):
            return False
        age = time.time() - os.path.getmtime(path)
        return age < grace

    def _cleanup(self, worker: _WorkerProc) -> None:
        try:
            os.remove(worker.assignment_path)
        except OSError:
            pass


class HttpBackend:
    """Coordinator behind an HTTP API; workers poll it for leases.

    Workers are independent subprocesses talking JSON over localhost
    (or any reachable address, given a shared filesystem for shard
    journals).  Dead workers are respawned up to
    ``max_worker_restarts``; if the restart budget is exhausted with no
    worker left, remaining shards are quarantined so the campaign
    terminates instead of hanging.
    """

    name = "http"

    def __init__(self, host: str = "127.0.0.1", port: int = 0) -> None:
        self.host = host
        self.port = port

    def run(self, coordinator: Coordinator, opts: BackendOptions) -> None:
        from .api import CoordinatorServer

        server = CoordinatorServer(coordinator, host=self.host,
                                   port=self.port,
                                   on_heartbeat=opts.on_heartbeat,
                                   metrics=opts.metrics)
        server.start()
        if opts.progress:
            print(f"  coordinator API at {server.url} "
                  f"(metrics: {server.url}/v1/metrics)", flush=True)
        env = worker_env()
        stdout = None if opts.progress else subprocess.DEVNULL
        restarts = 0
        workers: dict[str, subprocess.Popen] = {}

        def spawn() -> None:
            worker_id = f"http-{uuid.uuid4().hex[:8]}"
            workers[worker_id] = subprocess.Popen(
                worker_command(["--coordinator", server.url,
                                "--worker-id", worker_id,
                                "--fsync-interval",
                                str(opts.fsync_interval),
                                "--heartbeat-interval",
                                str(opts.heartbeat_interval_s)]),
                env=env, stdout=stdout, stderr=stdout)

        noted_done: set[int] = set()

        def note_new_done() -> None:
            from .coordinator import DONE

            for shard in coordinator.shards:
                sid = shard.shard_id
                if (coordinator.state[sid] == DONE
                        and sid not in noted_done):
                    noted_done.add(sid)
                    opts.note_done(sid, shard.trials)

        try:
            for _ in range(max(1, opts.workers)):
                spawn()
            while True:
                with server.lock:
                    coordinator.expire_stale()
                    note_new_done()
                    finished = coordinator.finished
                if finished:
                    break
                for worker_id, proc in list(workers.items()):
                    if proc.poll() is None:
                        continue
                    del workers[worker_id]
                    if restarts < opts.max_worker_restarts:
                        restarts += 1
                        opts.note_restart()
                        spawn()
                if not workers:
                    with server.lock:
                        coordinator.abandon_pending(
                            "no workers left and the restart budget "
                            f"({opts.max_worker_restarts}) is exhausted")
                    break
                time.sleep(opts.poll_interval_s)
            # Let workers observe "finished" and exit on their own.
            deadline = time.monotonic() + 30.0
            for proc in workers.values():
                try:
                    proc.wait(timeout=max(0.1,
                                          deadline - time.monotonic()))
                except subprocess.TimeoutExpired:
                    proc.kill()
                    proc.wait()
        finally:
            for proc in workers.values():
                if proc.poll() is None:
                    proc.kill()
                    proc.wait()
            server.stop()


BACKENDS = {backend.name: backend for backend in
            (InlineBackend, SubprocessBackend, HttpBackend)}


def backend_by_name(name: str):
    """Instantiate a launcher backend by registry name."""
    try:
        return BACKENDS[name]()
    except KeyError:
        raise ConfigError(
            f"unknown backend {name!r}; choose from "
            f"{', '.join(sorted(BACKENDS))}") from None


__all__ = ["BACKENDS", "BackendOptions", "HttpBackend", "InlineBackend",
           "SubprocessBackend", "backend_by_name", "worker_command",
           "worker_env"]
