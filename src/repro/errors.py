"""Exception hierarchy for the repro package."""


class ReproError(Exception):
    """Base class for all errors raised by this package."""


class AsmError(ReproError):
    """Raised when textual assembly cannot be parsed."""


class IsaError(ReproError):
    """Raised when an instruction or kernel is malformed."""


class CompileError(ReproError):
    """Raised when a compiler pass cannot transform a kernel."""


class SimError(ReproError):
    """Raised when the simulator reaches an inconsistent state."""


class SimTimeout(SimError):
    """Raised when a launch exhausts its cycle budget (likely hung).

    A corrupted register can drive a kernel into an infinite loop; the
    ``max_cycles`` guard on :meth:`repro.sim.Gpu.launch` turns that hang
    into this catchable exception so fault-injection campaigns can
    classify the trial as a DUE-hang instead of stalling a worker pool.
    """

    def __init__(self, message: str, cycles: int = 0) -> None:
        super().__init__(message)
        self.cycles = cycles


class LaunchError(ReproError):
    """Raised when a kernel launch configuration is invalid."""


class ConfigError(ReproError):
    """Raised when an architecture or scheme configuration is invalid."""
