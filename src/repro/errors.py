"""Exception hierarchy for the repro package."""


class ReproError(Exception):
    """Base class for all errors raised by this package."""


class AsmError(ReproError):
    """Raised when textual assembly cannot be parsed."""


class IsaError(ReproError):
    """Raised when an instruction or kernel is malformed."""


class CompileError(ReproError):
    """Raised when a compiler pass cannot transform a kernel."""


class SimError(ReproError):
    """Raised when the simulator reaches an inconsistent state."""


class LaunchError(ReproError):
    """Raised when a kernel launch configuration is invalid."""


class ConfigError(ReproError):
    """Raised when an architecture or scheme configuration is invalid."""
