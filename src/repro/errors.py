"""Exception hierarchy for the repro package."""


class ReproError(Exception):
    """Base class for all errors raised by this package."""


class AsmError(ReproError):
    """Raised when textual assembly cannot be parsed."""


class IsaError(ReproError):
    """Raised when an instruction or kernel is malformed."""


class CompileError(ReproError):
    """Raised when a compiler pass cannot transform a kernel."""


class SimError(ReproError):
    """Raised when the simulator reaches an inconsistent state."""


class SimTimeout(SimError):
    """Raised when a launch exhausts its cycle budget (likely hung).

    A corrupted register can drive a kernel into an infinite loop; the
    ``max_cycles`` guard on :meth:`repro.sim.Gpu.launch` turns that hang
    into this catchable exception so fault-injection campaigns can
    classify the trial as a DUE-hang instead of stalling a worker pool.
    """

    def __init__(self, message: str, cycles: int = 0) -> None:
        super().__init__(message)
        self.cycles = cycles


class SanitizerError(SimError):
    """Raised by the always-on architectural sanitizer when a per-cycle
    invariant is violated (scoreboard consistency, SIMT-stack
    well-formedness, RBQ conveyor monotonicity, RPT entries at region
    starts).

    Carries precise SM/warp/cycle context so a fault-injection campaign
    can classify the trial as a DUE-crash with an actionable detail
    string instead of letting corrupted microarchitectural state decay
    into downstream garbage.
    """

    def __init__(self, invariant: str, message: str, sm_id: int = -1,
                 warp_id: int | None = None, cycle: int = -1) -> None:
        where = f"sm{sm_id}"
        if warp_id is not None:
            where += f" warp{warp_id}"
        super().__init__(
            f"sanitizer[{invariant}] at cycle {cycle} ({where}): {message}")
        self.invariant = invariant
        self.sm_id = sm_id
        self.warp_id = warp_id
        self.cycle = cycle


class LaunchError(ReproError):
    """Raised when a kernel launch configuration is invalid."""


class ConfigError(ReproError):
    """Raised when an architecture or scheme configuration is invalid."""
