"""Functional (value-level) semantics of the virtual ISA.

Each warp executes instructions on 32 lanes at once using NumPy vectors.
General registers hold float64 values; integer/bitwise opcodes operate on
the int64 truncation.  ``execute`` applies one instruction under an
active-lane mask and returns the memory addresses touched (if any) so the
timing model can coalesce them.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import SimError
from ..isa import AtomOp, CmpOp, Imm, Instruction, Op, Pred, Reg, Space, Special

_CMP_FNS = {
    CmpOp.EQ: np.equal,
    CmpOp.NE: np.not_equal,
    CmpOp.LT: np.less,
    CmpOp.LE: np.less_equal,
    CmpOp.GT: np.greater,
    CmpOp.GE: np.greater_equal,
}


@dataclass
class MemAccess:
    """Addresses touched by one memory instruction (active lanes only)."""

    space: Space
    addresses: np.ndarray  # int64, one entry per active lane
    is_store: bool
    is_atomic: bool = False


class LaneContext:
    """Register/predicate state and special-register values of one warp."""

    def __init__(self, num_regs: int, num_preds: int, warp_size: int,
                 specials: dict[Special, np.ndarray],
                 params: np.ndarray) -> None:
        self.regs = np.zeros((max(num_regs, 1), warp_size), dtype=np.float64)
        self.preds = np.zeros((max(num_preds, 1), warp_size), dtype=bool)
        self.specials = specials
        # Positional view of the same arrays (Special declaration order),
        # so plan fetchers index a list instead of hashing enum members.
        self.special_rows = [specials.get(s) for s in Special]
        self.params = params
        self.warp_size = warp_size

    def read(self, operand) -> np.ndarray:
        if isinstance(operand, Reg):
            return self.regs[operand.index]
        if isinstance(operand, Pred):
            return self.preds[operand.index]
        if isinstance(operand, Imm):
            return np.full(self.warp_size, operand.value, dtype=np.float64)
        if isinstance(operand, Special):
            return self.specials[operand]
        raise SimError(f"unreadable operand {operand!r}")

    def write_reg(self, reg: Reg, value: np.ndarray, mask: np.ndarray) -> None:
        np.copyto(self.regs[reg.index], value, where=mask)

    def write_pred(self, pred: Pred, value: np.ndarray,
                   mask: np.ndarray) -> None:
        np.copyto(self.preds[pred.index], value, where=mask)


def guard_mask(inst: Instruction, ctx: LaneContext,
               active: np.ndarray) -> np.ndarray:
    """Lanes in which the (possibly predicated) instruction takes effect."""
    if inst.guard is None:
        return active
    guard = ctx.preds[inst.guard.index]
    if not inst.guard_sense:
        guard = ~guard
    return active & guard


def _as_int(values: np.ndarray) -> np.ndarray:
    return values.astype(np.int64)


def _alu_result(inst: Instruction, ctx: LaneContext) -> np.ndarray:
    op = inst.op
    read = ctx.read
    with np.errstate(all="ignore"):
        if op is Op.ADD:
            return read(inst.srcs[0]) + read(inst.srcs[1])
        if op is Op.SUB:
            return read(inst.srcs[0]) - read(inst.srcs[1])
        if op is Op.MUL:
            return read(inst.srcs[0]) * read(inst.srcs[1])
        if op is Op.MAD:
            return read(inst.srcs[0]) * read(inst.srcs[1]) + read(inst.srcs[2])
        if op is Op.DIV:
            denom = read(inst.srcs[1])
            out = read(inst.srcs[0]) / np.where(denom == 0.0, np.nan, denom)
            return np.nan_to_num(out, nan=0.0, posinf=0.0, neginf=0.0)
        if op is Op.REM:
            denom = _as_int(read(inst.srcs[1]))
            safe = np.where(denom == 0, 1, denom)
            out = np.remainder(_as_int(read(inst.srcs[0])), safe)
            return np.where(denom == 0, 0, out).astype(np.float64)
        if op is Op.MIN:
            return np.minimum(read(inst.srcs[0]), read(inst.srcs[1]))
        if op is Op.MAX:
            return np.maximum(read(inst.srcs[0]), read(inst.srcs[1]))
        if op is Op.ABS:
            return np.abs(read(inst.srcs[0]))
        if op is Op.NEG:
            return -read(inst.srcs[0])
        if op is Op.FLOOR:
            return np.floor(read(inst.srcs[0]))
        if op is Op.AND:
            return (_as_int(read(inst.srcs[0]))
                    & _as_int(read(inst.srcs[1]))).astype(np.float64)
        if op is Op.OR:
            return (_as_int(read(inst.srcs[0]))
                    | _as_int(read(inst.srcs[1]))).astype(np.float64)
        if op is Op.XOR:
            return (_as_int(read(inst.srcs[0]))
                    ^ _as_int(read(inst.srcs[1]))).astype(np.float64)
        if op is Op.NOT:
            return (~_as_int(read(inst.srcs[0]))).astype(np.float64)
        if op is Op.SHL:
            shift = np.clip(_as_int(read(inst.srcs[1])), 0, 62)
            return (_as_int(read(inst.srcs[0])) << shift).astype(np.float64)
        if op is Op.SHR:
            shift = np.clip(_as_int(read(inst.srcs[1])), 0, 62)
            return (_as_int(read(inst.srcs[0])) >> shift).astype(np.float64)
        if op is Op.MOV:
            return read(inst.srcs[0]).astype(np.float64)
        if op is Op.SELP:
            pred = read(inst.srcs[2])
            return np.where(pred, read(inst.srcs[0]), read(inst.srcs[1]))
        if op is Op.SQRT:
            return np.sqrt(np.maximum(read(inst.srcs[0]), 0.0))
        if op is Op.RSQRT:
            base = np.maximum(read(inst.srcs[0]), 1e-300)
            return 1.0 / np.sqrt(base)
        if op is Op.EXP:
            return np.exp(np.clip(read(inst.srcs[0]), -700.0, 700.0))
        if op is Op.LOG:
            return np.log(np.maximum(read(inst.srcs[0]), 1e-300))
        if op is Op.SIN:
            return np.sin(read(inst.srcs[0]))
        if op is Op.COS:
            return np.cos(read(inst.srcs[0]))
    raise SimError(f"no ALU semantics for {inst.op}")


def execute(inst: Instruction, ctx: LaneContext, active: np.ndarray,
            global_mem: np.ndarray, shared_mem: np.ndarray,
            stats=None) -> MemAccess | None:
    """Apply one instruction's value semantics in the masked lanes.

    Returns a :class:`MemAccess` for loads/stores/atomics (used by the
    timing model), ``None`` otherwise.  Control instructions (branches,
    barriers, exits, boundaries) have no value semantics here — the warp
    object handles them.
    """
    mask = guard_mask(inst, ctx, active)
    op = inst.op
    info = inst.info

    if info.is_load:
        if inst.space is Space.PARAM:
            index = int(inst.srcs[0].value)
            value = np.full(ctx.warp_size, ctx.params[index])
            ctx.write_reg(inst.dst, value, mask)
            return None
        addrs = _as_int(ctx.read(inst.srcs[0])) + inst.offset
        mem = global_mem if inst.space is Space.GLOBAL else shared_mem
        if mask.any():
            lane_addrs = addrs[mask]
            _check_bounds(lane_addrs, mem, inst)
            values = np.zeros(ctx.warp_size)
            values[mask] = mem[lane_addrs]
            ctx.write_reg(inst.dst, values, mask)
            return MemAccess(inst.space, lane_addrs, is_store=False)
        return None

    if info.is_store:
        addrs = _as_int(ctx.read(inst.srcs[0])) + inst.offset
        mem = global_mem if inst.space is Space.GLOBAL else shared_mem
        if mask.any():
            lane_addrs = addrs[mask]
            _check_bounds(lane_addrs, mem, inst)
            values = ctx.read(inst.srcs[1])
            # Lane order resolves same-address conflicts: highest lane wins,
            # matching CUDA's unspecified-but-deterministic per-SM behaviour.
            mem[lane_addrs] = values[mask]
            return MemAccess(inst.space, lane_addrs, is_store=True)
        return None

    if info.is_atomic:
        addrs = _as_int(ctx.read(inst.srcs[0])) + inst.offset
        mem = global_mem if inst.space is Space.GLOBAL else shared_mem
        if mask.any():
            lane_addrs = addrs[mask]
            _check_bounds(lane_addrs, mem, inst)
            operand = ctx.read(inst.srcs[1])
            old = np.zeros(ctx.warp_size)
            for lane in np.flatnonzero(mask):
                addr = addrs[lane]
                old[lane] = mem[addr]
                mem[addr] = _atom_apply(inst.atom_op, mem[addr], operand[lane])
            if inst.dst is not None:
                ctx.write_reg(inst.dst, old, mask)
            return MemAccess(inst.space, lane_addrs, is_store=True,
                             is_atomic=True)
        return None

    if op is Op.SETP:
        result = _CMP_FNS[inst.cmp](ctx.read(inst.srcs[0]),
                                    ctx.read(inst.srcs[1]))
        ctx.write_pred(inst.dst, result, mask)
        return None
    if op is Op.PAND:
        ctx.write_pred(inst.dst,
                       ctx.read(inst.srcs[0]) & ctx.read(inst.srcs[1]), mask)
        return None
    if op is Op.POR:
        ctx.write_pred(inst.dst,
                       ctx.read(inst.srcs[0]) | ctx.read(inst.srcs[1]), mask)
        return None
    if op is Op.PNOT:
        ctx.write_pred(inst.dst, ~ctx.read(inst.srcs[0]), mask)
        return None

    if info.is_branch or info.is_barrier or info.is_exit or info.is_boundary:
        return None

    result = _alu_result(inst, ctx)
    ctx.write_reg(inst.dst, result, mask)
    return None


def _atom_apply(atom_op: AtomOp, old: float, operand: float) -> float:
    if atom_op is AtomOp.ADD:
        return old + operand
    if atom_op is AtomOp.MAX:
        return max(old, operand)
    if atom_op is AtomOp.MIN:
        return min(old, operand)
    if atom_op is AtomOp.EXCH:
        return operand
    raise SimError(f"unknown atomic op {atom_op}")


def _check_bounds(addrs: np.ndarray, mem: np.ndarray,
                  inst: Instruction) -> None:
    if addrs.size and (addrs.min() < 0 or addrs.max() >= mem.size):
        raise SimError(
            f"out-of-bounds {inst.space.value} access in {inst} "
            f"(addr range [{addrs.min()}, {addrs.max()}], size {mem.size})"
        )
