"""GPU top level: kernel launch, occupancy, block dispatch, run loop."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..arch import GpuConfig, GTX480
from ..errors import LaunchError, SimError, SimTimeout
from ..isa import Cfg, Kernel, Special
from ..isa.cfg import reconvergence_table_for
from .caches import make_cache
from .plan import get_plan
from .sm import NEVER, ResilienceRuntime, NULL_RESILIENCE, Sm, ThreadBlock
from .stats import SimStats
from .warp import Warp, WarpState

#: Hard safety valve against runaway/livelocked simulations.
MAX_CYCLES = 500_000_000


@dataclass
class LaunchConfig:
    """Grid/block geometry and scalar parameters of one kernel launch."""

    grid: tuple[int, int] = (1, 1)
    block: tuple[int, int] = (32, 1)
    params: tuple[float, ...] = ()

    def __post_init__(self) -> None:
        gx, gy = self.grid
        bx, by = self.block
        if gx < 1 or gy < 1 or bx < 1 or by < 1:
            raise LaunchError("grid and block dimensions must be positive")
        if bx * by > 1024:
            raise LaunchError("at most 1024 threads per block")

    @property
    def num_blocks(self) -> int:
        return self.grid[0] * self.grid[1]

    @property
    def threads_per_block(self) -> int:
        return self.block[0] * self.block[1]


@dataclass
class RunResult:
    """Outcome of one simulated kernel launch.

    ``converged`` marks a launch stopped early by a
    :class:`~repro.sim.snapshot.ConvergenceMonitor`: the machine state
    matched the golden run's state at a checkpoint boundary, so the
    reported ``cycles`` are the golden final count and ``global_mem``
    holds the (mid-execution, golden-identical-from-here) state at the
    convergence point rather than the final image.
    """

    cycles: int
    stats: SimStats
    global_mem: np.ndarray
    per_sm: list[SimStats] = field(default_factory=list)
    converged: bool = False


def occupancy_blocks(config: GpuConfig, kernel: Kernel,
                     launch: LaunchConfig, regs_per_thread: int) -> int:
    """Resident blocks per SM under warp/block/register/shared limits."""
    threads = launch.threads_per_block
    warps_per_block = -(-threads // config.warp_size)
    limits = [
        config.max_blocks_per_sm,
        config.max_warps_per_sm // warps_per_block,
    ]
    if kernel.shared_words:
        limits.append(config.shared_words_per_sm // kernel.shared_words)
    if regs_per_thread:
        regs_per_block = regs_per_thread * warps_per_block * config.warp_size
        limits.append(config.regfile_words_per_sm // regs_per_block)
    blocks = min(limits)
    if blocks < 1:
        raise LaunchError(
            f"kernel {kernel.name!r} cannot fit one block on an SM "
            f"(threads={threads}, regs/thread={regs_per_thread}, "
            f"shared={kernel.shared_words})"
        )
    return blocks


class Gpu:
    """The simulated GPU: a set of SMs, a shared L2, and a block dispatcher."""

    def __init__(self, config: GpuConfig = GTX480,
                 resilience: ResilienceRuntime = NULL_RESILIENCE,
                 scheduler: str = "GTO", sanitizer=None,
                 fast: bool = True, tracer=None) -> None:
        self.config = config
        self.scheduler = scheduler
        #: Drive the SMs from decode-once execution plans (repro.sim.plan).
        #: ``fast=False`` selects the reference interpreter; both paths
        #: produce byte-identical cycles, stats, and memory.
        self.fast = fast
        self.l2 = make_cache(config.l2, name="l2")
        self.sms = [Sm(i, config, self.l2, resilience)
                    for i in range(config.sim_sms)]
        self.fault_injector = None  # set by repro.core.injection
        #: Opt-in per-cycle invariant checker (repro.sim.sanitizer).
        self.sanitizer = sanitizer
        #: Opt-in event tracer (``repro.obs.Tracer``); None disables all
        #: emission at the cost of one truthiness check per SM tick.
        self.tracer = tracer
        for sm in self.sms:
            sm.tracer = tracer

    # ------------------------------------------------------------------
    # Launch
    # ------------------------------------------------------------------
    def launch(self, kernel: Kernel, launch: LaunchConfig,
               global_mem: np.ndarray,
               regs_per_thread: int | None = None,
               max_cycles: int | None = None,
               recorder=None, resume_from=None, monitor=None) -> RunResult:
        """Run one kernel to completion and return timing + final memory.

        ``max_cycles`` bounds the simulated cycle count; exceeding it
        raises :class:`SimTimeout` (a corrupted register can loop a
        kernel forever — callers running fault-injection trials pass a
        budget derived from the fault-free cycle count so a hung trial
        surfaces as a catchable DUE instead of wedging its worker).

        Checkpoint hooks (all from :mod:`repro.sim.snapshot`):

        * ``recorder`` — a :class:`CheckpointRecorder` capturing deep
          machine snapshots at the top of the launch loop;
        * ``resume_from`` — a :class:`GpuCheckpoint` to overlay after
          setup: the loop resumes at the checkpoint's cycle with all
          machine state restored (the kernel/launch/memory arguments
          must match the capturing launch — setup re-derives the
          deterministic parts, including the decode-once plan, which is
          never serialized);
        * ``monitor`` — a :class:`ConvergenceMonitor` holding golden
          checkpoints; a state match at a boundary stops the run early
          with ``converged=True`` and the golden final cycle count.
        """
        kernel.validate()
        if max_cycles is not None and max_cycles < 1:
            raise LaunchError("max_cycles must be at least one cycle")
        budget = MAX_CYCLES if max_cycles is None else min(MAX_CYCLES,
                                                           max_cycles)
        if len(launch.params) != kernel.num_params:
            raise LaunchError(
                f"kernel {kernel.name!r} takes {kernel.num_params} params, "
                f"got {len(launch.params)}"
            )
        if global_mem.dtype != np.float64:
            raise LaunchError("global memory must be a float64 array")
        regs = regs_per_thread if regs_per_thread is not None else kernel.num_regs
        blocks_per_sm = occupancy_blocks(self.config, kernel, launch, regs)
        reconv = reconvergence_table_for(kernel)
        plan = get_plan(kernel, self.config) if self.fast else None
        params = np.asarray(launch.params, dtype=np.float64)
        # Superblock batching policy (repro.sim.superblock): value
        # prefetch needs per-issue value semantics only, so it stays on
        # under the sanitizer (a read-only checker) but not under the
        # tracer (per-issue events) or golden-run liveness recording;
        # timing scripts additionally require GTO (the only policy whose
        # re-pick of an issuable current warp is a structural guarantee)
        # and no per-cycle sanitizer checks.
        batching = plan is not None and self.tracer is None
        scripts = (batching and self.sanitizer is None
                   and self.scheduler == "GTO")
        for sm in self.sms:
            sm.configure(kernel, global_mem, reconv, self.scheduler,
                         plan=plan)
            sm._batching = batching
            sm._scripts = scripts
            if plan is not None:
                fb = sm.stats.superblock_fallbacks
                if self.tracer is not None:
                    fb["tracer"] = fb.get("tracer", 0) + 1
                else:
                    if self.sanitizer is not None:
                        fb["sanitizer"] = fb.get("sanitizer", 0) + 1
                    if self.scheduler != "GTO":
                        fb["scheduler"] = fb.get("scheduler", 0) + 1
        all_blocks = list(self._make_blocks(kernel, launch, params))
        total_blocks = len(all_blocks)
        if recorder is not None:
            from .snapshot import MemoryLiveness

            if recorder.liveness is None:
                num_warps = 1 + max(
                    (warp.id for block in all_blocks
                     for warp in block.warps), default=-1)
                num_regs = (all_blocks[0].warps[0].ctx.regs.shape[0]
                            if all_blocks and all_blocks[0].warps else 0)
                recorder.liveness = MemoryLiveness(
                    global_mem.size, num_warps=num_warps, num_regs=num_regs)
            for sm in self.sms:
                sm.liveness = recorder.liveness
                if plan is not None:
                    fb = sm.stats.superblock_fallbacks
                    fb["liveness"] = fb.get("liveness", 0) + 1

        injector = self.fault_injector
        if injector is not None or recorder is not None or monitor is not None:
            # The next cycle at which an observer acts (strike/detection
            # delivery, checkpoint capture, convergence check): timing
            # scripts and loop jumps must end strictly before it so the
            # observer sees the exact cycle-by-cycle machine state.
            def script_cap(c):
                horizon = (injector.next_event(c) if injector is not None
                           else NEVER)
                if recorder is not None and recorder.next_due < horizon:
                    horizon = recorder.next_due
                if monitor is not None and monitor.next_cycle < horizon:
                    horizon = monitor.next_cycle
                return horizon
        else:
            script_cap = None
        for sm in self.sms:
            sm._script_cap = script_cap
        # The launch loop may jump over spans where every scheduler of
        # every busy SM is mid-script (each such cycle provably issues
        # and touches no observer): only sound when nothing per-cycle is
        # attached and the resilience runtime is the stateless baseline
        # (a stateful runtime's conveyors need their tick every cycle).
        null_resilience = all(type(sm.resilience) is ResilienceRuntime
                              for sm in self.sms)
        jump_ok = scripts and self.sanitizer is None and null_resilience
        # Memory-aware scripted windows (Sm._open_window): whole-SM
        # forward simulation with exact LSU/cache timing.  On top of the
        # script conditions they need the stateless runtime (no per-cycle
        # conveyor ticks inside a window), no golden-run liveness
        # recording (per-issue read timestamps), and a single busy SM
        # (concurrent SMs interleave on the shared L2 cycle by cycle).
        single_sm = (self.config.sim_sms == 1
                     or total_blocks <= blocks_per_sm)
        mem_windows = (scripts and recorder is None and null_resilience
                       and single_sm)
        mem_sigs = (plan.mem_strides(launch.block[0])
                    if plan is not None else None) or None
        for sm in self.sms:
            sm._windows = mem_windows
            sm._win_budget = budget
            sm._mem_sigs = mem_sigs
        if scripts and not mem_windows and recorder is None:
            # (The recorder case already booked "liveness" above.)
            reason = "resilience" if not null_resilience else "multi_sm"
            for sm in self.sms:
                fb = sm.stats.superblock_fallbacks
                fb[reason] = fb.get(reason, 0) + 1

        cycle = 0
        age = 0
        dispatched = 0
        converged = False
        if resume_from is not None:
            from .snapshot import restore_gpu

            cycle, age, dispatched = restore_gpu(self, resume_from,
                                                 all_blocks, global_mem)
        pending = all_blocks[dispatched:]
        pending.reverse()  # pop() dispatches in grid order
        # FP exceptions are already value-handled per op (clamps, NaN
        # scrubbing); silencing them once around the whole loop spares
        # every ALU apply an errstate context switch.
        with np.errstate(all="ignore"):
            while True:
                # Checkpoint/convergence hooks run at the loop top,
                # before this cycle's dispatch and injector tick — the
                # same point ``resume_from`` re-enters at, which is what
                # makes a restored run byte-identical to a direct one.
                if recorder is not None and cycle >= recorder.next_due:
                    recorder.take(self, cycle, age, dispatched, global_mem)
                if (monitor is not None and cycle >= monitor.next_cycle
                        and monitor.check(self, cycle, age, dispatched,
                                          global_mem)):
                    converged = True
                    break
                # Dispatch blocks into free slots.
                for sm in self.sms:
                    while pending and sm.resident_blocks < blocks_per_sm:
                        block = pending.pop()
                        dispatched += 1
                        for warp in block.warps:
                            warp.age = age
                            age += 1
                        sm.add_block(block, cycle)
                # Detection must precede this cycle's conveyor pops: an
                # error detected exactly WCDL cycles after a region end
                # invalidates that region's verification (the tie goes to
                # the detector).
                if injector is not None:
                    if injector.tick(self, cycle):
                        # The injector touched machine state (strike or
                        # detection delivery): every precomputed
                        # superblock value may describe a pre-corruption
                        # future — orphan them all.
                        for sm in self.sms:
                            sm._value_epoch += 1
                if self.tracer is not None:
                    self.tracer.now = cycle
                issued = 0
                for sm in self.sms:
                    # Per-SM idle elision (fast path only, so the
                    # ``fast=False`` oracle keeps ticking every SM every
                    # cycle): an SM that classified a stall on its last
                    # tick and whose next possible issue lies in the
                    # future would re-derive the same stall cause —
                    # account the idle cycle directly.  Same next_event
                    # trust as ``_fast_forward``, applied per SM.
                    if (plan is not None and self.tracer is None
                            and sm._stall_cause is not None
                            and sm.next_event(cycle) > cycle):
                        sm.account_stall_skip(1)
                        continue
                    issued += sm.tick(cycle)
                # Retire finished blocks (live-warp counters hit zero).
                for sm in self.sms:
                    if sm._done_blocks:
                        for block in sm.take_done_blocks():
                            sm.remove_block(block, cycle)
                if self.sanitizer is not None:
                    self.sanitizer.check(self, cycle)
                if not pending and all(not sm.busy for sm in self.sms):
                    break
                if issued:
                    cycle += 1
                    if jump_ok and not pending:
                        # If every scheduler of every busy SM is still
                        # mid-script, each elided cycle provably issues
                        # (scripted slots count as issues) and no
                        # observer can act before the earliest script
                        # ends (each script was capped at creation).
                        ju = NEVER
                        for sm in self.sms:
                            if not sm.busy:
                                continue
                            for sched in sm.schedulers:
                                su = sched.script_until
                                if su < ju:
                                    ju = su
                        if cycle <= ju < NEVER:
                            d = ju - cycle + 1
                            for sm in self.sms:
                                if sm.busy:
                                    st = sm.stats
                                    st.active_cycles += d
                                    st.issue_cycles += d
                            cycle += d
                else:
                    nxt = self._fast_forward(cycle)
                    skipped = nxt - cycle - 1
                    if skipped > 0:
                        # The elided cycles inherit the stall cause each
                        # busy SM recorded this cycle (nothing changes
                        # while no SM issues), keeping attribution exact.
                        for sm in self.sms:
                            sm.account_stall_skip(skipped)
                    cycle = nxt
                if cycle > budget:
                    raise SimTimeout(
                        f"kernel {kernel.name!r} exceeded its cycle budget "
                        f"of {budget} cycles — likely hung or livelocked",
                        cycles=cycle)

        if self.tracer is not None:
            for sm in self.sms:
                sm.trace_flush(cycle)
        stats = SimStats()
        per_sm = []
        for sm in self.sms:
            sm.stats.l1_hits, sm.stats.l1_misses = sm.l1.hits, sm.l1.misses
            stats.merge(sm.stats)
            per_sm.append(sm.stats)
        stats.l2_hits, stats.l2_misses = self.l2.hits, self.l2.misses
        # On convergence the continuation is byte-identical to the
        # golden run, so the golden final cycle count *is* this run's.
        final_cycles = monitor.final_cycles if converged else cycle + 1
        stats.cycles = final_cycles
        stats.regs_per_thread = regs
        stats.occupancy_warps = blocks_per_sm * (
            -(-launch.threads_per_block // self.config.warp_size))
        stats.blocks_launched = total_blocks
        return RunResult(cycles=final_cycles, stats=stats,
                         global_mem=global_mem, per_sm=per_sm,
                         converged=converged)

    def _fast_forward(self, cycle: int) -> int:
        nxt = NEVER
        for sm in self.sms:
            nxt = min(nxt, sm.next_event(cycle))
        if self.fault_injector is not None:
            nxt = min(nxt, self.fault_injector.next_event(cycle))
        if nxt >= NEVER:
            self._raise_deadlock(cycle)
        return max(cycle + 1, nxt)

    def _raise_deadlock(self, cycle: int) -> None:
        lines = [f"simulation deadlocked at cycle {cycle}:"]
        for sm in self.sms:
            for warp in sm.warps:
                lines.append(
                    f"  sm{sm.id} warp{warp.id} state={warp.state.value} "
                    f"pc={warp.pc} wakeup={warp.wakeup_cycle}"
                )
        raise SimError("\n".join(lines))

    def _make_blocks(self, kernel: Kernel, launch: LaunchConfig, params):
        config = self.config
        gx, _ = launch.grid
        bx, by = launch.block
        threads = launch.threads_per_block
        warps_per_block = -(-threads // config.warp_size)
        # num_regs/num_preds are O(instructions) scans: compute them once
        # per launch, not once per warp.
        num_regs = max(kernel.num_regs, 1)
        num_preds = max(kernel.num_preds, 1)
        warp_counter = 0
        for block_id in range(launch.num_blocks):
            ctaid = (block_id % gx, block_id // gx)
            block = ThreadBlock(block_id, ctaid, threads,
                                first_warp_id=warp_counter,
                                shared_words=kernel.shared_words)
            for w in range(warps_per_block):
                warp_id = warp_counter
                warp_counter += 1
                specials = self._specials(ctaid, launch, w)
                warp = Warp(warp_id, block, kernel,
                            num_regs=num_regs,
                            warp_size=config.warp_size,
                            specials=specials, params=params, age=warp_id,
                            num_preds=num_preds)
                block.warps.append(warp)
            yield block

    def _specials(self, ctaid: tuple[int, int], launch: LaunchConfig,
                  warp_in_block: int) -> dict[Special, np.ndarray]:
        # Specials are launch-invariant per (geometry, warp slot) and only
        # ever read (no op writes a Special), so every warp in the same
        # slot across all blocks — and across launches — shares the same
        # frozen arrays instead of re-deriving ten vectors per warp.
        config = self.config
        bx, by = launch.block
        tid_x, tid_y, laneid = _lane_specials(config.warp_size, bx,
                                              warp_in_block)
        scalar = _scalar_special
        ws = config.warp_size
        return {
            Special.TID_X: tid_x,
            Special.TID_Y: tid_y,
            Special.NTID_X: scalar(ws, bx),
            Special.NTID_Y: scalar(ws, by),
            Special.CTAID_X: scalar(ws, ctaid[0]),
            Special.CTAID_Y: scalar(ws, ctaid[1]),
            Special.NCTAID_X: scalar(ws, launch.grid[0]),
            Special.NCTAID_Y: scalar(ws, launch.grid[1]),
            Special.LANEID: laneid,
            Special.WARPID: scalar(ws, warp_in_block),
        }


_LANE_SPECIALS: dict[tuple[int, int, int],
                     tuple[np.ndarray, np.ndarray, np.ndarray]] = {}
_SCALAR_SPECIALS: dict[tuple[int, float], np.ndarray] = {}


def _lane_specials(warp_size: int, bx: int, warp_in_block: int):
    key = (warp_size, bx, warp_in_block)
    cached = _LANE_SPECIALS.get(key)
    if cached is None:
        lanes = np.arange(warp_size, dtype=np.float64)
        linear = warp_in_block * warp_size + lanes
        tid_x = np.mod(linear, bx)
        tid_y = np.floor(linear / bx)
        for arr in (tid_x, tid_y, lanes):
            arr.flags.writeable = False
        cached = _LANE_SPECIALS[key] = (tid_x, tid_y, lanes)
    return cached


def _scalar_special(warp_size: int, value: float) -> np.ndarray:
    key = (warp_size, float(value))
    arr = _SCALAR_SPECIALS.get(key)
    if arr is None:
        arr = np.full(warp_size, float(value))
        arr.flags.writeable = False
        _SCALAR_SPECIALS[key] = arr
    return arr


def run_kernel(kernel: Kernel, launch: LaunchConfig, global_mem: np.ndarray,
               config: GpuConfig = GTX480, scheduler: str = "GTO",
               resilience: ResilienceRuntime = NULL_RESILIENCE,
               regs_per_thread: int | None = None,
               max_cycles: int | None = None, sanitizer=None,
               fast: bool = True, tracer=None) -> RunResult:
    """Convenience one-shot: build a GPU, launch, return the result.

    ``fast=False`` runs the reference per-issue interpreter instead of
    the decode-once execution plan; results are byte-identical.
    """
    gpu = Gpu(config, resilience, scheduler, sanitizer=sanitizer, fast=fast,
              tracer=tracer)
    return gpu.launch(kernel, launch, global_mem, regs_per_thread,
                      max_cycles=max_cycles)
