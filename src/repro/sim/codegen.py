"""Exec-compiled per-kernel execution code: the codegen tier of the
decode-once fast path.

:mod:`repro.sim.plan` lowers each instruction into closures — an operand
fetcher per source, an op-specific apply function, and a ``run`` wrapper.
That removes the interpreter's per-issue decoding, but every dynamic
issue still pays a chain of 3–6 Python closure calls.  This module goes
one step further: it *generates Python source* for every ``K_VALUE``
record with the operand rows, immediates, memory offsets, and space
selection inlined as literals, compiles the whole kernel's worth in one
``exec``, and swaps each generated function into ``PlannedInst.run``.

A generated function is a drop-in for the closure it replaces — same
``run(ctx, mask, global_mem, shared_mem)`` signature, same NumPy
expressions in the same order (each template below mirrors its
``plan._build_run`` / ``plan._build_alu`` branch verbatim), so results
stay bit-identical and the A/B equivalence suite covers both tiers.
The superblock batcher calls the same ``run`` with stacked ``(k, 32)``
contexts, so generated code serves the batched path too.

Generated code is cached with the plan itself (``ExecPlan`` construction
invokes :func:`specialize_plan` once), which ties its lifetime to the
``_exec_plans`` LRU on the kernel: mutating the kernel's instructions or
launching under a different ``GpuConfig`` builds a fresh plan and hence
fresh code.  Ops without a template (a custom ``Op`` added by tests)
simply keep their closure ``run`` — codegen is an optimization layer,
never a semantic gate.
"""

from __future__ import annotations

import numpy as np

from ..isa import Imm, Op, Pred, Reg, Space, Special
from .functional import MemAccess, _atom_apply, _check_bounds, _CMP_FNS

#: Positional index of each special register (LaneContext.special_rows).
_SPECIAL_INDEX = {special: i for i, special in enumerate(Special)}

#: Binary/unary ALU templates: ``{0}``/``{1}``/``{2}`` are operand
#: expressions.  Each mirrors the corresponding ``plan._build_alu``
#: branch exactly (same NumPy calls, same clamping, same order).
_EXPR = {
    Op.ADD: "{0} + {1}",
    Op.SUB: "{0} - {1}",
    Op.MUL: "{0} * {1}",
    Op.MAD: "{0} * {1} + {2}",
    Op.MIN: "np.minimum({0}, {1})",
    Op.MAX: "np.maximum({0}, {1})",
    Op.ABS: "np.abs({0})",
    Op.NEG: "-{0}",
    Op.FLOOR: "np.floor({0})",
    Op.AND: "({0}.astype(np.int64) & {1}.astype(np.int64))"
            ".astype(np.float64)",
    Op.OR: "({0}.astype(np.int64) | {1}.astype(np.int64))"
           ".astype(np.float64)",
    Op.XOR: "({0}.astype(np.int64) ^ {1}.astype(np.int64))"
            ".astype(np.float64)",
    Op.NOT: "(~{0}.astype(np.int64)).astype(np.float64)",
    Op.MOV: "{0}.astype(np.float64)",
    Op.SELP: "np.where({2}, {0}, {1})",
    Op.SQRT: "np.sqrt(np.maximum({0}, 0.0))",
    Op.RSQRT: "1.0 / np.sqrt(np.maximum({0}, 1e-300))",
    Op.EXP: "np.exp(np.clip({0}, -700.0, 700.0))",
    Op.LOG: "np.log(np.maximum({0}, 1e-300))",
    Op.SIN: "np.sin({0})",
    Op.COS: "np.cos({0})",
}

#: Multi-statement ALU templates ({d} = destination row; the final
#: masked copyto is part of the template).
_STMT = {
    Op.DIV: (
        "    denom = {1}\n"
        "    out = {0} / np.where(denom == 0.0, np.nan, denom)\n"
        "    np.copyto(ctx.regs[{d}], np.nan_to_num(out, nan=0.0,"
        " posinf=0.0, neginf=0.0), where=mask)\n"
    ),
    Op.REM: (
        "    denom = {1}.astype(np.int64)\n"
        "    safe = np.where(denom == 0, 1, denom)\n"
        "    out = np.remainder({0}.astype(np.int64), safe)\n"
        "    np.copyto(ctx.regs[{d}], np.where(denom == 0, 0,"
        " out).astype(np.float64), where=mask)\n"
    ),
    Op.SHL: (
        "    shift = np.clip({1}.astype(np.int64), 0, 62)\n"
        "    np.copyto(ctx.regs[{d}], ({0}.astype(np.int64)"
        " << shift).astype(np.float64), where=mask)\n"
    ),
    Op.SHR: (
        "    shift = np.clip({1}.astype(np.int64), 0, 62)\n"
        "    np.copyto(ctx.regs[{d}], ({0}.astype(np.int64)"
        " >> shift).astype(np.float64), where=mask)\n"
    ),
}


class _SourceBuilder:
    """Accumulates function sources plus the namespace of shared
    constants (immediate vectors, Space/AtomOp values, comparison
    functions, bound instruction objects) the sources refer to."""

    def __init__(self) -> None:
        self.namespace = {"np": np, "MemAccess": MemAccess,
                          "_check_bounds": _check_bounds,
                          "_atom_apply": _atom_apply}
        self.parts: list[str] = []
        self._imm_names: dict = {}

    def const(self, prefix: str, value) -> str:
        """Bind ``value`` into the namespace under a fresh name."""
        name = f"{prefix}{len(self.namespace)}"
        self.namespace[name] = value
        return name

    def operand(self, operand, warp_size: int) -> str:
        """Inline expression reading one operand — mirrors
        ``plan._fetcher`` without the closure indirection."""
        if isinstance(operand, Reg):
            return f"ctx.regs[{operand.index}]"
        if isinstance(operand, Pred):
            return f"ctx.preds[{operand.index}]"
        if isinstance(operand, Imm):
            from .plan import _imm_vector

            key = (warp_size, float(operand.value))
            name = self._imm_names.get(key)
            if name is None:
                name = self.const("K", _imm_vector(warp_size,
                                                   operand.value))
                self._imm_names[key] = name
            return name
        if isinstance(operand, Special):
            return f"ctx.special_rows[{_SPECIAL_INDEX[operand]}]"
        raise TypeError(f"unreadable operand {operand!r}")


def _gen_record(builder: _SourceBuilder, pc: int, rec,
                warp_size: int) -> str | None:
    """Source for one K_VALUE record's ``run``, or None when the op has
    no template.  Every template mirrors its ``plan._build_run`` branch
    statement-for-statement."""
    inst = rec.inst
    info = inst.info
    op = inst.op
    name = f"run_{pc}"
    head = f"def {name}(ctx, mask, global_mem, shared_mem):\n"
    dst = inst.dst
    d = dst.index if dst is not None else None

    if info.is_load:
        if inst.space is Space.PARAM:
            idx = int(inst.srcs[0].value)
            return (head
                    + f"    value = np.full(ctx.warp_size,"
                      f" ctx.params[{idx}])\n"
                    + f"    np.copyto(ctx.regs[{d}], value, where=mask)\n"
                    + "    return None\n")
        addr = builder.operand(inst.srcs[0], warp_size)
        mem = "global_mem" if inst.space is Space.GLOBAL else "shared_mem"
        iname = builder.const("I", inst)
        sp = builder.const("S", inst.space)
        return (head
                + f"    addrs = {addr}.astype(np.int64) + {inst.offset}\n"
                + "    if mask.any():\n"
                + "        lane_addrs = addrs[mask]\n"
                + f"        _check_bounds(lane_addrs, {mem}, {iname})\n"
                + "        values = np.zeros(ctx.warp_size)\n"
                + f"        values[mask] = {mem}[lane_addrs]\n"
                + f"        np.copyto(ctx.regs[{d}], values, where=mask)\n"
                + f"        return MemAccess({sp}, lane_addrs,"
                  " is_store=False)\n"
                + "    return None\n")

    if info.is_store:
        addr = builder.operand(inst.srcs[0], warp_size)
        value = builder.operand(inst.srcs[1], warp_size)
        mem = "global_mem" if inst.space is Space.GLOBAL else "shared_mem"
        iname = builder.const("I", inst)
        sp = builder.const("S", inst.space)
        return (head
                + f"    addrs = {addr}.astype(np.int64) + {inst.offset}\n"
                + "    if mask.any():\n"
                + "        lane_addrs = addrs[mask]\n"
                + f"        _check_bounds(lane_addrs, {mem}, {iname})\n"
                + f"        {mem}[lane_addrs] = {value}[mask]\n"
                + f"        return MemAccess({sp}, lane_addrs,"
                  " is_store=True)\n"
                + "    return None\n")

    if info.is_atomic:
        addr = builder.operand(inst.srcs[0], warp_size)
        operand = builder.operand(inst.srcs[1], warp_size)
        mem = "global_mem" if inst.space is Space.GLOBAL else "shared_mem"
        iname = builder.const("I", inst)
        sp = builder.const("S", inst.space)
        ao = builder.const("A", inst.atom_op)
        write_old = ("" if d is None else
                     f"        np.copyto(ctx.regs[{d}], old,"
                     " where=mask)\n")
        return (head
                + f"    addrs = {addr}.astype(np.int64) + {inst.offset}\n"
                + "    if mask.any():\n"
                + "        lane_addrs = addrs[mask]\n"
                + f"        _check_bounds(lane_addrs, {mem}, {iname})\n"
                + f"        operand = {operand}\n"
                + "        old = np.zeros(ctx.warp_size)\n"
                + "        for lane in np.flatnonzero(mask):\n"
                + "            addr = addrs[lane]\n"
                + f"            old[lane] = {mem}[addr]\n"
                + f"            {mem}[addr] = _atom_apply({ao},"
                  f" {mem}[addr], operand[lane])\n"
                + write_old
                + f"        return MemAccess({sp}, lane_addrs,"
                  " is_store=True, is_atomic=True)\n"
                + "    return None\n")

    if op is Op.SETP:
        cmp = builder.const("C", _CMP_FNS[inst.cmp])
        s0 = builder.operand(inst.srcs[0], warp_size)
        s1 = builder.operand(inst.srcs[1], warp_size)
        return (head
                + f"    np.copyto(ctx.preds[{d}], {cmp}({s0}, {s1}),"
                  " where=mask)\n"
                + "    return None\n")
    if op in (Op.PAND, Op.POR, Op.PNOT):
        s0 = builder.operand(inst.srcs[0], warp_size)
        if op is Op.PNOT:
            expr = f"~{s0}"
        else:
            s1 = builder.operand(inst.srcs[1], warp_size)
            expr = f"{s0} & {s1}" if op is Op.PAND else f"{s0} | {s1}"
        return (head
                + f"    np.copyto(ctx.preds[{d}], {expr}, where=mask)\n"
                + "    return None\n")

    srcs = [builder.operand(s, warp_size) for s in inst.srcs]
    stmt = _STMT.get(op)
    if stmt is not None:
        return head + stmt.format(*srcs, d=d) + "    return None\n"
    expr = _EXPR.get(op)
    if expr is None:
        return None
    return (head
            + f"    np.copyto(ctx.regs[{d}], {expr.format(*srcs)},"
              " where=mask)\n"
            + "    return None\n")


def generate_source(plan) -> tuple[str, dict, dict]:
    """Generate the kernel's specialized source: returns
    ``(source, namespace, {pc: function_name})``."""
    from .plan import K_VALUE

    builder = _SourceBuilder()
    names: dict[int, str] = {}
    warp_size = plan.config.warp_size
    for pc, rec in enumerate(plan.records):
        if rec.kind != K_VALUE or rec.is_rb:
            continue
        src = _gen_record(builder, pc, rec, warp_size)
        if src is None:
            continue
        builder.parts.append(src)
        names[pc] = f"run_{pc}"
    return "\n".join(builder.parts), builder.namespace, names


def specialize_plan(plan) -> None:
    """Compile the plan's generated source and swap each function into
    its record's ``run``; the source is kept on the plan (``gen_source``)
    for inspection and tests."""
    source, namespace, names = generate_source(plan)
    plan.gen_source = source
    if not names:
        return
    code = compile(source, f"<plan:{plan.kernel.name}>", "exec")
    exec(code, namespace)
    records = plan.records
    for pc, name in names.items():
        records[pc].run = namespace[name]


__all__ = ["generate_source", "specialize_plan"]
