"""Cycle-level GPU simulator (the GPGPU-Sim substitute).

Public surface:

* :class:`Gpu`, :func:`run_kernel`, :class:`LaunchConfig`, :class:`RunResult`
* :class:`Sm`, :class:`ThreadBlock`, :class:`ResilienceRuntime`
* :class:`Warp`, :class:`WarpState`, :class:`WarpSnapshot`
* :data:`SCHEDULERS` (GTO / OLD / LRR / 2LV), :func:`make_scheduler`
* :class:`SimStats`, :class:`Cache`
* :class:`ExecPlan`, :func:`get_plan` — decode-once dispatch plans
"""

from .caches import BatchCache, Cache, make_cache
from .functional import LaneContext, MemAccess, execute, guard_mask
from .gpu import (Gpu, LaunchConfig, MAX_CYCLES, RunResult, occupancy_blocks,
                  run_kernel)
from .plan import ExecPlan, PlannedInst, get_plan
from .schedulers import (GtoScheduler, LrrScheduler, OldestScheduler,
                         SCHEDULERS, TwoLevelScheduler, WarpScheduler,
                         make_scheduler)
from .sanitizer import Sanitizer
from .sm import (CONTROL_TID, NEVER, NULL_RESILIENCE, ResilienceRuntime, Sm,
                 ThreadBlock)
from .snapshot import (CheckpointRecorder, ConvergenceMonitor, GpuCheckpoint,
                       MemoryLiveness, SNAPSHOT_VERSION, capture_gpu,
                       machine_probe, plain_equal, restore_gpu)
from .stats import SimStats
from .warp import StackEntry, Warp, WarpSnapshot, WarpState

__all__ = [
    "CONTROL_TID",
    "BatchCache", "Cache", "CheckpointRecorder", "ConvergenceMonitor",
    "ExecPlan", "Gpu", "make_cache",
    "GpuCheckpoint", "GtoScheduler", "LaneContext", "LaunchConfig",
    "LrrScheduler", "MAX_CYCLES", "MemAccess", "MemoryLiveness", "NEVER",
    "NULL_RESILIENCE",
    "OldestScheduler", "PlannedInst", "ResilienceRuntime", "RunResult",
    "SCHEDULERS", "SNAPSHOT_VERSION",
    "Sanitizer", "SimStats", "Sm", "StackEntry", "ThreadBlock",
    "TwoLevelScheduler", "capture_gpu", "get_plan", "machine_probe",
    "Warp", "WarpScheduler", "WarpSnapshot", "WarpState", "execute",
    "guard_mask", "make_scheduler", "occupancy_blocks", "plain_equal",
    "restore_gpu", "run_kernel",
]
