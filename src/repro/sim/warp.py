"""Warp state: SIMT divergence stack, scoreboard, and recovery snapshots."""

from __future__ import annotations

import enum
from dataclasses import dataclass

import numpy as np

from ..errors import SimError
from ..isa import Instruction, Kernel, Op, Pred, Reg, Special
from .functional import LaneContext, guard_mask


class WarpState(enum.Enum):
    ACTIVE = "active"          # eligible for issue (deps permitting)
    AT_BARRIER = "at_barrier"  # waiting for the block's barrier
    IN_RBQ = "in_rbq"          # descheduled for WCDL verification (Flame)
    DONE = "done"              # all lanes exited and final region verified


@dataclass
class StackEntry:
    """One SIMT reconvergence stack entry."""

    reconv_pc: int
    pc: int
    mask: np.ndarray

    def copy(self) -> "StackEntry":
        return StackEntry(self.reconv_pc, self.pc, self.mask.copy())


@dataclass
class WarpSnapshot:
    """Control-flow context captured at a region boundary for recovery.

    Registers need no snapshot — idempotence guarantees re-execution from
    the recovery PC regenerates them — but the SIMT stack and the warp's
    monotonic barrier-arrival counter are microarchitectural state the
    RPT must restore alongside the PC (a few dozen bits per warp in
    hardware).  Restoring the barrier counter is what makes rollback
    across barrier instructions deadlock-free: a warp that re-executes a
    BAR re-arrives at the same logical barrier generation, while warps
    that never rolled back across it already satisfy the release
    condition."""

    pc: int
    stack: list[StackEntry]
    exited: np.ndarray
    barrier_count: int

    @staticmethod
    def capture(warp: "Warp") -> "WarpSnapshot":
        return WarpSnapshot(
            pc=warp.pc,
            stack=[entry.copy() for entry in warp.stack],
            exited=warp.exited.copy(),
            barrier_count=warp.barrier_count,
        )

    def restore(self, warp: "Warp") -> None:
        warp.stack = [entry.copy() for entry in self.stack]
        warp.exited = self.exited.copy()
        warp.stack[-1].pc = self.pc
        warp.barrier_count = self.barrier_count
        # Every rollback path (flame recovery, DMR/partial compare
        # rollback, ABFT correction) funnels through here: the warp's
        # precomputed superblock values no longer describe its future.
        warp._pf = None

    # -- checkpoint support (plain-data round trip) --------------------
    def to_state(self) -> tuple:
        return (self.pc,
                tuple((e.reconv_pc, e.pc, e.mask.copy()) for e in self.stack),
                self.exited.copy(), self.barrier_count)

    @staticmethod
    def from_state(state: tuple) -> "WarpSnapshot":
        pc, stack, exited, barrier_count = state
        return WarpSnapshot(
            pc=pc,
            stack=[StackEntry(r, p, m.copy()) for r, p, m in stack],
            exited=exited.copy(), barrier_count=barrier_count)


class Warp:
    """One warp: 32 lanes sharing a PC, plus scheduling metadata."""

    def __init__(self, warp_id: int, block, kernel: Kernel,
                 num_regs: int, warp_size: int,
                 specials: dict[Special, np.ndarray],
                 params: np.ndarray, age: int,
                 num_preds: int | None = None) -> None:
        self.id = warp_id
        self.block = block
        self.kernel = kernel
        self.warp_size = warp_size
        self.age = age                      # global dispatch order (for GTO/OLD)
        self.state = WarpState.ACTIVE
        if num_preds is None:
            num_preds = max(kernel.num_preds, 1)
        self.ctx = LaneContext(num_regs, num_preds, warp_size,
                               specials, params)
        full = np.ones(warp_size, dtype=bool)
        if block.num_threads < (warp_id - block.first_warp_id + 1) * warp_size:
            # Partial trailing warp: mask off lanes beyond the block size.
            local = block.num_threads - (warp_id - block.first_warp_id) * warp_size
            full = np.arange(warp_size) < local
        self.stack: list[StackEntry] = [StackEntry(-1, 0, full)]
        self.exited = ~full
        # Scoreboard: destination -> cycle the value becomes usable.
        self.pending: dict[Reg | Pred, int] = {}
        # Stall attribution: destination -> ready cycle, written only by
        # timed memory loads.  An entry is *live* (the blocking producer
        # is an in-flight load) exactly when it equals the ``pending``
        # entry for the same operand: WAW is blocked by the scoreboard,
        # so a stale entry always names an earlier cycle than any newer
        # producer's.  Never cleaned on the hot path; cleared on rollback.
        self.pending_mem: dict[Reg | Pred, int] = {}
        self.wakeup_cycle = 0               # earliest cycle the warp may issue
        # Event-driven fast-forward support: ``version`` bumps on every
        # state change that can affect readiness (wakeup, scoreboard
        # write, recovery); ``Sm.next_event`` caches the computed ready
        # cycle per warp and revalidates it against the version, so a
        # long stall costs O(changed warps) instead of O(all warps).
        self.version = 0
        self.ready_version = -1             # version the cache was built at
        self.ready_cache = 0                # cached earliest ready cycle
        self.ready_timed = False            # cached "next inst uses the LSU"
        self.scheduler = None               # set when attached to an SM
        # Superblock value prefetch (repro.sim.superblock): the shared
        # side buffer of precomputed block outputs, this warp's row in
        # it, and the next record offset to consume.  Derived state —
        # dropped on any rollback/restore, never checkpointed.
        self._pf = None
        self._pf_i = 0
        self._pf_j = 0
        self.insts_since_boundary = 0       # dynamic region-size accounting
        self.barrier_count = 0              # monotonic barrier generation
        self.last_write: Reg | None = None  # injection target (in-flight dst)
        self.last_write_mask: np.ndarray | None = None  # lanes written
        self.last_write_pc = -1             # def site of the last write
        # Additional in-flight fault-surface tracking (multi-site model):
        # the words of the block's shared memory most recently stored by
        # this warp in its current (unverified) region, and the predicate
        # register most recently produced in flight.
        self.last_shared_write: np.ndarray | None = None
        self.last_pred_write: Pred | None = None
        self.last_pred_write_mask: np.ndarray | None = None
        self.last_pred_write_pc = -1

    def clear_inflight(self) -> None:
        """Nothing of this warp's is in flight anymore (region boundary
        reached, or the pipeline was flushed by a rollback): strikes can
        no longer corrupt values it produced."""
        self.last_write = None
        self.last_write_mask = None
        self.last_shared_write = None
        self.last_pred_write = None
        self.last_pred_write_mask = None

    # ------------------------------------------------------------------
    # Execution state
    # ------------------------------------------------------------------
    @property
    def pc(self) -> int:
        return self.stack[-1].pc

    @pc.setter
    def pc(self, value: int) -> None:
        self.stack[-1].pc = value

    @property
    def exited(self) -> np.ndarray:
        return self._exited

    @exited.setter
    def exited(self, value: np.ndarray) -> None:
        # ``~exited`` and the all-exited test are on the issue hot path;
        # exits are rare, so recompute both once per assignment instead
        # of per query.  (In-place mutation of the array bypasses this
        # cache — all simulator code assigns, as does WarpSnapshot.)
        self._exited = value
        self._not_exited = ~value
        self._finished = not bool(self._not_exited.any())

    @property
    def active_mask(self) -> np.ndarray:
        return self.stack[-1].mask & self._not_exited

    @property
    def finished(self) -> bool:
        return self._finished

    def next_instruction(self) -> Instruction:
        return self.kernel.instructions[self.pc]

    def deps_ready(self, inst: Instruction, cycle: int) -> bool:
        """Scoreboard check: sources ready and destination not in flight."""
        pending = self.pending
        if not pending:
            return True
        for reg in inst.read_regs():
            if pending.get(reg, 0) > cycle:
                return False
        for pred in inst.read_preds():
            if pending.get(pred, 0) > cycle:
                return False
        if inst.dst is not None and pending.get(inst.dst, 0) > cycle:
            return False
        return True

    def earliest_dep_cycle(self, inst: Instruction) -> int:
        """Cycle at which ``deps_ready`` will become true (for fast-forward)."""
        latest = self.wakeup_cycle
        for reg in inst.read_regs():
            latest = max(latest, self.pending.get(reg, 0))
        for pred in inst.read_preds():
            latest = max(latest, self.pending.get(pred, 0))
        if inst.dst is not None:
            latest = max(latest, self.pending.get(inst.dst, 0))
        return latest

    def retire_pending(self, cycle: int) -> None:
        """Drop scoreboard entries whose values are now available."""
        pending = self.pending
        if pending:
            for ready in pending.values():
                if ready <= cycle:
                    self.pending = {k: c for k, c in pending.items()
                                    if c > cycle}
                    return

    def mark_pending(self, dst, ready_cycle: int) -> None:
        if dst is not None:
            self.pending[dst] = ready_cycle
            self.version += 1

    def wake(self, cycle: int) -> None:
        """Set the earliest issue cycle and invalidate the ready cache."""
        self.wakeup_cycle = cycle
        self.version += 1

    # ------------------------------------------------------------------
    # Control flow
    # ------------------------------------------------------------------
    def advance(self) -> None:
        """Move to the next sequential instruction, reconverging if needed."""
        self.pc += 1
        self._maybe_reconverge()

    def _maybe_reconverge(self) -> None:
        while len(self.stack) > 1 and self.pc == self.stack[-1].reconv_pc:
            self.stack.pop()

    def take_branch(self, inst: Instruction, reconv_pc: int) -> None:
        """Resolve a branch (possibly divergent) and update the SIMT stack."""
        target = self.kernel.target_of(inst)
        active = self.active_mask
        if inst.guard is None:
            self.pc = target
            self._maybe_reconverge()
            return
        taken = guard_mask(inst, self.ctx, active)
        not_taken = active & ~taken
        if not not_taken.any():
            self.pc = target
            self._maybe_reconverge()
            return
        if not taken.any():
            self.advance()
            return
        # Divergence: current entry reconverges at reconv_pc; run the
        # taken path first, then the fall-through, then reconverge.
        # A path that starts *at* the reconvergence point is empty (an
        # if-without-else arm) — pushing it would execute the join point
        # with a partial mask, so those lanes simply wait in the outer
        # entry instead.
        fallthrough = self.pc + 1
        self.stack[-1].pc = reconv_pc
        if fallthrough != reconv_pc:
            self.stack.append(StackEntry(reconv_pc, fallthrough, not_taken))
        if target != reconv_pc:
            self.stack.append(StackEntry(reconv_pc, target, taken))
        self._maybe_reconverge()

    def exit_lanes(self, inst: Instruction) -> None:
        """Retire lanes reaching EXIT; unwind empty stack entries."""
        mask = guard_mask(inst, self.ctx, self.active_mask)
        self.exited = self.exited | mask
        if inst.guard is not None:
            self.advance()
        self._pop_empty()

    # ------------------------------------------------------------------
    # Plan-driven control flow (semantics identical to the reference
    # methods above; the branch target, reconvergence PC, and guard
    # policy come pre-resolved from the PlannedInst record instead of
    # being re-derived per dynamic issue).
    # ------------------------------------------------------------------
    def _planned_guard(self, rec, active: np.ndarray) -> np.ndarray:
        index = rec.guard_index
        if index is None:
            return active
        guard = self.ctx.preds[index]
        if rec.guard_sense:
            return active & guard
        return active & ~guard

    def take_branch_planned(self, rec) -> None:
        entry = self.stack[-1]
        target = rec.target
        if rec.guard_index is None:
            entry.pc = target
            self._maybe_reconverge()
            return
        active = entry.mask & self._not_exited
        taken = self._planned_guard(rec, active)
        not_taken = active & ~taken
        if not not_taken.any():
            self.stack[-1].pc = target
            self._maybe_reconverge()
            return
        if not taken.any():
            self.advance()
            return
        reconv_pc = rec.reconv_pc
        fallthrough = self.stack[-1].pc + 1
        self.stack[-1].pc = reconv_pc
        if fallthrough != reconv_pc:
            self.stack.append(StackEntry(reconv_pc, fallthrough, not_taken))
        if target != reconv_pc:
            self.stack.append(StackEntry(reconv_pc, target, taken))
        self._maybe_reconverge()

    def exit_lanes_planned(self, rec) -> None:
        active = self.stack[-1].mask & self._not_exited
        mask = self._planned_guard(rec, active)
        self.exited = self._exited | mask
        if rec.guard_index is not None:
            self.advance()
        self._pop_empty()

    def _pop_empty(self) -> None:
        while len(self.stack) > 1 and not self.active_mask.any():
            self.stack.pop()
            self._maybe_reconverge()

    def sanity_check(self) -> None:
        if not self.stack:
            raise SimError(f"warp {self.id} lost its SIMT stack")
        if len(self.stack) > 64:
            raise SimError(f"warp {self.id} SIMT stack overflow")

    # ------------------------------------------------------------------
    # Checkpoint support
    # ------------------------------------------------------------------
    def capture_state(self) -> dict:
        """Deep copy of every mutable field, as plain data keyed by
        scoreboard-operand tags instead of Reg/Pred objects.  The
        readiness memo (``version``/``ready_*``) is deliberately left
        out: it is derived state, rebuilt on demand after restore."""
        return {
            "state": self.state.value,
            "age": self.age,
            "regs": self.ctx.regs.copy(),
            "preds": self.ctx.preds.copy(),
            "stack": tuple((e.reconv_pc, e.pc, e.mask.copy())
                           for e in self.stack),
            "exited": self.exited.copy(),
            "pending": {_operand_tag(k): v for k, v in self.pending.items()},
            "pending_mem": {_operand_tag(k): v
                            for k, v in self.pending_mem.items()},
            "wakeup_cycle": self.wakeup_cycle,
            "insts_since_boundary": self.insts_since_boundary,
            "barrier_count": self.barrier_count,
            "last_write": None if self.last_write is None
                          else self.last_write.index,
            "last_write_mask": None if self.last_write_mask is None
                               else self.last_write_mask.copy(),
            "last_write_pc": self.last_write_pc,
            "last_shared_write": None if self.last_shared_write is None
                                 else np.array(self.last_shared_write),
            "last_pred_write": None if self.last_pred_write is None
                               else self.last_pred_write.index,
            "last_pred_write_mask": None if self.last_pred_write_mask is None
                                    else self.last_pred_write_mask.copy(),
            "last_pred_write_pc": self.last_pred_write_pc,
        }

    def restore_state(self, data: dict) -> None:
        self.state = WarpState(data["state"])
        self.age = data["age"]
        np.copyto(self.ctx.regs, data["regs"])
        np.copyto(self.ctx.preds, data["preds"])
        self.stack = [StackEntry(r, p, m.copy())
                      for r, p, m in data["stack"]]
        self.exited = data["exited"].copy()
        self.pending = {_operand_from_tag(tag): cycle
                        for tag, cycle in data["pending"].items()}
        self.pending_mem = {_operand_from_tag(tag): cycle
                            for tag, cycle in data.get("pending_mem", {}).items()}
        self.wakeup_cycle = data["wakeup_cycle"]
        self.insts_since_boundary = data["insts_since_boundary"]
        self.barrier_count = data["barrier_count"]
        lw = data["last_write"]
        self.last_write = None if lw is None else Reg(lw)
        lwm = data["last_write_mask"]
        self.last_write_mask = None if lwm is None else lwm.copy()
        self.last_write_pc = data["last_write_pc"]
        lsw = data["last_shared_write"]
        self.last_shared_write = None if lsw is None else np.array(lsw)
        lp = data["last_pred_write"]
        self.last_pred_write = None if lp is None else Pred(lp)
        lpm = data["last_pred_write_mask"]
        self.last_pred_write_mask = None if lpm is None else lpm.copy()
        self.last_pred_write_pc = data["last_pred_write_pc"]
        # Invalidate the readiness memo: it embeds pre-restore state.
        self.version += 1
        self.ready_version = -1
        self._pf = None

    def state_equals(self, data: dict, include_regs: bool = True) -> bool:
        """Exact equality against a :meth:`capture_state` snapshot,
        without capturing (no copies; short-circuits on the first
        differing field).  ``include_regs=False`` skips the general
        register file — the convergence monitor compares data at rest
        separately, under golden read-liveness.  ``pending_mem`` is
        excluded: its stale entries are execution-history bookkeeping
        that never affect architectural behaviour."""
        if (self.state.value != data["state"]
                or self.age != data["age"]
                or self.wakeup_cycle != data["wakeup_cycle"]
                or self.insts_since_boundary != data["insts_since_boundary"]
                or self.barrier_count != data["barrier_count"]
                or self.last_write_pc != data["last_write_pc"]
                or self.last_pred_write_pc != data["last_pred_write_pc"]):
            return False
        if (None if self.last_write is None
                else self.last_write.index) != data["last_write"]:
            return False
        if (None if self.last_pred_write is None
                else self.last_pred_write.index) != data["last_pred_write"]:
            return False
        stack = data["stack"]
        if len(self.stack) != len(stack):
            return False
        for entry, (reconv_pc, pc, mask) in zip(self.stack, stack):
            if (entry.reconv_pc != reconv_pc or entry.pc != pc
                    or not np.array_equal(entry.mask, mask)):
                return False
        if {_operand_tag(op): c
                for op, c in self.pending.items()} != data["pending"]:
            return False
        if not _optional_equal(self.last_write_mask,
                               data["last_write_mask"]):
            return False
        if not _optional_equal(self.last_shared_write,
                               data["last_shared_write"]):
            return False
        if not _optional_equal(self.last_pred_write_mask,
                               data["last_pred_write_mask"]):
            return False
        if not np.array_equal(self.exited, data["exited"]):
            return False
        if not np.array_equal(self.ctx.preds, data["preds"]):
            return False
        return (not include_regs
                or np.array_equal(self.ctx.regs, data["regs"]))


def _optional_equal(live, ref) -> bool:
    """Equality for None-able array fields of a warp snapshot."""
    if live is None or ref is None:
        return live is None and ref is None
    return np.array_equal(live, ref)


def _operand_tag(operand) -> tuple[str, int]:
    """Stable plain-data key for a scoreboard operand."""
    if isinstance(operand, Reg):
        return ("r", operand.index)
    if isinstance(operand, Pred):
        return ("p", operand.index)
    raise SimError(f"unsnapshotable scoreboard operand {operand!r}")


def _operand_from_tag(tag: tuple[str, int]):
    kind, index = tag
    return Reg(index) if kind == "r" else Pred(index)
