"""Streaming multiprocessor timing model.

Each SM holds resident thread blocks, per-scheduler warp pools, a shared
LSU, and an L1 cache.  A pluggable :class:`ResilienceRuntime` observes
region boundaries and controls verification descheduling — the null
runtime (baseline and compile-only schemes) treats boundary markers as
free, while Flame's runtime (``repro.core``) implements the RBQ/RPT
protocol on these hooks.
"""

from __future__ import annotations

from bisect import bisect_left
from math import gcd

import numpy as np

from ..arch import GpuConfig
from ..errors import SimError
from ..isa import FuClass, Instruction, Kernel, Op, Pred, Reg, Space
from .caches import make_cache
from .functional import MemAccess, execute, guard_mask
from .plan import ExecPlan, K_BAR, K_BRA, K_EXIT, K_VALUE, T_ATOMIC, T_SHARED
from .schedulers import WarpScheduler, make_scheduler
from .stats import STALL_CAUSES, SimStats
from .superblock import build_prefetch
from .warp import Warp, WarpState

#: Big sentinel for "no next event".
NEVER = 1 << 62

#: Attribution priority: when several stall causes hold simultaneously,
#: the lowest rank wins (see ``stats.STALL_CAUSES`` ordering).
_CAUSE_RANK = {cause: rank for rank, cause in enumerate(STALL_CAUSES)}
_NO_READY_RANK = _CAUSE_RANK["no_ready_warp"]

#: Trace thread id for SM-level events (stall spans, block dispatch):
#: warp ids are globally small, so this cannot collide within a pid.
CONTROL_TID = 1_000_000


class ResilienceRuntime:
    """Hook interface; the default implementation is the no-op baseline.

    ``on_reach_boundary`` is called whenever a warp's PC lands on an RB
    marker (after any issue or control transfer).  Returning without
    changing the warp state means the marker was consumed for free.
    """

    needs_boundaries = False

    #: Stall cause booked for warps parked in ``IN_RBQ`` (drawn from
    #: ``STALL_CAUSES``); schemes that park warps for a different kind of
    #: end-of-region check (DMR compare, ABFT checksum) override this so
    #: the ledger attributes their verification latency distinctly.
    verify_cause = "verify_wait"

    def bind(self, sm: "Sm") -> "ResilienceRuntime":
        """Create/attach the per-SM runtime state.  Returns the instance
        serving this SM (the null runtime is stateless and shared)."""
        return self

    def on_warp_attached(self, sm: "Sm", warp: Warp) -> None:
        """A warp became resident (block dispatch)."""

    def on_warp_detached(self, sm: "Sm", warp: Warp) -> None:
        """A warp's block retired."""

    def on_reach_boundary(self, sm: "Sm", warp: Warp, cycle: int) -> None:
        sm.note_region_end(warp)
        warp.advance()
        sm.skip_markers(warp, cycle)

    def on_warp_exit(self, sm: "Sm", warp: Warp, cycle: int) -> bool:
        """Return True if the warp is fully done (no deferred verification)."""
        sm.note_region_end(warp)
        return True

    def tick(self, sm: "Sm", cycle: int) -> None:
        """Per-cycle maintenance (RBQ conveyor movement)."""

    def stall_cause(self, sm: "Sm", cycle: int) -> str | None:
        """SM-level stall cause that overrides per-warp attribution
        (e.g. an in-progress rollback window), or None to defer to the
        per-warp classification."""
        return None

    def next_event(self, sm: "Sm") -> int:
        return NEVER

    def capture_state(self, sm: "Sm"):
        """Plain-data snapshot of runtime state (None = stateless)."""
        return None

    def restore_state(self, state, sm: "Sm", warp_map: dict) -> None:
        """Rebuild runtime state from :meth:`capture_state` data."""

    def state_equals(self, sm: "Sm", state) -> bool:
        """Convergence-comparison equality against :meth:`capture_state`
        data.  Stateful runtimes override this; they may exclude pure
        observers that provably cannot influence the continuation at a
        quiescent boundary (see the flame runtime's rollback window)."""
        return state is None


NULL_RESILIENCE = ResilienceRuntime()


class ThreadBlock:
    """A resident thread block: shared memory, barrier state, warp roster."""

    def __init__(self, block_id: int, ctaid: tuple[int, int],
                 num_threads: int, first_warp_id: int,
                 shared_words: int) -> None:
        self.id = block_id
        self.ctaid = ctaid
        self.num_threads = num_threads
        self.first_warp_id = first_warp_id
        self.shared = np.zeros(max(shared_words, 1), dtype=np.float64)
        self.warps: list[Warp] = []
        self.at_barrier: int = 0
        #: Warps not yet DONE; maintained by ``Sm`` so block retirement
        #: is a counter decrement instead of a per-cycle all-warps scan.
        self.live_warps: int = 0

    @property
    def done(self) -> bool:
        return all(w.state is WarpState.DONE for w in self.warps)


class Sm:
    """One streaming multiprocessor."""

    def __init__(self, sm_id: int, config: GpuConfig, l2,
                 resilience: ResilienceRuntime = NULL_RESILIENCE) -> None:
        self.id = sm_id
        self.config = config
        self.l1 = make_cache(config.l1, name=f"sm{sm_id}.l1")
        self.l2 = l2
        self.schedulers: list[WarpScheduler] = []
        self.scheduler_name = "GTO"
        self.blocks: list[ThreadBlock] = []
        self.warps: list[Warp] = []
        self.stats = SimStats()
        self.resilience = resilience.bind(self)
        self.global_mem: np.ndarray | None = None
        self.kernel: Kernel | None = None
        self.reconv: dict[int, int] = {}
        self.plan: ExecPlan | None = None
        self._lsu_free_at = 0
        self._next_sched = 0
        #: Blocks whose live-warp counter hit zero (drained by Gpu.launch).
        self._done_blocks: list[ThreadBlock] = []
        #: Golden-run memory access tracker (set by Gpu.launch when a
        #: checkpoint recorder is attached; None on ordinary runs).
        self.liveness = None
        # Superblock batching (repro.sim.superblock).  ``_value_epoch``
        # bumps whenever the fault injector acts anywhere on the GPU,
        # orphaning every outstanding value prefetch; ``_batching`` and
        # ``_scripts`` are launch-level enables set by ``Gpu.launch``;
        # ``_script_cap`` is a callable giving the next observer event
        # (strike, checkpoint capture, convergence check) scripts must
        # not span, or None when no observer is attached.
        self._value_epoch = 0
        self._batching = False
        self._scripts = False
        self._script_cap = None
        # Memory-aware scripted windows (``_open_window``): a launch-level
        # enable set by ``Gpu.launch`` (GTO + null resilience + no
        # recorder + single busy SM), the launch cycle budget windows
        # must not outrun, and the committed per-cycle accounting of the
        # active window — a list of contiguous ``(start, end, cause,
        # culprit)`` segments (``cause None`` = every cycle issues) that
        # ``_consume_window`` replays cycle-indexed as ``tick`` and the
        # fast-forward machinery ask for them.
        self._windows = False
        self._win_budget = NEVER
        self._win_segs = None
        self._win_i = 0
        #: Plan-time memory signatures (``plan.analyze_mem_strides``):
        #: {pc: per-lane address stride} for timed-mem records with a
        #: proven affine pattern, resolved per launch geometry by
        #: ``Gpu.launch``.  ``_time_memory_fast`` turns a proven stride
        #: into closed-form coalescing/bank-degree answers after a
        #: scalar endpoint verification (which also rejects the one
        #: pattern static affinity cannot see: int64 truncation of a
        #: fractional base crossing zero).
        self._mem_sigs = None
        #: Event tracer (``repro.obs.Tracer``) or None.  The None case
        #: costs a single truthiness check per tick: the traced tick is
        #: a separate method, so the hot path stays branch-free.
        self.tracer = None
        #: Stall cause recorded at the most recent idle cycle, consumed
        #: by ``account_stall_skip`` when the event-driven fast-forward
        #: elides the following cycles (the cause provably holds for
        #: the whole skipped span: no machine state changes while no SM
        #: issues, and the jump lands on the earliest next event).
        self._stall_cause: str | None = None
        self._stall_warp = -1
        # Open stall span for the tracer (start cycle + cause).
        self._trace_stall_cause: str | None = None
        self._trace_stall_warp = -1
        self._trace_stall_start = 0

    # ------------------------------------------------------------------
    # Launch-time setup
    # ------------------------------------------------------------------
    def configure(self, kernel: Kernel, global_mem: np.ndarray,
                  reconv: dict[int, int], scheduler: str,
                  plan: ExecPlan | None = None) -> None:
        self.kernel = kernel
        self.global_mem = global_mem
        self.reconv = reconv
        self.plan = plan
        self.scheduler_name = scheduler
        self.schedulers = [make_scheduler(scheduler)
                           for _ in range(self.config.num_schedulers)]

    def add_block(self, block: ThreadBlock, cycle: int) -> None:
        self.blocks.append(block)
        block.live_warps = len(block.warps)
        for warp in block.warps:
            warp.wake(cycle)
            self.warps.append(warp)
            scheduler = self.schedulers[self._next_sched]
            self._next_sched = (self._next_sched + 1) % len(self.schedulers)
            scheduler.attach(warp)
            warp.scheduler = scheduler
            warp.insts_since_boundary = 0
            self.resilience.on_warp_attached(self, warp)
            self.skip_markers(warp, cycle)
        self.stats.blocks_launched += 1
        self.stats.warps_launched += len(block.warps)
        if self.tracer is not None:
            self.tracer.event("block_dispatch", cycle, self.id, CONTROL_TID,
                              {"block": block.id, "ctaid": list(block.ctaid),
                               "warps": len(block.warps)})

    def remove_block(self, block: ThreadBlock, cycle: int = 0) -> None:
        # Swap-pop: block order is unobservable (dispatch and retirement
        # only need membership), so avoid the O(blocks) list.remove scan.
        blocks = self.blocks
        index = blocks.index(block)
        last = blocks.pop()
        if last is not block:
            blocks[index] = last
        for warp in block.warps:
            warp.scheduler.detach(warp)
            self.resilience.on_warp_detached(self, warp)
        # One order-preserving rebuild instead of per-warp list.remove:
        # fault-site candidate selection iterates ``sm.warps``, so the
        # surviving warps must keep their exact relative order.
        self.warps = [w for w in self.warps if w.block is not block]
        if self.tracer is not None:
            self.tracer.event("block_retire", cycle, self.id, CONTROL_TID,
                              {"block": block.id})

    def _note_warp_done(self, warp: Warp) -> None:
        """A warp reached DONE: decrement its block's live-warp counter."""
        block = warp.block
        block.live_warps -= 1
        if block.live_warps == 0:
            self._done_blocks.append(block)

    def take_done_blocks(self) -> list[ThreadBlock]:
        """Drain (and clear) the list of fully-retired blocks."""
        done = self._done_blocks
        if done:
            self._done_blocks = []
        return done

    @property
    def resident_blocks(self) -> int:
        return len(self.blocks)

    @property
    def busy(self) -> bool:
        return bool(self.blocks)

    # ------------------------------------------------------------------
    # Checkpoint support
    # ------------------------------------------------------------------
    def capture_state(self) -> dict:
        """Deep plain-data snapshot of all per-SM mutable state.  Blocks
        and warps are referenced by id (they are re-materialized
        deterministically on restore); the execution plan and kernel are
        deliberately absent — they are launch configuration, re-attached
        by ``configure`` on the restore target."""
        return {
            "l1": self.l1.capture_state(),
            "stats": self.stats.clone(),
            "lsu_free_at": self._lsu_free_at,
            "next_sched": self._next_sched,
            "blocks": tuple((b.id, b.shared.copy(), b.at_barrier,
                             b.live_warps) for b in self.blocks),
            "warp_order": tuple(w.id for w in self.warps),
            "warps": {w.id: w.capture_state() for w in self.warps},
            "schedulers": tuple(s.capture_state() for s in self.schedulers),
            "done_blocks": tuple(b.id for b in self._done_blocks),
            "resilience": self.resilience.capture_state(self),
        }

    def restore_state(self, state: dict, block_map: dict,
                      warp_map: dict) -> None:
        """Overlay checkpoint state onto a freshly configured SM whose
        blocks/warps were re-created by the launch setup.  The
        checkpoint itself is never mutated (every restore copies), so
        one golden checkpoint can seed any number of trials."""
        self.l1.restore_state(state["l1"])
        self.stats = state["stats"].clone()
        self._lsu_free_at = state["lsu_free_at"]
        self._next_sched = state["next_sched"]
        self.blocks = []
        for bid, shared, at_barrier, live_warps in state["blocks"]:
            block = block_map[bid]
            np.copyto(block.shared, shared)
            block.at_barrier = at_barrier
            block.live_warps = live_warps
            self.blocks.append(block)
        self.warps = [warp_map[wid] for wid in state["warp_order"]]
        for wid, wdata in state["warps"].items():
            warp_map[wid].restore_state(wdata)
        for scheduler, sstate in zip(self.schedulers, state["schedulers"]):
            scheduler.restore_state(sstate, warp_map)
        self._done_blocks = [block_map[bid] for bid in state["done_blocks"]]
        if state["resilience"] is not None:
            self.resilience.restore_state(state["resilience"], self, warp_map)
        # Per-cycle stall transients describe the cycle being simulated
        # when the snapshot was taken, not the restore target's.
        self._stall_cause = None
        self._trace_stall_cause = None
        # An active memory window scripts *future* cycles of the run the
        # snapshot came from; the restore target re-derives its own.
        self._win_segs = None
        self._win_i = 0

    def state_equals(self, state: dict, include_data: bool = True) -> bool:
        """Exact equality against a :meth:`capture_state` snapshot,
        without capturing: every field is compared in place and the
        walk short-circuits on the first difference.

        Two deliberate exclusions give this convergence-comparison
        semantics: the stats clone is a pure observer (its counters
        cannot influence the continuation), and the resilience
        runtime's equality is delegated to
        :meth:`ResilienceRuntime.state_equals` (which excludes the
        spent rollback window).  ``include_data=False`` additionally
        skips data at rest — per-block shared memory and warp register
        files — which the convergence monitor judges separately under
        golden read-liveness.
        """
        if (self._lsu_free_at != state["lsu_free_at"]
                or self._next_sched != state["next_sched"]):
            return False
        if tuple(w.id for w in self.warps) != state["warp_order"]:
            return False
        if tuple(b.id for b in self._done_blocks) != state["done_blocks"]:
            return False
        blocks = state["blocks"]
        if len(self.blocks) != len(blocks):
            return False
        for block, (bid, shared, at_barrier, live_warps) in zip(self.blocks,
                                                                blocks):
            if (block.id != bid or block.at_barrier != at_barrier
                    or block.live_warps != live_warps):
                return False
            if include_data and not np.array_equal(block.shared, shared):
                return False
        for scheduler, sched_state in zip(self.schedulers,
                                          state["schedulers"]):
            if not scheduler.state_equals(sched_state):
                return False
        warps = state["warps"]
        if len(self.warps) != len(warps):
            return False
        for warp in self.warps:
            if not warp.state_equals(warps[warp.id],
                                     include_regs=include_data):
                return False
        if not self.l1.state_equals(state["l1"]):
            return False
        return self.resilience.state_equals(self, state["resilience"])

    # ------------------------------------------------------------------
    # Region accounting
    # ------------------------------------------------------------------
    def note_region_end(self, warp: Warp) -> None:
        """Record region-size statistics when a warp crosses a boundary."""
        self.stats.verified_regions += 1
        self.stats.region_instructions += warp.insts_since_boundary
        if self.tracer is not None:
            self.tracer.event("region_end", self.tracer.now, self.id,
                              warp.id,
                              {"instructions": warp.insts_since_boundary})
        warp.insts_since_boundary = 0
        # Once descheduled, the warp has nothing in flight: strikes can
        # no longer corrupt its (ECC-protected, at-rest) registers,
        # predicates, or the shared-memory words it stored.
        warp.clear_inflight()

    def skip_markers(self, warp: Warp, cycle: int) -> None:
        """Deliver boundary markers at the warp's PC to the resilience
        runtime; in the null runtime they are consumed for free."""
        plan = self.plan
        if plan is not None:
            rb_flags = plan.rb_flags
            while (warp.state is WarpState.ACTIVE and not warp._finished
                   and rb_flags[warp.stack[-1].pc]):
                self.stats.boundary_instructions += 1
                pc_before = warp.stack[-1].pc
                self.resilience.on_reach_boundary(self, warp, cycle)
                if (warp.state is not WarpState.ACTIVE
                        or warp.stack[-1].pc == pc_before):
                    break
            return
        while (warp.state is WarpState.ACTIVE and not warp.finished
               and warp.next_instruction().op is Op.RB):
            self.stats.boundary_instructions += 1
            pc_before = warp.pc
            self.resilience.on_reach_boundary(self, warp, cycle)
            if warp.state is not WarpState.ACTIVE or warp.pc == pc_before:
                break

    # ------------------------------------------------------------------
    # Per-cycle operation
    # ------------------------------------------------------------------
    def tick(self, cycle: int) -> int:
        """Run one cycle; returns the number of instructions issued."""
        self.resilience.tick(self, cycle)
        if self.plan is None:
            issuable, issue = self._issuable, self._issue
        else:
            issuable, issue = self._issuable_fast, self._issue_fast
        if self.tracer is not None:
            return self._tick_traced(cycle, issuable, issue, self.tracer)
        issued = 0
        fast = self.plan is not None
        if fast:
            if self._win_segs is not None:
                booked = self._consume_window(cycle)
                if booked >= 0:
                    return booked
            if self._windows and self.warps:
                clear = True
                for scheduler in self.schedulers:
                    if scheduler.script_until >= cycle:
                        clear = False
                        break
                if clear and self._open_window(cycle):
                    return self._consume_window(cycle)
        for scheduler in self.schedulers:
            if scheduler.script_until >= cycle:
                # This slot's current warp already had its issues for
                # this cycle bulk-applied by a timing script; it counts
                # as an issue without re-running pick (GTO provably
                # re-picks the same warp throughout the script window).
                issued += 1
                continue
            if fast and scheduler.none_until > cycle:
                # A recent pick failed and nothing that could make a
                # managed warp ready has happened since (warp versions
                # and the LSU horizon are unchanged): re-picking would
                # fail identically, so skip it.
                vsum = 0
                for w in scheduler.warps:
                    vsum += w.version
                if (vsum == scheduler.none_vstamp
                        and self._lsu_free_at == scheduler.none_lsu):
                    continue
                scheduler.none_until = -1
            warp = scheduler.pick(issuable, cycle)
            if warp is None:
                if fast and scheduler.pick_pure_on_fail:
                    self._memo_failed_pick(scheduler, cycle)
                continue
            issue(warp, cycle)
            issued += 1
        if self.busy:
            stats = self.stats
            stats.active_cycles += 1
            if issued:
                stats.issue_cycles += 1
                self._stall_cause = None
            else:
                stats.idle_cycles += 1
                cause, culprit = self._classify_stall(cycle)
                stats.count_stall(cause, culprit)
                self._stall_cause = cause
                self._stall_warp = culprit
        return issued

    def _tick_traced(self, cycle: int, issuable, issue, tracer) -> int:
        """``tick`` with event emission; kept out of line so the
        untraced hot path pays only the tracer truthiness check."""
        issued = 0
        plan = self.plan
        for scheduler in self.schedulers:
            warp = scheduler.pick(issuable, cycle)
            if warp is None:
                continue
            pc = warp.stack[-1].pc
            retiring = warp.finished
            issue(warp, cycle)
            issued += 1
            if retiring:
                tracer.event("warp_retire", cycle, self.id, warp.id)
            else:
                if plan is not None:
                    label = plan.records[pc].label
                else:
                    label = self.kernel.instructions[pc].op.value
                tracer.event("issue", cycle, self.id, warp.id,
                             {"pc": pc, "op": label})
        if self.busy:
            stats = self.stats
            stats.active_cycles += 1
            if issued:
                stats.issue_cycles += 1
                self._stall_cause = None
                self.trace_flush(cycle)
            else:
                stats.idle_cycles += 1
                cause, culprit = self._classify_stall(cycle)
                stats.count_stall(cause, culprit)
                self._stall_cause = cause
                self._stall_warp = culprit
                if self._trace_stall_cause != cause:
                    self.trace_flush(cycle)
                    self._trace_stall_cause = cause
                    self._trace_stall_warp = culprit
                    self._trace_stall_start = cycle
        else:
            self._stall_cause = None
            self.trace_flush(cycle)
        return issued

    def trace_flush(self, cycle: int) -> None:
        """Close the open stall span (if any) as a Chrome complete
        event; called when issue resumes, the cause changes, the SM
        drains, or the launch ends."""
        cause = self._trace_stall_cause
        if cause is None:
            return
        self._trace_stall_cause = None
        if self.tracer is not None:
            start = self._trace_stall_start
            self.tracer.event("stall", start, self.id, CONTROL_TID,
                              {"cause": cause,
                               "warp": self._trace_stall_warp},
                              ph="X", dur=max(cycle - start, 1))

    # ------------------------------------------------------------------
    # Stall-cause attribution
    # ------------------------------------------------------------------
    def account_stall_skip(self, skipped: int) -> None:
        """Attribute cycles elided by the event-driven fast-forward.

        The fast-forward fires only when no SM issued, so every busy SM
        just recorded a stall cause; that cause holds for the entire
        skipped span because no machine state changes while nothing
        issues and the jump target is the earliest next event on any SM.
        """
        if skipped <= 0 or not self.busy:
            return
        stats = self.stats
        stats.active_cycles += skipped
        stats.idle_cycles += skipped
        if self._stall_cause is not None:
            stats.count_stall(self._stall_cause, self._stall_warp, skipped)

    def _classify_stall(self, cycle: int) -> tuple[str, int]:
        """Why this busy SM failed to issue at ``cycle``: the
        highest-priority cause across resident warps, plus the id of the
        first warp exhibiting it (-1 when the cause is SM-level or the
        catch-all)."""
        runtime_cause = self.resilience.stall_cause(self, cycle)
        if runtime_cause is not None:
            return runtime_cause, -1
        best_cause = "no_ready_warp"
        best_rank = _NO_READY_RANK
        best_warp = -1
        for warp in self.warps:
            cause = self._warp_stall_cause(warp, cycle)
            if cause is None:
                continue
            rank = _CAUSE_RANK[cause]
            if rank < best_rank:
                best_rank = rank
                best_cause = cause
                best_warp = warp.id
        return best_cause, best_warp

    def _warp_stall_cause(self, warp: Warp, cycle: int) -> str | None:
        """This warp's reason for not issuing, or None (DONE warps).

        Computed from the instruction's operand set directly — never
        from the fast-path ready cache — so the plan-driven and
        reference paths attribute identically.
        """
        state = warp.state
        if state is WarpState.IN_RBQ:
            return self.resilience.verify_cause
        if state is WarpState.AT_BARRIER:
            return "barrier"
        if state is not WarpState.ACTIVE:
            return None
        if warp._finished:
            # Issuable as soon as its wakeup passes (retirement slot).
            return "no_ready_warp"
        if self.plan is not None:
            rec = self.plan.records[warp.stack[-1].pc]
            score_ops = rec.score_ops
            timed = rec.is_timed_mem
        else:
            inst = warp.next_instruction()
            score_ops = list(inst.read_regs()) + list(inst.read_preds())
            if inst.dst is not None:
                score_ops.append(inst.dst)
            timed = (inst.fu is FuClass.MEM
                     and inst.space is not Space.PARAM)
        pending = warp.pending
        blocker = None
        blocked_at = cycle
        if pending:
            get = pending.get
            for operand in score_ops:
                at = get(operand, 0)
                if at > blocked_at:
                    blocked_at = at
                    blocker = operand
        if blocker is not None:
            # A scoreboard entry is an in-flight *load* exactly when the
            # memory-side ledger agrees on the ready cycle (see
            # Warp.pending_mem for why stale entries can never match).
            if warp.pending_mem.get(blocker) == pending[blocker]:
                return "memory_latency"
            return "scoreboard_raw"
        if timed and self._lsu_free_at > cycle:
            return "memory_latency"
        return "no_ready_warp"

    def _issuable(self, warp: Warp, cycle: int) -> bool:
        if warp.state is not WarpState.ACTIVE or warp.wakeup_cycle > cycle:
            return False
        if warp.finished:
            return True  # issue slot used to retire the warp
        inst = warp.next_instruction()
        if inst.fu is FuClass.MEM and inst.space is not Space.PARAM \
                and self._lsu_free_at > cycle:
            return False
        return warp.deps_ready(inst, cycle)

    def _latency(self, fu: FuClass) -> int:
        config = self.config
        if fu is FuClass.ALU:
            return config.alu_latency
        if fu is FuClass.MUL:
            return config.mul_latency
        if fu is FuClass.SFU:
            return config.sfu_latency
        return config.alu_latency

    def _issuable_fast(self, warp: Warp, cycle: int) -> bool:
        """Plan-driven ``_issuable``: no isinstance chains, no per-issue
        tuple construction — the scoreboard operand set, LSU usage, and
        FU class come precomputed from the dispatch record.

        Shares the version-validated ready cache with ``next_event``: a
        stalled warp rescans its scoreboard once per state change rather
        than once per scheduler pick.  A cached value that embeds a
        since-expired scoreboard entry is at most that entry's expiry
        cycle, so ``ready_cache > cycle`` agrees with a fresh scan."""
        if warp.state is not WarpState.ACTIVE or warp.wakeup_cycle > cycle:
            return False
        if warp._finished:
            return True  # issue slot used to retire the warp
        if warp.ready_version != warp.version:
            rec = self.plan.records[warp.stack[-1].pc]
            ready = warp.wakeup_cycle
            pending = warp.pending
            if pending:
                get = pending.get
                for operand in rec.score_ops:
                    at = get(operand, 0)
                    if at > ready:
                        ready = at
            warp.ready_cache = ready
            warp.ready_timed = rec.is_timed_mem
            warp.ready_version = warp.version
        if warp.ready_cache > cycle:
            return False
        if warp.ready_timed and self._lsu_free_at > cycle:
            return False
        return True

    def _memo_failed_pick(self, scheduler, cycle: int) -> None:
        """Record why a pick failed: the earliest cycle any managed warp
        could become issuable, plus a validation stamp.

        Sound because every path that makes a warp issuable earlier than
        this bound also bumps its ``version`` (issue prologs, ``wake``,
        ``mark_pending``, state transitions back to ACTIVE, snapshot
        restores) or raises ``_lsu_free_at`` — both covered by the
        stamp, and versions only ever increase so the sum cannot alias.
        Non-ACTIVE warps need no bound: their return to ACTIVE always
        goes through ``wake``.  The failed pick just scanned every warp
        with ``_issuable_fast``, so ready caches of awake unfinished
        warps are fresh; warps still before their wakeup are bounded by
        ``wakeup_cycle`` itself.
        """
        best = 1 << 60
        vsum = 0
        lsu = self._lsu_free_at
        for w in scheduler.warps:
            vsum += w.version
            if w.state is not WarpState.ACTIVE:
                continue
            if w._finished:
                ready = w.wakeup_cycle
            elif w.ready_version == w.version:
                ready = w.ready_cache
                if w.ready_timed and lsu > ready:
                    ready = lsu
            else:
                ready = w.wakeup_cycle
            if ready < best:
                best = ready
        scheduler.none_until = best
        scheduler.none_vstamp = vsum
        scheduler.none_lsu = lsu

    # ------------------------------------------------------------------
    # Memory-aware scripted windows
    # ------------------------------------------------------------------
    def _open_window(self, cycle: int) -> bool:
        """Simulate the whole SM forward from ``cycle`` in one flat loop
        and record per-cycle accounting as contiguous segments.

        Soundness (why bulk-simulating is byte-identical to per-cycle
        ticks — see EXPERIMENTS.md for the full argument):

        * Both schedulers run in issue order each cycle with the exact
          GTO pick semantics, including ``_current`` turning None on a
          failed pick, so every pick — and therefore every LSU and cache
          access order — matches the live machine.
        * The window stops *before* any cycle at which a barrier, exit,
          or finished-warp retire slot could issue (those records never
          use the LSU, so their issuability is known at cycle top), and
          strictly before the next observer event (strike, checkpoint,
          convergence check) and the launch budget.  Everything that
          remains is straight-line value/branch execution whose
          intermediate cycles nothing can observe.
        * Gap cycles are booked with one stall classification taken at
          the gap's first cycle — the same cause the live machine's
          idle-elision/fast-forward path extends over the whole gap.
        * Windows always end on an issue cycle (trailing gaps are
          discarded un-booked): the committed machine state at the
          window end is exactly the live state, so post-window stall
          classification falls to the normal machinery unchanged.

        Returns True when a window was committed (machine state has
        advanced to the window end; ``_win_segs`` holds the accounting).
        A failed open mutates nothing.
        """
        limit = self._win_budget
        cap = self._script_cap
        if cap is not None:
            horizon = cap(cycle) - 1
            if horizon < limit:
                limit = horizon
        if limit < cycle:
            return False
        plan = self.plan
        records = plan.records
        rb_flags = plan.rb_flags
        mem = self.global_mem
        stats = self.stats
        schedulers = self.schedulers
        nsched = len(schedulers)
        ACTIVE = WarpState.ACTIVE

        # Earliest-ready memo, valid in-window: score_ops only ever name
        # the warp's own registers, so a warp's ready cycle changes only
        # when it issues (entry dropped there).  The LSU horizon is
        # checked at pick time, never embedded.
        rcache: dict[Warp, tuple[int, bool]] = {}

        def ready_of(w):
            entry = rcache.get(w)
            if entry is None:
                rec = records[w.stack[-1].pc]
                r = w.wakeup_cycle
                pending = w.pending
                if pending:
                    get = pending.get
                    for operand in rec.score_ops:
                        at = get(operand, 0)
                        if at > r:
                            r = at
                entry = (r, rec.is_timed_mem)
                rcache[w] = entry
            return entry

        # Warps whose next issue would end the window: at a BAR or EXIT
        # record, or finished (their next issue slot is the retirement).
        stoppers = set()
        for w in self.warps:
            if w.state is ACTIVE and (w._finished or records[
                    w.stack[-1].pc].kind >= K_BAR):
                stoppers.add(w)

        # The live GTO pick treats a detached ``_current`` as absent;
        # membership cannot change in-window, so validate once.
        cur = []
        for sched in schedulers:
            w = sched._current
            cur.append(w if w is not None and w in sched.warps else None)

        # Issue execution below is ``_issue_fast`` inlined and trimmed
        # for the window invariants: no per-issue ``wake`` version bump
        # or ``retire_pending`` (both provably deferrable to commit),
        # stats accumulated per-pc and booked once, scripts bypassed
        # (the loop itself owns cycle accounting) — but the cross-warp
        # value-prefetch discipline is kept intact, epoch/pc validation
        # included, so every value lands exactly as the live path's.
        epoch = self._value_epoch
        batching = self._batching and self.liveness is None
        sb_len = plan.sb_len
        superblock_info = plan.superblock_info
        warps_all = self.warps
        icounts = [0] * len(records)
        issued_at: dict[Warp, int] = {}
        sb_exec = sb_insts = inval = no_peer = 0
        segs = []
        dense_start = -1
        issues = 0
        c = cycle
        while c <= limit:
            stop = False
            for w in stoppers:
                if w.wakeup_cycle <= c and (w._finished
                                            or ready_of(w)[0] <= c):
                    stop = True
                    break
            if stop:
                break
            nissued = 0
            for k in range(nsched):
                sched = schedulers[k]
                pick = cur[k]
                if pick is not None:
                    if (pick.state is not ACTIVE or pick._finished
                            or pick.wakeup_cycle > c):
                        pick = None
                    else:
                        r, timed = ready_of(pick)
                        if r > c or (timed and self._lsu_free_at > c):
                            pick = None
                if pick is None:
                    for cand in sched.warps:
                        if (cand.state is not ACTIVE or cand._finished
                                or cand.wakeup_cycle > c):
                            continue
                        r, timed = ready_of(cand)
                        if r <= c and not (timed
                                           and self._lsu_free_at > c):
                            pick = cand
                            break
                    cur[k] = pick
                if pick is None:
                    continue
                nissued += 1
                pc = pick.stack[-1].pc
                rec = records[pc]
                pick.wakeup_cycle = c + 1
                pick.insts_since_boundary += 1
                icounts[pc] += 1
                if rec.kind == K_VALUE:
                    pf = pick._pf
                    if pf is not None and (pf.epoch != epoch
                                           or pc != pf.pc0 + pick._pf_j):
                        pick._pf = pf = None
                        inval += 1
                    if pf is None and batching and sb_len[pc] > 1:
                        group = [w for w in warps_all if not w._finished
                                 and w.stack[-1].pc == pc]
                        if len(group) > 1:
                            build_prefetch(plan, superblock_info(pc),
                                           group, epoch)
                            pf = pick._pf
                            sb_exec += 1
                        else:
                            no_peer += 1
                    if pf is not None:
                        j = pick._pf_j
                        i = pick._pf_i
                        out = pf.outs[j]
                        ctx = pick.ctx
                        if out is not None:
                            if rec.dst_is_pred:
                                ctx.preds[rec.dst_index][...] = out[i]
                            else:
                                ctx.regs[rec.dst_index][...] = out[i]
                        if rec.track_reg_write:
                            pick.last_write = rec.dst
                            pick.last_write_pc = pc
                            pick.last_write_mask = pf.masks[j][i]
                        elif rec.track_pred_write:
                            pick.last_pred_write = rec.dst
                            pick.last_pred_write_pc = pc
                            pick.last_pred_write_mask = pf.masks[j][i]
                        if rec.dst is not None:
                            pick.pending[rec.dst] = c + rec.latency
                        if j + 1 < pf.n:
                            pick._pf_j = j + 1
                        else:
                            pick._pf = None
                        sb_insts += 1
                        pick.advance()
                    else:
                        ctx = pick.ctx
                        active = pick.stack[-1].mask & pick._not_exited
                        mask = rec.guard(ctx, active)
                        access = rec.run(ctx, mask, mem,
                                         pick.block.shared)
                        if rec.track_reg_write:
                            pick.last_write = rec.dst
                            pick.last_write_pc = pc
                            pick.last_write_mask = mask
                        elif rec.track_pred_write:
                            pick.last_pred_write = rec.dst
                            pick.last_pred_write_pc = pc
                            pick.last_pred_write_mask = (
                                rec.guard(ctx, active)
                                if rec.guard_recheck else mask)
                        if rec.track_shared_store and access is not None:
                            pick.last_shared_write = access.addresses
                        if rec.is_timed_mem:
                            self._time_memory_fast(pick, rec, access, c)
                        elif rec.dst is not None:
                            pick.pending[rec.dst] = c + rec.latency
                        pick.advance()
                else:  # K_BRA (BAR/EXIT/retire slots stop the window)
                    pick.take_branch_planned(rec)
                npc = pick.stack[-1].pc
                if rb_flags[npc]:
                    self.skip_markers(pick, c)
                    npc = pick.stack[-1].pc
                rcache.pop(pick, None)
                issued_at[pick] = c
                if pick._finished or records[npc].kind >= K_BAR:
                    stoppers.add(pick)
                else:
                    stoppers.discard(pick)
            if nissued:
                if dense_start < 0:
                    dense_start = c
                issues += nissued
                c += 1
                continue
            # Gap: close the dense run, classify the stall once (the
            # cause provably holds through the gap — exactly what the
            # live fast-forward books), and skip to the next ready
            # cycle.
            if dense_start >= 0:
                segs.append((dense_start, c - 1, None, -1))
                dense_start = -1
            lsu = self._lsu_free_at
            nxt = NEVER
            for w in warps_all:
                if w.state is not ACTIVE:
                    continue
                if w._finished:
                    r = w.wakeup_cycle
                else:
                    r, timed = ready_of(w)
                    if timed and lsu > r:
                        r = lsu
                if r < nxt:
                    nxt = r
            if nxt > limit or nxt >= NEVER:
                break
            if nxt <= c:  # unreachable (nothing issuable at c)
                nxt = c + 1
            cause, culprit = self._classify_stall(c)
            segs.append((c, nxt - 1, cause, culprit))
            c = nxt
        if dense_start >= 0:
            segs.append((dense_start, c - 1, None, -1))
        # Trailing gaps are never booked: the committed state at the
        # last issue cycle is the exact live state, so the normal
        # machinery re-derives those stalls identically.
        while segs and segs[-1][2] is not None:
            segs.pop()
        if not segs:
            return False
        for w, t in issued_at.items():
            # One retire at the warp's last issue replaces the per-issue
            # retires: both leave exactly the pending entries whose
            # ready cycle exceeds that final cycle.  The version bump
            # invalidates every scheduler/ready memo at once.
            w.retire_pending(t)
            w.version += 1
        for k in range(nsched):
            schedulers[k]._current = cur[k]
        for pc, n in enumerate(icounts):
            if n:
                rec = records[pc]
                stats.instructions += n
                stats.by_fu[rec.fu] += n
                if rec.shadow:
                    stats.shadow_instructions += n
                if rec.ckpt:
                    stats.ckpt_instructions += n
        stats.superblocks_executed += sb_exec
        stats.superblock_insts += sb_insts
        if inval or no_peer:
            fb = stats.superblock_fallbacks
            if inval:
                fb["invalidated"] = fb.get("invalidated", 0) + inval
            if no_peer:
                fb["no_peer"] = fb.get("no_peer", 0) + no_peer
        self._win_segs = segs
        self._win_i = 0
        stats.mem_windows_executed += 1
        stats.mem_window_insts += issues
        return True

    def _consume_window(self, cycle: int) -> int:
        """Book ``cycle`` from the active window's segment accounting;
        returns the issue count for ``tick`` (1 dense / 0 gap), or -1
        when the window is exhausted (caller falls through to the
        normal per-cycle path)."""
        segs = self._win_segs
        i = self._win_i
        n = len(segs)
        while i < n and segs[i][1] < cycle:
            i += 1
        if i >= n:
            self._win_segs = None
            self._win_i = 0
            return -1
        self._win_i = i
        start, end, cause, culprit = segs[i]
        stats = self.stats
        stats.active_cycles += 1
        if cause is None:
            stats.issue_cycles += 1
            self._stall_cause = None
            # Every cycle through ``end`` issues: let the launch loop's
            # jump elision book them in bulk, exactly like a script.
            for sched in self.schedulers:
                sched.script_until = end
            return 1
        stats.idle_cycles += 1
        stats.count_stall(cause, culprit)
        self._stall_cause = cause
        self._stall_warp = culprit
        return 0

    def _issue_fast(self, warp: Warp, cycle: int) -> None:
        """Plan-driven ``_issue``: table dispatch over precomputed records."""
        if warp._finished:
            self._retire(warp, cycle)
            return
        plan = self.plan
        rec = plan.records[warp.stack[-1].pc]
        warp.wake(cycle + 1)
        warp.insts_since_boundary += 1
        self.stats.count_issue(rec.fu, rec.shadow, rec.ckpt)
        kind = rec.kind

        if kind == K_VALUE:
            pc = warp.stack[-1].pc
            pf = warp._pf
            if pf is not None and (pf.epoch != self._value_epoch
                                   or pc != pf.pc0 + warp._pf_j):
                # Injector activity or an out-of-band PC change since
                # the prefetch was built: recompute per-record.
                warp._pf = pf = None
                fb = self.stats.superblock_fallbacks
                fb["invalidated"] = fb.get("invalidated", 0) + 1
            if (pf is None and self._batching and self.liveness is None
                    and plan.sb_len[pc] > 1):
                group = [w for w in self.warps
                         if not w._finished and w.stack[-1].pc == pc]
                if len(group) > 1:
                    build_prefetch(plan, plan.superblock_info(pc), group,
                                   self._value_epoch)
                    pf = warp._pf
                    self.stats.superblocks_executed += 1
                elif self._scripts:
                    # A lone warp gains nothing from value batching
                    # (same NumPy call count), but an event-free window
                    # can still be *scripted directly*: execute the
                    # records in order on the warp's own context within
                    # this issue slot.  Values land early only inside
                    # the window, which nothing can observe (same caps
                    # as prefetched scripts), and every pending entry
                    # carries its true issue cycle.
                    info = plan.superblock_info(pc)
                    s = self._script_len(warp, info, 0, cycle)
                    if s > 1:
                        self._run_script_direct(warp, info, s, cycle, pc)
                        return
                    fb = self.stats.superblock_fallbacks
                    fb["no_peer"] = fb.get("no_peer", 0) + 1
                else:
                    fb = self.stats.superblock_fallbacks
                    fb["no_peer"] = fb.get("no_peer", 0) + 1
            if pf is not None:
                j = warp._pf_j
                if self._scripts and pf.n - j > 1:
                    s = self._script_len(warp, pf.info, j, cycle)
                    if s > 1:
                        self._apply_script(warp, pf, j, s, cycle, pc)
                        return
                i = warp._pf_i
                out = pf.outs[j]
                ctx = warp.ctx
                if out is not None:
                    if rec.dst_is_pred:
                        ctx.preds[rec.dst_index][...] = out[i]
                    else:
                        ctx.regs[rec.dst_index][...] = out[i]
                if rec.track_reg_write:
                    warp.last_write = rec.dst
                    warp.last_write_pc = pc
                    warp.last_write_mask = pf.masks[j][i]
                elif rec.track_pred_write:
                    warp.last_pred_write = rec.dst
                    warp.last_pred_write_pc = pc
                    warp.last_pred_write_mask = pf.masks[j][i]
                if rec.dst is not None:
                    warp.pending[rec.dst] = cycle + rec.latency
                if j + 1 < pf.n:
                    warp._pf_j = j + 1
                else:
                    warp._pf = None
                self.stats.superblock_insts += 1
                warp.advance()
                self._after_pc_change(warp, cycle)
                return
            ctx = warp.ctx
            active = warp.stack[-1].mask & warp._not_exited
            mask = rec.guard(ctx, active)
            access = rec.run(ctx, mask, self.global_mem, warp.block.shared)
            if rec.track_reg_write:
                warp.last_write = rec.dst
                warp.last_write_pc = warp.stack[-1].pc
                warp.last_write_mask = mask
            elif rec.track_pred_write:
                warp.last_pred_write = rec.dst
                warp.last_pred_write_pc = warp.stack[-1].pc
                # A predicate write that aliases its own guard changes
                # the post-execution mask (which is what the reference
                # path records); recompute only in that case.
                warp.last_pred_write_mask = (rec.guard(ctx, active)
                                             if rec.guard_recheck else mask)
            if rec.track_shared_store and access is not None:
                warp.last_shared_write = access.addresses
            liveness = self.liveness
            if liveness is not None:
                if rec.src_reg_rows is not None:
                    liveness.reg_read[warp.id][rec.src_reg_rows] = cycle
                if access is not None:
                    liveness.note(access, warp.block, cycle)
            if rec.is_timed_mem:
                self._time_memory_fast(warp, rec, access, cycle)
            elif rec.dst is not None:
                warp.pending[rec.dst] = cycle + rec.latency
            warp.advance()
            self._after_pc_change(warp, cycle)
            return
        if kind == K_BRA:
            warp.take_branch_planned(rec)
            self._after_pc_change(warp, cycle)
            return
        if kind == K_BAR:
            self._arrive_barrier(warp, cycle)
            return
        # K_EXIT
        warp.exit_lanes_planned(rec)
        if warp._finished:
            self._retire(warp, cycle)
        else:
            self._after_pc_change(warp, cycle)

    def _script_len(self, warp: Warp, info, j: int, cycle: int) -> int:
        """Longest run of prefetched records, starting at offset ``j``,
        that the warp provably issues on consecutive cycles under GTO
        with no observer event in the window.

        Inside such a window the warp is issuable every cycle (no
        scoreboard or LSU stall — superblock records never use the LSU),
        so greedy GTO re-picks it; and no strike, detection, conveyor
        pop, checkpoint capture, or convergence check can observe the
        intermediate cycles.  Bulk-applying the issues is therefore
        indistinguishable from cycle-by-cycle issue.
        """
        s = info.hazard_free[j]
        pending = warp.pending
        if pending:
            uses = info.uses
            for op, ready in pending.items():
                if ready <= cycle:
                    continue
                offs = uses.get(op)
                if offs is None:
                    continue
                u = offs[bisect_left(offs, j)] if offs[-1] >= j else -1
                if u >= j:
                    t = u - j
                    if t < s and cycle + t < ready:
                        s = t
        if s < 2:
            return 1
        cap = self._script_cap
        if cap is not None:
            horizon = cap(cycle)
            if cycle + s > horizon:
                s = horizon - cycle
        horizon = self.resilience.next_event(self)
        if cycle + s > horizon:
            s = horizon - cycle
        return s if s > 1 else 1

    def _apply_script(self, warp: Warp, pf, j: int, s: int, cycle: int,
                      pc: int) -> None:
        """Bulk-apply ``s`` prefetched records as if issued on cycles
        ``cycle .. cycle+s-1`` and mark the warp's scheduler scripted
        through the window (the issue prolog already counted record
        ``j`` and woke the warp)."""
        records = self.plan.records
        stats = self.stats
        ctx = warp.ctx
        i = warp._pf_i
        outs = pf.outs
        masks = pf.masks
        pending = warp.pending
        pc0 = pf.pc0
        count = stats.count_issue
        for u in range(s):
            rec = records[pc0 + j + u]
            if u:
                count(rec.fu, rec.shadow, rec.ckpt)
            out = outs[j + u]
            if out is not None:
                if rec.dst_is_pred:
                    ctx.preds[rec.dst_index][...] = out[i]
                else:
                    ctx.regs[rec.dst_index][...] = out[i]
            if rec.track_reg_write:
                warp.last_write = rec.dst
                warp.last_write_pc = pc + u
                warp.last_write_mask = masks[j + u][i]
            elif rec.track_pred_write:
                warp.last_pred_write = rec.dst
                warp.last_pred_write_pc = pc + u
                warp.last_pred_write_mask = masks[j + u][i]
            if rec.dst is not None:
                pending[rec.dst] = cycle + u + rec.latency
        warp.insts_since_boundary += s - 1
        stats.superblock_insts += s
        end = j + s
        if end < pf.n:
            warp._pf_j = end
        else:
            warp._pf = None
        warp.scheduler.script_until = cycle + s - 1
        # The issue prolog's wake() already bumped the version; the
        # final scripted issue leaves the warp wakeable at cycle+s.
        warp.wakeup_cycle = cycle + s
        warp.stack[-1].pc = pc + s
        warp._maybe_reconverge()
        self._after_pc_change(warp, cycle + s - 1)

    def _run_script_direct(self, warp: Warp, info, s: int, cycle: int,
                           pc: int) -> None:
        """Scripted window for a warp with no co-resident peers at its
        PC: execute records ``pc .. pc+s-1`` in order on the warp's own
        context as if issued on cycles ``cycle .. cycle+s-1``.

        Identical to the reference per-record semantics — same guard
        evaluation order, same in-place writes — except the values land
        within one issue slot; the window is event-free by the same
        ``_script_len`` caps as prefetched scripts, so nothing can
        observe the intermediate cycles.  The block's active mask is
        loop-invariant (no control flow, no exits inside a superblock).
        """
        records = self.plan.records
        stats = self.stats
        ctx = warp.ctx
        active = warp.stack[-1].mask & warp._not_exited
        pending = warp.pending
        count = stats.count_issue
        mem = self.global_mem
        shared = warp.block.shared
        for u in range(s):
            rec = records[pc + u]
            if u:
                count(rec.fu, rec.shadow, rec.ckpt)
            mask = rec.guard(ctx, active)
            rec.run(ctx, mask, mem, shared)
            if rec.track_reg_write:
                warp.last_write = rec.dst
                warp.last_write_pc = pc + u
                warp.last_write_mask = mask
            elif rec.track_pred_write:
                warp.last_pred_write = rec.dst
                warp.last_pred_write_pc = pc + u
                warp.last_pred_write_mask = (rec.guard(ctx, active)
                                             if rec.guard_recheck else mask)
            if rec.dst is not None:
                pending[rec.dst] = cycle + u + rec.latency
        warp.insts_since_boundary += s - 1
        stats.superblocks_executed += 1
        stats.superblock_insts += s
        warp.scheduler.script_until = cycle + s - 1
        warp.wakeup_cycle = cycle + s
        warp.stack[-1].pc = pc + s
        warp._maybe_reconverge()
        self._after_pc_change(warp, cycle + s - 1)

    def _issue(self, warp: Warp, cycle: int) -> None:
        if warp.finished:
            self._retire(warp, cycle)
            return
        inst = warp.next_instruction()
        warp.wake(cycle + 1)
        warp.insts_since_boundary += 1
        self.stats.count_issue(inst.fu, inst.shadow, inst.ckpt)

        if inst.op is Op.BRA:
            reconv = self.reconv.get(warp.pc, len(self.kernel.instructions))
            warp.take_branch(inst, reconv)
            self._after_pc_change(warp, cycle)
            return
        if inst.op is Op.BAR:
            self._arrive_barrier(warp, cycle)
            return
        if inst.op is Op.EXIT:
            warp.exit_lanes(inst)
            if warp.finished:
                self._retire(warp, cycle)
            else:
                self._after_pc_change(warp, cycle)
            return

        active = warp.active_mask
        access = execute(inst, warp.ctx, active,
                         self.global_mem, warp.block.shared)
        if isinstance(inst.dst, Reg) and not inst.shadow:
            warp.last_write = inst.dst
            warp.last_write_pc = warp.pc
            # Lanes actually written: a strike can only corrupt values in
            # flight, i.e. in these lanes (the rest are at rest in the
            # ECC-protected register file).
            warp.last_write_mask = guard_mask(inst, warp.ctx, active)
        elif isinstance(inst.dst, Pred) and not inst.shadow:
            # Predicate produced in flight: a strike can flip the guard
            # before any consumer reads it (the predicate file itself is
            # ECC-protected at rest, like the register file).
            warp.last_pred_write = inst.dst
            warp.last_pred_write_pc = warp.pc
            warp.last_pred_write_mask = guard_mask(inst, warp.ctx, active)
        if (access is not None and access.space is Space.SHARED
                and access.is_store and not access.is_atomic
                and not inst.shadow):
            # Shared-memory words written through the (unprotected) store
            # datapath this region: the in-flight shared fault surface.
            warp.last_shared_write = access.addresses
        liveness = self.liveness
        if liveness is not None:
            rows = [reg.index for reg in inst.read_regs()]
            if rows:
                liveness.reg_read[warp.id][rows] = cycle
            if access is not None:
                liveness.note(access, warp.block, cycle)
        if inst.fu is FuClass.MEM and inst.space is not Space.PARAM:
            self._time_memory(warp, inst, access, cycle)
        else:
            warp.mark_pending(inst.dst, cycle + self._latency(inst.fu))
        warp.advance()
        self._after_pc_change(warp, cycle)

    def _after_pc_change(self, warp: Warp, cycle: int) -> None:
        if warp.finished:
            self._retire(warp, cycle)
            return
        warp.retire_pending(cycle)
        self.skip_markers(warp, cycle)

    def _retire(self, warp: Warp, cycle: int) -> None:
        if warp.state is WarpState.DONE:
            return
        if self.resilience.on_warp_exit(self, warp, cycle):
            warp.state = WarpState.DONE
            self._note_warp_done(warp)
            self._check_barrier_release(warp.block, cycle)

    # ------------------------------------------------------------------
    # Memory timing
    # ------------------------------------------------------------------
    def _time_memory(self, warp: Warp, inst: Instruction,
                     access: MemAccess | None, cycle: int) -> None:
        config = self.config
        if access is None:  # fully predicated-off memory op
            warp.mark_pending(inst.dst, cycle + 1)
            return
        if access.is_atomic:
            lanes = len(access.addresses)
            latency = config.atomic_latency + lanes
            occupancy = max(1, lanes // 2)
            self.stats.atomic_ops += lanes
        elif access.space is Space.SHARED:
            degree = self._bank_conflict_degree(access.addresses)
            latency = config.shared_latency + (degree - 1)
            occupancy = degree
            self.stats.shared_accesses += 1
            self.stats.shared_bank_conflicts += degree - 1
        else:
            segments = np.unique(access.addresses // config.l1.line_words)
            occupancy = len(segments)
            latency = 0
            for segment in segments:
                word = int(segment) * config.l1.line_words
                if self.l1.access(word, is_store=access.is_store):
                    seg_latency = config.l1_latency
                elif self.l2.access(word, is_store=access.is_store):
                    seg_latency = config.l2_latency
                else:
                    seg_latency = config.dram_latency
                latency = max(latency, seg_latency)
            self.stats.global_transactions += occupancy
            if self.tracer is not None and latency > config.l1_latency:
                self.tracer.event("mem_miss", cycle, self.id, warp.id,
                                  {"latency": latency,
                                   "segments": occupancy})
        self._lsu_free_at = max(self._lsu_free_at, cycle) + occupancy
        if inst.info.is_load or inst.info.is_atomic:
            warp.mark_pending(inst.dst, cycle + latency)
            if inst.dst is not None:
                warp.pending_mem[inst.dst] = cycle + latency

    def _time_memory_fast(self, warp: Warp, rec, access: MemAccess | None,
                          cycle: int) -> None:
        """Plan-driven ``_time_memory`` with coalescing fast paths for
        the dominant (uniform / unit-stride) access patterns."""
        config = self.config
        if access is None:  # fully predicated-off memory op
            if rec.dst is not None:
                warp.pending[rec.dst] = cycle + 1
            return
        timing = rec.timing
        if timing == T_ATOMIC:
            lanes = len(access.addresses)
            latency = config.atomic_latency + lanes
            occupancy = max(1, lanes // 2)
            self.stats.atomic_ops += lanes
        elif timing == T_SHARED:
            addrs = access.addresses
            sigs = self._mem_sigs
            stride = (sigs.get(warp.stack[-1].pc)
                      if sigs is not None else None)
            n = addrs.shape[0]
            if (stride is not None and stride != 0 and n == 32
                    and config.warp_size == 32
                    and int(addrs[-1]) - int(addrs[0]) == stride * 31):
                # Endpoint-verified full-warp affine sweep: lane i hits
                # bank (a0 + stride*i) & 31, so each touched bank is
                # hit by exactly gcd(|stride|, 32) distinct addresses.
                degree = gcd(stride if stride > 0 else -stride, 32)
            else:
                degree = _bank_degree(addrs)
            latency = config.shared_latency + (degree - 1)
            occupancy = degree
            self.stats.shared_accesses += 1
            self.stats.shared_bank_conflicts += degree - 1
        else:
            line_words = config.l1.line_words
            addrs = access.addresses
            sigs = self._mem_sigs
            stride = (sigs.get(warp.stack[-1].pc)
                      if sigs is not None else None)
            n = addrs.shape[0]
            segments = None
            if stride is not None and stride != 0 and n > 1:
                first = int(addrs[0])
                last = int(addrs[-1])
                if stride == 1:
                    # Contiguity check via endpoints alone: the span
                    # equals the count, and a line-sized hole would
                    # need a gap wider than the whole span allows.
                    if (last - first == n - 1
                            and n <= line_words + 1):
                        segments = np.arange(
                            first // line_words,
                            last // line_words + 1, dtype=np.int64)
                elif stride == -1:
                    if (first - last == n - 1
                            and n <= line_words + 1):
                        segments = np.arange(
                            last // line_words,
                            first // line_words + 1, dtype=np.int64)
                elif ((stride >= line_words
                       or -stride >= line_words)
                      and n == config.warp_size
                      and last - first == stride * (n - 1)):
                    # Verified full-warp sweep with one line (at
                    # least) per lane step: line indices are
                    # strictly monotonic, so they are already the
                    # deduplicated ascending/descending segment set.
                    lines = addrs // line_words
                    segments = lines if stride > 0 else lines[::-1]
            if segments is None:
                segments = _coalesce_segments(addrs, line_words)
            occupancy = len(segments)
            latency = 0
            is_store = access.is_store
            l1, l2 = self.l1, self.l2
            for segment in segments:
                word = int(segment) * line_words
                if l1.access(word, is_store=is_store):
                    seg_latency = config.l1_latency
                elif l2.access(word, is_store=is_store):
                    seg_latency = config.l2_latency
                else:
                    seg_latency = config.dram_latency
                if seg_latency > latency:
                    latency = seg_latency
            self.stats.global_transactions += occupancy
            if self.tracer is not None and latency > config.l1_latency:
                self.tracer.event("mem_miss", cycle, self.id, warp.id,
                                  {"latency": latency,
                                   "segments": occupancy})
        self._lsu_free_at = max(self._lsu_free_at, cycle) + occupancy
        if rec.needs_writeback and rec.dst is not None:
            warp.pending[rec.dst] = cycle + latency
            warp.pending_mem[rec.dst] = cycle + latency

    @staticmethod
    def _bank_conflict_degree(addresses: np.ndarray) -> int:
        unique = np.unique(addresses)
        if len(unique) <= 1:
            return 1
        _, counts = np.unique(unique % 32, return_counts=True)
        return int(counts.max())

    # ------------------------------------------------------------------
    # Barriers
    # ------------------------------------------------------------------
    def _arrive_barrier(self, warp: Warp, cycle: int) -> None:
        """Sense-free monotonic-counter barrier.

        Each dynamic BAR execution increments the warp's generation
        counter; a warp waits until every live warp of its block has
        reached its generation.  The counter is part of the recovery
        snapshot, which makes region rollback across barriers safe: a
        rolled-back warp re-arrives at the same generation and warps
        that never rolled back already satisfy the release condition.
        """
        warp.barrier_count += 1
        warp.state = WarpState.AT_BARRIER
        warp.advance()
        if self.tracer is not None:
            self.tracer.event("barrier_arrive", cycle, self.id, warp.id,
                              {"generation": warp.barrier_count})
        self._check_barrier_release(warp.block, cycle)

    def _check_barrier_release(self, block: ThreadBlock, cycle: int) -> None:
        alive = [w for w in block.warps if w.state is not WarpState.DONE]
        if not alive:
            return
        reached = min(w.barrier_count for w in alive)
        for warp in alive:
            if (warp.state is WarpState.AT_BARRIER
                    and warp.barrier_count <= reached):
                warp.state = WarpState.ACTIVE
                warp.wake(cycle + 1)
                if self.tracer is not None:
                    self.tracer.event("barrier_release", cycle, self.id,
                                      warp.id,
                                      {"generation": warp.barrier_count})
                self.skip_markers(warp, cycle + 1)

    # ------------------------------------------------------------------
    # Fast-forward support
    # ------------------------------------------------------------------
    def next_event(self, cycle: int) -> int:
        """Earliest future cycle at which this SM might issue.

        With a plan, each warp's ready cycle is cached and revalidated
        against its ``version`` counter (bumped by ``Warp.wake`` and
        scoreboard writes), so a long stall recomputes only the warps
        whose state actually changed.  The LSU bound is applied at scan
        time because ``_lsu_free_at`` is SM-global and changes without
        touching warp versions.  Cached entries that embed since-expired
        scoreboard values can only overestimate by amounts at or below
        the current cycle, which the ``max(cycle + 1, ...)`` clamp in
        ``Gpu._fast_forward`` makes indistinguishable from a fresh
        computation.
        """
        segs = self._win_segs
        if segs is not None:
            # Scripted window active: the next issue cycle is the next
            # dense segment's start (windows always end on an issue
            # cycle, so a dense segment always follows a gap).
            i = self._win_i
            n = len(segs)
            while i < n and segs[i][1] < cycle:
                i += 1
            self._win_i = i
            if i < n:
                if segs[i][2] is None:
                    return max(cycle, segs[i][0])
                if i + 1 < n:
                    return segs[i + 1][0]
            self._win_segs = None
            self._win_i = 0
        best = self.resilience.next_event(self)
        plan = self.plan
        if plan is None:
            for warp in self.warps:
                if warp.state is not WarpState.ACTIVE:
                    continue
                if warp.finished:
                    return cycle + 1
                inst = warp.next_instruction()
                ready = max(warp.earliest_dep_cycle(inst), warp.wakeup_cycle)
                if inst.fu is FuClass.MEM and inst.space is not Space.PARAM:
                    ready = max(ready, self._lsu_free_at)
                best = min(best, ready)
            return best
        records = plan.records
        lsu_free_at = self._lsu_free_at
        for warp in self.warps:
            if warp.state is not WarpState.ACTIVE:
                continue
            if warp._finished:
                return cycle + 1
            if warp.ready_version == warp.version:
                ready = warp.ready_cache
                timed = warp.ready_timed
            else:
                rec = records[warp.stack[-1].pc]
                ready = warp.wakeup_cycle
                pending = warp.pending
                if pending:
                    get = pending.get
                    for operand in rec.score_ops:
                        at = get(operand, 0)
                        if at > ready:
                            ready = at
                timed = rec.is_timed_mem
                warp.ready_cache = ready
                warp.ready_timed = timed
                warp.ready_version = warp.version
            if timed and lsu_free_at > ready:
                ready = lsu_free_at
            if ready < best:
                best = ready
        return best


def _coalesce_segments(addrs: np.ndarray, line_words: int) -> np.ndarray:
    """Cache-line segments touched, ascending — ``np.unique`` semantics
    with O(n) fast paths for the dominant patterns: a uniform (broadcast)
    access is one segment; an ascending unit-stride access covers every
    line between its endpoints exactly once."""
    n = addrs.shape[0]
    if n == 1:
        return addrs // line_words
    first = int(addrs[0])
    last = int(addrs[-1])
    if first == last:
        if not (addrs != first).any():
            return addrs[:1] // line_words
    elif last - first == n - 1 and bool((np.diff(addrs) == 1).all()):
        return np.arange(first // line_words, last // line_words + 1,
                         dtype=np.int64)
    return np.unique(addrs // line_words)


def _bank_degree(addrs: np.ndarray) -> int:
    """Shared-memory bank conflict degree — semantics of
    ``Sm._bank_conflict_degree`` with conflict-free fast paths (uniform
    accesses broadcast; at most 32 consecutive addresses hit 32 distinct
    banks) and an O(lanes) bucket count instead of two ``np.unique``
    sorts in the general case."""
    n = addrs.shape[0]
    if n == 1:
        return 1
    first = int(addrs[0])
    last = int(addrs[-1])
    if first == last:
        if not (addrs != first).any():
            return 1
    elif (last - first == n - 1 and n <= 32
            and bool((np.diff(addrs) == 1).all())):
        return 1
    # Degree = max count of distinct addresses per bank (addresses are
    # bounds-checked non-negative, so ``& 31`` is ``% 32``).
    distinct = set(addrs.tolist())
    if len(distinct) <= 1:
        return 1
    counts = [0] * 32
    best = 1
    for addr in distinct:
        bank = addr & 31
        hits = counts[bank] + 1
        counts[bank] = hits
        if hits > best:
            best = hits
    return best
