"""Decode-once execution plans: the simulator's specialized hot path.

The reference interpreter (``Sm._issue`` + ``functional.execute``)
re-decodes every static :class:`~repro.isa.Instruction` on every dynamic
issue: isinstance chains over the operand kinds, ``OP_INFO`` lookups,
branchy op dispatch, and per-issue tuple construction for the scoreboard
check.  An :class:`ExecPlan` lowers each static instruction exactly once
at ``Sm.configure`` time into a :class:`PlannedInst` dispatch record:

* operand *fetchers* — closures resolved per operand kind (register row,
  predicate row, shared read-only immediate vector, specials entry);
* an op-specific ``run`` closure with the exact value semantics of
  ``functional.execute`` (same NumPy expressions, same evaluation order,
  same ``MemAccess`` results) so the fast path is byte-identical;
* precomputed scoreboard operand tuples, functional-unit class, fixed
  latency, guard policy, branch target/reconvergence PC, and the flag
  set (``is_timed_mem``, shadow/ckpt, fault-surface tracking) that the
  reference path re-derives per issue.

Plans are cached on the kernel object, keyed by the instruction/label
content and the :class:`~repro.arch.GpuConfig`, so repeated launches of
one kernel — the fault-injection-campaign common case — pay lowering
once per process.  The plan holds strong references to the fingerprinted
instruction objects, which keeps their ids stable for the lifetime of
the cache entry (a mutated kernel can never alias a stale fingerprint).

The reference path stays selectable via ``run_kernel(..., fast=False)``;
``tests/integration/test_fast_equivalence.py`` proves both paths produce
identical cycles, stats, and final memory on every workload.
"""

from __future__ import annotations

import numpy as np

from ..arch import GpuConfig
from ..errors import SimError
from ..isa import FuClass, Imm, Instruction, Kernel, Op, Pred, Reg, Space, Special
from ..isa.cfg import reconvergence_table_for
from .functional import MemAccess, _atom_apply, _check_bounds, _CMP_FNS

# Dispatch kinds (checked with == in Sm._issue_fast; ints, not enums,
# to keep the comparison a single C-level operation).
K_VALUE = 0   # value semantics via ``run`` (ALU, predicate, memory, RB)
K_BRA = 1
K_BAR = 2
K_EXIT = 3

# Timing kinds for timed (non-PARAM) memory operations.
T_ATOMIC = 0
T_SHARED = 1
T_GLOBAL = 2

#: Positional index of each special register in Special declaration
#: order — matches ``LaneContext.special_rows``.
_SPECIAL_INDEX = {special: i for i, special in enumerate(Special)}

#: Shared read-only immediate vectors, keyed by (warp_size, value).
#: ``LaneContext.read`` materializes a fresh ``np.full`` per read; every
#: consumer treats sources as read-only, so one frozen array per
#: distinct immediate serves all warps of all launches.
_IMM_CACHE: dict[tuple[int, float], np.ndarray] = {}


def _imm_vector(warp_size: int, value: float) -> np.ndarray:
    key = (warp_size, float(value))
    vec = _IMM_CACHE.get(key)
    if vec is None:
        vec = np.full(warp_size, value, dtype=np.float64)
        vec.flags.writeable = False
        _IMM_CACHE[key] = vec
    return vec


def _fetcher(operand, warp_size: int):
    """Resolve one operand into a zero-isinstance read closure."""
    if isinstance(operand, Reg):
        index = operand.index
        return lambda ctx: ctx.regs[index]
    if isinstance(operand, Pred):
        index = operand.index
        return lambda ctx: ctx.preds[index]
    if isinstance(operand, Imm):
        vec = _imm_vector(warp_size, operand.value)
        return lambda ctx: vec
    if isinstance(operand, Special):
        row = _SPECIAL_INDEX[operand]
        return lambda ctx: ctx.special_rows[row]
    raise SimError(f"unreadable operand {operand!r}")


def _as_int(values: np.ndarray) -> np.ndarray:
    return values.astype(np.int64)


def _build_alu(inst: Instruction, fetch) -> "callable":
    """Specialized value function mirroring ``functional._alu_result``.

    Every branch reproduces the reference expression verbatim (same NumPy
    calls, same clamping) so fast-path results are bit-identical.  The
    surrounding ``np.errstate`` lives around the launch loop in
    ``Gpu.launch`` rather than per call.
    """
    op = inst.op
    if op is Op.ADD:
        f0, f1 = fetch
        return lambda ctx: f0(ctx) + f1(ctx)
    if op is Op.SUB:
        f0, f1 = fetch
        return lambda ctx: f0(ctx) - f1(ctx)
    if op is Op.MUL:
        f0, f1 = fetch
        return lambda ctx: f0(ctx) * f1(ctx)
    if op is Op.MAD:
        f0, f1, f2 = fetch
        return lambda ctx: f0(ctx) * f1(ctx) + f2(ctx)
    if op is Op.DIV:
        f0, f1 = fetch

        def div(ctx):
            denom = f1(ctx)
            out = f0(ctx) / np.where(denom == 0.0, np.nan, denom)
            return np.nan_to_num(out, nan=0.0, posinf=0.0, neginf=0.0)

        return div
    if op is Op.REM:
        f0, f1 = fetch

        def rem(ctx):
            denom = _as_int(f1(ctx))
            safe = np.where(denom == 0, 1, denom)
            out = np.remainder(_as_int(f0(ctx)), safe)
            return np.where(denom == 0, 0, out).astype(np.float64)

        return rem
    if op is Op.MIN:
        f0, f1 = fetch
        return lambda ctx: np.minimum(f0(ctx), f1(ctx))
    if op is Op.MAX:
        f0, f1 = fetch
        return lambda ctx: np.maximum(f0(ctx), f1(ctx))
    if op is Op.ABS:
        (f0,) = fetch
        return lambda ctx: np.abs(f0(ctx))
    if op is Op.NEG:
        (f0,) = fetch
        return lambda ctx: -f0(ctx)
    if op is Op.FLOOR:
        (f0,) = fetch
        return lambda ctx: np.floor(f0(ctx))
    if op is Op.AND:
        f0, f1 = fetch
        return lambda ctx: (_as_int(f0(ctx)) & _as_int(f1(ctx))).astype(np.float64)
    if op is Op.OR:
        f0, f1 = fetch
        return lambda ctx: (_as_int(f0(ctx)) | _as_int(f1(ctx))).astype(np.float64)
    if op is Op.XOR:
        f0, f1 = fetch
        return lambda ctx: (_as_int(f0(ctx)) ^ _as_int(f1(ctx))).astype(np.float64)
    if op is Op.NOT:
        (f0,) = fetch
        return lambda ctx: (~_as_int(f0(ctx))).astype(np.float64)
    if op is Op.SHL:
        f0, f1 = fetch

        def shl(ctx):
            shift = np.clip(_as_int(f1(ctx)), 0, 62)
            return (_as_int(f0(ctx)) << shift).astype(np.float64)

        return shl
    if op is Op.SHR:
        f0, f1 = fetch

        def shr(ctx):
            shift = np.clip(_as_int(f1(ctx)), 0, 62)
            return (_as_int(f0(ctx)) >> shift).astype(np.float64)

        return shr
    if op is Op.MOV:
        (f0,) = fetch
        return lambda ctx: f0(ctx).astype(np.float64)
    if op is Op.SELP:
        f0, f1, f2 = fetch
        return lambda ctx: np.where(f2(ctx), f0(ctx), f1(ctx))
    if op is Op.SQRT:
        (f0,) = fetch
        return lambda ctx: np.sqrt(np.maximum(f0(ctx), 0.0))
    if op is Op.RSQRT:
        (f0,) = fetch
        return lambda ctx: 1.0 / np.sqrt(np.maximum(f0(ctx), 1e-300))
    if op is Op.EXP:
        (f0,) = fetch
        return lambda ctx: np.exp(np.clip(f0(ctx), -700.0, 700.0))
    if op is Op.LOG:
        (f0,) = fetch
        return lambda ctx: np.log(np.maximum(f0(ctx), 1e-300))
    if op is Op.SIN:
        (f0,) = fetch
        return lambda ctx: np.sin(f0(ctx))
    if op is Op.COS:
        (f0,) = fetch
        return lambda ctx: np.cos(f0(ctx))
    raise SimError(f"no ALU semantics for {inst.op}")


def _noop_run(ctx, mask, global_mem, shared_mem):
    return None


def _build_run(inst: Instruction, warp_size: int):
    """The value-semantics closure for one K_VALUE record.

    Signature: ``run(ctx, mask, global_mem, shared_mem) -> MemAccess|None``
    with ``mask`` the precomputed guard mask — exactly what
    ``functional.execute`` computes internally.
    """
    info = inst.info
    dst = inst.dst
    dst_index = dst.index if dst is not None else None

    if info.is_load:
        if inst.space is Space.PARAM:
            param_index = int(inst.srcs[0].value)

            def load_param(ctx, mask, global_mem, shared_mem):
                value = np.full(ctx.warp_size, ctx.params[param_index])
                np.copyto(ctx.regs[dst_index], value, where=mask)
                return None

            return load_param
        addr_fetch = _fetcher(inst.srcs[0], warp_size)
        offset = inst.offset
        space = inst.space
        is_global = space is Space.GLOBAL

        def load(ctx, mask, global_mem, shared_mem):
            addrs = addr_fetch(ctx).astype(np.int64) + offset
            mem = global_mem if is_global else shared_mem
            if mask.any():
                lane_addrs = addrs[mask]
                _check_bounds(lane_addrs, mem, inst)
                values = np.zeros(ctx.warp_size)
                values[mask] = mem[lane_addrs]
                np.copyto(ctx.regs[dst_index], values, where=mask)
                return MemAccess(space, lane_addrs, is_store=False)
            return None

        return load

    if info.is_store:
        addr_fetch = _fetcher(inst.srcs[0], warp_size)
        value_fetch = _fetcher(inst.srcs[1], warp_size)
        offset = inst.offset
        space = inst.space
        is_global = space is Space.GLOBAL

        def store(ctx, mask, global_mem, shared_mem):
            addrs = addr_fetch(ctx).astype(np.int64) + offset
            mem = global_mem if is_global else shared_mem
            if mask.any():
                lane_addrs = addrs[mask]
                _check_bounds(lane_addrs, mem, inst)
                values = value_fetch(ctx)
                # Lane order resolves same-address conflicts: highest lane
                # wins, matching the reference interpreter.
                mem[lane_addrs] = values[mask]
                return MemAccess(space, lane_addrs, is_store=True)
            return None

        return store

    if info.is_atomic:
        addr_fetch = _fetcher(inst.srcs[0], warp_size)
        operand_fetch = _fetcher(inst.srcs[1], warp_size)
        offset = inst.offset
        space = inst.space
        is_global = space is Space.GLOBAL
        atom_op = inst.atom_op

        def atomic(ctx, mask, global_mem, shared_mem):
            addrs = addr_fetch(ctx).astype(np.int64) + offset
            mem = global_mem if is_global else shared_mem
            if mask.any():
                lane_addrs = addrs[mask]
                _check_bounds(lane_addrs, mem, inst)
                operand = operand_fetch(ctx)
                old = np.zeros(ctx.warp_size)
                for lane in np.flatnonzero(mask):
                    addr = addrs[lane]
                    old[lane] = mem[addr]
                    mem[addr] = _atom_apply(atom_op, mem[addr], operand[lane])
                if dst_index is not None:
                    np.copyto(ctx.regs[dst_index], old, where=mask)
                return MemAccess(space, lane_addrs, is_store=True,
                                 is_atomic=True)
            return None

        return atomic

    op = inst.op
    if op is Op.SETP:
        cmp_fn = _CMP_FNS[inst.cmp]
        f0 = _fetcher(inst.srcs[0], warp_size)
        f1 = _fetcher(inst.srcs[1], warp_size)

        def setp(ctx, mask, global_mem, shared_mem):
            np.copyto(ctx.preds[dst_index], cmp_fn(f0(ctx), f1(ctx)),
                      where=mask)
            return None

        return setp
    if op is Op.PAND:
        f0 = _fetcher(inst.srcs[0], warp_size)
        f1 = _fetcher(inst.srcs[1], warp_size)

        def pand(ctx, mask, global_mem, shared_mem):
            np.copyto(ctx.preds[dst_index], f0(ctx) & f1(ctx), where=mask)
            return None

        return pand
    if op is Op.POR:
        f0 = _fetcher(inst.srcs[0], warp_size)
        f1 = _fetcher(inst.srcs[1], warp_size)

        def por(ctx, mask, global_mem, shared_mem):
            np.copyto(ctx.preds[dst_index], f0(ctx) | f1(ctx), where=mask)
            return None

        return por
    if op is Op.PNOT:
        f0 = _fetcher(inst.srcs[0], warp_size)

        def pnot(ctx, mask, global_mem, shared_mem):
            np.copyto(ctx.preds[dst_index], ~f0(ctx), where=mask)
            return None

        return pnot

    if (info.is_branch or info.is_barrier or info.is_exit
            or info.is_boundary):
        return _noop_run

    apply_fn = _build_alu(inst, tuple(_fetcher(s, warp_size)
                                      for s in inst.srcs))

    def alu(ctx, mask, global_mem, shared_mem):
        np.copyto(ctx.regs[dst_index], apply_fn(ctx), where=mask)
        return None

    return alu


class PlannedInst:
    """One static instruction, lowered into a dispatch record."""

    __slots__ = (
        "inst", "op", "kind", "fu", "shadow", "ckpt", "dst",
        "dst_index", "dst_is_pred",
        "guard_index", "guard_sense", "guard_recheck", "score_ops",
        "is_timed_mem", "timing", "latency", "run",
        "track_reg_write", "track_pred_write", "track_shared_store",
        "needs_writeback", "target", "reconv_pc", "is_rb",
        "src_reg_rows", "label",
    )

    def __init__(self, index: int, inst: Instruction, kernel: Kernel,
                 config: GpuConfig, reconv: dict[int, int]) -> None:
        info = inst.info
        self.inst = inst
        self.op = inst.op
        self.fu = info.fu
        # Human-readable trace label, e.g. "ld.global" — precomputed so
        # traced issue only fetches an attribute.
        self.label = (inst.op.value if inst.space is None
                      else f"{inst.op.value}.{inst.space.value}")
        self.shadow = inst.shadow
        self.ckpt = inst.ckpt
        self.dst = inst.dst
        self.dst_index = inst.dst.index if inst.dst is not None else -1
        self.dst_is_pred = isinstance(inst.dst, Pred)
        guard = inst.guard
        self.guard_index = guard.index if guard is not None else None
        self.guard_sense = inst.guard_sense
        # The reference path recomputes the guard mask *after* execution
        # for the fault-surface bookkeeping; the only instruction whose
        # execution can change its own guard is a predicate write that
        # aliases it.
        self.guard_recheck = (isinstance(inst.dst, Pred)
                              and guard is not None
                              and inst.dst.index == guard.index)
        self.score_ops = inst.read_regs() + inst.read_preds() + (
            (inst.dst,) if inst.dst is not None else ())
        # Register rows this instruction reads, precomputed for the
        # golden run's read-liveness recording (None when it reads no
        # registers, so the hot path pays a single attribute test).
        rows = sorted({reg.index for reg in inst.read_regs()})
        self.src_reg_rows = np.array(rows, dtype=np.intp) if rows else None
        self.is_timed_mem = (info.fu is FuClass.MEM
                             and inst.space is not Space.PARAM)
        if inst.space is None or not self.is_timed_mem:
            self.timing = -1
        elif info.is_atomic:
            self.timing = T_ATOMIC
        elif inst.space is Space.SHARED:
            self.timing = T_SHARED
        else:
            self.timing = T_GLOBAL
        self.latency = _latency_of(config, info.fu)
        self.needs_writeback = info.is_load or info.is_atomic
        self.track_reg_write = isinstance(inst.dst, Reg) and not inst.shadow
        self.track_pred_write = (isinstance(inst.dst, Pred)
                                 and not inst.shadow)
        self.track_shared_store = (info.is_store and not info.is_atomic
                                   and inst.space is Space.SHARED
                                   and not inst.shadow)
        self.is_rb = inst.op is Op.RB
        if info.is_branch:
            self.kind = K_BRA
            self.target = kernel.target_of(inst)
            self.reconv_pc = reconv.get(index, len(kernel.instructions))
            self.run = _noop_run
        elif info.is_barrier:
            self.kind = K_BAR
            self.target = -1
            self.reconv_pc = -1
            self.run = _noop_run
        elif info.is_exit:
            self.kind = K_EXIT
            self.target = -1
            self.reconv_pc = -1
            self.run = _noop_run
        else:
            # Includes RB markers: issuing one (possible under a custom
            # resilience runtime that leaves the PC on a marker) is a
            # counted no-op, exactly as in the reference interpreter.
            self.kind = K_VALUE
            self.target = -1
            self.reconv_pc = -1
            self.run = _build_run(inst, config.warp_size)

    def guard(self, ctx, active: np.ndarray) -> np.ndarray:
        """Guard mask — semantics of ``functional.guard_mask``."""
        index = self.guard_index
        if index is None:
            return active
        guard = ctx.preds[index]
        if self.guard_sense:
            return active & guard
        return active & ~guard


#: Kept for the per-launch memory-signature analysis below: a register
#: fact is ``(stride, base)``; *absence* from the state dict means
#: "unknown / irregular".


def analyze_mem_strides(records, warp_size: int,
                        block_x: int) -> dict[int, int]:
    """Per-lane address strides of timed memory records, proven by an
    abstract interpretation of the whole kernel.

    Each register is abstracted to ``(stride, base)``: its lane vector
    is ``base + stride * lane`` for some warp-uniform ``base`` (the base
    is kept when it is a compile/launch-time constant, else None).
    Seeds: immediates and the warp-uniform specials are ``(0, v)``;
    ``%laneid`` is ``(1, None)``; ``%tid.x`` / ``%tid.y`` are affine(1) /
    uniform exactly when ``block_x`` is a multiple of the warp size (no
    wrap inside a warp) — which is why signatures are resolved once per
    launch geometry, not once per plan.  ADD/SUB/NEG propagate strides,
    MUL/MAD/SHL scale them by known uniform factors, any op over
    all-uniform inputs stays uniform, loads through non-uniform
    addresses and everything else fall to irregular (fact dropped).

    The interpretation is flow sensitive: straight-line runs between
    *leaders* (branch targets, fall-throughs after branches,
    reconvergence points) use strong updates, each leader state is the
    meet of every incoming edge seen so far (pointwise join of facts; a
    fact missing on any edge is dropped), and passes over the record
    list repeat until the leader states stop changing.  That fixpoint
    handles uniform loops: a loop-carried uniform counter stays uniform,
    its known base degrading to None at the backedge meet.

    Divergence is where affine facts die: a masked write leaves the
    inactive lanes holding another write's value, and a blend of two
    affine vectors is not affine.  Three rules keep blends out.  A write
    guarded by a predicate not proven warp-uniform degrades its target
    outright; a write under a *uniform* guard is all-or-nothing, so its
    target meets old with new.  A branch on a non-uniform predicate
    opens a divergent region up to its reconvergence PC: writes inside
    stay valid for readers in the same region (they share the shrunken
    active mask, so accessed lanes are exactly written lanes), but every
    register or predicate the region's span writes is dropped on any
    edge leaving the region — that is where the stale inactive lanes
    rejoin.  A non-uniform *backward* branch has no such bracketing and
    abandons the analysis (``{}``).  Per-lane EXIT needs no region:
    exited lanes never reappear in an access vector, and a surviving
    *subset* of an affine vector is exactly what the endpoint guards at
    the point of use (``Sm._time_memory_fast``) verify before trusting
    a closed form.

    Returns ``{pc: stride}`` for every timed-mem record whose address
    register has a proven stride; absent pcs are irregular.
    """
    bx_ok = block_x % warp_size == 0
    n = len(records)

    # Mutable walk state the helpers close over: affine facts for
    # registers and the set of predicates proven warp-uniform.
    regs: dict = {}
    upreds: set = set()

    def eval_src(src):
        if isinstance(src, Imm):
            v = float(src.value)
            return (0, int(v)) if v.is_integer() else (0, None)
        if isinstance(src, Special):
            if src is Special.LANEID:
                return (1, None)
            if src is Special.TID_X:
                return (1, None) if bx_ok else None
            if src is Special.TID_Y:
                return (0, None) if bx_ok else None
            if src is Special.NTID_X:
                return (0, block_x)
            return (0, None)  # NTID_Y / CTAID / NCTAID / WARPID
        if isinstance(src, Reg):
            return regs.get(src)
        return None  # predicates as value sources are handled per-op

    def add(a, b, sign):
        if a is None or b is None:
            return None
        value = (a[1] + sign * b[1]
                 if a[1] is not None and b[1] is not None else None)
        return (a[0] + sign * b[0], value)

    def mul(a, b):
        if a is None or b is None:
            return None
        if a[0] == 0 and a[1] is not None:
            value = a[1] * b[1] if b[1] is not None else None
            return (a[1] * b[0], value)
        if b[0] == 0 and b[1] is not None:
            return (b[1] * a[0], None)
        if a[0] == 0 and b[0] == 0:
            return (0, None)
        return None

    def join(a, b):
        if a is None or b is None:
            return None
        if a == b:
            return a
        if a[0] == b[0]:
            return (a[0], None)  # same stride, different bases
        return None

    def transfer(inst):
        op = inst.op
        srcs = inst.srcs
        if op is Op.MOV:
            return eval_src(srcs[0])
        if op is Op.ADD:
            return add(eval_src(srcs[0]), eval_src(srcs[1]), 1)
        if op is Op.SUB:
            return add(eval_src(srcs[0]), eval_src(srcs[1]), -1)
        if op is Op.NEG:
            a = eval_src(srcs[0])
            if a is None:
                return None
            return (-a[0], -a[1] if a[1] is not None else None)
        if op is Op.MUL:
            return mul(eval_src(srcs[0]), eval_src(srcs[1]))
        if op is Op.MAD:
            return add(mul(eval_src(srcs[0]), eval_src(srcs[1])),
                       eval_src(srcs[2]), 1)
        if op is Op.SHL:
            a, k = eval_src(srcs[0]), eval_src(srcs[1])
            if (a is None or k is None or k[0] != 0 or k[1] is None
                    or not 0 <= k[1] < 62):
                return None
            f = 1 << k[1]
            return (a[0] * f, a[1] * f if a[1] is not None else None)
        if op is Op.SELP:
            if srcs[2] not in upreds:
                return None
            return join(eval_src(srcs[0]), eval_src(srcs[1]))
        if op is Op.LD:
            if inst.space is Space.PARAM:
                return (0, None)  # params broadcast a warp-uniform word
            a = eval_src(srcs[0])
            # A load through a uniform address reads one location in
            # every lane; any other pattern yields arbitrary data.
            return (0, None) if a is not None and a[0] == 0 else None
        if inst.info.is_atomic:
            return None
        # Any remaining lane-wise op (MIN/MAX/DIV/REM/ABS/FLOOR,
        # bitwise, SFU): uniform inputs give a uniform output.
        vals = [eval_src(s) for s in srcs if not isinstance(s, Pred)]
        if all(v is not None and v[0] == 0 for v in vals):
            return (0, None)
        return None

    # Control-flow skeleton: a leader is any pc where paths can merge.
    leaders = {0}
    for pc, rec in enumerate(records):
        if rec.kind == K_BRA:
            if 0 <= rec.target < n:
                leaders.add(rec.target)
            if pc + 1 < n:
                leaders.add(pc + 1)
            if 0 <= rec.reconv_pc < n:
                leaders.add(rec.reconv_pc)

    def span_defs(lo, hi):
        defs = set()
        for i in range(lo, min(hi, n)):
            d = records[i].inst.dst
            if d is not None:
                defs.add(d)
        return defs

    def kill(defs):
        for d in defs:
            if isinstance(d, Pred):
                upreds.discard(d)
            else:
                regs.pop(d, None)

    # Leader pc -> (reg facts, uniform preds) met over every incoming
    # edge seen so far; absent = no path has reached it yet.
    leader_in: dict = {}

    def meet_into(pc) -> bool:
        state = leader_in.get(pc)
        if state is None:
            leader_in[pc] = (dict(regs), set(upreds))
            return True
        iregs, ipreds = state
        changed = False
        for d in list(iregs):
            v = join(iregs[d], regs.get(d))
            if v is None:
                del iregs[d]
                changed = True
            elif v != iregs[d]:
                iregs[d] = v
                changed = True
        dropped = ipreds - upreds
        if dropped:
            ipreds -= dropped
            changed = True
        return changed

    strides: dict[int, int] = {}
    for _ in range(n + 4):
        changed = False
        regs.clear()
        upreds.clear()
        live = True  # is the walk position reachable on some path?
        regions: list = []  # open divergent regions: (reconv pc, defs)
        for pc, rec in enumerate(records):
            if pc in leaders:
                if live:
                    for end, defs in regions:
                        if end <= pc:  # falling out of the region
                            kill(defs)
                    if meet_into(pc):
                        changed = True
                state = leader_in.get(pc)
                live = state is not None
                regs.clear()
                upreds.clear()
                if live:
                    regs.update(state[0])
                    upreds.update(state[1])
            while regions and regions[-1][0] <= pc:
                regions.pop()
            if not live:
                continue
            inst = rec.inst
            if rec.kind == K_BRA:
                guard = inst.guard
                uniform = guard is None or guard in upreds
                target = rec.target
                if not uniform:
                    if 0 <= target < pc:
                        return {}  # divergent backward branch: give up
                    end = rec.reconv_pc
                    if end > pc + 1:
                        regions.append((end, span_defs(pc + 1, end)))
                if 0 <= target < n:
                    saved = (dict(regs), set(upreds))
                    for end, defs in regions:
                        if end <= target:  # taken edge leaves the region
                            kill(defs)
                    if meet_into(target):
                        changed = True
                    regs.clear()
                    upreds.clear()
                    regs.update(saved[0])
                    upreds.update(saved[1])
                if guard is None:
                    live = False  # unconditional: fall-through is dead
                continue
            if rec.kind != K_VALUE:
                # Barriers fall through; a *guarded* EXIT is per-lane
                # and also falls through (see docstring).
                if rec.kind == K_EXIT and inst.guard is None:
                    live = False
                continue
            # Record timed-mem address facts positionally: the walk of
            # the final (stable) pass leaves the proven strides.  The
            # record's own guard does not matter — a masked access is a
            # lane subset, which the endpoint checks at use handle.
            if rec.is_timed_mem:
                a = eval_src(inst.srcs[0])
                if a is not None:
                    strides[pc] = int(a[0])
                else:
                    strides.pop(pc, None)
            dst = inst.dst
            if dst is None:
                continue
            guard = inst.guard
            if guard is not None and guard not in upreds:
                kill((dst,))  # divergent maybe-write: a lane blend
                continue
            maybe = guard is not None  # uniform guard: all-or-nothing
            if isinstance(dst, Pred):
                op = inst.op
                if op is Op.SETP:
                    a = eval_src(inst.srcs[0])
                    b = eval_src(inst.srcs[1])
                    new = (a is not None and a[0] == 0
                           and b is not None and b[0] == 0)
                elif op is Op.PNOT:
                    new = inst.srcs[0] in upreds
                elif op in (Op.PAND, Op.POR):
                    new = (inst.srcs[0] in upreds
                           and inst.srcs[1] in upreds)
                else:
                    new = False
                if maybe:
                    new = new and dst in upreds
                if new:
                    upreds.add(dst)
                else:
                    upreds.discard(dst)
                continue
            new = transfer(inst)
            if maybe:
                new = join(regs.get(dst), new)
            if new is not None:
                regs[dst] = new
            else:
                regs.pop(dst, None)
        if not changed:
            break
    else:
        return {}
    return strides


def _latency_of(config: GpuConfig, fu: FuClass) -> int:
    if fu is FuClass.ALU:
        return config.alu_latency
    if fu is FuClass.MUL:
        return config.mul_latency
    if fu is FuClass.SFU:
        return config.sfu_latency
    return config.alu_latency


class ExecPlan:
    """Per-(kernel, config) table of :class:`PlannedInst` records."""

    __slots__ = ("kernel", "config", "records", "rb_flags", "num_insts",
                 "instructions", "inst_ids", "labels_key", "sb_len",
                 "_sb_info", "_mem_strides", "gen_source")

    def __init__(self, kernel: Kernel, config: GpuConfig,
                 reconv: dict[int, int]) -> None:
        self.kernel = kernel
        self.config = config
        # Strong references pin the instruction ids the fingerprint uses.
        self.instructions = tuple(kernel.instructions)
        self.inst_ids = tuple(map(id, self.instructions))
        self.labels_key = tuple(sorted(kernel.labels.items()))
        self.num_insts = len(self.instructions)
        self.records = [PlannedInst(i, inst, kernel, config, reconv)
                        for i, inst in enumerate(self.instructions)]
        self.rb_flags = [rec.is_rb for rec in self.records]
        from .superblock import superblock_lengths

        #: Per-PC superblock lengths for batched execution (repro.sim.
        #: superblock); metadata for each block start is built lazily.
        self.sb_len = superblock_lengths(self.records)
        self._sb_info: dict = {}
        #: Memory signatures per launch geometry: {block_x: {pc: stride}}.
        self._mem_strides: dict = {}
        # Exec-compiled per-record functions replace the closure-chain
        # ``run``s (repro.sim.codegen); generated code shares the plan's
        # cache entry, so instruction mutation or a config change
        # rebuilds it along with the plan.
        from .codegen import specialize_plan

        specialize_plan(self)

    def superblock_info(self, pc: int):
        """Lazily-built :class:`~repro.sim.superblock.SuperblockInfo`
        for the superblock starting at ``pc``."""
        info = self._sb_info.get(pc)
        if info is None:
            from .superblock import SuperblockInfo

            info = SuperblockInfo(self.records, pc, self.sb_len[pc])
            self._sb_info[pc] = info
        return info

    def mem_strides(self, block_x: int) -> dict[int, int]:
        """Proven per-lane address strides of timed-mem records under a
        launch with ``blockDim.x == block_x`` (see
        :func:`analyze_mem_strides`), computed once per geometry."""
        sigs = self._mem_strides.get(block_x)
        if sigs is None:
            sigs = analyze_mem_strides(self.records, self.config.warp_size,
                                       block_x)
            self._mem_strides[block_x] = sigs
        return sigs

    def matches(self, kernel: Kernel) -> bool:
        return (self.inst_ids == tuple(map(id, kernel.instructions))
                and self.labels_key == tuple(sorted(kernel.labels.items())))


#: Most plans a kernel retains at once: a kernel relaunched under many
#: distinct GpuConfigs (latency sweeps, architecture comparisons) evicts
#: its least-recently-used plan instead of accumulating them unboundedly.
PLAN_CACHE_SIZE = 8


def get_plan(kernel: Kernel, config: GpuConfig) -> ExecPlan:
    """The (cached) execution plan of ``kernel`` under ``config``.

    The cache lives on the kernel object, keyed by the full ``GpuConfig``
    (frozen, hashable — warp size, latencies, cache geometry all change
    lowering) and validated against the current instruction identities
    and labels, so mutating a kernel in place transparently invalidates
    its plans while repeated launches — campaign trials — hit the cache.
    The cache is LRU-bounded at :data:`PLAN_CACHE_SIZE` entries (dicts
    preserve insertion order; hits reinsert their key at the end).
    """
    cache = kernel.__dict__.get("_exec_plans")
    if cache is None:
        cache = {}
        kernel.__dict__["_exec_plans"] = cache
    plan = cache.pop(config, None)
    if plan is not None and plan.matches(kernel):
        cache[config] = plan  # reinsert: most recently used
        return plan
    plan = ExecPlan(kernel, config, reconvergence_table_for(kernel))
    cache[config] = plan
    while len(cache) > PLAN_CACHE_SIZE:
        cache.pop(next(iter(cache)))
    return plan


__all__ = ["ExecPlan", "PlannedInst", "analyze_mem_strides", "get_plan",
           "PLAN_CACHE_SIZE",
           "K_VALUE", "K_BRA", "K_BAR", "K_EXIT",
           "T_ATOMIC", "T_SHARED", "T_GLOBAL"]
