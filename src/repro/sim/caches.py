"""Tag-only set-associative caches with LRU replacement.

Timing-only: data lives in the functional memory arrays; the caches just
decide hit/miss for latency.  L1 is per-SM (write-through, no
write-allocate, as on Fermi for global stores); L2 is shared.
"""

from __future__ import annotations

from ..arch import CacheConfig


class Cache:
    """A set-associative LRU cache over word addresses."""

    def __init__(self, config: CacheConfig, name: str = "cache") -> None:
        self.config = config
        self.name = name
        # Each set is a list of line tags, most-recently-used last.
        self._sets: list[list[int]] = [[] for _ in range(config.num_sets)]
        self.hits = 0
        self.misses = 0

    def _locate(self, word_addr: int) -> tuple[list[int], int]:
        line = word_addr // self.config.line_words
        return self._sets[line % self.config.num_sets], line

    def access(self, word_addr: int, is_store: bool = False) -> bool:
        """Access one line; returns True on hit.  Loads allocate on miss,
        stores are write-through no-allocate."""
        ways, line = self._locate(word_addr)
        if line in ways:
            self.hits += 1
            ways.remove(line)
            ways.append(line)
            return True
        self.misses += 1
        if not is_store:
            if len(ways) >= self.config.assoc:
                ways.pop(0)
            ways.append(line)
        return False

    def invalidate(self) -> None:
        for ways in self._sets:
            ways.clear()

    # ------------------------------------------------------------------
    # Checkpoint support
    # ------------------------------------------------------------------
    def capture_state(self) -> tuple:
        """Full replacement state: per-set tag lists (LRU order is the
        replacement state, so order is preserved) plus the counters."""
        return (tuple(tuple(ways) for ways in self._sets),
                self.hits, self.misses)

    def restore_state(self, state: tuple) -> None:
        sets, hits, misses = state
        self._sets = [list(ways) for ways in sets]
        self.hits = hits
        self.misses = misses

    def state_equals(self, state: tuple) -> bool:
        """Exact equality against a :meth:`capture_state` snapshot,
        without capturing: short-circuits on the first differing set."""
        sets, hits, misses = state
        if self.hits != hits or self.misses != misses:
            return False
        if len(self._sets) != len(sets):
            return False
        return all(tuple(ways) == ref
                   for ways, ref in zip(self._sets, sets))

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def miss_rate(self) -> float:
        return self.misses / self.accesses if self.accesses else 0.0

    def counters(self) -> dict:
        """Plain-data counter snapshot for telemetry/trace exporters."""
        return {"hits": self.hits, "misses": self.misses,
                "miss_rate": self.miss_rate}
