"""Tag-only set-associative caches with LRU replacement.

Timing-only: data lives in the functional memory arrays; the caches just
decide hit/miss for latency.  L1 is per-SM (write-through, no
write-allocate, as on Fermi for global stores); L2 is shared.
"""

from __future__ import annotations

from ..arch import CacheConfig


class Cache:
    """A set-associative LRU cache over word addresses."""

    def __init__(self, config: CacheConfig, name: str = "cache") -> None:
        self.config = config
        self.name = name
        # Each set is a list of line tags, most-recently-used last.
        self._sets: list[list[int]] = [[] for _ in range(config.num_sets)]
        self.hits = 0
        self.misses = 0

    def _locate(self, word_addr: int) -> tuple[list[int], int]:
        line = word_addr // self.config.line_words
        return self._sets[line % self.config.num_sets], line

    def access(self, word_addr: int, is_store: bool = False) -> bool:
        """Access one line; returns True on hit.  Loads allocate on miss,
        stores are write-through no-allocate."""
        ways, line = self._locate(word_addr)
        if line in ways:
            self.hits += 1
            ways.remove(line)
            ways.append(line)
            return True
        self.misses += 1
        if not is_store:
            if len(ways) >= self.config.assoc:
                ways.pop(0)
            ways.append(line)
        return False

    def invalidate(self) -> None:
        for ways in self._sets:
            ways.clear()

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def miss_rate(self) -> float:
        return self.misses / self.accesses if self.accesses else 0.0
