"""Tag-only set-associative caches with LRU replacement.

Timing-only: data lives in the functional memory arrays; the caches just
decide hit/miss for latency.  L1 is per-SM (write-through, no
write-allocate, as on Fermi for global stores); L2 is shared.

Two interchangeable implementations share one external contract
(including the :meth:`capture_state` tuple format, so checkpoints taken
under one implementation restore under the other):

* :class:`Cache` — the scalar reference model.  One Python dict per set,
  insertion order = LRU order (oldest first), so a hit is a move-to-back
  (two O(1) dict ops) instead of the old O(assoc) ``list.remove``.
* :class:`BatchCache` — the NumPy-backed model.  Per-set tag rows in one
  ``(num_sets, assoc)`` array, right-aligned with the MRU tag in the
  last column, answering whole segment vectors (and stacked
  warp×segment matrices) in one call with bit-exact hit/miss decisions
  and replacement order versus the scalar model.

``make_cache`` picks the implementation: :class:`BatchCache` by
default, the scalar oracle when ``REPRO_SCALAR_CACHE=1`` is set (the
equivalence and property suites drive both and diff their states).
"""

from __future__ import annotations

import os

import numpy as np

from ..arch import CacheConfig


class Cache:
    """A set-associative LRU cache over word addresses (scalar oracle)."""

    def __init__(self, config: CacheConfig, name: str = "cache") -> None:
        self.config = config
        self.name = name
        # Each set is an insertion-ordered dict of line tags: oldest
        # (LRU) first, most-recently-used last.  Values are unused.
        self._sets: list[dict[int, None]] = [{} for _
                                             in range(config.num_sets)]
        self.hits = 0
        self.misses = 0

    def _locate(self, word_addr: int) -> tuple[dict[int, None], int]:
        line = word_addr // self.config.line_words
        return self._sets[line % self.config.num_sets], line

    def access(self, word_addr: int, is_store: bool = False) -> bool:
        """Access one line; returns True on hit.  Loads allocate on miss,
        stores are write-through no-allocate."""
        ways, line = self._locate(word_addr)
        if line in ways:
            self.hits += 1
            del ways[line]       # move-to-back: re-insert as MRU
            ways[line] = None
            return True
        self.misses += 1
        if not is_store:
            if len(ways) >= self.config.assoc:
                del ways[next(iter(ways))]   # evict LRU (oldest entry)
            ways[line] = None
        return False

    def access_lines(self, lines: np.ndarray,
                     is_store: bool = False) -> np.ndarray:
        """Access a vector of *line numbers* (already divided by
        ``line_words``) in order; returns a boolean hit vector.  The
        scalar model serves as the sequential-semantics oracle for
        :meth:`BatchCache.access_lines`."""
        num_sets = self.config.num_sets
        assoc = self.config.assoc
        sets = self._sets
        out = np.empty(len(lines), dtype=bool)
        hits = 0
        for i, line in enumerate(lines):
            line = int(line)
            ways = sets[line % num_sets]
            if line in ways:
                hits += 1
                del ways[line]
                ways[line] = None
                out[i] = True
                continue
            self.misses += 1
            if not is_store:
                if len(ways) >= assoc:
                    del ways[next(iter(ways))]
                ways[line] = None
            out[i] = False
        self.hits += hits
        return out

    def access_matrix(self, lines: np.ndarray,
                      is_store: bool = False) -> np.ndarray:
        """Row-major access over a stacked (e.g. warp × segment) matrix
        of line numbers; negative entries are padding and never touch
        the cache.  Returns a boolean matrix (padding rows False)."""
        out = np.zeros(lines.shape, dtype=bool)
        for r in range(lines.shape[0]):
            row = lines[r]
            valid = row >= 0
            if valid.all():
                out[r] = self.access_lines(row, is_store)
            elif valid.any():
                out[r, valid] = self.access_lines(row[valid], is_store)
        return out

    def invalidate(self) -> None:
        for ways in self._sets:
            ways.clear()

    # ------------------------------------------------------------------
    # Checkpoint support
    # ------------------------------------------------------------------
    def capture_state(self) -> tuple:
        """Full replacement state: per-set tag tuples (LRU order is the
        replacement state, so order is preserved — oldest first) plus
        the counters."""
        return (tuple(tuple(ways) for ways in self._sets),
                self.hits, self.misses)

    def restore_state(self, state: tuple) -> None:
        sets, hits, misses = state
        self._sets = [dict.fromkeys(ways) for ways in sets]
        self.hits = hits
        self.misses = misses

    def state_equals(self, state: tuple) -> bool:
        """Exact equality against a :meth:`capture_state` snapshot,
        without capturing: short-circuits on the first differing set."""
        sets, hits, misses = state
        if self.hits != hits or self.misses != misses:
            return False
        if len(self._sets) != len(sets):
            return False
        return all(tuple(ways) == ref
                   for ways, ref in zip(self._sets, sets))

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def miss_rate(self) -> float:
        return self.misses / self.accesses if self.accesses else 0.0

    def counters(self) -> dict:
        """Plain-data counter snapshot for telemetry/trace exporters."""
        return {"hits": self.hits, "misses": self.misses,
                "miss_rate": self.miss_rate}


class BatchCache:
    """NumPy-backed set-associative LRU cache, bit-exact vs :class:`Cache`.

    Tag storage is one ``(num_sets, assoc)`` int64 array per cache.
    Each row is a set, right-aligned: empty ways are ``-1`` on the left,
    the LRU valid tag is the leftmost valid entry, the MRU tag is in the
    last column.  A hit removes the tag from its position and re-appends
    it on the right; a load miss shifts the whole row left (dropping the
    leftmost slot — the LRU tag when full, a ``-1`` pad otherwise) and
    appends on the right; a store miss leaves the row untouched.  These
    are exactly the scalar model's dict operations, so replacement
    decisions — and therefore every downstream latency — are identical.

    ``access_lines`` answers a whole segment vector in one call.  When
    the lines map to pairwise-distinct sets (the common case for
    coalesced accesses: consecutive lines hit consecutive sets) the
    probe *and* the per-row reorder are single vectorized expressions;
    colliding sets fall back to in-order scalar row updates, preserving
    sequential semantics.
    """

    def __init__(self, config: CacheConfig, name: str = "cache") -> None:
        self.config = config
        self.name = name
        self._tags = np.full((config.num_sets, config.assoc), -1,
                             dtype=np.int64)
        self.hits = 0
        self.misses = 0

    # ------------------------------------------------------------------
    # Scalar access (drop-in for Cache.access)
    # ------------------------------------------------------------------
    def access(self, word_addr: int, is_store: bool = False) -> bool:
        line = word_addr // self.config.line_words
        return self._access_line(line, is_store)

    def _access_line(self, line: int, is_store: bool) -> bool:
        row = self._tags[line % self.config.num_sets]
        pos = np.nonzero(row == line)[0]
        if pos.size:
            self.hits += 1
            p = int(pos[0])
            row[p:-1] = row[p + 1:]
            row[-1] = line
            return True
        self.misses += 1
        if not is_store:
            row[:-1] = row[1:]
            row[-1] = line
        return False

    # ------------------------------------------------------------------
    # Vector access
    # ------------------------------------------------------------------
    def access_lines(self, lines: np.ndarray,
                     is_store: bool = False) -> np.ndarray:
        """Access a vector of line numbers in order; returns the hit
        vector.  Bit-exact with applying :meth:`Cache.access` to each
        line sequentially."""
        n = len(lines)
        if n == 1:
            return np.array([self._access_line(int(lines[0]), is_store)])
        lines = np.asarray(lines, dtype=np.int64)
        num_sets = self.config.num_sets
        sets = lines % num_sets
        if len(np.unique(sets)) != n:
            # Same-set collisions: later accesses observe earlier
            # updates, so replay in order.
            out = np.empty(n, dtype=bool)
            for i in range(n):
                out[i] = self._access_line(int(lines[i]), is_store)
            return out
        tags = self._tags
        rows = tags[sets]                       # (n, assoc) copy
        eq = rows == lines[:, None]
        hit = eq.any(axis=1)
        self.hits += int(hit.sum())
        self.misses += n - int(hit.sum())
        # Position to vacate: the hit position, else slot 0 (the LRU tag
        # when the set is full, a -1 pad otherwise — either way the slot
        # a load miss shifts out).
        p = np.where(hit, eq.argmax(axis=1), 0)
        assoc = self.config.assoc
        k = np.arange(assoc - 1, dtype=np.int64)[None, :]
        gather = k + (k >= p[:, None])
        shifted = np.take_along_axis(rows, gather, axis=1)
        new_rows = np.empty_like(rows)
        new_rows[:, :-1] = shifted
        new_rows[:, -1] = lines
        if is_store:
            update = hit                        # store misses: no change
        else:
            update = None
        if update is None:
            tags[sets] = new_rows
        else:
            tags[sets] = np.where(update[:, None], new_rows, rows)
        return hit

    def access_matrix(self, lines: np.ndarray,
                      is_store: bool = False) -> np.ndarray:
        """Row-major access over a stacked (warp × segment) matrix of
        line numbers; negative entries are padding.  Row order is the
        access order, matching a per-warp sequential replay."""
        out = np.zeros(lines.shape, dtype=bool)
        for r in range(lines.shape[0]):
            row = lines[r]
            valid = row >= 0
            if valid.all():
                out[r] = self.access_lines(row, is_store)
            elif valid.any():
                out[r, valid] = self.access_lines(row[valid], is_store)
        return out

    def invalidate(self) -> None:
        self._tags[:] = -1

    # ------------------------------------------------------------------
    # Checkpoint support (format shared with Cache)
    # ------------------------------------------------------------------
    def capture_state(self) -> tuple:
        sets = tuple(tuple(int(t) for t in row[row >= 0])
                     for row in self._tags)
        return (sets, self.hits, self.misses)

    def restore_state(self, state: tuple) -> None:
        sets, hits, misses = state
        self._tags = np.full((self.config.num_sets, self.config.assoc),
                             -1, dtype=np.int64)
        for row, ways in zip(self._tags, sets):
            if ways:
                row[-len(ways):] = ways
        self.hits = hits
        self.misses = misses

    def state_equals(self, state: tuple) -> bool:
        sets, hits, misses = state
        if self.hits != hits or self.misses != misses:
            return False
        if len(self._tags) != len(sets):
            return False
        for row, ref in zip(self._tags, sets):
            valid = row[row >= 0]
            if len(valid) != len(ref) or not (valid == ref).all():
                return False
        return True

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def miss_rate(self) -> float:
        return self.misses / self.accesses if self.accesses else 0.0

    def counters(self) -> dict:
        return {"hits": self.hits, "misses": self.misses,
                "miss_rate": self.miss_rate}


def make_cache(config: CacheConfig, name: str = "cache"):
    """The live cache model: :class:`BatchCache` unless the
    ``REPRO_SCALAR_CACHE=1`` oracle flag asks for the scalar model."""
    if os.environ.get("REPRO_SCALAR_CACHE") == "1":
        return Cache(config, name)
    return BatchCache(config, name)
