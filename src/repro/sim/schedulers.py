"""Warp schedulers: GTO, LRR, OLD, and Two-Level (Section VI-B3).

A scheduler instance manages the warps of one issue slot of an SM.  Each
cycle the SM asks it to pick one issuable warp from the candidates
(warps that are ACTIVE with ready operands and no structural hazard);
the policies only differ in the order candidates are considered.
"""

from __future__ import annotations

from bisect import insort

from ..errors import ConfigError
from .warp import Warp

#: Sort key for age-ordered schedulers.
_BY_AGE = lambda w: w.age  # noqa: E731


class WarpScheduler:
    """Base scheduler; subclasses define the candidate ordering."""

    name = "base"

    #: Timing-script horizon (repro.sim.superblock): while ``cycle <=
    #: script_until`` this scheduler's current warp has already had its
    #: issues bulk-applied, so ``Sm.tick`` counts an issue without
    #: calling ``pick``.  Derived state — always in the past at any
    #: checkpoint boundary (scripts cannot span observer events), so it
    #: is deliberately absent from capture/restore.
    script_until = -1

    #: Failed-pick memo (fast path only): after a pick returns None,
    #: ``Sm.tick`` records the earliest cycle any managed warp could
    #: become issuable plus a validation stamp (sum of warp versions and
    #: the SM's LSU horizon); until then a re-pick provably fails too,
    #: so it is skipped.  Only valid for policies whose failed pick has
    #: no side effects (``pick_pure_on_fail``) — Two-Level demotes
    #: stalled warps on failure and must re-run every cycle.  Derived
    #: state, absent from capture/restore like ``script_until``.
    none_until = -1
    none_vstamp = -1
    none_lsu = -1
    pick_pure_on_fail = True

    def __init__(self) -> None:
        self.warps: list[Warp] = []

    def attach(self, warp: Warp) -> None:
        self.warps.append(warp)
        self.none_until = -1

    def detach(self, warp: Warp) -> None:
        self.warps.remove(warp)
        self.none_until = -1

    def pick(self, issuable, cycle: int) -> Warp | None:
        """Choose a warp among this scheduler's warps.

        ``issuable(warp, cycle)`` tells whether a warp can issue this
        cycle (two-argument so the SM can pass a bound method directly
        instead of allocating a closure every tick).
        """
        raise NotImplementedError

    # ------------------------------------------------------------------
    # Checkpoint support
    # ------------------------------------------------------------------
    def capture_state(self) -> dict:
        """Plain-data policy state: the managed warps (by id, in list
        order — the order *is* scheduler state) plus policy extras."""
        return {"warps": tuple(w.id for w in self.warps),
                "extra": self._extra_state()}

    def restore_state(self, state: dict, warp_map: dict[int, Warp]) -> None:
        self.none_until = -1
        self.warps = [warp_map[wid] for wid in state["warps"]]
        for warp in self.warps:
            warp.scheduler = self
        self._restore_extra(state["extra"], warp_map)

    def state_equals(self, state: dict) -> bool:
        """Exact equality against a :meth:`capture_state` snapshot
        (policy extras are plain scalars/tuples on every policy)."""
        return (tuple(w.id for w in self.warps) == state["warps"]
                and self._extra_state() == state["extra"])

    def _extra_state(self):
        return None

    def _restore_extra(self, extra, warp_map: dict[int, Warp]) -> None:
        pass


class AgeSortedScheduler(WarpScheduler):
    """Base for policies that consider warps oldest-first: keeps
    ``self.warps`` age-sorted at attach time (ages are unique and
    ``insort`` places equal keys last, matching a stable sort) so
    ``pick`` iterates directly instead of re-sorting every cycle."""

    def attach(self, warp: Warp) -> None:
        insort(self.warps, warp, key=_BY_AGE)
        self.none_until = -1


class GtoScheduler(AgeSortedScheduler):
    """Greedy-Then-Oldest: stick with the current warp until it stalls,
    then switch to the oldest ready warp (GPGPU-Sim's default)."""

    name = "GTO"

    def __init__(self) -> None:
        super().__init__()
        self._current: Warp | None = None

    def detach(self, warp: Warp) -> None:
        super().detach(warp)
        if self._current is warp:
            self._current = None

    def pick(self, issuable, cycle: int) -> Warp | None:
        current = self._current
        if (current is not None and current in self.warps
                and issuable(current, cycle)):
            return current
        for warp in self.warps:
            if issuable(warp, cycle):
                self._current = warp
                return warp
        self._current = None
        return None

    def _extra_state(self):
        return None if self._current is None else self._current.id

    def _restore_extra(self, extra, warp_map) -> None:
        self._current = None if extra is None else warp_map[extra]


class OldestScheduler(AgeSortedScheduler):
    """OLD: always pick the oldest ready warp."""

    name = "OLD"

    def pick(self, issuable, cycle: int) -> Warp | None:
        for warp in self.warps:
            if issuable(warp, cycle):
                return warp
        return None


class LrrScheduler(WarpScheduler):
    """Loose Round-Robin: rotate through warps, skipping stalled ones."""

    name = "LRR"

    def __init__(self) -> None:
        super().__init__()
        self._next = 0

    def pick(self, issuable, cycle: int) -> Warp | None:
        n = len(self.warps)
        if not n:
            return None
        for step in range(n):
            warp = self.warps[(self._next + step) % n]
            if issuable(warp, cycle):
                self._next = (self._next + step + 1) % n
                return warp
        return None

    def _extra_state(self):
        return self._next

    def _restore_extra(self, extra, warp_map) -> None:
        self._next = extra


class TwoLevelScheduler(WarpScheduler):
    """Two-Level: keep a small active set scheduled LRR; when an active
    warp stalls long-term it swaps with a pending warp."""

    name = "2LV"
    pick_pure_on_fail = False

    def __init__(self, active_size: int = 8) -> None:
        super().__init__()
        if active_size < 1:
            raise ConfigError("active set must hold at least one warp")
        self.active_size = active_size
        self._active: list[Warp] = []
        self._next = 0

    def detach(self, warp: Warp) -> None:
        super().detach(warp)
        if warp in self._active:
            self._active.remove(warp)

    def _refill(self, issuable, cycle: int) -> None:
        if len(self._active) >= min(self.active_size, len(self.warps)):
            return
        pending = [w for w in self.warps if w not in self._active]
        pending.sort(key=lambda w: w.age)
        # Prefer ready pending warps; fall back to any to keep the set full.
        for wanted_ready in (True, False):
            for warp in pending:
                if len(self._active) >= self.active_size:
                    return
                if warp in self._active:
                    continue
                if wanted_ready and not issuable(warp, cycle):
                    continue
                self._active.append(warp)

    def pick(self, issuable, cycle: int) -> Warp | None:
        self._refill(issuable, cycle)
        n = len(self._active)
        for step in range(n):
            warp = self._active[(self._next + step) % n]
            if issuable(warp, cycle):
                self._next = (self._next + step + 1) % n
                return warp
        # Whole active set stalled: demote stalled warps so the next
        # refill can promote pending ready ones.
        stalled = [w for w in self._active if not issuable(w, cycle)]
        pending_ready = [w for w in self.warps
                         if w not in self._active and issuable(w, cycle)]
        for warp, replacement in zip(stalled, pending_ready):
            self._active.remove(warp)
            self._active.append(replacement)
        if pending_ready:
            return self.pick(
                lambda w, c: issuable(w, c) and w in self._active, cycle)
        return None

    def _extra_state(self):
        return (tuple(w.id for w in self._active), self._next)

    def _restore_extra(self, extra, warp_map) -> None:
        active, self._next = extra
        self._active = [warp_map[wid] for wid in active]


SCHEDULERS: dict[str, type[WarpScheduler]] = {
    "GTO": GtoScheduler,
    "OLD": OldestScheduler,
    "LRR": LrrScheduler,
    "2LV": TwoLevelScheduler,
}


def make_scheduler(name: str) -> WarpScheduler:
    try:
        return SCHEDULERS[name]()
    except KeyError:
        raise ConfigError(
            f"unknown scheduler {name!r}; choose from {sorted(SCHEDULERS)}"
        ) from None
