"""Superblock-vectorized execution: batched lane × warp NumPy dispatch.

A *superblock* is a maximal run of consecutive ``K_VALUE`` plan records
with no control transfer, barrier, timed memory operation, or region
boundary inside it — straight-line warp-private code.  ``ExecPlan``
precomputes, per PC, the length of the superblock starting there
(:func:`superblock_lengths`); ``Sm._issue_fast`` uses it to execute the
whole block once for *all* co-resident warps parked at the same PC,
amortizing the NumPy per-call dispatch overhead across ``k`` warps by
stacking their register/predicate rows into ``(k, warp_size)`` arrays
and running each record's existing ``run`` closure a single time.

Timing stays exact because batching only precomputes *values*: every
architectural write is held in a side buffer (:class:`Prefetch`) and
applied to the warp's register file at the cycle the scoreboard model
actually issues that record — the machine state observed between issues
is byte-identical to per-record dispatch.  Soundness rests on three
invariants:

* Superblock records are warp-private (no timed memory, no RB markers,
  no control flow), so warp *i*'s outputs depend only on warp *i*'s
  inputs at block entry — row ``i`` of every stacked result equals the
  per-warp computation exactly (NumPy elementwise kernels are
  lane-independent).
* In this model writebacks land at issue time (latency only delays
  dependent issues via the scoreboard), so values computed from block-
  entry state are the values the reference interpreter would produce —
  unless something mutates the warp mid-block, which is exactly the
  invalidation condition below.
* Any out-of-band mutation invalidates the side buffer before it can be
  observed: fault-injector activity bumps a per-SM epoch
  (``Sm._value_epoch``) and every rollback path funnels through
  ``WarpSnapshot.restore``, which drops the warp's prefetch.  Blocks
  additionally split at every static reconvergence PC so SIMT stack
  pops can never widen an active mask mid-block.
"""

from __future__ import annotations

import numpy as np

from ..isa import Pred, Special
from .plan import K_BRA, K_VALUE

#: Positional index of each special register (LaneContext.special_rows).
_SPECIAL_INDEX = {special: i for i, special in enumerate(Special)}


def superblock_lengths(records) -> list[int]:
    """``lengths[pc]`` = number of records in the superblock starting at
    ``pc`` (0 when the record at ``pc`` cannot start one).

    Eligible records are untimed ``K_VALUE`` non-boundary instructions;
    a block also splits *before* any PC that is a potential
    reconvergence point, because ``Warp.advance`` pops SIMT stack
    entries on arrival there, which can widen the active mask mid-block.
    """
    n = len(records)
    reconv_targets = {rec.reconv_pc for rec in records if rec.kind == K_BRA}
    lengths = [0] * n
    for i in range(n - 1, -1, -1):
        rec = records[i]
        if rec.kind != K_VALUE or rec.is_rb or rec.is_timed_mem:
            continue
        nxt = i + 1
        if nxt < n and lengths[nxt] > 0 and nxt not in reconv_targets:
            lengths[i] = lengths[nxt] + 1
        else:
            lengths[i] = 1
    return lengths


class SuperblockInfo:
    """Static metadata for the superblock starting at ``pc0``: which
    register/predicate/special rows the block touches, each record's
    destination row, and the hazard structure used to bound timing
    scripts."""

    __slots__ = ("pc0", "n", "reg_rows", "pred_rows", "special_rows",
                 "dst_row", "dst_pred", "dst_copy", "hazard_free",
                 "uses")

    def __init__(self, records, pc0: int, n: int) -> None:
        self.pc0 = pc0
        self.n = n
        reg_rows: set[int] = set()
        pred_rows: set[int] = set()
        special_rows: set[int] = set()
        dst_row = []
        dst_pred = []
        writes = []
        for rec in records[pc0:pc0 + n]:
            inst = rec.inst
            for reg in inst.read_regs():
                reg_rows.add(reg.index)
            for pred in inst.read_preds():
                pred_rows.add(pred.index)
            for src in inst.srcs:
                if isinstance(src, Special):
                    special_rows.add(_SPECIAL_INDEX[src])
            dst = inst.dst
            if dst is None:
                dst_row.append(-1)
                dst_pred.append(False)
                writes.append(None)
            else:
                is_pred = isinstance(dst, Pred)
                (pred_rows if is_pred else reg_rows).add(dst.index)
                dst_row.append(dst.index)
                dst_pred.append(is_pred)
                writes.append((is_pred, dst.index))
        # A record's output row may alias the stacked working array only
        # when no later record overwrites the same destination row.
        self.dst_copy = [w is not None and w in writes[j + 1:]
                         for j, w in enumerate(writes)]
        self.reg_rows = tuple(sorted(reg_rows))
        self.pred_rows = tuple(sorted(pred_rows))
        self.special_rows = tuple(sorted(special_rows))
        self.dst_row = dst_row
        self.dst_pred = dst_pred
        # Timing-script support: hazard_free[j] = the longest window of
        # records starting at offset j that can issue back-to-back on
        # consecutive cycles with no intra-window scoreboard stall (every
        # def-use / WAW pair is at least the producer's latency apart).
        pairs = []
        for v in range(n):
            rec = records[pc0 + v]
            dst = rec.inst.dst
            if dst is None:
                continue
            for u in range(v + 1, min(v + rec.latency, n)):
                if dst in records[pc0 + u].score_ops:
                    pairs.append((v, u))
                    break
        hazard_free = []
        for j in range(n):
            s = n - j
            for v, u in pairs:
                if v >= j and u - j < s:
                    s = u - j
            hazard_free.append(max(s, 1))
        self.hazard_free = hazard_free
        # Every block offset reading/redefining each scoreboard operand
        # (ascending) — bounds scripts against pending entries that
        # predate the window: the relevant use is the first one at or
        # after the window start, not the first in the block.
        uses: dict = {}
        for j in range(n):
            for op in records[pc0 + j].score_ops:
                uses.setdefault(op, []).append(j)
        self.uses = {op: tuple(offs) for op, offs in uses.items()}


class _StackedCtx:
    """Duck-typed :class:`LaneContext` whose register/predicate rows are
    ``(k, warp_size)`` stacks of ``k`` warps' rows.  Only the fields the
    plan's fetch/run closures touch exist; rows the block never reads or
    writes stay ``None``."""

    __slots__ = ("regs", "preds", "special_rows", "params", "warp_size")


class Prefetch:
    """Precomputed superblock outputs for a group of warps: per-record
    output rows and write masks, applied at each warp's real issue
    cycle.  ``epoch`` snapshots the SM's value epoch at creation; any
    injector activity bumps the epoch, orphaning every prefetch."""

    __slots__ = ("pc0", "n", "outs", "masks", "epoch", "info")

    def __init__(self, info: SuperblockInfo, outs: list, masks: list,
                 epoch: int) -> None:
        self.pc0 = info.pc0
        self.n = info.n
        self.outs = outs
        self.masks = masks
        self.epoch = epoch
        self.info = info


def build_prefetch(plan, info: SuperblockInfo, group: list,
                   epoch: int) -> Prefetch:
    """Execute the superblock at ``info.pc0`` once for all warps in
    ``group`` (each parked at exactly that PC) and park the results in a
    :class:`Prefetch` attached to every group member."""
    k = len(group)
    ctx0 = group[0].ctx
    sctx = _StackedCtx()
    sctx.params = ctx0.params
    sctx.warp_size = (k, ctx0.warp_size)
    regs: list = [None] * len(ctx0.regs)
    for row in info.reg_rows:
        regs[row] = np.stack([w.ctx.regs[row] for w in group])
    preds: list = [None] * len(ctx0.preds)
    for row in info.pred_rows:
        preds[row] = np.stack([w.ctx.preds[row] for w in group])
    sctx.regs = regs
    sctx.preds = preds
    specials: list = [None] * len(ctx0.special_rows)
    for row in info.special_rows:
        base = ctx0.special_rows[row]
        for w in group:
            if w.ctx.special_rows[row] is not base:
                # Rare: warps in different slots grouped — stack.
                base = np.stack([x.ctx.special_rows[row] for x in group])
                break
        # Shared frozen (warp_size,) specials broadcast against the
        # (k, warp_size) working rows without copying.
        specials[row] = base
    sctx.special_rows = specials
    actives = (np.stack([w.stack[-1].mask for w in group])
               & np.stack([w._not_exited for w in group]))
    pc0 = info.pc0
    n = info.n
    records = plan.records
    dst_row = info.dst_row
    dst_pred = info.dst_pred
    dst_copy = info.dst_copy
    outs: list = [None] * n
    masks: list = [None] * n
    for j in range(n):
        rec = records[pc0 + j]
        mask = rec.guard(sctx, actives)
        rec.run(sctx, mask, None, None)
        if rec.guard_recheck:
            # A predicate write aliasing its own guard: the reference
            # path records the *post*-execution mask.
            mask = rec.guard(sctx, actives)
        masks[j] = mask
        row = dst_row[j]
        if row >= 0:
            out = preds[row] if dst_pred[j] else regs[row]
            outs[j] = out.copy() if dst_copy[j] else out
    pf = Prefetch(info, outs, masks, epoch)
    for i, warp in enumerate(group):
        warp._pf = pf
        warp._pf_i = i
        warp._pf_j = 0
    return pf


__all__ = ["Prefetch", "SuperblockInfo", "build_prefetch",
           "superblock_lengths"]
