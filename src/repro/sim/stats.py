"""Simulation statistics."""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field, fields

from ..isa import FuClass

#: Stall causes, highest attribution priority first.  When several causes
#: apply to an idle SM cycle the earliest entry wins, so the ledger is a
#: partition of idle cycles (conservation: issue + stalls == active cycles).
STALL_CAUSES = (
    "rollback",        # re-execution window after a detected error
    "rbq_full",        # region boundary blocked on a full RBQ conveyor
    "memory_latency",  # scoreboard wait whose producer is an in-flight load
    "scoreboard_raw",  # scoreboard wait on an ALU/SFU producer (RAW)
    "barrier",         # all resident warps waiting at a CTA barrier
    "reconvergence",   # SIMT divergence bookkeeping (structurally 0 in
                       # this stack model: reconvergence is same-cycle)
    "verify_wait",     # warp parked in RBQ awaiting region verification
    "verify_dmr",      # warp parked for a DMR compare at a region end
    "abft_check",      # warp parked for an ABFT checksum verification
    "no_ready_warp",   # nothing else blocks, scheduler found no candidate
)

#: Counters that take the max rather than the sum when merging per-SM
#: blocks into a per-GPU block: wall-clock cycles are shared, and the
#: launch-shape policy numbers describe the kernel, not one SM.
_MERGE_MAX = ("cycles", "occupancy_warps", "regs_per_thread")

#: Dict-valued counters deep-merged key-wise.
_MERGE_DICT = ("stall_cycles", "warp_stalls", "superblock_fallbacks")

#: Counters that exist only on the batched fast path (the reference
#: interpreter has no superblocks, so A/B equivalence checks compare
#: stats dictionaries with these keys removed).
SUPERBLOCK_TELEMETRY = ("superblocks_executed", "superblock_insts",
                        "superblock_fallbacks", "mem_windows_executed",
                        "mem_window_insts")


@dataclass
class SimStats:
    """Counters accumulated over one kernel launch."""

    cycles: int = 0
    instructions: int = 0
    shadow_instructions: int = 0
    ckpt_instructions: int = 0
    boundary_instructions: int = 0
    by_fu: Counter = field(default_factory=Counter)
    idle_cycles: int = 0
    issue_cycles: int = 0
    #: Cycles this SM had at least one resident block (issue + idle).
    active_cycles: int = 0
    #: Idle cycles partitioned by cause (keys drawn from STALL_CAUSES).
    stall_cycles: dict = field(default_factory=dict)
    #: Per-warp view of the same ledger: warp id -> {cause: cycles}.
    #: SM-level causes with no single culprit warp book under id -1.
    warp_stalls: dict = field(default_factory=dict)
    # Memory system.
    global_transactions: int = 0
    shared_accesses: int = 0
    shared_bank_conflicts: int = 0
    l1_hits: int = 0
    l1_misses: int = 0
    l2_hits: int = 0
    l2_misses: int = 0
    atomic_ops: int = 0
    # Flame runtime.
    rbq_enqueues: int = 0
    rbq_full_stalls: int = 0
    verified_regions: int = 0
    region_instructions: int = 0
    recoveries: int = 0
    coalesced_recoveries: int = 0
    reexecuted_instructions: int = 0
    detected_errors: int = 0
    # Competitor runtimes (repro.core.competitors).
    dmr_compares: int = 0
    partial_protected_regions: int = 0
    partial_unprotected_regions: int = 0
    abft_checks: int = 0
    abft_corrections: int = 0
    # Superblock batching (fast path only; the reference interpreter
    # never batches, so A/B comparisons strip these — see
    # ``SUPERBLOCK_TELEMETRY``).
    superblocks_executed: int = 0
    superblock_insts: int = 0
    #: Reason -> count of batching opportunities that fell back to
    #: per-warp dispatch (keys: "invalidated", "no_peer", "tracer",
    #: "liveness", "sanitizer", "scheduler", and the memory-window
    #: disable reasons "resilience" / "multi_sm" / "window_stopper").
    superblock_fallbacks: dict = field(default_factory=dict)
    # Memory-aware scripted windows (fast path, GTO + null-resilience
    # launches only; stripped by A/B comparisons like the superblock
    # counters above).
    mem_windows_executed: int = 0
    mem_window_insts: int = 0
    # Launch shape.
    blocks_launched: int = 0
    warps_launched: int = 0
    occupancy_warps: int = 0
    regs_per_thread: int = 0

    def count_issue(self, fu: FuClass, shadow: bool, ckpt: bool) -> None:
        self.instructions += 1
        self.by_fu[fu] += 1
        if shadow:
            self.shadow_instructions += 1
        if ckpt:
            self.ckpt_instructions += 1

    def count_stall(self, cause: str, warp_id: int, cycles: int = 1) -> None:
        """Book ``cycles`` idle cycles against ``cause`` (and the warp
        that best represents it; -1 when no single warp is to blame)."""
        self.stall_cycles[cause] = self.stall_cycles.get(cause, 0) + cycles
        ledger = self.warp_stalls.setdefault(warp_id, {})
        ledger[cause] = ledger.get(cause, 0) + cycles

    @property
    def avg_region_size(self) -> float:
        """Average dynamic instructions per verified idempotent region."""
        if not self.verified_regions:
            return 0.0
        return self.region_instructions / self.verified_regions

    @property
    def ipc(self) -> float:
        return self.instructions / self.cycles if self.cycles else 0.0

    @property
    def l1_miss_rate(self) -> float:
        total = self.l1_hits + self.l1_misses
        return self.l1_misses / total if total else 0.0

    def merge(self, other: "SimStats") -> None:
        """Accumulate another stats block (e.g. per-SM into per-GPU).

        Driven by the dataclass field list so a new counter cannot be
        silently dropped: every field is either summed, maxed, dict-merged,
        or Counter-updated — exactly once.
        """
        for f in fields(self):
            name = f.name
            if name == "by_fu":
                self.by_fu.update(other.by_fu)
            elif name in _MERGE_MAX:
                setattr(self, name, max(getattr(self, name),
                                        getattr(other, name)))
            elif name in _MERGE_DICT:
                _merge_dict(getattr(self, name), getattr(other, name))
            else:
                setattr(self, name,
                        getattr(self, name) + getattr(other, name))

    def as_dict(self) -> dict:
        data = {}
        for f in fields(self):
            value = getattr(self, f.name)
            if f.name == "by_fu":
                value = {fu.value: n for fu, n in value.items()}
            elif f.name in ("stall_cycles", "superblock_fallbacks"):
                value = dict(value)
            elif f.name == "warp_stalls":
                value = {wid: dict(ledger) for wid, ledger in value.items()}
            data[f.name] = value
        data["avg_region_size"] = self.avg_region_size
        data["ipc"] = self.ipc
        return data

    def clone(self) -> "SimStats":
        """Independent deep copy (checkpoint/restore support)."""
        dup = SimStats()
        for f in fields(self):
            value = getattr(self, f.name)
            if f.name == "by_fu":
                value = Counter(value)
            elif f.name in ("stall_cycles", "superblock_fallbacks"):
                value = dict(value)
            elif f.name == "warp_stalls":
                value = {wid: dict(ledger) for wid, ledger in value.items()}
            setattr(dup, f.name, value)
        return dup


def _merge_dict(into: dict, other: dict) -> None:
    """Recursive key-wise sum of (possibly nested) int-valued dicts."""
    for key, value in other.items():
        if isinstance(value, dict):
            _merge_dict(into.setdefault(key, {}), value)
        else:
            into[key] = into.get(key, 0) + value
