"""Simulation statistics."""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

from ..isa import FuClass


@dataclass
class SimStats:
    """Counters accumulated over one kernel launch."""

    cycles: int = 0
    instructions: int = 0
    shadow_instructions: int = 0
    ckpt_instructions: int = 0
    boundary_instructions: int = 0
    by_fu: Counter = field(default_factory=Counter)
    idle_cycles: int = 0
    issue_cycles: int = 0
    # Memory system.
    global_transactions: int = 0
    shared_accesses: int = 0
    shared_bank_conflicts: int = 0
    l1_hits: int = 0
    l1_misses: int = 0
    l2_hits: int = 0
    l2_misses: int = 0
    atomic_ops: int = 0
    # Flame runtime.
    rbq_enqueues: int = 0
    rbq_full_stalls: int = 0
    verified_regions: int = 0
    region_instructions: int = 0
    recoveries: int = 0
    coalesced_recoveries: int = 0
    reexecuted_instructions: int = 0
    detected_errors: int = 0
    # Launch shape.
    blocks_launched: int = 0
    warps_launched: int = 0
    occupancy_warps: int = 0
    regs_per_thread: int = 0

    def count_issue(self, fu: FuClass, shadow: bool, ckpt: bool) -> None:
        self.instructions += 1
        self.by_fu[fu] += 1
        if shadow:
            self.shadow_instructions += 1
        if ckpt:
            self.ckpt_instructions += 1

    @property
    def avg_region_size(self) -> float:
        """Average dynamic instructions per verified idempotent region."""
        if not self.verified_regions:
            return 0.0
        return self.region_instructions / self.verified_regions

    @property
    def ipc(self) -> float:
        return self.instructions / self.cycles if self.cycles else 0.0

    @property
    def l1_miss_rate(self) -> float:
        total = self.l1_hits + self.l1_misses
        return self.l1_misses / total if total else 0.0

    def merge(self, other: "SimStats") -> None:
        """Accumulate another stats block (e.g. per-SM into per-GPU)."""
        for name in ("instructions", "shadow_instructions",
                     "ckpt_instructions", "boundary_instructions",
                     "idle_cycles", "issue_cycles", "global_transactions",
                     "shared_accesses", "shared_bank_conflicts", "l1_hits",
                     "l1_misses", "l2_hits", "l2_misses", "atomic_ops",
                     "rbq_enqueues", "rbq_full_stalls", "verified_regions",
                     "region_instructions", "recoveries",
                     "coalesced_recoveries", "reexecuted_instructions",
                     "detected_errors",
                     "blocks_launched", "warps_launched"):
            setattr(self, name, getattr(self, name) + getattr(other, name))
        self.by_fu.update(other.by_fu)
        self.cycles = max(self.cycles, other.cycles)

    def as_dict(self) -> dict:
        data = {k: v for k, v in self.__dict__.items() if k != "by_fu"}
        data["by_fu"] = {fu.value: n for fu, n in self.by_fu.items()}
        data["avg_region_size"] = self.avg_region_size
        data["ipc"] = self.ipc
        return data

    def clone(self) -> "SimStats":
        """Independent deep copy (checkpoint/restore support)."""
        dup = SimStats(**{k: v for k, v in self.__dict__.items()
                          if k != "by_fu"})
        dup.by_fu = Counter(self.by_fu)
        return dup
