"""Whole-machine checkpoint/restore and convergence detection.

The campaign engine re-simulates the fault-free prefix of every trial
and runs every faulty suffix to completion, even after the architectural
state has re-converged with the golden run.  This module removes both
redundancies:

* :func:`capture_gpu` / :meth:`Gpu launch's <repro.sim.gpu.Gpu.launch>`
  ``resume_from`` implement an explicit snapshot protocol over the whole
  machine — GPU/SM/warp execution state (PC, SIMT stack, register and
  predicate lanes, scoreboard, barrier counters, LSU occupancy), cache
  replacement state, the resilience runtime (RPT/RBQ conveyors,
  in-flight rollback bookkeeping), the fault injector's corruption
  tracking and trial RNG stream, and the stats counters.  Checkpoints
  are deep (restoring never aliases the checkpoint, so one golden
  checkpoint can seed any number of trials), version-tagged, and
  independent of the decode-once plan cache: plans are launch
  configuration, re-derived by the restore target's setup and never
  serialized.

* :class:`ConvergenceMonitor` compares the live machine against the
  recorded checkpoints through the same snapshot protocol (minus the
  stats observer and the injector, which the golden run does not
  carry), so state equality is *stronger* than "evolves identically":
  the two machines are checkpoint-for-checkpoint the same.  A faulty
  run whose state matches golden at a checkpoint boundary — after
  every strike has fired and every detection has been delivered — is
  guaranteed to finish with golden-identical memory and cycle count.
  The comparison is exact value equality field by field (each layer's
  ``state_equals`` mirrors its ``capture_state``), never a hash, and
  it short-circuits on the first differing field, so a non-converging
  trial pays microseconds per boundary rather than a serialization of
  the whole machine.

The capture point is pinned to the top of the launch loop, before that
cycle's block dispatch and injector tick; restore re-enters the loop at
the same point, which is what makes a restored trial byte-identical to
a direct one.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import SimError
from ..isa import Space

#: Bump when the checkpoint layout changes; restore refuses mismatches.
SNAPSHOT_VERSION = 1


@dataclass
class GpuCheckpoint:
    """One deep snapshot of the whole machine at a launch-loop boundary."""

    version: int
    cycle: int
    age: int
    dispatched: int
    global_mem: np.ndarray
    l2: tuple
    sms: tuple
    injector: dict | None
    #: Cheap control-flow fingerprint (see :func:`machine_probe`):
    #: compared before the full state walk so runs that are visibly
    #: divergent (different PCs / timing) skip the per-field check.
    probe: tuple = ()


def capture_gpu(gpu, cycle: int, age: int, dispatched: int,
                global_mem: np.ndarray) -> GpuCheckpoint:
    """Snapshot a GPU mid-launch (at the top of the launch loop)."""
    injector = gpu.fault_injector
    return GpuCheckpoint(
        version=SNAPSHOT_VERSION,
        cycle=cycle, age=age, dispatched=dispatched,
        global_mem=global_mem.copy(),
        l2=gpu.l2.capture_state(),
        sms=tuple(sm.capture_state() for sm in gpu.sms),
        injector=None if injector is None else injector.capture_state(),
        probe=machine_probe(gpu, dispatched),
    )


def restore_gpu(gpu, checkpoint: GpuCheckpoint, all_blocks: list,
                global_mem: np.ndarray) -> tuple[int, int, int]:
    """Overlay a checkpoint onto a freshly configured GPU.

    ``all_blocks`` is the deterministic block roster the launch setup
    just re-created (``Gpu._make_blocks``); the checkpoint references
    blocks and warps by id and this maps them back to live objects.
    Returns ``(cycle, age, dispatched)`` for the launch loop to resume
    from.
    """
    if checkpoint.version != SNAPSHOT_VERSION:
        raise SimError(
            f"checkpoint version {checkpoint.version} does not match "
            f"snapshot protocol version {SNAPSHOT_VERSION}")
    if len(checkpoint.sms) != len(gpu.sms):
        raise SimError(
            f"checkpoint spans {len(checkpoint.sms)} SMs, GPU has "
            f"{len(gpu.sms)} — configs differ")
    np.copyto(global_mem, checkpoint.global_mem)
    gpu.l2.restore_state(checkpoint.l2)
    block_map = {block.id: block for block in all_blocks}
    warp_map = {warp.id: warp
                for block in all_blocks for warp in block.warps}
    for sm, state in zip(gpu.sms, checkpoint.sms):
        sm.restore_state(state, block_map, warp_map)
    if checkpoint.injector is not None and gpu.fault_injector is not None:
        gpu.fault_injector.restore_state(checkpoint.injector)
    return checkpoint.cycle, checkpoint.age, checkpoint.dispatched


# ----------------------------------------------------------------------
# Convergence comparison
# ----------------------------------------------------------------------
def plain_equal(a, b) -> bool:
    """Exact structural equality over capture-protocol plain data.

    Arrays compare by dtype, shape, and value; dicts by key set and
    recursive values; sequences element-wise.  Everything the capture
    protocol emits is covered, the walk short-circuits on the first
    difference, and nothing is serialized — this is the workhorse the
    per-layer ``state_equals`` methods lean on for nested plain data.
    """
    if isinstance(a, np.ndarray) or isinstance(b, np.ndarray):
        return (isinstance(a, np.ndarray) and isinstance(b, np.ndarray)
                and a.dtype == b.dtype and np.array_equal(a, b))
    if isinstance(a, dict):
        if not isinstance(b, dict) or len(a) != len(b):
            return False
        for key, value in a.items():
            if key not in b or not plain_equal(value, b[key]):
                return False
        return True
    if isinstance(a, (list, tuple)):
        return (isinstance(b, (list, tuple)) and len(a) == len(b)
                and all(plain_equal(x, y) for x, y in zip(a, b)))
    return a == b


def machine_probe(gpu, dispatched: int) -> tuple:
    """Cheap control-flow fingerprint: per-warp (state, PC, wakeup)
    plus LSU occupancy.

    A strict necessary condition for full state equality that costs
    microseconds to compute: any run whose *timing* has diverged from
    the golden one (different PCs, sleep schedules, or port occupancy)
    fails the probe, so the convergence monitor only pays for a full
    structural comparison when the machines genuinely look aligned.
    Probe equality is never treated as convergence — the full
    comparison still decides.
    """
    return (dispatched, tuple(
        (sm._lsu_free_at,
         tuple((w.state.value,
                w.stack[-1].pc if w.stack else -1,
                w.wakeup_cycle) for w in sm.warps))
        for sm in gpu.sms))


# ----------------------------------------------------------------------
# Golden-run data liveness
# ----------------------------------------------------------------------
class MemoryLiveness:
    """Last-access cycle maps recorded during the golden run.

    For every global-memory word: the cycle of its last read and last
    write.  For every block's shared memory and every warp's register
    rows: the cycle of the last read (neither enters the final-memory
    comparison, so writes are irrelevant).  Atomics count as reads
    *and* writes; register reads come from the scoreboard's own
    operand enumeration (``Instruction.read_regs``), so every read the
    machine can issue is covered.

    This is what makes the inert-divergence early-out sound: a faulty
    value the golden run never reads from some cycle onward can never
    influence the continuation, so its fate — overwritten (masked) or
    left to stand in the output (SDC) — is decided by golden's write
    liveness alone.
    """

    def __init__(self, global_words: int, num_warps: int = 0,
                 num_regs: int = 0) -> None:
        self.global_read = np.full(global_words, -1, dtype=np.int64)
        self.global_write = np.full(global_words, -1, dtype=np.int64)
        self.shared_read: dict[int, np.ndarray] = {}
        #: ``reg_read[warp_id][reg_row]`` — last golden cycle the row
        #: was a source operand of an issued instruction of that warp.
        self.reg_read = np.full((num_warps, num_regs), -1, dtype=np.int64)

    def note(self, access, block, cycle: int) -> None:
        """Record one :class:`~repro.sim.functional.MemAccess`."""
        if access.space is Space.GLOBAL:
            if access.is_atomic:
                self.global_read[access.addresses] = cycle
                self.global_write[access.addresses] = cycle
            elif access.is_store:
                self.global_write[access.addresses] = cycle
            else:
                self.global_read[access.addresses] = cycle
        elif not access.is_store or access.is_atomic:
            reads = self.shared_read.get(block.id)
            if reads is None:
                reads = np.full(block.shared.size, -1, dtype=np.int64)
                self.shared_read[block.id] = reads
            reads[access.addresses] = cycle


# ----------------------------------------------------------------------
# Recording and convergence monitoring
# ----------------------------------------------------------------------
class CheckpointRecorder:
    """Periodic checkpointer driven from the top of the launch loop.

    With an explicit ``interval`` it checkpoints every ``interval``
    cycles.  With ``interval=0`` it adapts to the (unknown) run length:
    it starts dense and, whenever more than ``2 * target`` checkpoints
    accumulate, keeps every other one and doubles the interval — one
    golden pass yields ``target``..``2 * target`` checkpoints spaced
    ~``golden_cycles / target`` apart, without knowing the cycle count
    in advance.
    """

    def __init__(self, interval: int = 0, target: int = 64) -> None:
        if interval < 0:
            raise SimError("checkpoint interval must be >= 0 (0 = auto)")
        if target < 1:
            raise SimError("checkpoint target must be positive")
        self.adaptive = interval == 0
        self.interval = interval if interval else 32
        self.target = target
        self.checkpoints: list[GpuCheckpoint] = []
        self.next_due = 0
        #: :class:`MemoryLiveness` filled in by the recorded launch.
        self.liveness: MemoryLiveness | None = None

    def take(self, gpu, cycle: int, age: int, dispatched: int,
             global_mem: np.ndarray) -> None:
        self.checkpoints.append(
            capture_gpu(gpu, cycle, age, dispatched, global_mem))
        if self.adaptive and len(self.checkpoints) > 2 * self.target:
            self.checkpoints = self.checkpoints[::2]
            self.interval *= 2
        self.next_due = cycle + self.interval

    def best_at_or_below(self, cycle: int) -> GpuCheckpoint | None:
        """Latest checkpoint usable as a fast-start for a strike at
        ``cycle`` (the machine state at any checkpoint at or below the
        first strike cycle is exactly the faulty trial's state there)."""
        best = None
        for checkpoint in self.checkpoints:
            if checkpoint.cycle <= cycle:
                best = checkpoint
            else:
                break
        return best


class ConvergenceMonitor:
    """Early-outcome termination for faulty runs.

    Holds the golden run's recorded checkpoints as reference points.
    The launch loop consults :meth:`check` at every visited cycle; when
    the faulty machine sits exactly on a reference cycle *and* the
    injector is quiescent (all strikes fired, all detections
    delivered), the live machine is compared field by field against
    the golden checkpoint through the snapshot protocol's
    ``state_equals`` mirrors (excluding the pure observers: the
    per-SM stats clone, and the resilience runtime's rollback-window
    end, which is read only when a future sensor detection coalesces
    into a running rollback — impossible once the injector is
    quiescent).  Full equality proves the continuation is
    byte-identical to the golden run — the launch stops immediately
    and reports the golden final cycle count.

    A second, weaker-looking but equally exact rule handles faulty
    runs whose corruption is *inert*: when all control, timing, cache,
    and runtime state matches golden and every differing datum —
    global word, shared word, or register row — is one the golden run
    never reads again (see :class:`MemoryLiveness`), the continuation
    is provably the golden instruction stream, so the trial terminates
    with golden cycles and a final-memory verdict computed from
    golden's write liveness.

    Neither rule can change a classification: both prove the final
    cycle count and final-memory equality a full run would produce
    (and the masked/recovered split by landed strikes and recovery
    counts is already final once the injector is quiescent).
    Inequality just means the run continues.
    """

    #: Probe-matched comparison misses tolerated before the monitor
    #: stops checking.  Misses short-circuit on the first differing
    #: field, so the cap is generous — late convergence (corrupted
    #: values going dead only near kernel end) is still caught — and
    #: exists only to bound pathological checkpoint-dense configs.
    #: Giving up is always sound: the run continues to completion.
    MAX_MISSES = 64

    #: Sentinel "no more boundaries" next-check cycle.
    _DONE = 1 << 62

    def __init__(self, checkpoints: list[GpuCheckpoint],
                 final_cycles: int,
                 liveness: MemoryLiveness | None = None) -> None:
        self.points = list(checkpoints)
        self.final_cycles = final_cycles
        self.liveness = liveness
        self.index = 0
        #: Earliest cycle at which the next boundary could match; the
        #: launch loop's per-cycle call returns immediately below it.
        self.next_cycle = 0
        self.converged_at: int | None = None
        #: Set on convergence: will this trial's *final* memory equal
        #: golden's?  True on a full state match; computed from write
        #: liveness on an inert-divergence match.
        self.memory_equal: bool | None = None
        self._misses = 0

    def check(self, gpu, cycle: int, age: int, dispatched: int,
              global_mem: np.ndarray) -> bool:
        if cycle < self.next_cycle:
            return False
        points = self.points
        i = self.index
        while i < len(points) and points[i].cycle < cycle:
            i += 1
        self.index = i
        if i >= len(points):
            self.next_cycle = self._DONE
            return False
        if points[i].cycle != cycle:
            self.next_cycle = points[i].cycle
            return False
        # Sitting exactly on a boundary; cycles are strictly increasing,
        # so this point is consulted at most once.
        self.next_cycle = cycle + 1
        injector = gpu.fault_injector
        if injector is not None and not injector.quiescent():
            return False
        self.index = i + 1
        golden = points[i]
        if machine_probe(gpu, dispatched) != golden.probe:
            return False
        # Data first: on a probe-matched miss the control state almost
        # always matches and it is the liveness rule that rejects, so
        # the cheap numpy data verdict gates the structural walk.  A
        # misaligned block zip in the verdict cannot produce a wrong
        # convergence: the walk checks block ids in order, so whenever
        # it passes the verdict was computed under the same alignment.
        verdict = self._data_verdict(gpu, cycle, global_mem, golden)
        if verdict is not None and not (
                age == golden.age and dispatched == golden.dispatched
                and gpu.l2.state_equals(golden.l2)
                and all(sm.state_equals(state, include_data=False)
                        for sm, state in zip(gpu.sms, golden.sms))):
            verdict = None
        if verdict is not None:
            self.converged_at = cycle
            self.memory_equal = verdict
            return True
        self._misses += 1
        if self._misses >= self.MAX_MISSES:
            self.index = len(points)
            self.next_cycle = self._DONE
        return False

    def _data_verdict(self, gpu, cycle: int, global_mem: np.ndarray,
                      golden: GpuCheckpoint) -> bool | None:
        """Decide a trial whose control/timing state fully matches
        golden and whose divergence, if any, is confined to data at
        rest (global words, shared words, register rows).

        No differing data at all is full convergence.  Otherwise every
        differing datum must have a golden last-read strictly before
        ``cycle`` (a read *at* ``cycle`` happens after this boundary's
        capture point and would observe the corruption).  Under that
        condition the continuation executes the exact golden
        instruction and access stream — the differing data is
        write-only or untouched from here on — so the final cycle
        count is golden's and the final memory is golden's except at
        differing global words golden never overwrites.  Returns the
        resulting final-memory equality, or ``None`` when the
        divergence is not provably inert (the run just continues).
        """
        liveness = self.liveness
        diff = np.flatnonzero(global_mem != golden.global_mem)
        clean = not diff.size
        if diff.size:
            if liveness is None or bool(
                    (liveness.global_read[diff] >= cycle).any()):
                return None
        for sm, sm_state in zip(gpu.sms, golden.sms):
            for block, ref in zip(sm.blocks, sm_state["blocks"]):
                unequal = np.flatnonzero(block.shared != ref[1])
                if not unequal.size:
                    continue
                clean = False
                if liveness is None:
                    return None
                reads = liveness.shared_read.get(block.id)
                if reads is not None and bool(
                        (reads[unequal] >= cycle).any()):
                    return None
            for warp in sm.warps:
                ref_regs = sm_state["warps"][warp.id]["regs"]
                rows = np.flatnonzero(
                    (warp.ctx.regs != ref_regs).any(axis=1))
                if not rows.size:
                    continue
                clean = False
                if liveness is None or bool(
                        (liveness.reg_read[warp.id][rows] >= cycle).any()):
                    return None
        if clean or not diff.size:
            return True
        return bool((liveness.global_write[diff] >= cycle).all())


__all__ = ["CheckpointRecorder", "ConvergenceMonitor", "GpuCheckpoint",
           "MemoryLiveness", "SNAPSHOT_VERSION", "capture_gpu",
           "machine_probe", "plain_equal", "restore_gpu"]
