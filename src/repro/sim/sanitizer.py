"""Always-on architectural sanitizer: per-cycle invariant checking.

Golden-output diffing only catches corruption that reaches memory by
kernel end.  Corruption of *microarchitectural* state — a scoreboard
entry, a SIMT divergence-stack mask, an RBQ conveyor slot, a Recovery
PC Table entry — can instead decay into downstream garbage (wrong-path
execution, phantom dependencies, resume-at-random-PC) whose eventual
symptom tells you nothing about the root cause.

The :class:`Sanitizer` is an opt-in per-cycle checker attached to a
:class:`~repro.sim.Gpu` (``gpu.sanitizer = Sanitizer()``).  After every
simulated cycle it walks each SM and verifies:

* **scoreboard consistency** — every pending entry names a register or
  predicate that exists in the warp's file, with a sane ready cycle;
* **divergence-stack well-formedness** — non-empty, bounded depth,
  every entry's PC inside the kernel, masks of warp width whose lanes
  nest (an inner entry's active lanes are a subset of its parent's);
* **RBQ conveyor monotonicity** — entries strictly ordered by enqueue
  cycle (one slot advance per cycle) and no entry ridden longer than
  the WCDL conveyor length;
* **RPT entries at region starts** — every recovery PC is the kernel
  entry or the instruction following a region-boundary marker, so a
  rollback can only ever resume at an idempotent re-execution point;
* **stall-ledger conservation** — per SM, issued plus cause-attributed
  idle cycles exactly cover the active cycles, and the per-warp ledger
  partitions the per-cause one (no idle cycle unattributed or counted
  twice).

A violation raises :class:`~repro.errors.SanitizerError` with the SM,
warp, cycle, and invariant name.  Fault-injection campaigns run with
the sanitizer classify such trials as DUE-crash with that precise
detail string (see :mod:`repro.core.campaign`).
"""

from __future__ import annotations

import weakref

import numpy as np

from ..errors import SanitizerError
from ..isa import Op, Pred, Reg

#: SIMT stack depth bound mirrored from ``Warp.sanity_check``.
MAX_STACK_DEPTH = 64


class Sanitizer:
    """Opt-in per-cycle invariant checker over every SM of a GPU."""

    def __init__(self) -> None:
        self.checks = 0
        self._region_starts: tuple[weakref.ref, frozenset[int]] | None = None

    # ------------------------------------------------------------------
    def check(self, gpu, cycle: int) -> None:
        """Verify every invariant on every SM; raise on the first hit."""
        self.checks += 1
        for sm in gpu.sms:
            self._check_sm(sm, cycle)

    def _check_sm(self, sm, cycle: int) -> None:
        self._check_stalls(sm, cycle)
        for warp in sm.warps:
            self._check_scoreboard(sm, warp, cycle)
            self._check_stack(sm, warp, cycle)
        runtime = sm.resilience
        rbqs = getattr(runtime, "_rbqs", None)
        if rbqs is not None:
            for rbq in rbqs.values():
                self._check_rbq(sm, rbq, cycle)
        rpt = getattr(runtime, "rpt", None)
        if rpt is not None and sm.kernel is not None:
            self._check_rpt(sm, rpt, cycle)

    # ------------------------------------------------------------------
    # Invariants
    # ------------------------------------------------------------------
    def _check_stalls(self, sm, cycle: int) -> None:
        stats = sm.stats
        attributed = sum(stats.stall_cycles.values())
        if stats.issue_cycles + attributed != stats.active_cycles:
            self._fail("stall-conservation", sm, None, cycle,
                       f"issue ({stats.issue_cycles}) + attributed stalls "
                       f"({attributed}) != active cycles "
                       f"({stats.active_cycles})")
        if stats.idle_cycles != attributed:
            self._fail("stall-conservation", sm, None, cycle,
                       f"idle cycles ({stats.idle_cycles}) != attributed "
                       f"stalls ({attributed})")
        per_warp: dict[str, int] = {}
        for ledger in stats.warp_stalls.values():
            for cause, count in ledger.items():
                per_warp[cause] = per_warp.get(cause, 0) + count
        if per_warp != stats.stall_cycles:
            self._fail("stall-conservation", sm, None, cycle,
                       f"per-warp ledger {per_warp} does not partition "
                       f"the per-cause ledger {stats.stall_cycles}")

    def _check_scoreboard(self, sm, warp, cycle: int) -> None:
        num_regs = warp.ctx.regs.shape[0]
        num_preds = warp.ctx.preds.shape[0]
        for key, ready in warp.pending.items():
            if isinstance(key, Reg):
                if not 0 <= key.index < num_regs:
                    self._fail("scoreboard", sm, warp, cycle,
                               f"pending entry for nonexistent register "
                               f"r{key.index} (file holds {num_regs})")
            elif isinstance(key, Pred):
                if not 0 <= key.index < num_preds:
                    self._fail("scoreboard", sm, warp, cycle,
                               f"pending entry for nonexistent predicate "
                               f"p{key.index} (file holds {num_preds})")
            else:
                self._fail("scoreboard", sm, warp, cycle,
                           f"pending entry keyed by non-operand {key!r}")
            if not isinstance(ready, (int, np.integer)) or ready < 0:
                self._fail("scoreboard", sm, warp, cycle,
                           f"pending ready cycle {ready!r} for {key}")

    def _check_stack(self, sm, warp, cycle: int) -> None:
        stack = warp.stack
        if not stack:
            self._fail("simt-stack", sm, warp, cycle, "empty SIMT stack")
        if len(stack) > MAX_STACK_DEPTH:
            self._fail("simt-stack", sm, warp, cycle,
                       f"SIMT stack depth {len(stack)} exceeds "
                       f"{MAX_STACK_DEPTH}")
        top = len(warp.kernel.instructions)
        for depth, entry in enumerate(stack):
            if not 0 <= entry.pc <= top:
                self._fail("simt-stack", sm, warp, cycle,
                           f"stack[{depth}] pc {entry.pc} outside "
                           f"kernel [0, {top}]")
            mask = entry.mask
            if (not isinstance(mask, np.ndarray) or mask.dtype != np.bool_
                    or mask.shape != (warp.warp_size,)):
                self._fail("simt-stack", sm, warp, cycle,
                           f"stack[{depth}] mask malformed "
                           f"({getattr(mask, 'shape', None)!r}, "
                           f"{getattr(mask, 'dtype', None)!r})")
            if depth and bool((mask & ~stack[depth - 1].mask).any()):
                self._fail("simt-stack", sm, warp, cycle,
                           f"stack[{depth}] activates lanes outside its "
                           f"parent entry (divergence masks must nest)")

    def _check_rbq(self, sm, rbq, cycle: int) -> None:
        previous = None
        for slot, entry in enumerate(rbq._entries):
            if previous is not None and entry.enqueued_at <= previous:
                self._fail("rbq-conveyor", sm, entry.warp, cycle,
                           f"slot {slot} enqueued at {entry.enqueued_at}, "
                           f"not after its predecessor ({previous}) — the "
                           f"conveyor advances one slot per cycle")
            previous = entry.enqueued_at
            if cycle - entry.enqueued_at > rbq.wcdl:
                self._fail("rbq-conveyor", sm, entry.warp, cycle,
                           f"slot {slot} has ridden the conveyor "
                           f"{cycle - entry.enqueued_at} cycles "
                           f"(> WCDL={rbq.wcdl}) without popping")

    def _check_rpt(self, sm, rpt, cycle: int) -> None:
        starts = self._kernel_region_starts(sm.kernel)
        for warp_id, snapshot in rpt.entries.items():
            if snapshot.pc not in starts:
                self._fail("rpt-region-start", sm, None, cycle,
                           f"RPT entry of warp {warp_id} points at pc "
                           f"{snapshot.pc}, which is not a region start",
                           warp_id=warp_id)
            if snapshot.barrier_count < 0:
                self._fail("rpt-region-start", sm, None, cycle,
                           f"RPT entry of warp {warp_id} carries negative "
                           f"barrier generation {snapshot.barrier_count}",
                           warp_id=warp_id)

    # ------------------------------------------------------------------
    def _kernel_region_starts(self, kernel) -> frozenset[int]:
        """Valid recovery PCs: kernel entry, every boundary marker, and
        the instruction after each marker (the marker itself is a legal
        recovery PC — ``skip_markers`` re-delivers it on restore)."""
        cached = self._region_starts
        if cached is not None and cached[0]() is kernel:
            return cached[1]
        starts = {0}
        for index, inst in enumerate(kernel.instructions):
            if inst.op is Op.RB:
                starts.add(index)
                starts.add(index + 1)
        frozen = frozenset(starts)
        self._region_starts = (weakref.ref(kernel), frozen)
        return frozen

    def _fail(self, invariant: str, sm, warp, cycle: int, message: str,
              warp_id: int | None = None) -> None:
        if warp_id is None and warp is not None:
            warp_id = warp.id
        raise SanitizerError(invariant, message, sm_id=sm.id,
                             warp_id=warp_id, cycle=cycle)


__all__ = ["MAX_STACK_DEPTH", "Sanitizer"]
