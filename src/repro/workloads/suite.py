"""The Table-I benchmark registry: all 34 workloads by abbreviation."""

from __future__ import annotations

from ..errors import ConfigError
from . import altis, cuda_sdk, gpgpusim, npb, parboil, rodinia, shoc
from .base import Workload

_MODULES = (parboil, gpgpusim, cuda_sdk, npb, rodinia, altis, shoc)

#: All Table-I workloads, keyed by abbreviation, in paper order by suite.
WORKLOADS: dict[str, Workload] = {}
for _module in _MODULES:
    for _workload in _module.WORKLOADS:
        if _workload.abbr in WORKLOADS:
            raise ConfigError(f"duplicate workload {_workload.abbr!r}")
        WORKLOADS[_workload.abbr] = _workload


def workload_by_name(abbr: str) -> Workload:
    try:
        return WORKLOADS[abbr]
    except KeyError:
        raise ConfigError(
            f"unknown workload {abbr!r}; choose from {sorted(WORKLOADS)}"
        ) from None


def table1_rows() -> list[tuple[str, str, str]]:
    """(suite, full name, abbreviation) rows of Table I."""
    return [(w.suite, w.full_name, w.abbr) for w in WORKLOADS.values()]
