"""The Table-I benchmark registry: all 34 workloads by abbreviation."""

from __future__ import annotations

from ..errors import ConfigError
from . import altis, cuda_sdk, gpgpusim, npb, parboil, rodinia, shoc
from .base import Workload

_MODULES = (parboil, gpgpusim, cuda_sdk, npb, rodinia, altis, shoc)

#: All Table-I workloads, keyed by abbreviation, in paper order by suite.
WORKLOADS: dict[str, Workload] = {}
for _module in _MODULES:
    for _workload in _module.WORKLOADS:
        if _workload.abbr in WORKLOADS:
            raise ConfigError(f"duplicate workload {_workload.abbr!r}")
        WORKLOADS[_workload.abbr] = _workload

#: Workload *variants* — scheme-study derivatives of Table-I kernels
#: (e.g. the checksum-augmented ``SGEMM_ABFT``).  Name-resolvable like
#: any workload, but excluded from Table I / ``ALL_BENCHMARKS`` so the
#: paper's 34-benchmark roster stays exact.
VARIANTS: dict[str, Workload] = {}
for _module in _MODULES:
    for _workload in getattr(_module, "VARIANTS", ()):
        if _workload.abbr in WORKLOADS or _workload.abbr in VARIANTS:
            raise ConfigError(f"duplicate workload {_workload.abbr!r}")
        VARIANTS[_workload.abbr] = _workload


def workload_by_name(abbr: str) -> Workload:
    workload = WORKLOADS.get(abbr)
    if workload is None:
        workload = VARIANTS.get(abbr)
    if workload is None:
        raise ConfigError(
            f"unknown workload {abbr!r}; choose from "
            f"{sorted(WORKLOADS)} or the variants {sorted(VARIANTS)}"
        ) from None
    return workload


def table1_rows() -> list[tuple[str, str, str]]:
    """(suite, full name, abbreviation) rows of Table I."""
    return [(w.suite, w.full_name, w.abbr) for w in WORKLOADS.values()]
