"""NAS Parallel Benchmarks workloads: IS and CG."""

from __future__ import annotations

import numpy as np

from ..isa import AtomOp, CmpOp, KernelBuilder
from ..sim import LaunchConfig
from .base import Workload, WorkloadInstance, pick, rng_for


def _build_is(scale: str) -> WorkloadInstance:
    """Integer Sort's key-counting phase: every thread walks a strided
    slice of the key array bumping global bucket counters atomically."""
    n = pick(scale, 1024, 4096, 16384)
    buckets = 32
    keys_base, count_base = 0, n

    stride_threads = pick(scale, 512, 1024, 2048)
    iters = n // stride_threads
    assert iters % 2 == 0 or iters == 1

    b = KernelBuilder("is", num_params=4)
    nn, kb, cb, stride = b.params(4)
    i = b.global_index()
    # Grid-stride key walk with a build-time trip count, x2 unrolled.
    unroll = 2 if iters % 2 == 0 else 1
    with b.loop(0, iters, unroll) as t:
        base_t = b.add(b.mul(t, float(stride_threads)), i)
        for u in range(unroll):
            key = b.ld_global(b.add(kb, base_t),
                              offset=u * stride_threads)
            b.atom_global(AtomOp.ADD, b.add(cb, key), 1.0)
    kernel = b.build()

    rng = rng_for("is", scale)
    keys = rng.integers(0, buckets, n).astype(float)
    mem = np.zeros(n + buckets)
    mem[:n] = keys
    expected = mem.copy()
    expected[count_base:] = np.bincount(keys.astype(int),
                                        minlength=buckets).astype(float)
    threads = 128
    return WorkloadInstance(
        kernel=kernel,
        launch=LaunchConfig(grid=(stride_threads // threads, 1),
                            block=(threads, 1),
                            params=(n, keys_base, count_base, stride_threads)),
        global_mem=mem,
        expected=expected,
    )


def _build_cg(scale: str) -> WorkloadInstance:
    """Conjugate-Gradient's two hot kernels fused: a CSR sparse
    matrix-vector product (one thread per row, gather loads) followed by
    a shared-memory block reduction of the local dot product r.y —
    the staged-shared + barrier pattern the region-extension
    optimization targets."""
    rows = pick(scale, 512, 1024, 4096)
    nnz_per_row = 8
    threads = 64
    # Layout: rowptr[rows+1] | col[nnz] | val[nnz] | x[rows] | y[rows]
    #         | partial[numblocks]
    nnz = rows * nnz_per_row
    rp_base = 0
    col_base = rp_base + rows + 1
    val_base = col_base + nnz
    x_base = val_base + nnz
    y_base = x_base + rows
    blocks = -(-rows // threads)
    partial_base = y_base + rows

    b = KernelBuilder("cg", num_params=7, shared_words=threads)
    nr, rpb, colb, valb, xb, yb, pb = b.params(7)
    row = b.global_index()
    tid = b.tid_x()
    in_range = b.setp(CmpOp.LT, row, nr)
    dot = b.mov(0.0)
    with b.if_(in_range):
        start = b.ld_global(b.add(rpb, row))
        acc = b.mov(0.0)
        ptr = b.add(colb, start)
        vptr = b.add(valb, start)
        for u in range(nnz_per_row):
            c = b.ld_global(ptr, offset=u)
            v = b.ld_global(vptr, offset=u)
            x = b.ld_global(b.add(xb, c))
            b.mad(v, x, acc, dst=acc)
        b.st_global(b.add(yb, row), acc)
        r = b.ld_global(b.add(xb, row))
        b.mul(acc, r, dst=dot)
    # Block reduction of x.y into partial[block] (shared tree).
    b.st_shared(tid, dot)
    b.barrier()
    stride = threads // 2
    while stride >= 1:
        active = b.setp(CmpOp.LT, tid, stride)
        with b.if_(active):
            other = b.ld_shared(tid, offset=stride)
            mine = b.ld_shared(tid)
            b.st_shared(tid, b.add(mine, other))
        b.barrier()
        stride //= 2
    leader = b.setp(CmpOp.EQ, tid, 0)
    with b.if_(leader):
        total = b.ld_shared(tid)
        bid = b.ctaid_x()
        b.st_global(b.add(pb, bid), total)
    kernel = b.build()

    rng = rng_for("cg", scale)
    cols = np.empty((rows, nnz_per_row), dtype=int)
    for r_i in range(rows):
        cols[r_i] = rng.choice(rows, nnz_per_row, replace=False)
    vals = rng.uniform(-1, 1, (rows, nnz_per_row))
    x = rng.uniform(-1, 1, rows)
    rowptr = np.arange(rows + 1) * nnz_per_row
    mem = np.zeros(partial_base + blocks)
    mem[rp_base:rp_base + rows + 1] = rowptr
    mem[col_base:col_base + nnz] = cols.ravel()
    mem[val_base:val_base + nnz] = vals.ravel()
    mem[x_base:x_base + rows] = x

    y = (vals * x[cols]).sum(axis=1)
    local = x * y
    partials = np.zeros(blocks)
    for blk in range(blocks):
        lo, hi = blk * threads, min((blk + 1) * threads, rows)
        partials[blk] = local[lo:hi].sum()
    expected = mem.copy()
    expected[y_base:y_base + rows] = y
    expected[partial_base:] = partials
    return WorkloadInstance(
        kernel=kernel,
        launch=LaunchConfig(grid=(blocks, 1), block=(threads, 1),
                            params=(rows, rp_base, col_base, val_base,
                                    x_base, y_base, partial_base)),
        global_mem=mem,
        expected=expected,
        rtol=1e-8, atol=1e-8,
    )


WORKLOADS = [
    Workload("IS", "Integer Sort", "npb", _build_is, uses_atomics=True),
    Workload("CG", "Conjugate Gradient", "npb", _build_cg,
             uses_barriers=True),
]
