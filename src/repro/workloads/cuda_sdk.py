"""CUDA SDK sample workloads: BO, CS, SP, BS, SQ, WT, Transpose, DWT,
SN, Histogram."""

from __future__ import annotations

import numpy as np

from ..isa import AtomOp, CmpOp, KernelBuilder, Special
from ..sim import LaunchConfig
from .base import Workload, WorkloadInstance, pick, rng_for


def _build_bo(scale: str) -> WorkloadInstance:
    """Binomial option pricing: one block per option; the leaf values
    live in shared memory and every backward-induction step is a
    read/barrier/write/barrier round over them."""
    steps = 63
    options = pick(scale, 8, 32, 64)
    threads = 64
    p_up = 0.55
    disc = 0.99
    s_base, x_base, o_base = 0, options, 2 * options

    b = KernelBuilder("bo", num_params=3, shared_words=steps + 1)
    sb, xb, ob = b.params(3)
    tid = b.tid_x()
    opt = b.ctaid_x()
    s0 = b.ld_global(b.add(sb, opt))
    strike = b.ld_global(b.add(xb, opt))
    # Leaf price: S * 1.02^tid * 0.98^(steps-tid); exp/log keeps it SFU.
    ups = b.exp(b.mul(tid, float(np.log(1.02))))
    downs = b.exp(b.mul(b.sub(float(steps), tid), float(np.log(0.98))))
    leaf = b.mul(b.mul(s0, ups), downs)
    payoff = b.max_(b.sub(leaf, strike), 0.0)
    in_tree = b.setp(CmpOp.LE, tid, float(steps))
    b.st_shared(tid, payoff, guard=in_tree)
    b.barrier()
    for t in range(steps, 0, -1):
        live = b.setp(CmpOp.LT, tid, float(t))
        nxt = b.reg()
        with b.if_(live):
            lo = b.ld_shared(tid)
            hi = b.ld_shared(tid, offset=1)
            blend = b.mad(p_up, hi, b.mul(1.0 - p_up, lo))
            b.mul(blend, disc, dst=nxt)
        b.barrier()
        b.st_shared(tid, nxt, guard=live)
        b.barrier()
    leader = b.setp(CmpOp.EQ, tid, 0)
    with b.if_(leader):
        b.st_global(b.add(ob, opt), b.ld_shared(tid))
    kernel = b.build()

    rng = rng_for("bo", scale)
    s = rng.uniform(20, 60, options)
    strike_v = rng.uniform(20, 60, options)
    mem = np.zeros(3 * options)
    mem[:options] = s
    mem[x_base:x_base + options] = strike_v

    tids = np.arange(steps + 1)
    prices = np.zeros(options)
    for o in range(options):
        leaf = (s[o] * np.exp(tids * np.log(1.02))
                * np.exp((steps - tids) * np.log(0.98)))
        v = np.maximum(leaf - strike_v[o], 0.0)
        for t in range(steps, 0, -1):
            v[:t] = 0.99 * (p_up * v[1:t + 1] + (1 - p_up) * v[:t])
        prices[o] = v[0]
    expected = mem.copy()
    expected[o_base:] = prices
    return WorkloadInstance(
        kernel=kernel,
        launch=LaunchConfig(grid=(options, 1), block=(threads, 1),
                            params=(s_base, x_base, o_base)),
        global_mem=mem,
        expected=expected,
        rtol=1e-8,
    )


def _build_cs(scale: str) -> WorkloadInstance:
    """Separable convolution (row pass): stage tile + halo in shared,
    synchronize, apply a 9-tap stencil from shared."""
    radius = 4
    n = pick(scale, 512, 2048, 8192)
    threads = 64
    in_base, w_base, out_base = 0, n, n + 2 * radius + 1

    b = KernelBuilder("cs", num_params=4,
                      shared_words=threads + 2 * radius)
    nn, ib, wb, ob = b.params(4)
    tid = b.tid_x()
    gid = b.global_index()
    # Main element (clamped at the ends).
    clamped = b.min_(b.max_(gid, 0.0), b.sub(nn, 1))
    b.st_shared(b.add(tid, radius), b.ld_global(b.add(ib, clamped)))
    halo_left = b.setp(CmpOp.LT, tid, radius)
    with b.if_(halo_left):
        src = b.max_(b.sub(gid, radius), 0.0)
        b.st_shared(tid, b.ld_global(b.add(ib, src)))
        src_r = b.min_(b.add(gid, threads), b.sub(nn, 1))
        b.st_shared(b.add(tid, threads + radius),
                    b.ld_global(b.add(ib, src_r)))
    b.barrier()
    acc = b.mov(0.0)
    base_reg = b.mov(tid)
    for k in range(2 * radius + 1):
        w = b.ld_global(wb, offset=k)
        v = b.ld_shared(base_reg, offset=k)
        b.mad(w, v, acc, dst=acc)
    b.st_global(b.add(ob, gid), acc)
    kernel = b.build()

    rng = rng_for("cs", scale)
    data = rng.uniform(-1, 1, n)
    weights = rng.uniform(-1, 1, 2 * radius + 1)
    mem = np.zeros(out_base + n)
    mem[:n] = data
    mem[w_base:w_base + 2 * radius + 1] = weights
    idx = np.arange(n)
    out = np.zeros(n)
    for k in range(-radius, radius + 1):
        out += weights[k + radius] * data[np.clip(idx + k, 0, n - 1)]
    expected = mem.copy()
    expected[out_base:] = out
    return WorkloadInstance(
        kernel=kernel,
        launch=LaunchConfig(grid=(n // threads, 1), block=(threads, 1),
                            params=(n, in_base, w_base, out_base)),
        global_mem=mem,
        expected=expected,
        rtol=1e-8,
    )


def _reduction(b: KernelBuilder, tid, threads: int, value) -> None:
    """Shared-memory tree reduction idiom used by SP/KNN/TPACF."""
    b.st_shared(tid, value)
    b.barrier()
    stride = threads // 2
    while stride >= 1:
        active = b.setp(CmpOp.LT, tid, float(stride))
        with b.if_(active):
            other = b.ld_shared(tid, offset=stride)
            mine = b.ld_shared(tid)
            b.st_shared(tid, b.add(mine, other))
        b.barrier()
        stride //= 2


def _build_sp(scale: str) -> WorkloadInstance:
    """Scalar products: each block computes the dot product of one
    vector pair via strided partial sums and a shared tree reduction."""
    vec_len = pick(scale, 256, 1024, 4096)
    pairs = pick(scale, 8, 16, 32)
    threads = 64
    a_base, b_base, r_base = 0, pairs * vec_len, 2 * pairs * vec_len

    kb = KernelBuilder("sp", num_params=4, shared_words=threads)
    vl, ab, bb, rb = kb.params(4)
    tid = kb.tid_x()
    pair = kb.ctaid_x()
    vec_off = kb.mul(pair, vl)
    acc = kb.mov(0.0)
    with kb.loop(0, vec_len, threads) as k:
        i = kb.add(k, tid)
        a = kb.ld_global(kb.add(ab, kb.add(vec_off, i)))
        bv = kb.ld_global(kb.add(bb, kb.add(vec_off, i)))
        kb.mad(a, bv, acc, dst=acc)
    _reduction(kb, tid, threads, acc)
    leader = kb.setp(CmpOp.EQ, tid, 0)
    with kb.if_(leader):
        kb.st_global(kb.add(rb, pair), kb.ld_shared(tid))
    kernel = kb.build()

    rng = rng_for("sp", scale)
    a = rng.uniform(-1, 1, (pairs, vec_len))
    bm = rng.uniform(-1, 1, (pairs, vec_len))
    mem = np.zeros(r_base + pairs)
    mem[:pairs * vec_len] = a.ravel()
    mem[b_base:b_base + pairs * vec_len] = bm.ravel()
    expected = mem.copy()
    expected[r_base:] = (a * bm).sum(axis=1)
    return WorkloadInstance(
        kernel=kernel,
        launch=LaunchConfig(grid=(pairs, 1), block=(threads, 1),
                            params=(vec_len, a_base, b_base, r_base)),
        global_mem=mem,
        expected=expected,
        rtol=1e-7, atol=1e-7,
    )


def _build_bs(scale: str) -> WorkloadInstance:
    """Black-Scholes call pricing: per-thread closed form with
    exp/log/sqrt and a polynomial CND — SFU-bound streaming compute."""
    n = pick(scale, 512, 2048, 8192)
    riskfree, vol = 0.02, 0.30
    s_base, x_base, t_base, c_base = 0, n, 2 * n, 3 * n

    b = KernelBuilder("bs", num_params=5)
    nn, sb, xb, tb, cb = b.params(5)
    i = b.global_index()
    guard = b.setp(CmpOp.LT, i, nn)

    def cnd(b, d):
        k = b.div(1.0, b.mad(0.2316419, b.abs_(d), 1.0))
        poly = b.mov(1.330274429)
        for coef in (-1.821255978, 1.781477937, -0.356563782, 0.319381530):
            poly = b.mad(poly, k, coef)
        poly = b.mul(poly, k)
        pdf = b.mul(0.3989422804014327,
                    b.exp(b.mul(-0.5, b.mul(d, d))))
        tail = b.mul(pdf, poly)
        pos = b.setp(CmpOp.GE, d, 0.0)
        return b.selp(b.sub(1.0, tail), tail, pos)

    with b.if_(guard):
        s = b.ld_global(b.add(sb, i))
        x = b.ld_global(b.add(xb, i))
        t = b.ld_global(b.add(tb, i))
        sqrt_t = b.sqrt(t)
        d1 = b.div(
            b.add(b.log(b.div(s, x)),
                  b.mul(riskfree + 0.5 * vol * vol, t)),
            b.mul(vol, sqrt_t))
        d2 = b.sub(d1, b.mul(vol, sqrt_t))
        expr = b.mul(x, b.exp(b.mul(-riskfree, t)))
        call = b.sub(b.mul(s, cnd(b, d1)), b.mul(expr, cnd(b, d2)))
        b.st_global(b.add(cb, i), call)
    kernel = b.build()

    rng = rng_for("bs", scale)
    s = rng.uniform(5, 30, n)
    x = rng.uniform(1, 100, n)
    t = rng.uniform(0.25, 10, n)
    mem = np.zeros(4 * n)
    mem[:n] = s
    mem[x_base:x_base + n] = x
    mem[t_base:t_base + n] = t

    def cnd_np(d):
        k = 1.0 / (1.0 + 0.2316419 * np.abs(d))
        poly = 1.330274429
        for coef in (-1.821255978, 1.781477937, -0.356563782, 0.319381530):
            poly = poly * k + coef
        poly *= k
        tail = 0.3989422804014327 * np.exp(-0.5 * d * d) * poly
        return np.where(d >= 0, 1.0 - tail, tail)

    sqrt_t = np.sqrt(t)
    d1 = (np.log(s / x) + (riskfree + 0.5 * vol * vol) * t) / (vol * sqrt_t)
    d2 = d1 - vol * sqrt_t
    call = s * cnd_np(d1) - x * np.exp(-riskfree * t) * cnd_np(d2)
    expected = mem.copy()
    expected[c_base:] = call
    threads = 128
    return WorkloadInstance(
        kernel=kernel,
        launch=LaunchConfig(grid=(-(-n // threads), 1), block=(threads, 1),
                            params=(n, s_base, x_base, t_base, c_base)),
        global_mem=mem,
        expected=expected,
        rtol=1e-8,
    )


def _build_sq(scale: str) -> WorkloadInstance:
    """Sobol quasi-random generation: XOR-combine direction vectors
    selected by the Gray code of each sequence index."""
    n = pick(scale, 512, 2048, 8192)
    bits = 10
    dir_base, out_base = 0, bits

    b = KernelBuilder("sq", num_params=3)
    nn, db, ob = b.params(3)
    i = b.global_index()
    guard = b.setp(CmpOp.LT, i, nn)
    with b.if_(guard):
        gray = b.xor(i, b.shr(i, 1))
        acc = b.mov(0.0)
        for bit in range(bits):
            dir_v = b.ld_global(db, offset=bit)
            has_bit = b.and_(b.shr(gray, bit), 1)
            b.xor(acc, b.mul(dir_v, has_bit), dst=acc)
        b.st_global(b.add(ob, i), acc)
    kernel = b.build()

    rng = rng_for("sq", scale)
    dirs = rng.integers(1, 2**20, bits).astype(float)
    mem = np.zeros(out_base + n)
    mem[:bits] = dirs
    idx = np.arange(n, dtype=np.int64)
    gray = idx ^ (idx >> 1)
    acc = np.zeros(n, dtype=np.int64)
    for bit in range(bits):
        has = (gray >> bit) & 1
        acc ^= dirs.astype(np.int64)[bit] * has
    expected = mem.copy()
    expected[out_base:] = acc.astype(float)
    threads = 128
    return WorkloadInstance(
        kernel=kernel,
        launch=LaunchConfig(grid=(-(-n // threads), 1), block=(threads, 1),
                            params=(n, dir_base, out_base)),
        global_mem=mem,
        expected=expected,
    )


def _build_wt(scale: str) -> WorkloadInstance:
    """Fast Walsh transform: in-place shared-memory butterflies with a
    barrier per stage — a dense shared-WAR/barrier workload."""
    block_elems = 128
    blocks = pick(scale, 4, 24, 64)
    threads = 64
    n = blocks * block_elems

    b = KernelBuilder("wt", num_params=2, shared_words=block_elems)
    ib, ob = b.params(2)
    tid = b.tid_x()
    blk = b.mul(b.ctaid_x(), block_elems)
    # Each thread owns elements tid and tid+64.
    b.st_shared(tid, b.ld_global(b.add(ib, b.add(blk, tid))))
    hi_t = b.add(tid, threads)
    b.st_shared(hi_t, b.ld_global(b.add(ib, b.add(blk, hi_t))))
    b.barrier()
    stride = 1
    while stride < block_elems:
        # pair base: (tid // stride) * 2*stride + (tid % stride)
        q = b.floor(b.div(tid, float(stride)))
        r = b.sub(tid, b.mul(q, float(stride)))
        base = b.add(b.mul(q, float(2 * stride)), r)
        lo = b.ld_shared(base)
        hi = b.ld_shared(base, offset=stride)
        b.st_shared(base, b.add(lo, hi))
        b.st_shared(base, b.sub(lo, hi), offset=stride)
        b.barrier()
        stride *= 2
    b.st_global(b.add(ob, b.add(blk, tid)), b.ld_shared(tid))
    b.st_global(b.add(ob, b.add(blk, hi_t)), b.ld_shared(hi_t))
    kernel = b.build()

    rng = rng_for("wt", scale)
    data = rng.uniform(-1, 1, (blocks, block_elems))
    mem = np.zeros(2 * n)
    mem[:n] = data.ravel()
    out = data.copy()
    stride = 1
    while stride < block_elems:
        tmp = out.copy()
        for base in range(block_elems):
            q, r = divmod(base, 2 * stride)
            if r < stride:
                lo = tmp[:, base]
                hi = tmp[:, base + stride]
                out[:, base] = lo + hi
                out[:, base + stride] = lo - hi
        stride *= 2
    expected = mem.copy()
    expected[n:] = out.ravel()
    return WorkloadInstance(
        kernel=kernel,
        launch=LaunchConfig(grid=(blocks, 1), block=(threads, 1),
                            params=(0, n)),
        global_mem=mem,
        expected=expected,
    )


def _build_transpose(scale: str) -> WorkloadInstance:
    """Tiled matrix transpose through padded shared memory."""
    tile = 16
    n = pick(scale, 32, 64, 128)
    pad = tile + 1
    in_base, out_base = 0, n * n

    b = KernelBuilder("transpose", num_params=3, shared_words=tile * pad)
    nn, ib, ob = b.params(3)
    x = b.add(b.mul(Special.CTAID_X, tile), Special.TID_X)
    y = b.add(b.mul(Special.CTAID_Y, tile), Special.TID_Y)
    s_in = b.add(b.mul(Special.TID_Y, pad), Special.TID_X)
    b.st_shared(s_in, b.ld_global(b.add(ib, b.add(b.mul(y, nn), x))))
    b.barrier()
    xt = b.add(b.mul(Special.CTAID_Y, tile), Special.TID_X)
    yt = b.add(b.mul(Special.CTAID_X, tile), Special.TID_Y)
    s_out = b.add(b.mul(Special.TID_X, pad), Special.TID_Y)
    b.st_global(b.add(ob, b.add(b.mul(yt, nn), xt)), b.ld_shared(s_out))
    kernel = b.build()

    rng = rng_for("transpose", scale)
    a = rng.uniform(-1, 1, (n, n))
    mem = np.zeros(2 * n * n)
    mem[:n * n] = a.ravel()
    expected = mem.copy()
    expected[out_base:] = a.T.ravel()
    g = n // tile
    return WorkloadInstance(
        kernel=kernel,
        launch=LaunchConfig(grid=(g, g), block=(tile, tile),
                            params=(n, in_base, out_base)),
        global_mem=mem,
        expected=expected,
    )


def _build_dwt(scale: str) -> WorkloadInstance:
    """One level of a Haar discrete wavelet transform: averages to the
    front half, differences to the back half."""
    n = pick(scale, 1024, 4096, 16384)
    half = n // 2
    inv_sqrt2 = float(1.0 / np.sqrt(2.0))
    in_base, out_base = 0, n

    b = KernelBuilder("dwt", num_params=3)
    hn, ib, ob = b.params(3)
    i = b.global_index()
    guard = b.setp(CmpOp.LT, i, hn)
    with b.if_(guard):
        src = b.add(ib, b.mul(i, 2))
        a = b.ld_global(src)
        d = b.ld_global(src, offset=1)
        b.st_global(b.add(ob, i), b.mul(b.add(a, d), inv_sqrt2))
        b.st_global(b.add(b.add(ob, hn), i),
                    b.mul(b.sub(a, d), inv_sqrt2))
    kernel = b.build()

    rng = rng_for("dwt", scale)
    data = rng.uniform(-1, 1, n)
    mem = np.zeros(2 * n)
    mem[:n] = data
    expected = mem.copy()
    expected[out_base:out_base + half] = (data[0::2] + data[1::2]) * inv_sqrt2
    expected[out_base + half:] = (data[0::2] - data[1::2]) * inv_sqrt2
    threads = 128
    return WorkloadInstance(
        kernel=kernel,
        launch=LaunchConfig(grid=(-(-half // threads), 1),
                            block=(threads, 1),
                            params=(half, in_base, out_base)),
        global_mem=mem,
        expected=expected,
    )


def _build_sn(scale: str) -> WorkloadInstance:
    """Bitonic sorting network over shared memory: 28 compare-exchange
    stages, each bracketed by a barrier."""
    n_per_block = 128
    blocks = pick(scale, 4, 16, 32)
    threads = n_per_block
    n = blocks * n_per_block

    b = KernelBuilder("sn", num_params=2, shared_words=n_per_block)
    ib, ob = b.params(2)
    tid = b.tid_x()
    blk = b.mul(b.ctaid_x(), n_per_block)
    b.st_shared(tid, b.ld_global(b.add(ib, b.add(blk, tid))))
    b.barrier()
    k = 2
    while k <= n_per_block:
        j = k // 2
        while j >= 1:
            partner = b.xor(tid, float(j))
            upper = b.setp(CmpOp.GT, partner, tid)
            ascending = b.setp(CmpOp.EQ, b.and_(tid, float(k)), 0.0)
            mine = b.ld_shared(tid)
            theirs = b.ld_shared(partner)
            lo = b.min_(mine, theirs)
            hi = b.max_(mine, theirs)
            keep_lo = b.pand(upper, ascending)
            wrong_way = b.pand(upper, b.pnot(ascending))
            keep = b.selp(lo, mine, keep_lo)
            keep = b.selp(hi, keep, wrong_way)
            b.barrier()
            b.st_shared(tid, keep, guard=upper)
            take_hi = b.pand(b.pnot(upper), ascending)
            take_lo = b.pand(b.pnot(upper), b.pnot(ascending))
            keep2 = b.selp(hi, mine, take_hi)
            keep2 = b.selp(lo, keep2, take_lo)
            b.st_shared(tid, keep2, guard=b.pnot(upper))
            b.barrier()
            j //= 2
        k *= 2
    b.st_global(b.add(ob, b.add(blk, tid)), b.ld_shared(tid))
    kernel = b.build()

    rng = rng_for("sn", scale)
    data = rng.uniform(-100, 100, (blocks, n_per_block))
    mem = np.zeros(2 * n)
    mem[:n] = data.ravel()
    expected = mem.copy()
    expected[n:] = np.sort(data, axis=1).ravel()
    return WorkloadInstance(
        kernel=kernel,
        launch=LaunchConfig(grid=(blocks, 1), block=(threads, 1),
                            params=(0, n)),
        global_mem=mem,
        expected=expected,
    )


def _build_histogram(scale: str) -> WorkloadInstance:
    """64-bin histogram: shared-memory bin privatization with shared
    atomics, then an atomic merge into the global histogram."""
    n = pick(scale, 2048, 8192, 32768)
    bins = 64
    threads = 128
    blocks = pick(scale, 4, 16, 32)
    data_base, hist_base = 0, n

    b = KernelBuilder("histogram", num_params=4, shared_words=bins)
    nn, db, hb, total_threads = b.params(4)
    tid = b.tid_x()
    gid = b.global_index()
    total = blocks * threads
    iters = n // total
    unroll = 2 if iters % 2 == 0 else 1
    zero_bin = b.setp(CmpOp.LT, tid, bins)
    b.st_shared(tid, 0.0, guard=zero_bin)
    b.barrier()
    # Grid-stride binning with a build-time trip count, x2 unrolled.
    with b.loop(0, iters, unroll) as t:
        base_t = b.add(b.mul(t, float(total)), gid)
        for u in range(unroll):
            value = b.ld_global(b.add(db, base_t), offset=u * total)
            b.atom_shared(AtomOp.ADD, value, 1.0)
    b.barrier()
    with b.if_(zero_bin):
        count = b.ld_shared(tid)
        b.atom_global(AtomOp.ADD, b.add(hb, tid), count)
    kernel = b.build()

    rng = rng_for("histogram", scale)
    data = rng.integers(0, bins, n).astype(float)
    mem = np.zeros(n + bins)
    mem[:n] = data
    expected = mem.copy()
    expected[hist_base:] = np.bincount(data.astype(int),
                                       minlength=bins).astype(float)
    return WorkloadInstance(
        kernel=kernel,
        launch=LaunchConfig(grid=(blocks, 1), block=(threads, 1),
                            params=(n, data_base, hist_base,
                                    blocks * threads)),
        global_mem=mem,
        expected=expected,
    )


WORKLOADS = [
    Workload("BO", "binomialOptions", "cuda_sdk", _build_bo,
             uses_barriers=True),
    Workload("CS", "convolutionSeparable", "cuda_sdk", _build_cs,
             uses_barriers=True),
    Workload("SP", "scalarProd", "cuda_sdk", _build_sp, uses_barriers=True),
    Workload("BS", "BlackScholes", "cuda_sdk", _build_bs),
    Workload("SQ", "SobolQRNG", "cuda_sdk", _build_sq),
    Workload("WT", "fastWalshTransform", "cuda_sdk", _build_wt,
             uses_barriers=True),
    Workload("Transpose", "transpose", "cuda_sdk", _build_transpose,
             uses_barriers=True),
    Workload("DWT", "Discrete Haar wavelet decomposition", "cuda_sdk",
             _build_dwt),
    Workload("SN", "sortingNetworks", "cuda_sdk", _build_sn,
             uses_barriers=True),
    Workload("Histogram", "histogram", "cuda_sdk", _build_histogram,
             uses_barriers=True, uses_atomics=True),
]
