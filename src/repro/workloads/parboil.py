"""Parboil workloads: SGEMM and LBM."""

from __future__ import annotations

import numpy as np

from ..isa import CmpOp, KernelBuilder, Special
from ..sim import LaunchConfig
from .base import Workload, WorkloadInstance, pick, rng_for


def _build_sgemm(scale: str) -> WorkloadInstance:
    """Tiled dense matrix multiply C = A x B with shared-memory tiles.

    The canonical double-barrier pattern: each tile round stages A and B
    sub-blocks into shared memory, synchronizes, accumulates, and
    synchronizes again before overwriting the tiles — the shared-memory
    anti-dependence Flame's region analysis must reason about.
    """
    tile = 16
    n = pick(scale, 32, 64, 128)
    a_base, b_base, c_base = 0, n * n, 2 * n * n

    b = KernelBuilder("sgemm", num_params=4, shared_words=2 * tile * tile)
    nn, ab, bb, cb = b.params(4)
    row = b.add(b.mul(Special.CTAID_Y, tile), Special.TID_Y)
    col = b.add(b.mul(Special.CTAID_X, tile), Special.TID_X)
    s_index = b.add(b.mul(Special.TID_Y, tile), Special.TID_X)
    acc = b.mov(0.0)
    with b.loop(0, n, tile) as kt:
        a_addr = b.add(b.add(b.mul(row, nn), kt), Special.TID_X)
        b.st_shared(s_index, b.ld_global(b.add(ab, a_addr)))
        b_addr = b.add(b.mul(b.add(kt, Special.TID_Y), nn), col)
        b.st_shared(s_index, b.ld_global(b.add(bb, b_addr)),
                    offset=tile * tile)
        b.barrier()
        a_row = b.mul(Special.TID_Y, tile)
        tx = b.mov(Special.TID_X)
        # Fully unrolled accumulation, as nvcc emits for constant trip
        # counts — this is what gives PTX its ~50-instruction regions.
        for k in range(tile):
            a_val = b.ld_shared(a_row, offset=k)
            b_val = b.ld_shared(tx, offset=tile * tile + k * tile)
            b.mad(a_val, b_val, acc, dst=acc)
        b.barrier()
    b.st_global(b.add(cb, b.add(b.mul(row, nn), col)), acc)
    kernel = b.build()

    rng = rng_for("sgemm", scale)
    a = rng.uniform(-1, 1, (n, n))
    bm = rng.uniform(-1, 1, (n, n))
    mem = np.zeros(3 * n * n)
    mem[:n * n] = a.ravel()
    mem[n * n:2 * n * n] = bm.ravel()
    expected = mem.copy()
    expected[c_base:] = (a @ bm).ravel()
    grid = n // tile
    return WorkloadInstance(
        kernel=kernel,
        launch=LaunchConfig(grid=(grid, grid), block=(tile, tile),
                            params=(n, a_base, b_base, c_base)),
        global_mem=mem,
        expected=expected,
        rtol=1e-9,
    )


def _build_sgemm_abft(scale: str) -> WorkloadInstance:
    """SGEMM with ABFT checksum augmentation (online fault tolerance).

    Classic checksum-encoded GEMM: the inputs carry precomputed encoding
    vectors — ``br[k] = sum_j B[k,j]`` (row sums of B) and ``ac[k] =
    sum_i A[i,k]`` (column sums of A) — and the kernel computes, in the
    same tiled accumulation loop as SGEMM, the row/column checksums of C
    alongside the product: ``R[i] = sum_k A[i,k] * br[k] = sum_j C[i,j]``
    (stored by the first column's threads) and ``K[j] = sum_k ac[k] *
    B[k,j] = sum_i C[i,j]`` (stored by the first row's threads).  The
    ``abft_sgemm`` runtime models validating these relations at region
    boundaries and correcting a localized mismatch online.
    """
    tile = 16
    n = pick(scale, 32, 64, 128)
    a_base, b_base, c_base = 0, n * n, 2 * n * n
    br_base = 3 * n * n
    ac_base = 3 * n * n + n
    r_base = 3 * n * n + 2 * n
    k_base = 3 * n * n + 3 * n

    b = KernelBuilder("sgemm_abft", num_params=8,
                      shared_words=2 * tile * tile)
    nn, ab, bb, cb, brb, acb, rb, kb = b.params(8)
    row = b.add(b.mul(Special.CTAID_Y, tile), Special.TID_Y)
    col = b.add(b.mul(Special.CTAID_X, tile), Special.TID_X)
    s_index = b.add(b.mul(Special.TID_Y, tile), Special.TID_X)
    acc = b.mov(0.0)
    acc_r = b.mov(0.0)
    acc_c = b.mov(0.0)
    with b.loop(0, n, tile) as kt:
        a_addr = b.add(b.add(b.mul(row, nn), kt), Special.TID_X)
        b.st_shared(s_index, b.ld_global(b.add(ab, a_addr)))
        b_addr = b.add(b.mul(b.add(kt, Special.TID_Y), nn), col)
        b.st_shared(s_index, b.ld_global(b.add(bb, b_addr)),
                    offset=tile * tile)
        b.barrier()
        a_row = b.mul(Special.TID_Y, tile)
        tx = b.mov(Special.TID_X)
        br_at = b.add(brb, kt)
        ac_at = b.add(acb, kt)
        for k in range(tile):
            a_val = b.ld_shared(a_row, offset=k)
            b_val = b.ld_shared(tx, offset=tile * tile + k * tile)
            b.mad(a_val, b_val, acc, dst=acc)
            # Checksum accumulation against the input encodings (uniform
            # loads — every thread of the warp reads the same word).
            br_k = b.ld_global(br_at, offset=k)
            b.mad(a_val, br_k, acc_r, dst=acc_r)
            ac_k = b.ld_global(ac_at, offset=k)
            b.mad(ac_k, b_val, acc_c, dst=acc_c)
        b.barrier()
    b.st_global(b.add(cb, b.add(b.mul(row, nn), col)), acc)
    first_col = b.setp(CmpOp.EQ, col, 0.0)
    b.st_global(b.add(rb, row), acc_r, guard=first_col)
    first_row = b.setp(CmpOp.EQ, row, 0.0)
    b.st_global(b.add(kb, col), acc_c, guard=first_row)
    kernel = b.build()

    rng = rng_for("sgemm_abft", scale)
    a = rng.uniform(-1, 1, (n, n))
    bm = rng.uniform(-1, 1, (n, n))
    br = bm.sum(axis=1)
    ac = a.sum(axis=0)
    mem = np.zeros(3 * n * n + 4 * n)
    mem[:n * n] = a.ravel()
    mem[n * n:2 * n * n] = bm.ravel()
    mem[br_base:br_base + n] = br
    mem[ac_base:ac_base + n] = ac
    expected = mem.copy()
    expected[c_base:c_base + n * n] = (a @ bm).ravel()
    expected[r_base:r_base + n] = a @ br
    expected[k_base:k_base + n] = ac @ bm
    grid = n // tile
    return WorkloadInstance(
        kernel=kernel,
        launch=LaunchConfig(grid=(grid, grid), block=(tile, tile),
                            params=(n, a_base, b_base, c_base, br_base,
                                    ac_base, r_base, k_base)),
        global_mem=mem,
        expected=expected,
        rtol=1e-9,
    )


def _build_lbm(scale: str) -> WorkloadInstance:
    """Lattice-Boltzmann-style streaming: read five distribution arrays,
    relax toward a local equilibrium, write five output arrays — heavily
    memory-bound with no data reuse."""
    n = pick(scale, 512, 2048, 8192)
    omega = 1.6

    b = KernelBuilder("lbm", num_params=3)
    nn, fin, fout = b.params(3)
    i = b.global_index()
    guard = b.setp(CmpOp.LT, i, nn)
    with b.if_(guard):
        fs = []
        for d in range(5):
            addr = b.add(fin, b.add(i, d * n))
            fs.append(b.ld_global(addr))
        rho = fs[0]
        for d in range(1, 5):
            rho = b.add(rho, fs[d])
        feq = b.mul(rho, 0.2)
        for d in range(5):
            relaxed = b.add(fs[d], b.mul(b.sub(feq, fs[d]), omega))
            b.st_global(b.add(fout, b.add(i, d * n)), relaxed)
    kernel = b.build()

    rng = rng_for("lbm", scale)
    f = rng.uniform(0.1, 1.0, (5, n))
    mem = np.zeros(10 * n)
    mem[:5 * n] = f.ravel()
    expected = mem.copy()
    rho = f.sum(axis=0)
    feq = 0.2 * rho
    expected[5 * n:] = (f + (feq - f) * omega).ravel()
    threads = 128
    blocks = -(-n // threads)
    return WorkloadInstance(
        kernel=kernel,
        launch=LaunchConfig(grid=(blocks, 1), block=(threads, 1),
                            params=(n, 0, 5 * n)),
        global_mem=mem,
        expected=expected,
    )


WORKLOADS = [
    Workload("SGEMM", "Single-precision Matrix Multiply", "parboil",
             _build_sgemm, uses_barriers=True),
    Workload("LBM", "Lattice-Boltzmann Method Fluid Dynamics", "parboil",
             _build_lbm),
]

#: Workload variants: derivatives of Table-I workloads that scheme
#: studies need (checksum-augmented kernels, ...).  Kept out of
#: ``WORKLOADS`` so Table I and ``ALL_BENCHMARKS`` stay exactly the
#: paper's 34 entries; resolvable by name via ``workload_by_name``.
VARIANTS = [
    Workload("SGEMM_ABFT", "SGEMM with ABFT Checksum Augmentation",
             "parboil", _build_sgemm_abft, uses_barriers=True,
             notes="checksum-encoded inputs; row/column checksums of C "
                   "computed alongside the product"),
]
