"""GPGPU-Sim benchmark-suite workloads: NN, LPS, AES."""

from __future__ import annotations

import numpy as np

from ..isa import CmpOp, KernelBuilder
from ..sim import LaunchConfig
from .base import Workload, WorkloadInstance, pick, rng_for


def _build_nn(scale: str) -> WorkloadInstance:
    """Neural-network layer: out[j] = sigmoid(b[j] + sum_i W[j,i] x[i]).

    One thread per output neuron; the weight-row walk is a rolled loop
    with a x4-unrolled body (nvcc-style), ending in an SFU sigmoid.
    """
    n_in = pick(scale, 32, 64, 128)
    n_out = pick(scale, 256, 512, 1024)
    w_base, x_base, b_base, o_base = (0, n_out * n_in, n_out * n_in + n_in,
                                      n_out * n_in + n_in + n_out)

    b = KernelBuilder("nn", num_params=5)
    nout, wb, xb, bias_b, ob = b.params(5)
    j = b.global_index()
    guard = b.setp(CmpOp.LT, j, nout)
    with b.if_(guard):
        acc = b.ld_global(b.add(bias_b, j))
        row_base = b.add(wb, b.mul(j, n_in))
        with b.loop(0, n_in, 8) as k:
            # Indexed addressing (no pointer bumps): one induction
            # variable, bodies unrolled x8 as nvcc would emit.
            w_addr = b.add(row_base, k)
            x_addr = b.add(xb, k)
            for u in range(8):
                w = b.ld_global(w_addr, offset=u)
                x = b.ld_global(x_addr, offset=u)
                b.mad(w, x, acc, dst=acc)
        e = b.exp(b.neg(acc))
        sig = b.div(1.0, b.add(1.0, e))
        b.st_global(b.add(ob, j), sig)
    kernel = b.build()

    rng = rng_for("nn", scale)
    w = rng.uniform(-0.5, 0.5, (n_out, n_in))
    x = rng.uniform(-1, 1, n_in)
    bias = rng.uniform(-0.1, 0.1, n_out)
    mem = np.zeros(o_base + n_out)
    mem[:n_out * n_in] = w.ravel()
    mem[x_base:x_base + n_in] = x
    mem[b_base:b_base + n_out] = bias
    expected = mem.copy()
    expected[o_base:] = 1.0 / (1.0 + np.exp(-(bias + w @ x)))
    threads = 128
    return WorkloadInstance(
        kernel=kernel,
        launch=LaunchConfig(grid=(-(-n_out // threads), 1),
                            block=(threads, 1),
                            params=(n_out, w_base, x_base, b_base, o_base)),
        global_mem=mem,
        expected=expected,
    )


def _build_lps(scale: str) -> WorkloadInstance:
    """Laplace 2-D red-black-style sweep: interior cells average their
    four neighbours, boundary cells copy through."""
    w = pick(scale, 32, 64, 128)
    h = pick(scale, 16, 32, 64)
    in_base, out_base = 0, w * h

    b = KernelBuilder("lps", num_params=4)
    ww, hh, ib, ob = b.params(4)
    x = b.global_index()
    y = b.global_index_y()
    inside = b.setp(CmpOp.LT, x, ww)
    y_ok = b.setp(CmpOp.LT, y, hh)
    inside = b.pand(inside, y_ok)
    with b.if_(inside):
        idx = b.add(b.mul(y, ww), x)
        center = b.ld_global(b.add(ib, idx))
        interior = b.setp(CmpOp.GT, x, 0)
        interior = b.pand(interior, b.setp(CmpOp.LT, x, b.sub(ww, 1)))
        interior = b.pand(interior, b.setp(CmpOp.GT, y, 0))
        interior = b.pand(interior, b.setp(CmpOp.LT, y, b.sub(hh, 1)))
        result = b.mov(center)
        with b.if_(interior):
            src = b.add(ib, idx)
            left = b.ld_global(src, offset=-1)
            right = b.ld_global(src, offset=1)
            up = b.ld_global(src, offset=-w)
            down = b.ld_global(src, offset=w)
            total = b.add(b.add(left, right), b.add(up, down))
            b.mul(total, 0.25, dst=result)
        b.st_global(b.add(ob, idx), result)
    kernel = b.build()

    rng = rng_for("lps", scale)
    grid_vals = rng.uniform(0, 100, (h, w))
    mem = np.zeros(2 * w * h)
    mem[:w * h] = grid_vals.ravel()
    expected = mem.copy()
    out = grid_vals.copy()
    out[1:-1, 1:-1] = 0.25 * (grid_vals[1:-1, :-2] + grid_vals[1:-1, 2:]
                              + grid_vals[:-2, 1:-1] + grid_vals[2:, 1:-1])
    expected[out_base:] = out.ravel()
    return WorkloadInstance(
        kernel=kernel,
        launch=LaunchConfig(grid=(-(-w // 32), -(-h // 4)),
                            block=(32, 4),
                            params=(w, h, in_base, out_base)),
        global_mem=mem,
        expected=expected,
    )


def _build_aes(scale: str) -> WorkloadInstance:
    """AES-style round function: repeated S-box gathers, XORs, and byte
    rotations over a per-thread state word — table-lookup bound."""
    n = pick(scale, 512, 2048, 8192)
    rounds = 4
    sbox_base, key_base, in_base, out_base = 0, 256, 256 + rounds, \
        256 + rounds + 0
    in_base = 256 + rounds
    out_base = in_base + n

    b = KernelBuilder("aes", num_params=5)
    nn, sb, kb, ib, ob = b.params(5)
    i = b.global_index()
    guard = b.setp(CmpOp.LT, i, nn)
    with b.if_(guard):
        state = b.ld_global(b.add(ib, i))
        for r in range(rounds):
            rk = b.ld_global(kb, offset=r)
            state = b.xor(state, rk)
            lo = b.and_(state, 255)
            sub = b.ld_global(b.add(sb, lo))
            hi = b.shr(state, 8)
            state = b.xor(b.shl(sub, 4), hi)
            state = b.and_(state, 0xFFFFFF)
        b.st_global(b.add(ob, i), state)
    kernel = b.build()

    rng = rng_for("aes", scale)
    sbox = rng.integers(0, 256, 256).astype(float)
    keys = rng.integers(0, 2**20, rounds).astype(float)
    data = rng.integers(0, 2**20, n).astype(float)
    mem = np.zeros(out_base + n)
    mem[:256] = sbox
    mem[key_base:key_base + rounds] = keys
    mem[in_base:in_base + n] = data

    state = data.astype(np.int64)
    for r in range(rounds):
        state = state ^ int(keys[r])
        lo = state & 255
        sub = sbox.astype(np.int64)[lo]
        hi = state >> 8
        state = ((sub << 4) ^ hi) & 0xFFFFFF
    expected = mem.copy()
    expected[out_base:] = state.astype(float)
    threads = 128
    return WorkloadInstance(
        kernel=kernel,
        launch=LaunchConfig(grid=(-(-n // threads), 1), block=(threads, 1),
                            params=(n, sbox_base, key_base, in_base, out_base)),
        global_mem=mem,
        expected=expected,
    )


WORKLOADS = [
    Workload("NN", "Neural network", "gpgpusim", _build_nn),
    Workload("LPS", "Laplace transform", "gpgpusim", _build_lps),
    Workload("AES", "AES encryption", "gpgpusim", _build_aes),
]
