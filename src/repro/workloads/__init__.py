"""The 34 Table-I benchmark applications, written in the virtual ISA
with NumPy references for functional verification."""

from .base import SCALES, Workload, WorkloadInstance, pick, rng_for
from .suite import VARIANTS, WORKLOADS, table1_rows, workload_by_name

__all__ = [
    "SCALES", "VARIANTS", "WORKLOADS", "Workload", "WorkloadInstance",
    "pick", "rng_for", "table1_rows", "workload_by_name",
]
