"""Workload framework for the 34 Table-I benchmarks.

Each workload builds, for a given scale, a :class:`WorkloadInstance`:
the kernel (written in the virtual ISA), the launch geometry, the
initial global memory image, and a NumPy reference computing the
expected final memory.  The reference is what makes every benchmark
double as a functional correctness test — including under fault
injection, where recovered runs must reproduce it exactly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from ..errors import ConfigError
from ..isa import Kernel
from ..sim import LaunchConfig

#: Workload scales.  ``tiny`` keeps unit tests fast; ``small`` is the
#: default for the figure harness; ``medium`` for closer-to-paper runs.
SCALES = ("tiny", "small", "medium")


@dataclass
class WorkloadInstance:
    """One concrete, runnable benchmark configuration."""

    kernel: Kernel
    launch: LaunchConfig
    global_mem: np.ndarray
    expected: np.ndarray | None = None
    check_region: slice | None = None
    rtol: float = 1e-9
    atol: float = 1e-9

    def fresh_memory(self) -> np.ndarray:
        """A pristine copy of the initial global-memory image."""
        return self.global_mem.copy()

    def verify(self, final_mem: np.ndarray) -> bool:
        """Does the final memory match the NumPy reference?"""
        if self.expected is None:
            return True
        region = self.check_region or slice(0, self.expected.size)
        got = final_mem[region]
        want = self.expected[region] if self.expected.size >= got.size \
            else self.expected
        return bool(np.allclose(got, want, rtol=self.rtol, atol=self.atol))


@dataclass(frozen=True)
class Workload:
    """A named benchmark: metadata plus an instance factory."""

    abbr: str
    full_name: str
    suite: str
    build: Callable[[str], WorkloadInstance] = field(compare=False)
    uses_barriers: bool = False
    uses_atomics: bool = False
    notes: str = ""

    def instance(self, scale: str = "small") -> WorkloadInstance:
        if scale not in SCALES:
            raise ConfigError(
                f"unknown scale {scale!r}; choose from {SCALES}")
        return self.build(scale)


def pick(scale: str, tiny, small, medium):
    """Scale-indexed parameter selection."""
    return {"tiny": tiny, "small": small, "medium": medium}[scale]


def rng_for(name: str, scale: str) -> np.random.Generator:
    """Deterministic per-workload RNG (stable across processes, unlike
    the salted built-in ``hash``)."""
    import zlib

    seed = zlib.crc32(f"{name}:{scale}".encode())
    return np.random.default_rng(seed)
