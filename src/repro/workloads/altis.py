"""ALTIS workloads: Stencil (3-D) and TPACF."""

from __future__ import annotations

import numpy as np

from ..isa import AtomOp, CmpOp, KernelBuilder
from ..sim import LaunchConfig
from .base import Workload, WorkloadInstance, pick, rng_for


def _build_stencil(scale: str) -> WorkloadInstance:
    """3-D 7-point stencil: a 2-D thread grid marches the z dimension,
    six neighbour loads per cell."""
    nx = pick(scale, 16, 32, 64)
    ny = pick(scale, 16, 32, 64)
    nz = pick(scale, 4, 8, 16)
    c0, c1 = 0.5, 1.0 / 12.0
    in_base, out_base = 0, nx * ny * nz

    b = KernelBuilder("stencil", num_params=5)
    nxx, nyy, nzz, ib, ob = b.params(5)
    x = b.global_index()
    y = b.global_index_y()
    inside = b.pand(b.setp(CmpOp.LT, x, nxx), b.setp(CmpOp.LT, y, nyy))
    with b.if_(inside):
        plane = b.mul(nxx, nyy)
        xy = b.add(b.mul(y, nxx), x)
        interior_xy = b.setp(CmpOp.GT, x, 0)
        interior_xy = b.pand(interior_xy,
                             b.setp(CmpOp.LT, x, b.sub(nxx, 1)))
        interior_xy = b.pand(interior_xy, b.setp(CmpOp.GT, y, 0))
        interior_xy = b.pand(interior_xy,
                             b.setp(CmpOp.LT, y, b.sub(nyy, 1)))
        with b.loop(0, nz) as z:
            idx = b.add(b.mul(z, plane), xy)
            src = b.add(ib, idx)
            center = b.ld_global(src)
            result = b.mov(center)
            z_inner = b.pand(interior_xy, b.setp(CmpOp.GT, z, 0.0))
            z_inner = b.pand(z_inner,
                             b.setp(CmpOp.LT, z, b.sub(nzz, 1)))
            with b.if_(z_inner):
                xl = b.ld_global(src, offset=-1)
                xr = b.ld_global(src, offset=1)
                yl = b.ld_global(src, offset=-nx)
                yr = b.ld_global(src, offset=nx)
                zl = b.ld_global(src, offset=-nx * ny)
                zr = b.ld_global(src, offset=nx * ny)
                total = b.add(b.add(b.add(xl, xr), b.add(yl, yr)),
                              b.add(zl, zr))
                b.mad(total, c1, b.mul(center, c0), dst=result)
            b.st_global(b.add(ob, idx), result)
    kernel = b.build()

    rng = rng_for("stencil", scale)
    vol = rng.uniform(0, 10, (nz, ny, nx))
    mem = np.zeros(2 * nx * ny * nz)
    mem[:vol.size] = vol.ravel()
    out = vol.copy()
    out[1:-1, 1:-1, 1:-1] = (
        c0 * vol[1:-1, 1:-1, 1:-1]
        + c1 * (vol[1:-1, 1:-1, :-2] + vol[1:-1, 1:-1, 2:]
                + vol[1:-1, :-2, 1:-1] + vol[1:-1, 2:, 1:-1]
                + vol[:-2, 1:-1, 1:-1] + vol[2:, 1:-1, 1:-1]))
    expected = mem.copy()
    expected[out_base:] = out.ravel()
    return WorkloadInstance(
        kernel=kernel,
        launch=LaunchConfig(grid=(-(-nx // 16), -(-ny // 8)),
                            block=(16, 8),
                            params=(nx, ny, nz, in_base, out_base)),
        global_mem=mem,
        expected=expected,
        rtol=1e-9,
    )


def _build_tpacf(scale: str) -> WorkloadInstance:
    """Two-point angular correlation: each thread correlates one unit
    vector against the whole catalogue, binning dot products into a
    privatized shared histogram merged with atomics."""
    points = pick(scale, 128, 256, 512)
    bins = 16
    threads = 64
    x_base, y_base, z_base = 0, points, 2 * points
    h_base = 3 * points

    b = KernelBuilder("tpacf", num_params=6, shared_words=bins)
    npt, xb, yb, zb, hb, nbins = b.params(6)
    tid = b.tid_x()
    i = b.global_index()
    zero = b.setp(CmpOp.LT, tid, bins)
    b.st_shared(tid, 0.0, guard=zero)
    b.barrier()
    in_range = b.setp(CmpOp.LT, i, npt)
    with b.if_(in_range):
        xi = b.ld_global(b.add(xb, i))
        yi = b.ld_global(b.add(yb, i))
        zi = b.ld_global(b.add(zb, i))
        with b.loop(0, points, 4) as j:
            # x4 unrolled pair loop (pragma-unroll style).
            for u in range(4):
                xj = b.ld_global(b.add(xb, j), offset=u)
                yj = b.ld_global(b.add(yb, j), offset=u)
                zj = b.ld_global(b.add(zb, j), offset=u)
                dot = b.mad(xi, xj, b.mad(yi, yj, b.mul(zi, zj)))
                clamped = b.min_(b.max_(dot, -1.0), 1.0)
                binf = b.floor(b.mul(b.add(clamped, 1.0), bins / 2.0))
                binf = b.min_(binf, float(bins - 1))
                b.atom_shared(AtomOp.ADD, binf, 1.0)
    b.barrier()
    with b.if_(zero):
        b.atom_global(AtomOp.ADD, b.add(hb, tid), b.ld_shared(tid))
    kernel = b.build()

    rng = rng_for("tpacf", scale)
    v = rng.normal(size=(points, 3))
    v /= np.linalg.norm(v, axis=1, keepdims=True)
    mem = np.zeros(h_base + bins)
    mem[:points] = v[:, 0]
    mem[y_base:y_base + points] = v[:, 1]
    mem[z_base:z_base + points] = v[:, 2]
    dots = np.clip(v @ v.T, -1.0, 1.0)
    idx = np.minimum(np.floor((dots + 1.0) * (bins / 2.0)),
                     bins - 1).astype(int)
    expected = mem.copy()
    expected[h_base:] = np.bincount(idx.ravel(), minlength=bins).astype(float)
    return WorkloadInstance(
        kernel=kernel,
        launch=LaunchConfig(grid=(-(-points // threads), 1),
                            block=(threads, 1),
                            params=(points, x_base, y_base, z_base, h_base,
                                    bins)),
        global_mem=mem,
        expected=expected,
    )


WORKLOADS = [
    Workload("Stencil", "3-D Stencil Operation", "altis", _build_stencil),
    Workload("TPACF", "Two Point Angular Correlation Function", "altis",
             _build_tpacf, uses_barriers=True, uses_atomics=True),
]
