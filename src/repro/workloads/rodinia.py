"""Rodinia workloads: BP, BFS, Gaussian, Hotspot, LavaMD, LUD, NW, PF,
SRAD, SC, CFD, Kmeans, KNN."""

from __future__ import annotations

import numpy as np

from ..isa import AtomOp, CmpOp, KernelBuilder, Special
from ..sim import LaunchConfig
from .base import Workload, WorkloadInstance, pick, rng_for


def _build_bp(scale: str) -> WorkloadInstance:
    """Back-propagation forward layer: stage the input activations in
    shared memory per block, synchronize, then every thread computes one
    output unit's weighted sum and sigmoid."""
    n_in = 64
    n_out = pick(scale, 256, 1024, 4096)
    threads = 64
    w_base = 0
    x_base = w_base + n_out * n_in
    o_base = x_base + n_in

    b = KernelBuilder("bp", num_params=4, shared_words=n_in)
    nout, wb, xb, ob = b.params(4)
    tid = b.tid_x()
    j = b.global_index()
    b.st_shared(tid, b.ld_global(b.add(xb, tid)))
    b.barrier()
    guard = b.setp(CmpOp.LT, j, nout)
    with b.if_(guard):
        acc = b.mov(0.0)
        row = b.add(wb, b.mul(j, n_in))
        with b.loop(0, n_in, 8) as k:
            w_addr = b.add(row, k)
            s_addr = b.mov(k)
            for u in range(8):
                w = b.ld_global(w_addr, offset=u)
                x = b.ld_shared(s_addr, offset=u)
                b.mad(w, x, acc, dst=acc)
        sig = b.div(1.0, b.add(1.0, b.exp(b.neg(acc))))
        b.st_global(b.add(ob, j), sig)
    kernel = b.build()

    rng = rng_for("bp", scale)
    w = rng.uniform(-0.3, 0.3, (n_out, n_in))
    x = rng.uniform(-1, 1, n_in)
    mem = np.zeros(o_base + n_out)
    mem[:n_out * n_in] = w.ravel()
    mem[x_base:x_base + n_in] = x
    expected = mem.copy()
    expected[o_base:] = 1.0 / (1.0 + np.exp(-(w @ x)))
    return WorkloadInstance(
        kernel=kernel,
        launch=LaunchConfig(grid=(n_out // threads, 1), block=(threads, 1),
                            params=(n_out, w_base, x_base, o_base)),
        global_mem=mem,
        expected=expected,
    )


def _build_bfs(scale: str) -> WorkloadInstance:
    """One BFS frontier expansion: threads on the frontier relax their
    neighbours — data-dependent branching and gather/scatter traffic."""
    nodes = pick(scale, 512, 2048, 8192)
    degree = 4
    rng = rng_for("bfs", scale)
    edges = rng.integers(0, nodes, (nodes, degree)).astype(float)
    frontier = (rng.uniform(0, 1, nodes) < 0.3).astype(float)
    visited = frontier.copy()
    cost = np.where(frontier > 0, 0.0, -1.0)

    # Layout: edges | frontier | visited | cost | next_frontier
    e_base = 0
    f_base = e_base + nodes * degree
    v_base = f_base + nodes
    c_base = v_base + nodes
    nf_base = c_base + nodes

    b = KernelBuilder("bfs", num_params=6)
    nn, eb, fb, vb, cb, nfb = b.params(6)
    i = b.global_index()
    guard = b.setp(CmpOp.LT, i, nn)
    with b.if_(guard):
        on_frontier = b.setp(CmpOp.GT, b.ld_global(b.add(fb, i)), 0.0)
        with b.if_(on_frontier):
            my_cost = b.ld_global(b.add(cb, i))
            new_cost = b.add(my_cost, 1.0)
            edge_row = b.add(eb, b.mul(i, degree))
            for e in range(degree):
                nbr = b.ld_global(edge_row, offset=e)
                seen = b.setp(CmpOp.GT, b.ld_global(b.add(vb, nbr)), 0.0)
                fresh = b.pnot(seen)
                b.st_global(b.add(cb, nbr), new_cost, guard=fresh)
                b.st_global(b.add(nfb, nbr), 1.0, guard=fresh)
    kernel = b.build()

    mem = np.zeros(nf_base + nodes)
    mem[:nodes * degree] = edges.ravel()
    mem[f_base:f_base + nodes] = frontier
    mem[v_base:v_base + nodes] = visited
    mem[c_base:c_base + nodes] = cost

    exp_cost = cost.copy()
    exp_next = np.zeros(nodes)
    for i in np.flatnonzero(frontier):
        for e in edges[i].astype(int):
            if visited[e] == 0:
                exp_cost[e] = cost[i] + 1.0
                exp_next[e] = 1.0
    expected = mem.copy()
    expected[c_base:c_base + nodes] = exp_cost
    expected[nf_base:] = exp_next
    threads = 128
    return WorkloadInstance(
        kernel=kernel,
        launch=LaunchConfig(grid=(-(-nodes // threads), 1),
                            block=(threads, 1),
                            params=(nodes, e_base, f_base, v_base, c_base,
                                    nf_base)),
        global_mem=mem,
        expected=expected,
    )


def _build_gaussian(scale: str) -> WorkloadInstance:
    """Gaussian elimination Fan2 step (k = 0): in-place update of the
    trailing submatrix — every store is a memory anti-dependence."""
    n = pick(scale, 32, 64, 128)
    a_base, m_base = 0, n * n

    b = KernelBuilder("gaussian", num_params=4)
    nn, ab, mb, k_param = b.params(4)
    x = b.global_index()
    y = b.global_index_y()
    xg = b.setp(CmpOp.LT, x, nn)
    yg = b.pand(xg, b.setp(CmpOp.LT, y, b.sub(nn, 1)))
    with b.if_(yg):
        row = b.add(y, 1.0)        # rows k+1..n-1 with k=0
        mult = b.ld_global(b.add(mb, row))
        pivot = b.ld_global(b.add(ab, x))      # a[0, x]
        addr = b.add(ab, b.add(b.mul(row, nn), x))
        old = b.ld_global(addr)
        b.st_global(addr, b.sub(old, b.mul(mult, pivot)))
    kernel = b.build()

    rng = rng_for("gaussian", scale)
    a = rng.uniform(1, 2, (n, n))
    m = rng.uniform(0.1, 0.9, n)
    mem = np.zeros(2 * n * n)
    mem[:n * n] = a.ravel()
    mem[m_base:m_base + n] = m
    out = a.copy()
    out[1:, :] = a[1:, :] - m[1:n, None] * a[0, :]
    expected = mem.copy()
    expected[:n * n] = out.ravel()
    return WorkloadInstance(
        kernel=kernel,
        launch=LaunchConfig(grid=(-(-n // 32), -(-(n - 1) // 4)),
                            block=(32, 4),
                            params=(n, a_base, m_base, 0)),
        global_mem=mem,
        expected=expected,
    )


def _build_hotspot(scale: str) -> WorkloadInstance:
    """Hotspot thermal stencil: tile staged in shared memory, one
    in-kernel iteration with neighbour clamping at tile borders."""
    tile = 16
    n = pick(scale, 32, 64, 128)
    t_base, p_base, o_base = 0, n * n, 2 * n * n
    cap, rx, ry = 0.5, 0.1, 0.1

    b = KernelBuilder("hotspot", num_params=4, shared_words=tile * tile)
    nn, tb, pb, ob = b.params(4)
    tx = b.mov(Special.TID_X)
    ty = b.mov(Special.TID_Y)
    x = b.add(b.mul(Special.CTAID_X, tile), tx)
    y = b.add(b.mul(Special.CTAID_Y, tile), ty)
    g_idx = b.add(b.mul(y, nn), x)
    s_idx = b.add(b.mul(ty, tile), tx)
    temp = b.ld_global(b.add(tb, g_idx))
    b.st_shared(s_idx, temp)
    b.barrier()
    power = b.ld_global(b.add(pb, g_idx))
    # Clamped neighbour offsets within the tile.
    xm = b.max_(b.sub(tx, 1), 0.0)
    xp = b.min_(b.add(tx, 1), tile - 1)
    ym = b.max_(b.sub(ty, 1), 0.0)
    yp = b.min_(b.add(ty, 1), tile - 1)
    left = b.ld_shared(b.add(b.mul(ty, tile), xm))
    right = b.ld_shared(b.add(b.mul(ty, tile), xp))
    up = b.ld_shared(b.add(b.mul(ym, tile), tx))
    down = b.ld_shared(b.add(b.mul(yp, tile), tx))
    dx = b.mul(b.sub(b.add(left, right), b.mul(2.0, temp)), rx)
    dy = b.mul(b.sub(b.add(up, down), b.mul(2.0, temp)), ry)
    delta = b.mul(b.add(b.add(dx, dy), power), cap)
    b.st_global(b.add(ob, g_idx), b.add(temp, delta))
    kernel = b.build()

    rng = rng_for("hotspot", scale)
    temp_v = rng.uniform(50, 90, (n, n))
    power_v = rng.uniform(0, 5, (n, n))
    mem = np.zeros(3 * n * n)
    mem[:n * n] = temp_v.ravel()
    mem[p_base:p_base + n * n] = power_v.ravel()

    g = n // tile
    out = np.zeros((n, n))
    for by in range(g):
        for bx in range(g):
            t = temp_v[by * tile:(by + 1) * tile, bx * tile:(bx + 1) * tile]
            p = power_v[by * tile:(by + 1) * tile, bx * tile:(bx + 1) * tile]
            idx = np.arange(tile)
            xm, xp = np.maximum(idx - 1, 0), np.minimum(idx + 1, tile - 1)
            left, right = t[:, xm], t[:, xp]
            up, down = t[xm, :], t[xp, :]
            dx = (left + right - 2 * t) * rx
            dy = (up + down - 2 * t) * ry
            out[by * tile:(by + 1) * tile, bx * tile:(bx + 1) * tile] = \
                t + (dx + dy + p) * cap
    expected = mem.copy()
    expected[o_base:] = out.ravel()
    return WorkloadInstance(
        kernel=kernel,
        launch=LaunchConfig(grid=(g, g), block=(tile, tile),
                            params=(n, t_base, p_base, o_base)),
        global_mem=mem,
        expected=expected,
    )


def _build_lavamd(scale: str) -> WorkloadInstance:
    """LavaMD-style particle forces: stage one box's particles in shared
    memory, synchronize, then accumulate pairwise exp-kernel forces."""
    particles = 64
    boxes = pick(scale, 4, 16, 32)
    threads = 64
    x_base = 0
    f_base = boxes * particles

    b = KernelBuilder("lavamd", num_params=3, shared_words=particles)
    xb, fb, np_param = b.params(3)
    tid = b.tid_x()
    box = b.mul(b.ctaid_x(), particles)
    mine_addr = b.add(xb, b.add(box, tid))
    mine = b.ld_global(mine_addr)
    b.st_shared(tid, mine)
    b.barrier()
    force = b.mov(0.0)
    with b.loop(0, particles, 4) as j:
        s_addr = b.mov(j)
        for u in range(4):
            xj = b.ld_shared(s_addr, offset=u)
            d = b.sub(mine, xj)
            d2 = b.mul(d, d)
            w = b.exp(b.neg(d2))
            b.mad(w, d, force, dst=force)
    b.st_global(b.add(fb, b.add(box, tid)), force)
    kernel = b.build()

    rng = rng_for("lavamd", scale)
    x = rng.uniform(-2, 2, (boxes, particles))
    mem = np.zeros(2 * boxes * particles)
    mem[:boxes * particles] = x.ravel()
    d = x[:, :, None] - x[:, None, :]
    force = (np.exp(-(d ** 2)) * d).sum(axis=2)
    expected = mem.copy()
    expected[f_base:] = force.ravel()
    return WorkloadInstance(
        kernel=kernel,
        launch=LaunchConfig(grid=(boxes, 1), block=(threads, 1),
                            params=(x_base, f_base, particles)),
        global_mem=mem,
        expected=expected,
        rtol=1e-8, atol=1e-8,
    )


def _build_lud(scale: str) -> WorkloadInstance:
    """LUD diagonal-block factorization: a shared 16x16 tile updated in
    place with two barriers per elimination step — the paper's
    worst-case kernel for boundary frequency (Section VI-B2)."""
    tile = 16
    blocks = pick(scale, 4, 16, 32)
    threads = tile
    a_base = 0
    n_words = blocks * tile * tile

    b = KernelBuilder("lud", num_params=2, shared_words=tile * tile)
    ab, tile_p = b.params(2)
    tid = b.tid_x()
    base = b.add(ab, b.mul(b.ctaid_x(), tile * tile))
    # Stage the tile: each thread loads its column across all rows.
    for row in range(tile):
        addr = b.add(base, b.add(tid, row * tile))
        b.st_shared(b.add(b.mov(float(row * tile)), tid),
                    b.ld_global(addr))
    b.barrier()
    for k in range(tile - 1):
        # Scale column k below the pivot.
        below = b.setp(CmpOp.GT, tid, float(k))
        with b.if_(below):
            pivot = b.ld_shared(b.mov(float(k * tile + k)))
            mine_a = b.add(b.mul(tid, tile), k)
            b.st_shared(mine_a, b.div(b.ld_shared(mine_a), pivot))
        b.barrier()
        # Rank-1 update of the trailing submatrix (thread = row).
        with b.if_(below):
            lik = b.ld_shared(b.add(b.mul(tid, tile), k))
            row_addr = b.mul(tid, tile)
            for j in range(k + 1, tile):
                ukj = b.ld_shared(b.mov(float(k * tile + j)))
                a_addr = b.add(row_addr, j)
                old = b.ld_shared(a_addr)
                b.st_shared(a_addr, b.sub(old, b.mul(lik, ukj)))
        b.barrier()
    for row in range(tile):
        addr = b.add(base, b.add(tid, row * tile))
        b.st_global(addr, b.ld_shared(b.add(b.mov(float(row * tile)), tid)))
    kernel = b.build()

    rng = rng_for("lud", scale)
    tiles = rng.uniform(1, 2, (blocks, tile, tile))
    for blk in range(blocks):
        tiles[blk] += np.eye(tile) * tile  # diagonal dominance
    mem = tiles.ravel().copy()
    out = tiles.copy()
    for blk in range(blocks):
        a = out[blk]
        for k in range(tile - 1):
            a[k + 1:, k] /= a[k, k]
            a[k + 1:, k + 1:] -= np.outer(a[k + 1:, k], a[k, k + 1:])
    expected = out.ravel()
    return WorkloadInstance(
        kernel=kernel,
        launch=LaunchConfig(grid=(blocks, 1), block=(threads, 1),
                            params=(a_base, tile)),
        global_mem=mem,
        expected=expected,
        rtol=1e-8, atol=1e-8,
    )


def _build_nw(scale: str) -> WorkloadInstance:
    """Needleman-Wunsch anti-diagonal dynamic programming over a shared
    score tile, one barrier per wavefront."""
    tile = 16
    blocks = pick(scale, 4, 16, 32)
    threads = tile
    penalty = 2.0
    pad = tile + 1
    r_base = 0                       # reference matrix per block
    s_base = blocks * tile * tile    # output scores per block

    b = KernelBuilder("nw", num_params=3, shared_words=pad * pad)
    rb, sb, pen = b.params(3)
    tid = b.tid_x()
    base = b.add(rb, b.mul(b.ctaid_x(), tile * tile))
    # Initialize first row and column of the DP tile (the top row has
    # pad = tile+1 entries; all threads write the same last value).
    b.st_shared(b.add(b.mov(0.0), tid), b.mul(tid, b.neg(pen)))
    corner = b.mov(float(tile))
    b.st_shared(corner, b.mul(float(tile), b.neg(pen)))
    col_addr = b.mul(b.add(tid, 1), pad)
    b.st_shared(col_addr, b.mul(b.add(tid, 1), b.neg(pen)))
    b.barrier()
    for wave in range(2 * tile - 1):
        # Thread t handles cell (i=t, j=wave-t) when 0 <= j < tile.
        j_coord = b.sub(float(wave), tid)
        valid = b.setp(CmpOp.GE, j_coord, 0.0)
        valid = b.pand(valid, b.setp(CmpOp.LT, j_coord, float(tile)))
        with b.if_(valid):
            i1 = b.add(tid, 1)
            j1 = b.add(j_coord, 1)
            up_left = b.ld_shared(b.add(b.mul(b.sub(i1, 1), pad),
                                        b.sub(j1, 1)))
            up = b.ld_shared(b.add(b.mul(b.sub(i1, 1), pad), j1))
            left = b.ld_shared(b.add(b.mul(i1, pad), b.sub(j1, 1)))
            ref = b.ld_global(b.add(base, b.add(b.mul(tid, tile), j_coord)))
            diag = b.add(up_left, ref)
            gap = b.max_(b.sub(up, pen), b.sub(left, pen))
            score = b.max_(diag, gap)
            b.st_shared(b.add(b.mul(i1, pad), j1), score)
        b.barrier()
    # Write back the score tile (excluding the boundary row/col).
    for row in range(tile):
        s_addr = b.add(b.mul(b.mov(float(row + 1)), pad), b.add(tid, 1))
        out_addr = b.add(b.add(sb, b.mul(b.ctaid_x(), tile * tile)),
                         b.add(tid, row * tile))
        b.st_global(out_addr, b.ld_shared(s_addr))
    kernel = b.build()

    rng = rng_for("nw", scale)
    ref = rng.integers(-3, 4, (blocks, tile, tile)).astype(float)
    mem = np.zeros(s_base + blocks * tile * tile)
    mem[:blocks * tile * tile] = ref.ravel()
    scores = np.zeros_like(ref)
    for blk in range(blocks):
        dp = np.zeros((pad, pad))
        dp[0, :] = -penalty * np.arange(pad)
        dp[:, 0] = -penalty * np.arange(pad)
        for i in range(1, pad):
            for j in range(1, pad):
                dp[i, j] = max(dp[i - 1, j - 1] + ref[blk, i - 1, j - 1],
                               dp[i - 1, j] - penalty,
                               dp[i, j - 1] - penalty)
        scores[blk] = dp[1:, 1:]
    expected = mem.copy()
    expected[s_base:] = scores.ravel()
    return WorkloadInstance(
        kernel=kernel,
        launch=LaunchConfig(grid=(blocks, 1), block=(threads, 1),
                            params=(r_base, s_base, penalty)),
        global_mem=mem,
        expected=expected,
    )


def _build_pf(scale: str) -> WorkloadInstance:
    """PathFinder: row-by-row DP through a cost grid with ping-pong
    shared buffers and a barrier per row — the Figure 10 shape."""
    cols = 64
    rows = pick(scale, 8, 16, 32)
    blocks = pick(scale, 4, 16, 32)
    threads = cols
    d_base = 0
    grid_words = blocks * rows * cols
    r_base = grid_words

    b = KernelBuilder("pf", num_params=4, shared_words=2 * cols)
    db, rb, nrows, ncols = b.params(4)
    tid = b.tid_x()
    base = b.add(db, b.mul(b.ctaid_x(), rows * cols))
    b.st_shared(tid, b.ld_global(b.add(base, tid)))
    b.barrier()
    for row in range(1, rows):
        cur = (row % 2) * cols
        prev = ((row - 1) % 2) * cols
        left_i = b.max_(b.sub(tid, 1), 0.0)
        right_i = b.min_(b.add(tid, 1), cols - 1)
        lo = b.ld_shared(left_i, offset=prev)
        mid = b.ld_shared(tid, offset=prev)
        hi = b.ld_shared(right_i, offset=prev)
        best = b.min_(b.min_(lo, mid), hi)
        cost = b.ld_global(b.add(base, b.add(tid, row * cols)))
        b.st_shared(tid, b.add(cost, best), offset=cur)
        b.barrier()
    final = ((rows - 1) % 2) * cols
    out = b.add(rb, b.add(b.mul(b.ctaid_x(), cols), tid))
    b.st_global(out, b.ld_shared(tid, offset=final))
    kernel = b.build()

    rng = rng_for("pf", scale)
    grid_v = rng.integers(0, 10, (blocks, rows, cols)).astype(float)
    mem = np.zeros(grid_words + blocks * cols)
    mem[:grid_words] = grid_v.ravel()
    result = np.zeros((blocks, cols))
    for blk in range(blocks):
        acc = grid_v[blk, 0].copy()
        for row in range(1, rows):
            left = np.concatenate([[acc[0]], acc[:-1]])
            right = np.concatenate([acc[1:], [acc[-1]]])
            acc = grid_v[blk, row] + np.minimum(np.minimum(left, acc), right)
        result[blk] = acc
    expected = mem.copy()
    expected[r_base:] = result.ravel()
    return WorkloadInstance(
        kernel=kernel,
        launch=LaunchConfig(grid=(blocks, 1), block=(threads, 1),
                            params=(d_base, r_base, rows, cols)),
        global_mem=mem,
        expected=expected,
    )


def _build_srad(scale: str) -> WorkloadInstance:
    """SRAD diffusion-coefficient kernel: gradient stencil, divisions,
    and an exp-based coefficient per interior cell."""
    n = pick(scale, 32, 64, 128)
    j_base, c_base = 0, n * n
    q0 = 0.5

    b = KernelBuilder("srad", num_params=3)
    nn, jb, cb = b.params(3)
    x = b.global_index()
    y = b.global_index_y()
    ok = b.pand(b.setp(CmpOp.LT, x, nn), b.setp(CmpOp.LT, y, nn))
    with b.if_(ok):
        xm = b.max_(b.sub(x, 1), 0.0)
        xp = b.min_(b.add(x, 1), b.sub(nn, 1))
        ym = b.max_(b.sub(y, 1), 0.0)
        yp = b.min_(b.add(y, 1), b.sub(nn, 1))
        row = b.mul(y, nn)
        jc = b.ld_global(b.add(jb, b.add(row, x)))
        jl = b.ld_global(b.add(jb, b.add(row, xm)))
        jr = b.ld_global(b.add(jb, b.add(row, xp)))
        ju = b.ld_global(b.add(jb, b.add(b.mul(ym, nn), x)))
        jd = b.ld_global(b.add(jb, b.add(b.mul(yp, nn), x)))
        g2 = b.mov(0.0)
        lap = b.mov(0.0)
        for nbr in (jl, jr, ju, jd):
            d = b.sub(nbr, jc)
            b.mad(d, d, g2, dst=g2)
            b.add(lap, d, dst=lap)
        jc2 = b.mul(jc, jc)
        num = b.sub(b.div(g2, jc2), b.mul(0.0625,
                                          b.mul(b.div(lap, jc),
                                                b.div(lap, jc))))
        den = b.mad(0.25, b.div(lap, jc), 1.0)
        q = b.div(num, b.mul(den, den))
        c = b.div(1.0, b.add(1.0, b.div(b.sub(q, q0), q0 * (1.0 + q0))))
        c = b.min_(b.max_(c, 0.0), 1.0)
        b.st_global(b.add(cb, b.add(row, x)), c)
    kernel = b.build()

    rng = rng_for("srad", scale)
    j = rng.uniform(1, 5, (n, n))
    mem = np.zeros(2 * n * n)
    mem[:n * n] = j.ravel()
    idx = np.arange(n)
    xm, xp = np.maximum(idx - 1, 0), np.minimum(idx + 1, n - 1)
    jl, jr = j[:, xm], j[:, xp]
    ju, jd = j[xm, :], j[xp, :]
    g2 = np.zeros_like(j)
    lap = np.zeros_like(j)
    for nbr in (jl, jr, ju, jd):
        d = nbr - j
        g2 += d * d
        lap += d
    num = g2 / (j * j) - 0.0625 * (lap / j) ** 2
    den = 1.0 + 0.25 * lap / j
    q = num / (den * den)
    c = 1.0 / (1.0 + (q - q0) / (q0 * (1.0 + q0)))
    c = np.clip(c, 0.0, 1.0)
    expected = mem.copy()
    expected[c_base:] = c.ravel()
    return WorkloadInstance(
        kernel=kernel,
        launch=LaunchConfig(grid=(-(-n // 32), -(-n // 4)), block=(32, 4),
                            params=(n, j_base, c_base)),
        global_mem=mem,
        expected=expected,
        rtol=1e-8,
    )


def _build_sc(scale: str) -> WorkloadInstance:
    """Streamcluster assignment: each point scans the candidate centers
    (4-D) and records the nearest one and its cost."""
    points = pick(scale, 512, 2048, 8192)
    centers = 8
    dims = 4
    p_base = 0
    c_base = points * dims
    a_base = c_base + centers * dims
    cost_base = a_base + points

    b = KernelBuilder("sc", num_params=6)
    npt, pb, cb, ab, costb, ncent = b.params(6)
    i = b.global_index()
    guard = b.setp(CmpOp.LT, i, npt)
    with b.if_(guard):
        p_addr = b.add(pb, b.mul(i, dims))
        coords = [b.ld_global(p_addr, offset=d) for d in range(dims)]
        best = b.mov(1e30)
        best_idx = b.mov(0.0)
        # Fully unrolled center scan (constant trip count, pragma-unroll
        # style) so the whole scan forms a handful of large regions.
        for c in range(centers):
            c_addr = b.add(cb, float(c * dims))
            dist = b.mov(0.0)
            for d in range(dims):
                delta = b.sub(coords[d], b.ld_global(c_addr, offset=d))
                b.mad(delta, delta, dist, dst=dist)
            closer = b.setp(CmpOp.LT, dist, best)
            b.selp(dist, best, closer, dst=best)
            b.selp(float(c), best_idx, closer, dst=best_idx)
        b.st_global(b.add(ab, i), best_idx)
        b.st_global(b.add(costb, i), best)
    kernel = b.build()

    rng = rng_for("sc", scale)
    pts = rng.uniform(-5, 5, (points, dims))
    cts = rng.uniform(-5, 5, (centers, dims))
    mem = np.zeros(cost_base + points)
    mem[:points * dims] = pts.ravel()
    mem[c_base:c_base + centers * dims] = cts.ravel()
    d2 = ((pts[:, None, :] - cts[None, :, :]) ** 2).sum(axis=2)
    expected = mem.copy()
    expected[a_base:a_base + points] = d2.argmin(axis=1).astype(float)
    expected[cost_base:] = d2.min(axis=1)
    threads = 128
    return WorkloadInstance(
        kernel=kernel,
        launch=LaunchConfig(grid=(-(-points // threads), 1),
                            block=(threads, 1),
                            params=(points, p_base, c_base, a_base,
                                    cost_base, centers)),
        global_mem=mem,
        expected=expected,
        rtol=1e-8,
    )


def _build_cfd(scale: str) -> WorkloadInstance:
    """CFD flux accumulation: gather four neighbours' conserved
    variables through an indirection table and combine with sqrt/div."""
    cells = pick(scale, 512, 2048, 8192)
    nbrs = 4
    v_base = 0
    n_base = cells
    f_base = n_base + cells * nbrs

    b = KernelBuilder("cfd", num_params=4)
    nc, vb, nb, fb = b.params(4)
    i = b.global_index()
    guard = b.setp(CmpOp.LT, i, nc)
    with b.if_(guard):
        mine = b.ld_global(b.add(vb, i))
        flux = b.mov(0.0)
        n_row = b.add(nb, b.mul(i, nbrs))
        for k in range(nbrs):
            j = b.ld_global(n_row, offset=k)
            vj = b.ld_global(b.add(vb, j))
            avg = b.mul(b.add(mine, vj), 0.5)
            wave = b.sqrt(b.add(b.abs_(avg), 1.0))
            b.add(flux, b.div(b.sub(vj, mine), wave), dst=flux)
        b.st_global(b.add(fb, i), flux)
    kernel = b.build()

    rng = rng_for("cfd", scale)
    v = rng.uniform(0.5, 2.0, cells)
    nbr = rng.integers(0, cells, (cells, nbrs)).astype(float)
    mem = np.zeros(f_base + cells)
    mem[:cells] = v
    mem[n_base:n_base + cells * nbrs] = nbr.ravel()
    vj = v[nbr.astype(int)]
    avg = (v[:, None] + vj) * 0.5
    wave = np.sqrt(np.abs(avg) + 1.0)
    flux = ((vj - v[:, None]) / wave).sum(axis=1)
    expected = mem.copy()
    expected[f_base:] = flux
    threads = 128
    return WorkloadInstance(
        kernel=kernel,
        launch=LaunchConfig(grid=(-(-cells // threads), 1),
                            block=(threads, 1),
                            params=(cells, v_base, n_base, f_base)),
        global_mem=mem,
        expected=expected,
        rtol=1e-8,
    )


def _build_kmeans(scale: str) -> WorkloadInstance:
    """K-means assignment step plus atomic per-cluster counting."""
    points = pick(scale, 512, 2048, 8192)
    k = 8
    dims = 4
    p_base = 0
    c_base = points * dims
    m_base = c_base + k * dims
    count_base = m_base + points

    b = KernelBuilder("kmeans", num_params=6)
    npt, pb, cb, mb, cntb, kk = b.params(6)
    i = b.global_index()
    guard = b.setp(CmpOp.LT, i, npt)
    with b.if_(guard):
        p_addr = b.add(pb, b.mul(i, dims))
        coords = [b.ld_global(p_addr, offset=d) for d in range(dims)]
        best = b.mov(1e30)
        best_idx = b.mov(0.0)
        for c in range(k):
            c_addr = b.add(cb, float(c * dims))
            dist = b.mov(0.0)
            for d in range(dims):
                delta = b.sub(coords[d], b.ld_global(c_addr, offset=d))
                b.mad(delta, delta, dist, dst=dist)
            closer = b.setp(CmpOp.LT, dist, best)
            b.selp(dist, best, closer, dst=best)
            b.selp(float(c), best_idx, closer, dst=best_idx)
        b.st_global(b.add(mb, i), best_idx)
        b.atom_global(AtomOp.ADD, b.add(cntb, best_idx), 1.0)
    kernel = b.build()

    rng = rng_for("kmeans", scale)
    pts = rng.uniform(-5, 5, (points, dims))
    cts = rng.uniform(-5, 5, (k, dims))
    mem = np.zeros(count_base + k)
    mem[:points * dims] = pts.ravel()
    mem[c_base:c_base + k * dims] = cts.ravel()
    d2 = ((pts[:, None, :] - cts[None, :, :]) ** 2).sum(axis=2)
    member = d2.argmin(axis=1)
    expected = mem.copy()
    expected[m_base:m_base + points] = member.astype(float)
    expected[count_base:] = np.bincount(member, minlength=k).astype(float)
    threads = 128
    return WorkloadInstance(
        kernel=kernel,
        launch=LaunchConfig(grid=(-(-points // threads), 1),
                            block=(threads, 1),
                            params=(points, p_base, c_base, m_base,
                                    count_base, k)),
        global_mem=mem,
        expected=expected,
        rtol=1e-8,
    )


def _build_knn(scale: str) -> WorkloadInstance:
    """k-Nearest-Neighbours distance kernel: per-record Euclidean
    distance from the query, then a block-level min-reduction."""
    records = pick(scale, 512, 2048, 8192)
    threads = 64
    lat_base = 0
    lng_base = records
    d_base = 2 * records
    blocks = -(-records // threads)
    min_base = d_base + records

    b = KernelBuilder("knn", num_params=7, shared_words=threads)
    nr, latb, lngb, db, minb, qlat, qlng = b.params(7)
    i = b.global_index()
    tid = b.tid_x()
    guard = b.setp(CmpOp.LT, i, nr)
    dist = b.mov(1e30)
    with b.if_(guard):
        dlat = b.sub(b.ld_global(b.add(latb, i)), qlat)
        dlng = b.sub(b.ld_global(b.add(lngb, i)), qlng)
        b.sqrt(b.mad(dlat, dlat, b.mul(dlng, dlng)), dst=dist)
        b.st_global(b.add(db, i), dist)
    b.st_shared(tid, dist)
    b.barrier()
    stride = threads // 2
    while stride >= 1:
        active = b.setp(CmpOp.LT, tid, float(stride))
        with b.if_(active):
            other = b.ld_shared(tid, offset=stride)
            mine = b.ld_shared(tid)
            b.st_shared(tid, b.min_(mine, other))
        b.barrier()
        stride //= 2
    leader = b.setp(CmpOp.EQ, tid, 0)
    with b.if_(leader):
        b.st_global(b.add(minb, b.ctaid_x()), b.ld_shared(tid))
    kernel = b.build()

    rng = rng_for("knn", scale)
    lat = rng.uniform(-90, 90, records)
    lng = rng.uniform(-180, 180, records)
    qla, qln = 10.0, 20.0
    mem = np.zeros(min_base + blocks)
    mem[:records] = lat
    mem[lng_base:lng_base + records] = lng
    dists = np.sqrt((lat - qla) ** 2 + (lng - qln) ** 2)
    mins = np.zeros(blocks)
    for blk in range(blocks):
        lo, hi = blk * threads, min((blk + 1) * threads, records)
        mins[blk] = dists[lo:hi].min()
    expected = mem.copy()
    expected[d_base:d_base + records] = dists
    expected[min_base:] = mins
    return WorkloadInstance(
        kernel=kernel,
        launch=LaunchConfig(grid=(blocks, 1), block=(threads, 1),
                            params=(records, lat_base, lng_base, d_base,
                                    min_base, qla, qln)),
        global_mem=mem,
        expected=expected,
        rtol=1e-8,
    )


WORKLOADS = [
    Workload("BP", "back propagation", "rodinia", _build_bp,
             uses_barriers=True),
    Workload("BFS", "breadth-first search", "rodinia", _build_bfs),
    Workload("Gaussian", "gaussian elimination", "rodinia", _build_gaussian),
    Workload("Hotspot", "hotspot", "rodinia", _build_hotspot,
             uses_barriers=True),
    Workload("LavaMD", "lava Molecular Dynamics", "rodinia", _build_lavamd,
             uses_barriers=True),
    Workload("LUD", "LU Decomposition", "rodinia", _build_lud,
             uses_barriers=True),
    Workload("NW", "Needleman-Wunsch", "rodinia", _build_nw,
             uses_barriers=True),
    Workload("PF", "pathfinder", "rodinia", _build_pf, uses_barriers=True),
    Workload("SRAD", "SRAD_v2", "rodinia", _build_srad),
    Workload("SC", "streamcluster", "rodinia", _build_sc),
    Workload("CFD", "CFD solver", "rodinia", _build_cfd),
    Workload("Kmeans", "kmeans", "rodinia", _build_kmeans,
             uses_atomics=True),
    Workload("KNN", "k-Nearest Neighbors", "rodinia", _build_knn,
             uses_barriers=True),
]
