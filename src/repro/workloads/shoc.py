"""SHOC workloads: Triad and GUPS."""

from __future__ import annotations

import numpy as np

from ..isa import CmpOp, KernelBuilder
from ..sim import LaunchConfig
from .base import Workload, WorkloadInstance, pick, rng_for


def _build_triad(scale: str) -> WorkloadInstance:
    """STREAM triad: c[i] = a[i] + s * b[i] — pure memory bandwidth."""
    n = pick(scale, 1024, 4096, 16384)
    a_base, b_base, c_base = 0, n, 2 * n

    b = KernelBuilder("triad", num_params=5)
    nn, s, ab, bb, cb = b.params(5)
    i = b.global_index()
    guard = b.setp(CmpOp.LT, i, nn)
    with b.if_(guard):
        a = b.ld_global(b.add(ab, i))
        bv = b.ld_global(b.add(bb, i))
        b.st_global(b.add(cb, i), b.mad(s, bv, a))
    kernel = b.build()

    rng = rng_for("triad", scale)
    a = rng.uniform(-1, 1, n)
    bv = rng.uniform(-1, 1, n)
    mem = np.zeros(3 * n)
    mem[:n] = a
    mem[n:2 * n] = bv
    expected = mem.copy()
    expected[c_base:] = a + 1.75 * bv
    threads = 128
    return WorkloadInstance(
        kernel=kernel,
        launch=LaunchConfig(grid=(-(-n // threads), 1), block=(threads, 1),
                            params=(n, 1.75, a_base, b_base, c_base)),
        global_mem=mem,
        expected=expected,
    )


def _build_gups(scale: str) -> WorkloadInstance:
    """Giga-updates-per-second: pseudo-random read-modify-write XOR
    updates over a table.  Each thread owns a disjoint table segment (so
    runs are deterministic), but accesses within the segment hop
    pseudo-randomly — cache-hostile, and every update is an in-place
    memory anti-dependence the region former must cut."""
    threads_total = pick(scale, 256, 512, 1024)
    seg = 16                      # words per thread
    updates = pick(scale, 8, 16, 32)
    table_words = threads_total * seg

    b = KernelBuilder("gups", num_params=3)
    nt, tb, upd = b.params(3)
    i = b.global_index()
    guard = b.setp(CmpOp.LT, i, nt)
    with b.if_(guard):
        seg_base = b.add(tb, b.mul(i, seg))
        with b.loop(0, upd) as j:
            mixed = b.mad(j, 7, i)
            slot = b.rem(b.mul(mixed, 13), seg)
            addr = b.add(seg_base, slot)
            old = b.ld_global(addr)
            key = b.mad(j, 31, 17)
            b.st_global(addr, b.xor(old, key))
    kernel = b.build()

    rng = rng_for("gups", scale)
    table = rng.integers(0, 2**30, table_words).astype(float)
    mem = table.copy()
    ref = table.astype(np.int64)
    for t in range(threads_total):
        for j in range(updates):
            slot = ((j * 7 + t) * 13) % seg
            addr = t * seg + slot
            ref[addr] ^= j * 31 + 17
    expected = ref.astype(float)
    threads = 128
    return WorkloadInstance(
        kernel=kernel,
        launch=LaunchConfig(grid=(-(-threads_total // threads), 1),
                            block=(threads, 1),
                            params=(threads_total, 0, updates)),
        global_mem=mem,
        expected=expected,
    )


WORKLOADS = [
    Workload("Triad", "STREAM triad", "shoc", _build_triad),
    Workload("GUPS", "Giga UPdates per Second", "shoc", _build_gups),
]
