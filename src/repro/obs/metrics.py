"""Dependency-free metrics registry with Prometheus-text exposition.

Three instrument kinds — :class:`Counter`, :class:`Gauge`, and
:class:`Histogram` — each optionally carrying a label set, registered in
a :class:`MetricsRegistry` and rendered to the Prometheus text format
0.0.4 by :func:`render_prom`.  The inverse direction is covered by
:func:`parse_prom_text` and a strict :func:`validate_prom_text` checker
(in the spirit of ``validate_chrome_trace``): anything the renderer can
emit round-trips through the validator with zero problems, and the CI
smoke jobs hold the live ``/v1/metrics`` endpoint to the same standard.

Design constraints, in order:

* **No dependencies.**  Stdlib only, importable everywhere (the obs
  package never imports the simulator).
* **Thread-safe.**  All mutations take the registry lock; the campaign
  result-recording path and the coordinator's HTTP threads share one
  registry.
* **Off the hot path.**  Nothing in the simulator's per-cycle loops
  touches a metric; instrumentation happens post-run from ``SimStats``
  and ``TrialResult`` telemetry (see :func:`observe_sim_stats` and
  :func:`observe_trial`), which is why the perf guards stay green with
  the registry compiled in.
"""

from __future__ import annotations

import math
import re
import threading

from ..errors import ConfigError

__all__ = [
    "Counter", "Gauge", "Histogram", "MetricsRegistry",
    "DEFAULT_BUCKETS", "render_prom", "parse_prom_text",
    "validate_prom_text", "observe_sim_stats", "observe_trial",
    "trial_counts",
]

_METRIC_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_NAME_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")

#: Default histogram buckets: wall-clock seconds from fast microbenchmark
#: trials up through multi-minute shard runs.
DEFAULT_BUCKETS = (0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5,
                   5.0, 10.0, 30.0, 60.0, 120.0, 300.0)


def _check_name(name: str) -> None:
    if not _METRIC_NAME_RE.match(name):
        raise ConfigError(f"invalid metric name {name!r}")


def _check_labelnames(labelnames: tuple[str, ...]) -> None:
    seen = set()
    for label in labelnames:
        if not _LABEL_NAME_RE.match(label):
            raise ConfigError(f"invalid label name {label!r}")
        if label.startswith("__"):
            raise ConfigError(
                f"label name {label!r} is reserved (double underscore)")
        if label == "le":
            raise ConfigError(
                "label name 'le' is reserved for histogram buckets")
        if label in seen:
            raise ConfigError(f"duplicate label name {label!r}")
        seen.add(label)


def _fmt_value(value: float) -> str:
    """Render a sample value the way Prometheus clients do: integers
    without a decimal point, infinities as ``+Inf``/``-Inf``."""
    if value == math.inf:
        return "+Inf"
    if value == -math.inf:
        return "-Inf"
    if isinstance(value, float) and value != value:
        return "NaN"
    as_float = float(value)
    if as_float.is_integer() and abs(as_float) < 1e15:
        return str(int(as_float))
    return repr(as_float)


def _escape_label_value(value: str) -> str:
    return (value.replace("\\", r"\\").replace("\n", r"\n")
            .replace('"', r"\""))


def _escape_help(text: str) -> str:
    return text.replace("\\", r"\\").replace("\n", r"\n")


class _Metric:
    """Common base: child management keyed by label-value tuples."""

    kind = "untyped"

    def __init__(self, name: str, help: str,
                 labelnames: tuple[str, ...], lock: threading.Lock) -> None:
        _check_name(name)
        _check_labelnames(tuple(labelnames))
        self.name = name
        self.help = help
        self.labelnames = tuple(labelnames)
        self._lock = lock
        self._children: dict[tuple[str, ...], object] = {}
        if not self.labelnames:
            # An unlabeled metric is its own single child.
            self._children[()] = self._new_child()

    def _new_child(self):
        raise NotImplementedError

    def labels(self, **labels: str):
        """Return (creating on demand) the child for this label set."""
        if set(labels) != set(self.labelnames):
            raise ConfigError(
                f"metric {self.name}: labels {sorted(labels)} do not match "
                f"declared labelnames {sorted(self.labelnames)}")
        key = tuple(str(labels[name]) for name in self.labelnames)
        with self._lock:
            child = self._children.get(key)
            if child is None:
                child = self._new_child()
                self._children[key] = child
        return child

    def _series(self) -> list[tuple[dict, object]]:
        """``(labels_dict, child)`` pairs, sorted for stable rendering."""
        with self._lock:
            items = sorted(self._children.items())
        return [(dict(zip(self.labelnames, key)), child)
                for key, child in items]


class _CounterChild:
    __slots__ = ("_lock", "_value")

    def __init__(self, lock: threading.Lock) -> None:
        self._lock = lock
        self._value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ConfigError("counters can only increase")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        with self._lock:
            return self._value


class Counter(_Metric):
    """Monotonically increasing count.  Name must end in ``_total``."""

    kind = "counter"

    def __init__(self, name, help, labelnames, lock):
        super().__init__(name, help, labelnames, lock)
        if not name.endswith("_total"):
            raise ConfigError(
                f"counter {name!r} must end in '_total' (convention "
                "enforced so exposition stays uniform)")

    def _new_child(self):
        return _CounterChild(self._lock)

    def inc(self, amount: float = 1.0) -> None:
        self._only_child().inc(amount)

    def _only_child(self) -> _CounterChild:
        if self.labelnames:
            raise ConfigError(
                f"metric {self.name} has labels; use .labels(...)")
        return self._children[()]  # type: ignore[return-value]

    @property
    def value(self) -> float:
        return self._only_child().value


class _GaugeChild:
    __slots__ = ("_lock", "_value")

    def __init__(self, lock: threading.Lock) -> None:
        self._lock = lock
        self._value = 0.0

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.inc(-amount)

    @property
    def value(self) -> float:
        with self._lock:
            return self._value


class Gauge(_Metric):
    """A value that can go up and down (queue depths, staleness, ...)."""

    kind = "gauge"

    def _new_child(self):
        return _GaugeChild(self._lock)

    def _only_child(self) -> _GaugeChild:
        if self.labelnames:
            raise ConfigError(
                f"metric {self.name} has labels; use .labels(...)")
        return self._children[()]  # type: ignore[return-value]

    def set(self, value: float) -> None:
        self._only_child().set(value)

    def inc(self, amount: float = 1.0) -> None:
        self._only_child().inc(amount)

    def dec(self, amount: float = 1.0) -> None:
        self._only_child().dec(amount)

    @property
    def value(self) -> float:
        return self._only_child().value


class _HistogramChild:
    __slots__ = ("_lock", "buckets", "counts", "sum", "count")

    def __init__(self, lock: threading.Lock,
                 buckets: tuple[float, ...]) -> None:
        self._lock = lock
        self.buckets = buckets          # includes the trailing +Inf
        self.counts = [0] * len(buckets)
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        with self._lock:
            self.sum += value
            self.count += 1
            for i, bound in enumerate(self.buckets):
                if value <= bound:
                    self.counts[i] += 1
                    break

    def cumulative(self) -> list[tuple[float, int]]:
        """``(le, cumulative_count)`` pairs as exposed in the text
        format (bucket counts are cumulative, not per-bin)."""
        with self._lock:
            total = 0
            out = []
            for bound, n in zip(self.buckets, self.counts):
                total += n
                out.append((bound, total))
            return out


class Histogram(_Metric):
    """Cumulative histogram with fixed upper-bound buckets.

    ``observe(v)`` increments every bucket whose bound is >= ``v`` at
    render time (stored per-bin, exposed cumulatively); a ``+Inf``
    bucket is always appended so ``_count`` equals the last bucket.
    """

    kind = "histogram"

    def __init__(self, name, help, labelnames, lock,
                 buckets: tuple[float, ...] = DEFAULT_BUCKETS):
        bounds = tuple(float(b) for b in buckets)
        if not bounds:
            raise ConfigError(f"histogram {name!r} needs at least 1 bucket")
        if list(bounds) != sorted(bounds) or len(set(bounds)) != len(bounds):
            raise ConfigError(
                f"histogram {name!r} buckets must be strictly increasing")
        if bounds[-1] != math.inf:
            bounds = bounds + (math.inf,)
        self.buckets = bounds
        super().__init__(name, help, labelnames, lock)

    def _new_child(self):
        return _HistogramChild(self._lock, self.buckets)

    def _only_child(self) -> _HistogramChild:
        if self.labelnames:
            raise ConfigError(
                f"metric {self.name} has labels; use .labels(...)")
        return self._children[()]  # type: ignore[return-value]

    def observe(self, value: float) -> None:
        self._only_child().observe(value)


class MetricsRegistry:
    """Named metrics with get-or-create registration.

    Re-registering an existing name returns the existing instrument if
    and only if kind and label names match; a mismatch is a
    ``ConfigError`` (silent divergence would corrupt exposition).
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._metrics: dict[str, _Metric] = {}

    def _register(self, cls, name: str, help: str,
                  labelnames: tuple[str, ...], **kwargs) -> _Metric:
        labelnames = tuple(labelnames)
        with self._lock:
            existing = self._metrics.get(name)
        if existing is not None:
            if type(existing) is not cls:
                raise ConfigError(
                    f"metric {name!r} already registered as "
                    f"{existing.kind}, not {cls.kind}")
            if existing.labelnames != labelnames:
                raise ConfigError(
                    f"metric {name!r} already registered with labels "
                    f"{existing.labelnames}, not {labelnames}")
            return existing
        metric = cls(name, help, labelnames, self._lock, **kwargs)
        with self._lock:
            # A racing registration of the same name wins by first
            # insert; re-check under the lock.
            current = self._metrics.setdefault(name, metric)
        return current

    def counter(self, name: str, help: str,
                labelnames: tuple[str, ...] = ()) -> Counter:
        return self._register(Counter, name, help, labelnames)

    def gauge(self, name: str, help: str,
              labelnames: tuple[str, ...] = ()) -> Gauge:
        return self._register(Gauge, name, help, labelnames)

    def histogram(self, name: str, help: str,
                  labelnames: tuple[str, ...] = (),
                  buckets: tuple[float, ...] = DEFAULT_BUCKETS) -> Histogram:
        return self._register(Histogram, name, help, labelnames,
                              buckets=buckets)

    def get(self, name: str) -> _Metric | None:
        with self._lock:
            return self._metrics.get(name)

    def collect(self) -> list[dict]:
        """Snapshot every family in renderer order.

        Returns ``[{"name", "type", "help", "series": [...]}]`` where a
        counter/gauge series is ``{"labels": {...}, "value": v}`` and a
        histogram series is ``{"labels": {...}, "buckets": [(le, n)],
        "sum": s, "count": n}`` with cumulative bucket counts.
        """
        with self._lock:
            metrics = sorted(self._metrics.values(), key=lambda m: m.name)
        families = []
        for metric in metrics:
            series = []
            for labels, child in metric._series():
                if metric.kind == "histogram":
                    series.append({
                        "labels": labels,
                        "buckets": child.cumulative(),
                        "sum": child.sum,
                        "count": child.count,
                    })
                else:
                    series.append({"labels": labels, "value": child.value})
            families.append({"name": metric.name, "type": metric.kind,
                             "help": metric.help, "series": series})
        return families

    def render(self) -> str:
        return render_prom(self)


def _render_labels(labels: dict, extra: tuple[tuple[str, str], ...] = ()
                   ) -> str:
    pairs = [(k, str(v)) for k, v in labels.items()] + list(extra)
    if not pairs:
        return ""
    body = ",".join(f'{k}="{_escape_label_value(v)}"' for k, v in pairs)
    return "{" + body + "}"


def render_prom(registry: MetricsRegistry) -> str:
    """Render the registry as Prometheus text exposition format 0.0.4."""
    lines: list[str] = []
    for family in registry.collect():
        name, kind = family["name"], family["type"]
        lines.append(f"# HELP {name} {_escape_help(family['help'])}")
        lines.append(f"# TYPE {name} {kind}")
        for series in family["series"]:
            labels = series["labels"]
            if kind == "histogram":
                for bound, count in series["buckets"]:
                    extra = (("le", _fmt_value(bound)),)
                    lines.append(
                        f"{name}_bucket{_render_labels(labels, extra)} "
                        f"{_fmt_value(count)}")
                lines.append(f"{name}_sum{_render_labels(labels)} "
                             f"{_fmt_value(series['sum'])}")
                lines.append(f"{name}_count{_render_labels(labels)} "
                             f"{_fmt_value(series['count'])}")
            else:
                lines.append(f"{name}{_render_labels(labels)} "
                             f"{_fmt_value(series['value'])}")
    return "\n".join(lines) + "\n" if lines else ""


# ----------------------------------------------------------------------
# Parsing / validation
# ----------------------------------------------------------------------

_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>.*)\})?"
    r"\s+(?P<value>\S+)"
    r"(?:\s+(?P<ts>-?\d+))?\s*$")

_LABEL_PAIR_RE = re.compile(
    r'\s*(?P<name>[a-zA-Z_][a-zA-Z0-9_]*)\s*=\s*'
    r'"(?P<value>(?:[^"\\]|\\.)*)"\s*(?P<sep>,|$)')


def _parse_value(text: str) -> float | None:
    if text == "+Inf":
        return math.inf
    if text == "-Inf":
        return -math.inf
    if text == "NaN":
        return math.nan
    try:
        return float(text)
    except ValueError:
        return None


def _parse_labels(body: str) -> dict | None:
    """Parse the inside of ``{...}``; ``None`` on syntax error or
    duplicate label names."""
    labels: dict[str, str] = {}
    pos = 0
    while pos < len(body):
        match = _LABEL_PAIR_RE.match(body, pos)
        if match is None:
            return None
        name = match.group("name")
        if name in labels:
            return None
        raw = match.group("value")
        labels[name] = (raw.replace(r"\n", "\n").replace(r"\"", '"')
                        .replace(r"\\", "\\"))
        pos = match.end()
        if match.group("sep") == "" and pos < len(body):
            return None
    return labels


def _base_family(sample_name: str, histogram_names: set[str]) -> str:
    """Map a sample name to its family: histogram samples named
    ``X_bucket``/``X_sum``/``X_count`` belong to family ``X``."""
    for suffix in ("_bucket", "_sum", "_count"):
        if sample_name.endswith(suffix):
            base = sample_name[:-len(suffix)]
            if base in histogram_names:
                return base
    return sample_name


def parse_prom_text(text: str) -> tuple[dict, list[str]]:
    """Parse Prometheus text exposition into families.

    Returns ``(families, problems)`` where ``families`` maps family name
    to ``{"type", "help", "samples": [(sample_name, labels, value)]}``.
    ``problems`` collects syntax-level issues; semantic checks live in
    :func:`validate_prom_text`, which builds on this.
    """
    problems: list[str] = []
    families: dict[str, dict] = {}
    histogram_names: set[str] = set()
    sample_order: list[str] = []      # family of each sample, in order
    seen_series: set[tuple] = set()

    if text and not text.endswith("\n"):
        problems.append("exposition does not end with a newline")

    for lineno, line in enumerate(text.split("\n"), start=1):
        if line == "":
            continue
        if line.startswith("#"):
            parts = line.split(None, 3)
            if len(parts) < 2 or parts[1] not in ("HELP", "TYPE"):
                continue  # free-form comment: ignored per spec
            if len(parts) < 3:
                problems.append(f"line {lineno}: malformed {parts[1]} line")
                continue
            name = parts[2]
            if not _METRIC_NAME_RE.match(name):
                problems.append(
                    f"line {lineno}: invalid metric name {name!r}")
                continue
            family = families.setdefault(
                name, {"type": None, "help": None, "samples": []})
            if parts[1] == "HELP":
                if family["help"] is not None:
                    problems.append(
                        f"line {lineno}: duplicate HELP for {name}")
                family["help"] = parts[3] if len(parts) > 3 else ""
            else:
                kind = parts[3].strip() if len(parts) > 3 else ""
                if kind not in ("counter", "gauge", "histogram", "summary",
                                "untyped"):
                    problems.append(
                        f"line {lineno}: unknown TYPE {kind!r} for {name}")
                if family["type"] is not None:
                    problems.append(
                        f"line {lineno}: duplicate TYPE for {name}")
                elif family["samples"]:
                    problems.append(
                        f"line {lineno}: TYPE for {name} after samples")
                family["type"] = kind
                if kind == "histogram":
                    histogram_names.add(name)
            continue

        match = _SAMPLE_RE.match(line)
        if match is None:
            problems.append(f"line {lineno}: unparseable sample {line!r}")
            continue
        sample_name = match.group("name")
        label_body = match.group("labels")
        labels = {} if label_body is None else _parse_labels(label_body)
        if labels is None:
            problems.append(
                f"line {lineno}: bad label syntax in {line!r}")
            continue
        value = _parse_value(match.group("value"))
        if value is None:
            problems.append(
                f"line {lineno}: bad sample value {match.group('value')!r}")
            continue
        base = _base_family(sample_name, histogram_names)
        family = families.setdefault(
            base, {"type": None, "help": None, "samples": []})
        series_key = (sample_name, tuple(sorted(labels.items())))
        if series_key in seen_series:
            problems.append(
                f"line {lineno}: duplicate series {sample_name}"
                f"{sorted(labels.items())}")
        seen_series.add(series_key)
        family["samples"].append((sample_name, labels, value))
        sample_order.append(base)

    # Family contiguity: once another family's samples appear, a family
    # must not resume (prometheus scrapers reject interleaved groups).
    last_seen: dict[str, int] = {}
    for idx, base in enumerate(sample_order):
        if base in last_seen and last_seen[base] != idx - 1:
            problems.append(f"samples for family {base} are not contiguous")
        last_seen[base] = idx
    return families, problems


def validate_prom_text(text: str) -> list[str]:
    """Strictly validate Prometheus text exposition.

    Returns a list of problems (empty when valid).  On top of
    :func:`parse_prom_text` syntax checks this enforces: every family
    has HELP and TYPE, counters end in ``_total`` and are non-negative,
    histogram series carry a ``+Inf`` bucket with monotone cumulative
    counts, ``_count`` equals the ``+Inf`` bucket, and ``_sum`` is
    present exactly once per label set.
    """
    families, problems = parse_prom_text(text)
    for name, family in sorted(families.items()):
        kind = family["type"]
        if kind is None:
            problems.append(f"family {name} has samples but no TYPE")
            continue
        if family["help"] is None:
            problems.append(f"family {name} has no HELP")
        if not family["samples"]:
            # HELP/TYPE with no samples is legal (empty family).
            continue
        if kind == "counter":
            if not name.endswith("_total"):
                problems.append(
                    f"counter {name} does not end in '_total'")
            for sample_name, labels, value in family["samples"]:
                if sample_name != name:
                    problems.append(
                        f"counter {name} has stray sample {sample_name}")
                if value < 0:
                    problems.append(
                        f"counter {name}{sorted(labels.items())} is "
                        f"negative ({value})")
        elif kind == "gauge":
            for sample_name, _labels, _value in family["samples"]:
                if sample_name != name:
                    problems.append(
                        f"gauge {name} has stray sample {sample_name}")
        elif kind == "histogram":
            problems.extend(_validate_histogram(name, family["samples"]))
    return problems


def _validate_histogram(name: str, samples: list) -> list[str]:
    problems: list[str] = []
    by_labelset: dict[tuple, dict] = {}
    for sample_name, labels, value in samples:
        if sample_name == f"{name}_bucket":
            if "le" not in labels:
                problems.append(f"histogram {name} bucket without 'le'")
                continue
            rest = tuple(sorted((k, v) for k, v in labels.items()
                                if k != "le"))
            entry = by_labelset.setdefault(
                rest, {"buckets": [], "sum": None, "count": None})
            bound = _parse_value(labels["le"])
            if bound is None:
                problems.append(
                    f"histogram {name} has unparseable le="
                    f"{labels['le']!r}")
                continue
            entry["buckets"].append((bound, value))
        elif sample_name in (f"{name}_sum", f"{name}_count"):
            rest = tuple(sorted(labels.items()))
            entry = by_labelset.setdefault(
                rest, {"buckets": [], "sum": None, "count": None})
            key = "sum" if sample_name.endswith("_sum") else "count"
            if entry[key] is not None:
                problems.append(
                    f"histogram {name}{list(rest)} has duplicate _{key}")
            entry[key] = value
        else:
            problems.append(
                f"histogram {name} has stray sample {sample_name}")
    for labelset, entry in sorted(by_labelset.items()):
        where = f"histogram {name}{list(labelset)}"
        buckets = sorted(entry["buckets"])
        if not buckets or buckets[-1][0] != math.inf:
            problems.append(f"{where} is missing the le=\"+Inf\" bucket")
        prev = -math.inf
        for _bound, count in buckets:
            if count < prev:
                problems.append(
                    f"{where} bucket counts are not monotone")
                break
            prev = count
        if entry["count"] is None:
            problems.append(f"{where} is missing _count")
        elif buckets and buckets[-1][0] == math.inf \
                and entry["count"] != buckets[-1][1]:
            problems.append(
                f"{where} _count ({entry['count']}) != +Inf bucket "
                f"({buckets[-1][1]})")
        if entry["sum"] is None:
            problems.append(f"{where} is missing _sum")
    return problems


# ----------------------------------------------------------------------
# Stack instrumentation helpers (the single source of metric names)
# ----------------------------------------------------------------------

def observe_sim_stats(registry: MetricsRegistry, stats,
                      labels: dict | None = None) -> None:
    """Fold one simulation's ``SimStats`` into the registry.

    ``labels`` (e.g. ``{"workload": ..., "scheme": ...}``) scopes every
    series; all counters here are post-run aggregates, never touched
    from the simulator's cycle loop.
    """
    labels = dict(labels or {})
    labelnames = tuple(labels)

    def counter(name, help, extra=()):
        return registry.counter(name, help, labelnames + tuple(extra))

    def bump(metric, amount, **extra):
        if amount:
            metric.labels(**labels, **extra).inc(amount)

    bump(counter("repro_sim_instructions_total",
                 "Instructions executed by the simulator."),
         getattr(stats, "instructions", 0))
    bump(counter("repro_sim_cycles_total",
                 "Cycles simulated."), getattr(stats, "cycles", 0))
    stall = counter("repro_stall_cycles_total",
                    "Warp-cycles stalled, attributed by cause "
                    "(paper Fig. 13 accounting).", ("cause",))
    for cause, cycles in sorted(getattr(stats, "stall_cycles",
                                        {}).items()):
        bump(stall, cycles, cause=cause)
    cache = counter("repro_sim_cache_events_total",
                    "Cache accesses by level and outcome.",
                    ("level", "event"))
    for level in ("l1", "l2"):
        for event in ("hits", "misses"):
            bump(cache, getattr(stats, f"{level}_{event}", 0),
                 level=level, event=event)
    bump(counter("repro_sim_superblocks_total",
                 "Superblock-vectorized windows executed."),
         getattr(stats, "superblocks_executed", 0))
    fallbacks = counter("repro_sim_superblock_fallbacks_total",
                        "Superblock windows that fell back to scalar "
                        "execution, by reason.", ("reason",))
    for reason, count in sorted(getattr(stats, "superblock_fallbacks",
                                        {}).items()):
        bump(fallbacks, count, reason=reason)
    bump(counter("repro_sim_mem_windows_total",
                 "SM-level memory windows executed."),
         getattr(stats, "mem_windows_executed", 0))
    bump(counter("repro_sim_mem_window_insts_total",
                 "Instructions retired inside memory windows."),
         getattr(stats, "mem_window_insts", 0))


#: Acceleration kinds surfaced as ``repro_trial_accel_total{kind=...}``.
_ACCEL_KINDS = (
    ("fast_start", "fast_start"),
    ("converged", "converged"),
    ("golden_cache_hit", "golden_cache_hit"),
    ("golden_shared", "golden_shared"),
)


def observe_trial(registry: MetricsRegistry, result,
                  shard_id: int | None = None) -> None:
    """Fold one finished ``TrialResult`` into the registry.

    This is the single place trial-level metric names are defined; the
    campaign heartbeat, the service metrics hub, and the report
    generator all route through it so counters agree everywhere.
    """
    cell = {"workload": result.workload, "scheme": result.scheme,
            "site": result.site}
    trial_labels = ("workload", "scheme", "site", "verdict")
    if shard_id is not None:
        trial_labels = trial_labels + ("shard",)
    trials = registry.counter(
        "repro_trials_total",
        "Finished fault-injection trials by cell and verdict.",
        trial_labels)
    kwargs = dict(cell, verdict=result.outcome)
    if shard_id is not None:
        kwargs["shard"] = str(shard_id)
    trials.labels(**kwargs).inc()

    wall = registry.histogram(
        "repro_trial_wall_seconds",
        "Wall-clock seconds per trial (simulation + verification).",
        ("workload", "scheme"))
    wall.labels(workload=result.workload, scheme=result.scheme).observe(
        getattr(result, "wall_time_s", 0.0))

    accel = registry.counter(
        "repro_trial_accel_total",
        "Trial accelerations by kind (checkpoint fast-starts, "
        "convergence early exits, golden-result cache hits).", ("kind",))
    for kind, attr in _ACCEL_KINDS:
        if getattr(result, attr, False):
            accel.labels(kind=kind).inc()

    cycles = registry.counter(
        "repro_trial_cycles_total",
        "Simulated cycles consumed by finished trials.",
        ("workload", "scheme"))
    cycles.labels(workload=result.workload,
                  scheme=result.scheme).inc(result.cycles)

    stats_like = _TrialStatsView(result)
    observe_sim_stats(registry, stats_like, cell)


class _TrialStatsView:
    """Adapter presenting a ``TrialResult``'s telemetry with the
    ``SimStats`` attribute names ``observe_sim_stats`` expects (cycles
    are intentionally absent here — trial cycle counts already flow
    through ``repro_trial_cycles_total``)."""

    __slots__ = ("_result",)

    def __init__(self, result) -> None:
        self._result = result

    @property
    def instructions(self):
        return getattr(self._result, "instructions", 0)

    @property
    def stall_cycles(self):
        return getattr(self._result, "stall_cycles", {}) or {}

    @property
    def l1_hits(self):
        return getattr(self._result, "l1_hits", 0)

    @property
    def l1_misses(self):
        return getattr(self._result, "l1_misses", 0)

    @property
    def superblocks_executed(self):
        return getattr(self._result, "superblocks_executed", 0)

    @property
    def superblock_fallbacks(self):
        return getattr(self._result, "superblock_fallbacks", {}) or {}

    @property
    def mem_windows_executed(self):
        return getattr(self._result, "mem_windows_executed", 0)

    @property
    def mem_window_insts(self):
        return getattr(self._result, "mem_window_insts", 0)


def trial_counts(registry: MetricsRegistry
                 ) -> dict[tuple[str, str, str], dict[str, int]]:
    """Aggregate ``repro_trials_total`` back into per-cell verdict
    counts: ``{(workload, scheme, site): {verdict: n}}``.  Sums across
    the optional ``shard`` label; used by the live dashboard's
    Wilson-CI table."""
    metric = registry.get("repro_trials_total")
    out: dict[tuple[str, str, str], dict[str, int]] = {}
    if metric is None:
        return out
    for labels, child in metric._series():
        key = (labels.get("workload", ""), labels.get("scheme", ""),
               labels.get("site", ""))
        verdict = labels.get("verdict", "")
        cell = out.setdefault(key, {})
        cell[verdict] = cell.get(verdict, 0) + int(child.value)
    return out
