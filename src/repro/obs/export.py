"""Trace exporters: Chrome-trace/Perfetto JSON and compact JSONL.

Chrome trace format (the JSON Object Format variant): load the output in
Perfetto (https://ui.perfetto.dev) or ``chrome://tracing``.  ``pid`` is
the SM, ``tid`` the warp, and one simulated cycle maps to one
microsecond of trace time.
"""

from __future__ import annotations

import json

from .tracer import TraceEvent, Tracer

#: Trace tid used for SM-level events; mirrored from repro.sim.sm
#: (duplicated here so the obs package never imports the simulator).
CONTROL_TID = 1_000_000


def chrome_trace(tracer: Tracer, workload: str = "kernel") -> dict:
    """Render the tracer's buffered events as a Chrome-trace object."""
    trace_events: list[dict] = []
    tracks: set[tuple[int, int]] = set()
    for evt in tracer.events:
        tracks.add((evt.pid, evt.tid))
        entry = {"name": evt.name, "ph": evt.ph, "ts": evt.ts,
                 "pid": evt.pid, "tid": evt.tid}
        if evt.ph == "X":
            entry["dur"] = evt.dur
        elif evt.ph == "i":
            entry["s"] = "t"  # thread-scoped instant
        if evt.args:
            entry["args"] = evt.args
        trace_events.append(entry)
    # Spans are closed retroactively (emitted at flush with the start
    # cycle as ts), so emission order is not ts order; a stable sort
    # restores per-track monotonicity without reordering same-cycle
    # events.
    trace_events.sort(key=lambda entry: entry["ts"])
    metadata: list[dict] = []
    for pid in sorted({pid for pid, _ in tracks}):
        metadata.append({"name": "process_name", "ph": "M", "pid": pid,
                         "tid": 0, "args": {"name": f"SM {pid}"}})
    for pid, tid in sorted(tracks):
        name = "SM control" if tid >= CONTROL_TID else f"warp {tid}"
        metadata.append({"name": "thread_name", "ph": "M", "pid": pid,
                         "tid": tid, "args": {"name": name}})
    return {
        "traceEvents": metadata + trace_events,
        "displayTimeUnit": "ms",
        "otherData": {"workload": workload, "emitted": tracer.emitted,
                      "dropped": tracer.dropped, "clock": "cycles"},
    }


def write_chrome_trace(tracer: Tracer, path: str,
                       workload: str = "kernel") -> dict:
    """Write :func:`chrome_trace` output to ``path``; returns the dict."""
    data = chrome_trace(tracer, workload=workload)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(data, fh, separators=(",", ":"))
    return data


def write_jsonl(tracer: Tracer, path: str) -> int:
    """Write one compact JSON object per event; returns the line count."""
    count = 0
    with open(path, "w", encoding="utf-8") as fh:
        for evt in tracer.events:
            fh.write(json.dumps(event_dict(evt), separators=(",", ":")))
            fh.write("\n")
            count += 1
    return count


def event_dict(evt: TraceEvent) -> dict:
    """Compact plain-dict form of one event (JSONL schema)."""
    data = {"name": evt.name, "ph": evt.ph, "cycle": evt.ts,
            "sm": evt.pid, "warp": evt.tid}
    if evt.ph == "X":
        data["dur"] = evt.dur
    if evt.args:
        data["args"] = evt.args
    return data


def validate_chrome_trace(data: dict) -> list[str]:
    """Schema check used by tests and the CI trace-smoke job.

    Returns a list of problems (empty = valid): required top-level and
    per-event keys, and per-(pid, tid) track ``ts`` monotonicity
    (non-decreasing — events are emitted in cycle order).
    """
    problems: list[str] = []
    if not isinstance(data, dict):
        return ["trace is not a JSON object"]
    events = data.get("traceEvents")
    if not isinstance(events, list):
        return ["missing or non-list traceEvents"]
    last_ts: dict[tuple[int, int], int] = {}
    for index, evt in enumerate(events):
        if not isinstance(evt, dict):
            problems.append(f"event {index} is not an object")
            continue
        for key in ("name", "ph", "pid", "tid"):
            if key not in evt:
                problems.append(f"event {index} missing {key!r}")
        ph = evt.get("ph")
        if ph == "M":
            continue
        if "ts" not in evt:
            problems.append(f"event {index} missing 'ts'")
            continue
        if ph == "X" and "dur" not in evt:
            problems.append(f"event {index} ph=X missing 'dur'")
        track = (evt.get("pid"), evt.get("tid"))
        ts = evt["ts"]
        if track in last_ts and ts < last_ts[track]:
            problems.append(
                f"event {index} ts={ts} goes backwards on track {track}")
        last_ts[track] = ts
    return problems
