"""Bounded ring-buffer event tracer.

The tracer is a pure observer: attaching one never changes simulated
cycles, stats, or memory.  Events are recorded into a ``deque`` with a
maximum length, so a long run keeps the most recent window instead of
growing without bound; ``dropped`` reports how many events fell off the
front.  Export lives in :mod:`repro.obs.export`.
"""

from __future__ import annotations

from collections import deque
from typing import NamedTuple


class TraceEvent(NamedTuple):
    """One structured simulator event (cycle-stamped, Chrome-trace-able).

    ``ph`` follows the Chrome trace format: ``"i"`` instant, ``"X"``
    complete (with ``dur``), ``"C"`` counter.  ``pid`` is the SM id and
    ``tid`` the global warp id (``repro.sim.CONTROL_TID`` marks SM-level
    events).
    """

    name: str
    ph: str
    ts: int
    dur: int
    pid: int
    tid: int
    args: dict | None


class Tracer:
    """Record :class:`TraceEvent` objects into a bounded ring buffer.

    ``capacity`` bounds retained events (oldest dropped first); pass
    ``None`` for an unbounded buffer (small workloads / tests).
    Exporters registered via :meth:`add_exporter` see every event at
    emission time, before ring eviction can drop it.
    """

    def __init__(self, capacity: int | None = 1 << 20) -> None:
        self.events: deque[TraceEvent] = deque(maxlen=capacity)
        self.capacity = capacity
        self.emitted = 0
        #: Current simulated cycle, maintained by the launch loop while
        #: tracing so emission points without a cycle argument (e.g.
        #: region accounting) can still stamp events.
        self.now = 0
        self._exporters: list = []

    @property
    def dropped(self) -> int:
        """Events evicted from the ring by newer ones."""
        return self.emitted - len(self.events)

    def add_exporter(self, exporter) -> None:
        """Register a callable invoked with each event as it is emitted
        (streaming export; exceptions propagate to the simulation)."""
        self._exporters.append(exporter)

    def event(self, name: str, cycle: int, pid: int, tid: int,
              args: dict | None = None, ph: str = "i",
              dur: int = 0) -> None:
        """Emit one event.  ``cycle`` becomes the Chrome ``ts``."""
        evt = TraceEvent(name, ph, cycle, dur, pid, tid, args)
        self.events.append(evt)
        self.emitted += 1
        for exporter in self._exporters:
            exporter(evt)

    def counter(self, name: str, cycle: int, pid: int,
                values: dict) -> None:
        """Emit a Chrome counter event (stacked-area track)."""
        self.event(name, cycle, pid, 0, dict(values), ph="C")

    def clear(self) -> None:
        self.events.clear()
        self.emitted = 0

    # ------------------------------------------------------------------
    # Checkpoint support (pure observer: the simulator never includes
    # tracer state in machine snapshots, but callers that checkpoint a
    # traced run can round-trip the buffer explicitly).
    # ------------------------------------------------------------------
    def capture_state(self) -> tuple:
        return (self.emitted, self.now, tuple(self.events))

    def restore_state(self, state: tuple) -> None:
        emitted, now, events = state
        self.emitted = emitted
        self.now = now
        self.events = deque(events, maxlen=self.capacity)
