"""Campaign telemetry heartbeat: periodic JSONL metrics next to the journal.

A tiny daemon thread samples the campaign's shared counters every
``interval`` seconds and appends one JSON object per sample to a metrics
file — progress, throughput, acceleration hit rates, worker restarts,
and an ETA extrapolated from the observed trial rate.  ``stop()`` always
writes one final record, so even sub-interval campaigns emit at least
one heartbeat.

The heartbeat doubles as the bridge into the metrics plane: give it a
:class:`~repro.obs.metrics.MetricsRegistry` and every ``note_trial``
also folds the trial into Prometheus-exposable counters
(``observe_trial``); give it an ``on_snapshot`` callback and each
periodic/final record is additionally delivered in-process — that is
how the ``--live`` dashboard ticks without a second timer thread.
"""

from __future__ import annotations

import json
import threading
import time

from .metrics import MetricsRegistry, observe_trial

#: Below this many elapsed seconds, rate/ETA extrapolation is noise:
#: the first sample can land microseconds after start (or before it,
#: when a caller snapshots an un-started heartbeat), and dividing a
#: handful of trials by ~0 produces absurd trillions-of-trials/sec.
_MIN_RATE_WINDOW_S = 1e-3


class CampaignHeartbeat:
    """Thread-safe counter block plus the writer thread.

    Counters are bumped from the result-recording path (one process;
    worker processes report through the pool's result queue, so no
    cross-process locking is needed beyond this object's lock).

    ``path=None`` runs the heartbeat as a pure in-memory sampler — no
    JSONL file, but ``snapshot``/``on_snapshot``/``registry`` all still
    work (the service runner uses this when the operator asked for a
    dashboard but no metrics file).
    """

    def __init__(self, path: str | None, total_trials: int,
                 interval: float = 5.0, shard_id: int | None = None,
                 worker_id: str | None = None,
                 registry: MetricsRegistry | None = None,
                 on_snapshot=None) -> None:
        self.path = path
        self.total_trials = total_trials
        self.interval = interval
        #: Identity stamped on every record (shard workers in the
        #: distributed campaign service set both; a whole-campaign
        #: heartbeat leaves them ``None`` and omits the fields).
        self.shard_id = shard_id
        self.worker_id = worker_id
        #: Optional metrics registry: every noted trial is also folded
        #: into Prometheus counters/histograms via ``observe_trial``.
        self.registry = registry
        #: Optional callback fired with each record written (periodic
        #: and final) — drives the live dashboard.
        self.on_snapshot = on_snapshot
        self._lock = threading.Lock()
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None
        #: ``None`` until ``start()``: a snapshot taken before the
        #: writer starts must report zero elapsed time, not the seconds
        #: since the process booted its monotonic clock.
        self._started_at: float | None = None
        # Counters (guarded by _lock).
        self.completed = 0
        self.resumed = 0          # trials satisfied from the journal
        self.fast_starts = 0      # trials seeded from a golden checkpoint
        self.converged = 0        # trials cut short by convergence match
        self.golden_cache_hits = 0
        self.golden_shared_hits = 0   # goldens adopted from shared memory
        self.worker_restarts = 0
        self.retries = 0          # trial executions retried after a fault
        self.infra_failures = 0
        self.sim_cycles = 0
        self.wall_time_s = 0.0    # summed per-trial simulation wall time
        # Superblock batching effectiveness across the faulty runs:
        # total batched windows plus per-reason fallback counts.
        self.superblocks_executed = 0
        self.superblock_fallbacks: dict[str, int] = {}
        # Memory-window scripting effectiveness (SM-level windows).
        self.mem_windows_executed = 0
        self.mem_window_insts = 0
        # Stall-cycle ledger summed across faulty runs, by cause.
        self.stall_cycles: dict[str, int] = {}
        self.shards_done = 0
        # Last observed liveness signal per shard (monotonic seconds);
        # the coordinator-side heartbeat reports these as staleness.
        self._shard_seen: dict[int, float] = {}

    # ------------------------------------------------------------------
    # Producer side
    # ------------------------------------------------------------------
    def note_resumed(self, count: int) -> None:
        with self._lock:
            self.resumed += count

    def note_trial(self, result) -> None:
        """Record one finished trial (a ``TrialResult``)."""
        with self._lock:
            self.completed += 1
            if result.fast_start:
                self.fast_starts += 1
            if result.converged:
                self.converged += 1
            if result.golden_cache_hit:
                self.golden_cache_hits += 1
            if getattr(result, "golden_shared", False):
                self.golden_shared_hits += 1
            # Mirrors repro.core.campaign.INFRA_ERROR (obs stays
            # import-free of the campaign layer).
            if result.outcome == "infra_error":
                self.infra_failures += 1
            self.sim_cycles += result.cycles
            self.wall_time_s += result.wall_time_s
            self.superblocks_executed += getattr(
                result, "superblocks_executed", 0)
            for reason, count in getattr(result, "superblock_fallbacks",
                                         {}).items():
                self.superblock_fallbacks[reason] = \
                    self.superblock_fallbacks.get(reason, 0) + count
            self.mem_windows_executed += getattr(
                result, "mem_windows_executed", 0)
            self.mem_window_insts += getattr(
                result, "mem_window_insts", 0)
            for cause, cycles in (getattr(result, "stall_cycles", None)
                                  or {}).items():
                self.stall_cycles[cause] = \
                    self.stall_cycles.get(cause, 0) + cycles
        if self.registry is not None:
            observe_trial(self.registry, result, shard_id=self.shard_id)

    def note_worker_restart(self) -> None:
        with self._lock:
            self.worker_restarts += 1

    def note_retry(self) -> None:
        """One trial execution is being retried after an infrastructure
        fault (worker death, lost result)."""
        with self._lock:
            self.retries += 1

    def note_shard_heartbeat(self, shard_id: int) -> None:
        """A liveness signal arrived for ``shard_id``'s current worker
        (HTTP heartbeat, heartbeat-file advance, or an in-process trial
        completion)."""
        with self._lock:
            self._shard_seen[shard_id] = time.monotonic()

    def note_shard_done(self, shard_id: int, trials: int) -> None:
        """A whole shard completed and verified; its trials count as
        completed work for throughput/ETA purposes."""
        with self._lock:
            self.shards_done += 1
            self.completed += trials
            self._shard_seen[shard_id] = time.monotonic()

    # ------------------------------------------------------------------
    # Writer side
    # ------------------------------------------------------------------
    def start(self) -> "CampaignHeartbeat":
        self._started_at = time.monotonic()
        self._thread = threading.Thread(target=self._run, daemon=True,
                                        name="campaign-heartbeat")
        self._thread.start()
        return self

    def stop(self) -> None:
        """Stop the thread and flush a final record."""
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=self.interval + 5.0)
            self._thread = None
        self._write(final=True)

    def _run(self) -> None:
        while not self._stop.wait(self.interval):
            self._write(final=False)

    def snapshot(self, final: bool = False) -> dict:
        """One metrics record (the JSONL schema).

        Rate and ETA are guarded against the zero-elapsed edge: before
        ``start()`` or within the first millisecond, ``trials_per_sec``
        is 0.0 and ``eta_s`` is ``None`` rather than an extrapolation
        from a division by (nearly) zero.  ``elapsed_s`` is present in
        every record.
        """
        if self._started_at is None:
            elapsed = 0.0
        else:
            elapsed = max(time.monotonic() - self._started_at, 0.0)
        with self._lock:
            completed = self.completed
            if elapsed >= _MIN_RATE_WINDOW_S:
                rate = completed / elapsed
            else:
                rate = 0.0
            remaining = max(self.total_trials - self.resumed - completed, 0)
            denominator = completed or 1
            record = {
                "kind": "campaign_heartbeat",
                "final": final,
                "elapsed_s": round(elapsed, 3),
                "total_trials": self.total_trials,
                "resumed_from_journal": self.resumed,
                "completed": completed,
                "remaining": remaining,
                "trials_per_sec": round(rate, 4),
                "eta_s": (round(remaining / rate, 1) if rate > 0
                          else None),
                "fast_start_hit_rate": self.fast_starts / denominator,
                "convergence_early_exit_rate": self.converged / denominator,
                "golden_cache_hits": self.golden_cache_hits,
                "golden_shared_hits": self.golden_shared_hits,
                "worker_restarts": self.worker_restarts,
                "retries": self.retries,
                "infra_failures": self.infra_failures,
                "sim_cycles": self.sim_cycles,
                "sim_wall_time_s": round(self.wall_time_s, 3),
                "superblocks_executed": self.superblocks_executed,
                "superblock_fallbacks": dict(
                    sorted(self.superblock_fallbacks.items())),
                "mem_windows_executed": self.mem_windows_executed,
                "mem_window_insts": self.mem_window_insts,
            }
            if self.stall_cycles:
                record["stall_cycles"] = dict(
                    sorted(self.stall_cycles.items()))
            if self.shard_id is not None:
                record["shard_id"] = self.shard_id
            if self.worker_id is not None:
                record["worker_id"] = self.worker_id
            if self.shards_done or self._shard_seen:
                record["shards_done"] = self.shards_done
            if self._shard_seen:
                now = time.monotonic()
                record["shard_staleness_s"] = {
                    str(sid): round(now - seen, 3)
                    for sid, seen in sorted(self._shard_seen.items())}
        return record

    def _write(self, final: bool) -> None:
        record = self.snapshot(final=final)
        record["time"] = time.time()
        if self.path is not None:
            try:
                with open(self.path, "a", encoding="utf-8") as fh:
                    fh.write(json.dumps(record, separators=(",", ":")))
                    fh.write("\n")
            except OSError:
                pass  # telemetry must never kill a campaign
        if self.on_snapshot is not None:
            try:
                self.on_snapshot(record)
            except Exception:
                pass  # dashboard hiccups must never kill a campaign
