"""Observability: event tracing, trace export, metrics, and telemetry.

Always compiled, zero-overhead when off: the simulator's hot paths pay a
single truthiness check against a ``None`` tracer; attach a
:class:`Tracer` (``Gpu(..., tracer=Tracer())``) to record structured
events from every layer — warp issue/stall/wake, region
begin/verify/rollback, RBQ traffic, cache misses, barriers, block
dispatch/retire, and fault strike/detection/recovery — then export them
as Chrome-trace/Perfetto JSON or compact JSONL.

The metrics plane (:mod:`repro.obs.metrics`) mirrors the same
philosophy: a dependency-free Counter/Gauge/Histogram registry that is
populated post-run from ``SimStats``/``TrialResult`` telemetry (never
from cycle loops) and rendered as Prometheus text for the service's
``/v1/metrics`` endpoint, the live dashboard, and campaign reports.
"""

from .export import (chrome_trace, validate_chrome_trace,
                     write_chrome_trace, write_jsonl)
from .heartbeat import CampaignHeartbeat
from .metrics import (Counter, Gauge, Histogram, MetricsRegistry,
                      observe_sim_stats, observe_trial, parse_prom_text,
                      render_prom, trial_counts, validate_prom_text)
from .tracer import TraceEvent, Tracer

__all__ = [
    "CampaignHeartbeat", "Counter", "Gauge", "Histogram",
    "MetricsRegistry", "TraceEvent", "Tracer", "chrome_trace",
    "observe_sim_stats", "observe_trial", "parse_prom_text",
    "render_prom", "trial_counts", "validate_chrome_trace",
    "validate_prom_text", "write_chrome_trace", "write_jsonl",
]
