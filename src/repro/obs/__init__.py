"""Observability: event tracing, trace export, and campaign telemetry.

Always compiled, zero-overhead when off: the simulator's hot paths pay a
single truthiness check against a ``None`` tracer; attach a
:class:`Tracer` (``Gpu(..., tracer=Tracer())``) to record structured
events from every layer — warp issue/stall/wake, region
begin/verify/rollback, RBQ traffic, cache misses, barriers, block
dispatch/retire, and fault strike/detection/recovery — then export them
as Chrome-trace/Perfetto JSON or compact JSONL.
"""

from .export import (chrome_trace, validate_chrome_trace,
                     write_chrome_trace, write_jsonl)
from .heartbeat import CampaignHeartbeat
from .tracer import TraceEvent, Tracer

__all__ = [
    "CampaignHeartbeat", "TraceEvent", "Tracer", "chrome_trace",
    "validate_chrome_trace", "write_chrome_trace", "write_jsonl",
]
