"""Flame reproduction: featherweight soft error resilience for GPUs.

A full Python reproduction of *"Featherweight Soft Error Resilience for
GPUs"* (MICRO 2022): a cycle-level SIMT GPU simulator, the Flame
compiler (idempotent region formation, anti-dependent register renaming,
live-out checkpointing, SwapCodes duplication, tail-DMR), the Flame
hardware model (acoustic sensor meshes, RBQ verification conveyor, RPT,
WCDL-aware warp scheduling, all-warp rollback recovery), the 34 Table-I
benchmarks, fault injection, and a harness regenerating every table and
figure of the paper's evaluation.

Quick start::

    from repro import quick_run
    outcome = quick_run("SGEMM", scheme="flame")
    print(outcome.cycles)
"""

from . import arch, compiler, core, harness, isa, sim, workloads
from .errors import (AsmError, CompileError, ConfigError, IsaError,
                     LaunchError, ReproError, SimError, SimTimeout)
from .harness import RunOutcome, Runner, RunSpec

__version__ = "1.0.0"


def quick_run(workload: str, scheme: str = "flame", scale: str = "tiny",
              gpu: str = "GTX480", scheduler: str = "GTO",
              wcdl: int = 20) -> RunOutcome:
    """Compile and simulate one benchmark under one resilience scheme."""
    from .harness.runner import execute

    return execute(RunSpec(workload=workload, scheme=scheme, scale=scale,
                           gpu=gpu, scheduler=scheduler, wcdl=wcdl))


__all__ = [
    "AsmError", "CompileError", "ConfigError", "IsaError", "LaunchError",
    "ReproError", "RunOutcome", "Runner", "RunSpec", "SimError",
    "SimTimeout", "arch", "compiler", "core", "harness", "isa",
    "quick_run", "sim", "workloads",
]
