"""Campaign-layer throughput: seeded Monte Carlo trials per second.

The checkpoint engine's whole purpose is campaign wall-clock, so this
guards the end-to-end path — golden memo, checkpoint fast-start,
convergence early-out, trial classification — not just the simulator
inner loop.  The golden run (and its checkpoint recording) is warmed
outside the timed region: a real campaign amortizes it over hundreds
of trials, so timing it inside a 50-trial round would overweight it.
"""

from repro.core.campaign import CampaignSpec, run_trial

#: Fixed composition: 25 trials x {baseline, flame} on SGEMM, seed 42.
_SPEC = CampaignSpec(workloads=("SGEMM",), trials=25, seed=42,
                     scale="tiny", checkpoint=True)


def test_campaign_trials_per_second(benchmark):
    """50 checkpoint-accelerated trials, inline (workers=1)."""
    trials = _SPEC.trial_specs()
    run_trial(trials[0])  # warm the golden memo + checkpoint recording

    def run():
        return [run_trial(trial) for trial in trials]

    results = benchmark.pedantic(run, rounds=3, iterations=1,
                                 warmup_rounds=1)
    assert len(results) == 50
    assert all(r.outcome in ("masked", "recovered", "sdc")
               for r in results)
    benchmark.extra_info["trials"] = len(results)
    benchmark.extra_info["trials_per_second"] = round(
        len(results) / benchmark.stats.stats.min, 2)
