"""Benchmarks for the analytic models: Table I, Figure 12, Table II,
Section IV, and Section VI-A2 (hardware cost)."""

from repro.arch import FaultRates, section4_report
from repro.harness import figure12, hwcost, table1, table2


def test_table1_roster(benchmark):
    rows = benchmark(table1)
    assert len(rows) == 34


def test_figure12_wcdl_curves(benchmark):
    counts = tuple(range(50, 301, 25))
    curves = benchmark(figure12, counts)
    assert curves["GTX480"][6] == 20  # 200 sensors -> 20 cycles
    benchmark.extra_info["gtx480_curve"] = curves["GTX480"]


def test_table2_sensor_requirements(benchmark):
    rows = benchmark(table2)
    by_gpu = {r["gpu"]: r["sensors_per_sm"] for r in rows}
    assert by_gpu["GTX480"] == 200
    benchmark.extra_info["sensors"] = by_gpu


def test_section4_fault_arithmetic(benchmark):
    report = benchmark(section4_report, FaultRates(), 50.23)
    assert round(report["raw_strikes_per_day"], 2) == 1.37
    benchmark.extra_info["report"] = {k: round(v, 4)
                                      for k, v in report.items()}


def test_hwcost_accounting(benchmark):
    rows = benchmark(hwcost)
    gtx = next(r for r in rows if r["gpu"] == "GTX480")
    assert gtx["rbq_bits"] == 120 and gtx["rpt_bits"] == 1024
