"""Fail CI when a benchmark regresses against the committed baseline.

Usage::

    python benchmarks/perf_guard.py BENCH_sim.json \
        [--baseline benchmarks/BENCH_baseline.json] [--threshold 1.25]

Reads a fresh pytest-benchmark JSON export and compares each test's
min-of-rounds time against ``BENCH_baseline.json``.  Absolute times are
not comparable across machines (a CI runner is not the box the baseline
was recorded on), so the check is *relative*: every test's fresh/baseline
ratio is normalised by the median ratio across all tests — a uniformly
slower machine scales every ratio equally and passes, while one test
regressing on its own stands out against the others and fails.

Exit status 0 when every test is within ``threshold`` (default 1.25,
i.e. a >25% relative regression fails) of the normalised baseline,
1 otherwise.
"""

from __future__ import annotations

import argparse
import json
import statistics
import sys
from pathlib import Path


def load_minimums(path: Path) -> dict[str, float]:
    """Min-of-rounds seconds per test, from either JSON schema."""
    data = json.loads(path.read_text())
    if "benchmarks" not in data:
        raise SystemExit(f"{path}: not a benchmark JSON (no 'benchmarks' key)")
    bench = data["benchmarks"]
    if isinstance(bench, dict):  # committed baseline schema
        return {name: entry["min_ms"] / 1000.0 for name, entry in bench.items()}
    return {b["name"]: b["stats"]["min"] for b in bench}  # pytest-benchmark


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("fresh", type=Path,
                        help="pytest-benchmark JSON from the current run")
    parser.add_argument("--baseline", type=Path,
                        default=Path(__file__).parent / "BENCH_baseline.json")
    parser.add_argument("--threshold", type=float, default=1.25,
                        help="max allowed normalised slowdown (1.25 = +25%%)")
    args = parser.parse_args(argv)

    fresh = load_minimums(args.fresh)
    baseline = load_minimums(args.baseline)

    missing = sorted(set(baseline) - set(fresh))
    if missing:
        print(f"perf_guard: tests missing from fresh run: {', '.join(missing)}")
        return 1

    ratios = {name: fresh[name] / baseline[name] for name in baseline}
    scale = statistics.median(ratios.values())
    print(f"perf_guard: machine-speed scale (median ratio) = {scale:.3f}")

    failed = False
    for name in sorted(baseline):
        normalised = ratios[name] / scale
        status = "ok"
        if normalised > args.threshold:
            status = "REGRESSION"
            failed = True
        print(f"  {name}: baseline {baseline[name] * 1000:.3f} ms, "
              f"fresh {fresh[name] * 1000:.3f} ms, "
              f"normalised x{normalised:.3f} [{status}]")
    if failed:
        print(f"perf_guard: FAIL (>{(args.threshold - 1) * 100:.0f}% "
              f"normalised regression)")
        return 1
    print("perf_guard: PASS")
    return 0


if __name__ == "__main__":
    sys.exit(main())
