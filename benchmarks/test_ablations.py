"""Benchmark for the design-choice ablation study (DESIGN.md)."""

from repro.harness.ablations import run_ablation


def test_ablation_matrix(benchmark):
    rows = benchmark.pedantic(
        run_ablation,
        kwargs=dict(benchmarks=("LBM", "SGEMM", "CS"), scale="tiny"),
        iterations=1, rounds=1)
    by_key = {(r.benchmark, r.variant): r for r in rows}
    # Provenance must pay off on streaming kernels.
    assert by_key[("LBM", "no_provenance")].boundaries > \
        by_key[("LBM", "full")].boundaries
    benchmark.extra_info["normalized"] = {
        f"{r.benchmark}/{r.variant}": round(r.normalized, 3) for r in rows}
