"""Shared fixtures for the benchmark harnesses.

Every paper table/figure has a ``test_*`` benchmark here that runs a
reduced-scale version of the corresponding experiment (the full-scale
versions are `python -m repro.harness <experiment> --scale small`).
Results are cached under a benchmark-local cache dir so repeated
benchmark runs measure harness+simulator work, not disk luck.
"""

import os

import pytest

from repro.harness import Runner

#: Benchmarks kept fast by running a representative subset at tiny scale.
SUBSET = ("SGEMM", "LBM", "Triad", "LUD", "BS", "Histogram")


@pytest.fixture(scope="session")
def runner(tmp_path_factory):
    cache = os.environ.get("REPRO_BENCH_CACHE",
                           str(tmp_path_factory.mktemp("bench_cache")))
    return Runner(cache_dir=cache, workers=1)
