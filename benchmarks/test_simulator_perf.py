"""Microbenchmarks of the infrastructure itself: simulator throughput
and compiler pass latency (useful to track regressions in the repo)."""

import numpy as np

from repro.compiler import (allocate_registers, compile_kernel,
                            form_regions)
from repro.sim import LaunchConfig, run_kernel
from repro.workloads import WORKLOADS


def test_simulator_throughput(benchmark):
    """Warp-instructions simulated per second on a streaming kernel."""
    instance = WORKLOADS["LBM"].instance("tiny")

    def run():
        mem = instance.fresh_memory()
        return run_kernel(instance.kernel, instance.launch, mem)

    result = benchmark(run)
    benchmark.extra_info["instructions"] = result.stats.instructions


def test_compile_flame_pipeline(benchmark):
    """Full Flame compilation (regalloc + regions + renaming + compaction)
    of a barrier-heavy kernel."""
    kernel = WORKLOADS["SGEMM"].instance("tiny").kernel
    compiled = benchmark(compile_kernel, kernel, "flame")
    assert compiled.regions.boundaries > 0


def test_register_allocation(benchmark):
    kernel = WORKLOADS["BS"].instance("tiny").kernel
    result = benchmark(allocate_registers, kernel)
    assert result.num_regs > 0


def test_region_formation(benchmark):
    kernel = allocate_registers(
        WORKLOADS["LUD"].instance("tiny").kernel).kernel
    formed = benchmark(form_regions, kernel)
    assert formed.boundaries > 0
