"""Microbenchmarks of the infrastructure itself: simulator throughput
and compiler pass latency (useful to track regressions in the repo)."""

import numpy as np

from repro.compiler import (allocate_registers, compile_kernel,
                            form_regions)
from repro.sim import LaunchConfig, run_kernel
from repro.workloads import WORKLOADS


def _throughput(benchmark, name):
    """Warp-instructions simulated per second on one workload; the
    instance (and hence the cached ExecPlan) is built once so rounds
    measure the steady-state hot path, and memory is refreshed per
    round so every run starts from the same image."""
    instance = WORKLOADS[name].instance("tiny")

    def run():
        mem = instance.fresh_memory()
        return run_kernel(instance.kernel, instance.launch, mem)

    result = benchmark(run)
    benchmark.extra_info["instructions"] = result.stats.instructions
    benchmark.extra_info["mem_windows"] = result.stats.mem_windows_executed


def test_simulator_throughput(benchmark):
    """Memory-latency-bound streaming kernel (the memory-window
    engine's headline workload)."""
    _throughput(benchmark, "LBM")


def test_simulator_throughput_sgemm(benchmark):
    """Compute-heavy tiled kernel with barriers (superblock-friendly,
    shared-memory traffic)."""
    _throughput(benchmark, "SGEMM")


def test_simulator_throughput_triad(benchmark):
    """Short streaming kernel with a guard tail (unit-stride loads
    under a bounds predicate)."""
    _throughput(benchmark, "Triad")


def test_compile_flame_pipeline(benchmark):
    """Full Flame compilation (regalloc + regions + renaming + compaction)
    of a barrier-heavy kernel."""
    kernel = WORKLOADS["SGEMM"].instance("tiny").kernel
    compiled = benchmark(compile_kernel, kernel, "flame")
    assert compiled.regions.boundaries > 0


def test_register_allocation(benchmark):
    kernel = WORKLOADS["BS"].instance("tiny").kernel
    result = benchmark(allocate_registers, kernel)
    assert result.num_regs > 0


def test_region_formation(benchmark):
    kernel = allocate_registers(
        WORKLOADS["LUD"].instance("tiny").kernel).kernel
    formed = benchmark(form_regions, kernel)
    assert formed.boundaries > 0
