"""Benchmark for Figures 13/14/15: per-benchmark and geomean normalized
execution time across the competing schemes (reduced configuration)."""

from conftest import SUBSET

from repro.harness import figure13_14

SCHEMES = ("flame", "renaming", "checkpointing", "duplication_renaming",
           "hybrid_renaming")


def test_figure13_14_overheads(benchmark, runner):
    study = benchmark.pedantic(
        figure13_14,
        kwargs=dict(scale="tiny", schemes=SCHEMES, benchmarks=SUBSET,
                    runner=runner),
        iterations=1, rounds=1)
    geomeans = study.geomeans()
    # Paper shape: Flame beats duplication; renaming is ~free.
    assert geomeans["flame"] < geomeans["duplication_renaming"]
    assert geomeans["renaming"] < 1.1
    benchmark.extra_info["geomeans"] = {k: round(v, 4)
                                        for k, v in geomeans.items()}


def test_figure15_geomean(benchmark, runner):
    def geomeans():
        return figure13_14("tiny", schemes=("flame",), benchmarks=SUBSET,
                           runner=runner).geomeans()

    result = benchmark.pedantic(geomeans, iterations=1, rounds=1)
    assert 0.9 < result["flame"] < 1.4
    benchmark.extra_info["flame_geomean"] = round(result["flame"], 4)
