"""Benchmark for the Section IV analysis: measured region sizes plus
the fault-rate arithmetic, and recovery-latency microbenchmarks."""

import numpy as np
from conftest import SUBSET

from repro.compiler import compile_kernel
from repro.core import FaultInjector, FlameRuntime
from repro.harness import section4
from repro.sim import Gpu
from repro.arch import GTX480
from repro.workloads import WORKLOADS


def test_section4_measured(benchmark, runner):
    report = benchmark.pedantic(
        section4, kwargs=dict(scale="tiny", benchmarks=SUBSET,
                              runner=runner),
        iterations=1, rounds=1)
    assert report["avg_region_instructions"] > 0
    benchmark.extra_info["measured_region_size"] = round(
        report["avg_region_instructions"], 2)
    benchmark.extra_info["paper_region_size"] = 50.23


def test_recovery_latency(benchmark):
    """Cost of one strike-detect-rollback-reexecute episode."""
    instance = WORKLOADS["LBM"].instance("tiny")
    compiled = compile_kernel(instance.kernel, "flame")

    def run(strikes):
        gpu = Gpu(GTX480, resilience=FlameRuntime(20))
        if strikes:
            gpu.fault_injector = FaultInjector(strike_cycles=strikes,
                                               wcdl=20, seed=1)
        mem = instance.fresh_memory()
        result = gpu.launch(compiled.kernel, instance.launch, mem,
                            regs_per_thread=compiled.regs_per_thread)
        assert instance.verify(mem)
        return result.cycles

    def episode():
        return run([100]) - run([])

    delta = benchmark.pedantic(episode, iterations=1, rounds=3)
    # One recovery re-executes at most ~one region per warp: cheap.
    benchmark.extra_info["recovery_delta_cycles"] = delta
