"""Benchmarks for the sensitivity studies: Figure 17 (WCDL), Figure 18
(warp schedulers), and Figure 19 (GPU architectures)."""

from conftest import SUBSET

from repro.harness import figure17, figure18, figure19

FAST = SUBSET[:3]


def test_figure17_wcdl_sweep(benchmark, runner):
    result = benchmark.pedantic(
        figure17, kwargs=dict(scale="tiny", wcdls=(10, 20, 30, 40, 50),
                              benchmarks=FAST, runner=runner),
        iterations=1, rounds=1)
    values = [result[w] for w in (10, 20, 30, 40, 50)]
    # Paper shape: overhead grows with WCDL.
    assert values[0] <= values[-1]
    benchmark.extra_info["overheads"] = {w: round(v, 4)
                                         for w, v in result.items()}


def test_figure18_scheduler_sweep(benchmark, runner):
    result = benchmark.pedantic(
        figure18, kwargs=dict(scale="tiny", benchmarks=FAST, runner=runner),
        iterations=1, rounds=1)
    assert set(result) == {"GTO", "OLD", "LRR", "2LV"}
    # Paper shape: near-uniform low overhead across schedulers.
    assert max(result.values()) - min(result.values()) < 0.25
    benchmark.extra_info["overheads"] = {k: round(v, 4)
                                         for k, v in result.items()}


def test_figure19_architecture_sweep(benchmark, runner):
    result = benchmark.pedantic(
        figure19, kwargs=dict(scale="tiny", benchmarks=FAST, runner=runner),
        iterations=1, rounds=1)
    assert len(result) == 4
    assert all(0.9 < v < 1.6 for v in result.values())
    benchmark.extra_info["overheads"] = {k: round(v, 4)
                                         for k, v in result.items()}
