"""Benchmark for Figure 16: region-extension optimization impact."""

from repro.harness import figure16, optimization_eligible_benchmarks


def test_figure16_region_optimization(benchmark, runner):
    result = benchmark.pedantic(
        figure16, kwargs=dict(scale="tiny", runner=runner),
        iterations=1, rounds=1)
    assert result
    improved = sum(1 for v in result.values()
                   if v["with_opt"] <= v["without_opt"] + 1e-9)
    # The optimization must help (or at least not hurt) most of the
    # eligible benchmarks.
    assert improved >= len(result) // 2
    benchmark.extra_info["eligible"] = sorted(result)
    benchmark.extra_info["ratios"] = {
        k: (round(v["without_opt"], 3), round(v["with_opt"], 3))
        for k, v in result.items()}


def test_eligibility_analysis(benchmark):
    eligible = benchmark(optimization_eligible_benchmarks)
    assert 5 <= len(eligible) <= 12  # the paper found 7
