"""Direct-vs-checkpointed campaign wall-clock comparison.

Measures the end-to-end speedup of the checkpoint engine (golden-run
snapshots + strike-cycle fast-start + convergence early-out) on the
exact campaigns the CI smoke runs, and records the result in
``benchmarks/BENCH_campaign.json``.

Methodology — the box this runs on is noisy (identical work has been
observed to vary >30% wall-clock between passes), so a single timed
pass per mode is worthless.  Instead:

* the two modes run in *alternating* passes (D C D C ...) so slow
  phases of the machine hit both arms roughly equally;
* each campaign reports the *best-of-N* per arm (minimum over passes),
  the standard noise-robust estimator for a fixed workload;
* the golden cache is cleared before every pass, so each pass pays the
  full golden-run + checkpoint-recording cost — nothing is amortized
  across passes that a real cold campaign would have to pay;
* trials run inline (workers=1): process-pool dispatch overhead would
  dilute both arms equally and measure the pool, not the engine.

Usage::

    PYTHONPATH=src python benchmarks/bench_campaign.py [--reps 4] [--write]

Without ``--write`` the JSON is printed but not saved.
"""

from __future__ import annotations

import argparse
import json
import time
from pathlib import Path

from repro.core import campaign as campaign_mod
from repro.core.campaign import CampaignSpec, run_trial

#: The two CI smoke campaigns (see .github/workflows/ci.yml).
SMOKES = {
    "SGEMM_smoke": dict(workloads=("SGEMM",), trials=10, seed=0,
                        scale="tiny", sites=("dest_reg", "shared_mem"),
                        sanitize=True),
    "Triad_smoke": dict(workloads=("Triad",), trials=20, seed=0,
                        scale="tiny"),
}


def time_pass(spec: CampaignSpec) -> float:
    """One cold pass: cleared golden cache, inline trials, wall seconds."""
    campaign_mod._GOLDEN_CACHE.clear()
    start = time.perf_counter()
    for trial in spec.trial_specs():
        run_trial(trial)
    return time.perf_counter() - start


def measure(reps: int) -> dict:
    results: dict[str, dict] = {}
    for name, kwargs in SMOKES.items():
        direct = CampaignSpec(checkpoint=False, **kwargs)
        ckpt = CampaignSpec(checkpoint=True, **kwargs)
        direct_times, ckpt_times = [], []
        for rep in range(reps):
            direct_times.append(time_pass(direct))
            ckpt_times.append(time_pass(ckpt))
            print(f"  {name} rep {rep}: direct {direct_times[-1]:.2f}s, "
                  f"checkpointed {ckpt_times[-1]:.2f}s", flush=True)
        best_d, best_c = min(direct_times), min(ckpt_times)
        results[name] = {
            "trials": 2 * kwargs["trials"],  # baseline + flame schemes
            "direct_best_s": round(best_d, 3),
            "checkpointed_best_s": round(best_c, 3),
            "speedup": round(best_d / best_c, 2),
            "reps": reps,
        }
        print(f"{name}: direct {best_d:.2f}s, checkpointed {best_c:.2f}s, "
              f"speedup {best_d / best_c:.2f}x", flush=True)
    total_d = sum(r["direct_best_s"] for r in results.values())
    total_c = sum(r["checkpointed_best_s"] for r in results.values())
    results["combined"] = {
        "direct_best_s": round(total_d, 3),
        "checkpointed_best_s": round(total_c, 3),
        "speedup": round(total_d / total_c, 2),
    }
    return results


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--reps", type=int, default=4,
                        help="alternating passes per arm (best-of-N)")
    parser.add_argument("--write", action="store_true",
                        help="save to benchmarks/BENCH_campaign.json")
    args = parser.parse_args(argv)

    results = measure(args.reps)
    payload = {
        "schema": 1,
        "note": ("best-of-N alternating direct/checkpointed passes of the "
                 "CI smoke campaigns, cold golden cache every pass, "
                 "workers=1; regenerate with benchmarks/bench_campaign.py "
                 "--write whenever the campaign hot path changes"),
        "campaigns": results,
    }
    text = json.dumps(payload, indent=2)
    print(text)
    if args.write:
        out = Path(__file__).parent / "BENCH_campaign.json"
        out.write_text(text + "\n")
        print(f"wrote {out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
