"""Direct-vs-checkpointed campaign wall-clock comparison.

Measures the end-to-end speedup of the checkpoint engine (golden-run
snapshots + strike-cycle fast-start + convergence early-out) on the
exact campaigns the CI smoke runs, and records the result in
``benchmarks/BENCH_campaign.json``.

Methodology — the box this runs on is noisy (identical work has been
observed to vary >30% wall-clock between passes), so a single timed
pass per mode is worthless.  Instead:

* the two modes run in *alternating* passes (D C D C ...) so slow
  phases of the machine hit both arms roughly equally;
* each campaign reports the *best-of-N* per arm (minimum over passes),
  the standard noise-robust estimator for a fixed workload;
* the golden cache is cleared before every pass, so each pass pays the
  full golden-run + checkpoint-recording cost — nothing is amortized
  across passes that a real cold campaign would have to pay;
* trials run inline (workers=1): process-pool dispatch overhead would
  dilute both arms equally and measure the pool, not the engine.

A separate ``workers`` section measures the process-pool path
(``run_campaign(workers=N)`` with shared-memory golden publication)
against the same campaign inline — the multi-worker number includes
pool spawn + golden export overhead, so on a single-core box it is
expected to be *slower* than inline and is pinned for honesty, not as
a target.

Usage::

    PYTHONPATH=src python benchmarks/bench_campaign.py [--reps 4]
        [--workloads SGEMM,Triad] [--workers 2] [--write]

Without ``--write`` the JSON is printed but not saved.
"""

from __future__ import annotations

import argparse
import json
import shutil
import tempfile
import time
from pathlib import Path

from repro.core import campaign as campaign_mod
from repro.core.campaign import CampaignSpec, run_trial

#: The two CI smoke campaigns (see .github/workflows/ci.yml).
SMOKES = {
    "SGEMM_smoke": dict(workloads=("SGEMM",), trials=10, seed=0,
                        scale="tiny", sites=("dest_reg", "shared_mem"),
                        sanitize=True),
    "Triad_smoke": dict(workloads=("Triad",), trials=20, seed=0,
                        scale="tiny"),
}


def time_pass(spec: CampaignSpec) -> float:
    """One cold pass: cleared golden cache, inline trials, wall seconds."""
    campaign_mod._GOLDEN_CACHE.clear()
    start = time.perf_counter()
    for trial in spec.trial_specs():
        run_trial(trial)
    return time.perf_counter() - start


def select_smokes(workloads: str | None) -> dict[str, dict]:
    """The smoke campaigns touching the requested workloads (comma
    separated, e.g. ``SGEMM,Triad``); all of them by default."""
    if not workloads:
        return dict(SMOKES)
    wanted = {w.strip() for w in workloads.split(",") if w.strip()}
    known = {w for kwargs in SMOKES.values() for w in kwargs["workloads"]}
    unknown = wanted - known
    if unknown:
        raise SystemExit(f"unknown workloads {sorted(unknown)}; "
                         f"smoke campaigns cover {sorted(known)}")
    return {name: kwargs for name, kwargs in SMOKES.items()
            if set(kwargs["workloads"]) & wanted}


def measure_workers(reps: int, workers: int, smokes: dict) -> dict:
    """Best-of-N inline vs process-pool wall time per smoke campaign.

    The pool arm is the production multi-worker path: fresh journal,
    golden derivation exported to shared memory, trials dispatched to
    ``workers`` subprocesses.  Alternating passes, cold cache each pass.
    """
    from repro.harness.campaign import run_campaign

    results: dict[str, dict] = {}
    for name, kwargs in smokes.items():
        spec = CampaignSpec(checkpoint=True, **kwargs)
        inline_times, pool_times = [], []
        for rep in range(reps):
            for arm, times in (("inline", inline_times),
                               ("pool", pool_times)):
                campaign_mod._GOLDEN_CACHE.clear()
                tmp = tempfile.mkdtemp(prefix="bench_campaign_")
                try:
                    start = time.perf_counter()
                    run_campaign(spec,
                                 workers=1 if arm == "inline" else workers,
                                 journal_path=f"{tmp}/journal.jsonl")
                    times.append(time.perf_counter() - start)
                finally:
                    shutil.rmtree(tmp, ignore_errors=True)
            print(f"  {name} workers rep {rep}: inline "
                  f"{inline_times[-1]:.2f}s, pool({workers}) "
                  f"{pool_times[-1]:.2f}s", flush=True)
        best_i, best_p = min(inline_times), min(pool_times)
        results[name] = {
            "workers": workers,
            "inline_best_s": round(best_i, 3),
            "pool_best_s": round(best_p, 3),
            "pool_over_inline": round(best_p / best_i, 2),
            "reps": reps,
        }
        print(f"{name}: inline {best_i:.2f}s, pool({workers}) "
              f"{best_p:.2f}s (x{best_p / best_i:.2f})", flush=True)
    return results


def measure(reps: int, smokes: dict | None = None) -> dict:
    results: dict[str, dict] = {}
    for name, kwargs in (smokes or SMOKES).items():
        direct = CampaignSpec(checkpoint=False, **kwargs)
        ckpt = CampaignSpec(checkpoint=True, **kwargs)
        direct_times, ckpt_times = [], []
        for rep in range(reps):
            direct_times.append(time_pass(direct))
            ckpt_times.append(time_pass(ckpt))
            print(f"  {name} rep {rep}: direct {direct_times[-1]:.2f}s, "
                  f"checkpointed {ckpt_times[-1]:.2f}s", flush=True)
        best_d, best_c = min(direct_times), min(ckpt_times)
        results[name] = {
            "trials": 2 * kwargs["trials"],  # baseline + flame schemes
            "direct_best_s": round(best_d, 3),
            "checkpointed_best_s": round(best_c, 3),
            "speedup": round(best_d / best_c, 2),
            "reps": reps,
        }
        print(f"{name}: direct {best_d:.2f}s, checkpointed {best_c:.2f}s, "
              f"speedup {best_d / best_c:.2f}x", flush=True)
    total_d = sum(r["direct_best_s"] for r in results.values())
    total_c = sum(r["checkpointed_best_s"] for r in results.values())
    results["combined"] = {
        "direct_best_s": round(total_d, 3),
        "checkpointed_best_s": round(total_c, 3),
        "speedup": round(total_d / total_c, 2),
    }
    return results


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--reps", type=int, default=4,
                        help="alternating passes per arm (best-of-N)")
    parser.add_argument("--workloads", default=None,
                        help="comma-separated workload filter "
                             "(e.g. SGEMM,Triad); default: all smokes")
    parser.add_argument("--workers", type=int, default=2,
                        help="pool width for the workers section "
                             "(0 skips the pool measurement)")
    parser.add_argument("--write", action="store_true",
                        help="save to benchmarks/BENCH_campaign.json")
    args = parser.parse_args(argv)

    smokes = select_smokes(args.workloads)
    results = measure(args.reps, smokes)
    payload = {
        "schema": 2,
        "note": ("best-of-N alternating direct/checkpointed passes of the "
                 "CI smoke campaigns, cold golden cache every pass, "
                 "workers=1; the workers section times the process-pool "
                 "path (spawn + shared-golden export included) against "
                 "inline on the same campaign; regenerate with "
                 "benchmarks/bench_campaign.py --write whenever the "
                 "campaign hot path changes"),
        "campaigns": results,
    }
    if args.workers > 0:
        payload["workers"] = measure_workers(args.reps, args.workers,
                                             smokes)
    text = json.dumps(payload, indent=2)
    print(text)
    if args.write:
        out = Path(__file__).parent / "BENCH_campaign.json"
        out.write_text(text + "\n")
        print(f"wrote {out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
