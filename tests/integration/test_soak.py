"""Soak tests: realistic Poisson strike processes and long-horizon
recovery, plus end-to-end determinism checks."""

import numpy as np
import pytest

from repro.arch import FaultRates, GTX480, sample_strike_cycles
from repro.compiler import compile_kernel
from repro.core import FaultInjector, FlameRuntime
from repro.sim import Gpu
from repro.workloads import WORKLOADS


class TestPoissonSoak:
    def test_accelerated_poisson_strikes_recover(self):
        """Strikes sampled from a (massively accelerated) Poisson process
        over the kernel's horizon all recover to the golden output."""
        instance = WORKLOADS["Hotspot"].instance("tiny")
        compiled = compile_kernel(instance.kernel, "flame")

        def run(strikes):
            gpu = Gpu(GTX480, resilience=FlameRuntime(20))
            if strikes:
                gpu.fault_injector = FaultInjector(strike_cycles=strikes,
                                                   wcdl=20, seed=11)
            mem = instance.fresh_memory()
            result = gpu.launch(compiled.kernel, instance.launch, mem,
                                regs_per_thread=compiled.regs_per_thread)
            return result, mem

        golden_result, golden = run([])
        rng = np.random.default_rng(5)
        # Accelerate the real-world rate (~1.4/day) to ~1 per 300 cycles.
        strikes = sample_strike_cycles(1 / 300.0, golden_result.cycles, rng)
        assert strikes, "horizon long enough for at least one strike"
        faulty_result, faulty = run(strikes)
        assert np.allclose(faulty, golden)
        assert faulty_result.stats.recoveries == len(
            [s for s in strikes if s <= faulty_result.cycles])

    def test_realistic_rate_is_quiet(self):
        """At the paper's real strike rate, a kernel-sized horizon sees
        essentially no strikes — fault-free overhead is the right metric
        (the paper's argument for Figure 13)."""
        rates = FaultRates()
        rng = np.random.default_rng(0)
        strikes = sample_strike_cycles(rates.strikes_per_cycle(GTX480),
                                       10_000_000, rng)
        assert len(strikes) == 0


class TestDeterminism:
    @pytest.mark.parametrize("abbr", ("SGEMM", "Histogram", "NW"))
    def test_repeated_flame_runs_identical(self, abbr):
        instance = WORKLOADS[abbr].instance("tiny")
        compiled = compile_kernel(instance.kernel, "flame")

        def run():
            gpu = Gpu(GTX480, resilience=FlameRuntime(20))
            mem = instance.fresh_memory()
            result = gpu.launch(compiled.kernel, instance.launch, mem,
                                regs_per_thread=compiled.regs_per_thread)
            return result.cycles, mem

        c1, m1 = run()
        c2, m2 = run()
        assert c1 == c2
        assert np.array_equal(m1, m2)

    def test_injected_runs_deterministic(self):
        instance = WORKLOADS["CS"].instance("tiny")
        compiled = compile_kernel(instance.kernel, "flame")

        def run():
            gpu = Gpu(GTX480, resilience=FlameRuntime(20))
            gpu.fault_injector = FaultInjector(
                strike_cycles=[120, 240], wcdl=20, seed=3)
            mem = instance.fresh_memory()
            result = gpu.launch(compiled.kernel, instance.launch, mem,
                                regs_per_thread=compiled.regs_per_thread)
            return result.cycles, mem

        c1, m1 = run()
        c2, m2 = run()
        assert c1 == c2
        assert np.array_equal(m1, m2)
