"""A/B proof that the decode-once fast path is byte-identical to the
reference interpreter: every workload's tiny instance, plus a scheduler ×
resilience-scheme matrix, must produce the same cycle count, the same
stats dictionary, and the same final global memory bytes."""

import numpy as np
import pytest

from repro.arch import GTX480
from repro.compiler import compile_kernel, prepare_launch
from repro.core import runtime_scheme_by_name
from repro.sim import Gpu, LaunchConfig
from repro.workloads import WORKLOADS, workload_by_name


def run_scheme(instance, scheme_name: str, scheduler: str, fast: bool,
               wcdl: int = 20):
    """Compile + launch one instance; return (cycles, stats dict, bytes)."""
    rscheme = runtime_scheme_by_name(scheme_name)
    compiled = compile_kernel(instance.kernel, rscheme.compile_scheme,
                              wcdl=wcdl)
    runtime = rscheme.build(wcdl=wcdl)
    gpu = Gpu(GTX480, resilience=runtime, scheduler=scheduler, fast=fast)
    mem = instance.fresh_memory()
    params, mem = prepare_launch(
        compiled, instance.launch.params, mem,
        instance.launch.num_blocks, instance.launch.threads_per_block)
    launch = LaunchConfig(grid=instance.launch.grid,
                          block=instance.launch.block, params=params)
    result = gpu.launch(compiled.kernel, launch, mem,
                        regs_per_thread=compiled.regs_per_thread)
    return result.cycles, result.stats.as_dict(), mem.tobytes()


def assert_paths_identical(instance, scheme: str, scheduler: str):
    fast = run_scheme(instance, scheme, scheduler, fast=True)
    ref = run_scheme(instance, scheme, scheduler, fast=False)
    assert fast[0] == ref[0], "cycle counts diverge"
    assert fast[1] == ref[1], "stats diverge"
    assert fast[2] == ref[2], "final global memory diverges"


@pytest.mark.parametrize("name", sorted(WORKLOADS))
def test_every_workload_tiny(name):
    """Baseline scheme, default scheduler, every workload."""
    instance = workload_by_name(name).instance("tiny")
    assert_paths_identical(instance, "baseline", "GTO")


@pytest.mark.parametrize("scheduler", ["GTO", "OLD", "LRR", "2LV"])
@pytest.mark.parametrize("scheme",
                         ["baseline", "flame", "dmr", "partial_thread"])
def test_scheduler_scheme_matrix(scheduler, scheme):
    """All four schedulers under every campaign-runnable runtime that
    works on arbitrary workloads: baseline, the full Flame runtime
    (boundary markers, RBQ descheduling, deferred retirement), the DMR
    strawman (compare-park at every region end), and partial thread
    protection (only the ranked vulnerable warps park)."""
    for name in ("LBM", "Histogram"):
        instance = workload_by_name(name).instance("tiny")
        assert_paths_identical(instance, scheme, scheduler)


@pytest.mark.parametrize("scheduler", ["GTO", "OLD", "LRR", "2LV"])
def test_abft_sgemm_matrix(scheduler):
    """The ABFT runtime on its checksum-augmented workload variant,
    across all four schedulers."""
    instance = workload_by_name("SGEMM_ABFT").instance("tiny")
    assert_paths_identical(instance, "abft_sgemm", scheduler)


def test_barrier_workload_matrix():
    """A shared-memory + barrier workload through the Flame and DMR
    runtimes on the age-based schedulers (the ones with the insort
    attach path)."""
    instance = workload_by_name("Transpose").instance("tiny")
    for scheduler in ("GTO", "OLD"):
        for scheme in ("flame", "dmr"):
            assert_paths_identical(instance, scheme, scheduler)
