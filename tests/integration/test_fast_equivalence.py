"""A/B proof that the decode-once fast path is byte-identical to the
reference interpreter: every workload's tiny instance, plus a scheduler ×
resilience-scheme matrix, must produce the same cycle count, the same
stats dictionary, and the same final global memory bytes."""

import numpy as np
import pytest

from repro.arch import GTX480
from repro.compiler import compile_kernel, prepare_launch, scheme_by_name
from repro.core import FlameRuntime
from repro.sim import Gpu, LaunchConfig, NULL_RESILIENCE
from repro.workloads import WORKLOADS, workload_by_name


def run_scheme(instance, scheme_name: str, scheduler: str, fast: bool,
               wcdl: int = 20):
    """Compile + launch one instance; return (cycles, stats dict, bytes)."""
    compiled = compile_kernel(instance.kernel, scheme_name, wcdl=wcdl)
    scheme = scheme_by_name(scheme_name)
    runtime = FlameRuntime(wcdl) if scheme.uses_sensor_runtime \
        else NULL_RESILIENCE
    gpu = Gpu(GTX480, resilience=runtime, scheduler=scheduler, fast=fast)
    mem = instance.fresh_memory()
    params, mem = prepare_launch(
        compiled, instance.launch.params, mem,
        instance.launch.num_blocks, instance.launch.threads_per_block)
    launch = LaunchConfig(grid=instance.launch.grid,
                          block=instance.launch.block, params=params)
    result = gpu.launch(compiled.kernel, launch, mem,
                        regs_per_thread=compiled.regs_per_thread)
    return result.cycles, result.stats.as_dict(), mem.tobytes()


def assert_paths_identical(instance, scheme: str, scheduler: str):
    fast = run_scheme(instance, scheme, scheduler, fast=True)
    ref = run_scheme(instance, scheme, scheduler, fast=False)
    assert fast[0] == ref[0], "cycle counts diverge"
    assert fast[1] == ref[1], "stats diverge"
    assert fast[2] == ref[2], "final global memory diverges"


@pytest.mark.parametrize("name", sorted(WORKLOADS))
def test_every_workload_tiny(name):
    """Baseline scheme, default scheduler, every workload."""
    instance = workload_by_name(name).instance("tiny")
    assert_paths_identical(instance, "baseline", "GTO")


@pytest.mark.parametrize("scheduler", ["GTO", "OLD", "LRR", "2LV"])
@pytest.mark.parametrize("scheme", ["baseline", "flame"])
def test_scheduler_scheme_matrix(scheduler, scheme):
    """All four schedulers under both the baseline and the full Flame
    runtime (boundary markers, RBQ descheduling, deferred retirement)."""
    for name in ("LBM", "Histogram"):
        instance = workload_by_name(name).instance("tiny")
        assert_paths_identical(instance, scheme, scheduler)


def test_barrier_workload_matrix():
    """A shared-memory + barrier workload through the Flame runtime on
    the age-based schedulers (the ones with the insort attach path)."""
    instance = workload_by_name("Transpose").instance("tiny")
    for scheduler in ("GTO", "OLD"):
        assert_paths_identical(instance, "flame", scheduler)
