"""A/B proof that the decode-once fast path is byte-identical to the
reference interpreter: every workload's tiny instance, plus a scheduler ×
resilience-scheme matrix, must produce the same cycle count, the same
stats dictionary, and the same final global memory bytes."""

import numpy as np
import pytest

from repro.arch import GTX480
from repro.compiler import compile_kernel, prepare_launch
from repro.core import runtime_scheme_by_name
from repro.sim import Gpu, LaunchConfig
from repro.sim.stats import SUPERBLOCK_TELEMETRY
from repro.workloads import WORKLOADS, workload_by_name


def run_scheme(instance, scheme_name: str, scheduler: str, fast: bool,
               wcdl: int = 20, injector=None):
    """Compile + launch one instance; return (cycles, stats dict, bytes)."""
    rscheme = runtime_scheme_by_name(scheme_name)
    compiled = compile_kernel(instance.kernel, rscheme.compile_scheme,
                              wcdl=wcdl)
    runtime = rscheme.build(wcdl=wcdl)
    gpu = Gpu(GTX480, resilience=runtime, scheduler=scheduler, fast=fast)
    gpu.fault_injector = injector
    mem = instance.fresh_memory()
    params, mem = prepare_launch(
        compiled, instance.launch.params, mem,
        instance.launch.num_blocks, instance.launch.threads_per_block)
    launch = LaunchConfig(grid=instance.launch.grid,
                          block=instance.launch.block, params=params)
    result = gpu.launch(compiled.kernel, launch, mem,
                        regs_per_thread=compiled.regs_per_thread)
    return result.cycles, result.stats.as_dict(), mem.tobytes()


def assert_paths_identical(instance, scheme: str, scheduler: str,
                           injector=None):
    make = injector or (lambda: None)
    fast = run_scheme(instance, scheme, scheduler, fast=True,
                      injector=make())
    ref = run_scheme(instance, scheme, scheduler, fast=False,
                     injector=make())
    assert fast[0] == ref[0], "cycle counts diverge"
    # Superblock telemetry is fast-path bookkeeping by construction (the
    # reference interpreter never batches); strip it before comparing.
    fast_stats = {k: v for k, v in fast[1].items()
                  if k not in SUPERBLOCK_TELEMETRY}
    ref_stats = {k: v for k, v in ref[1].items()
                 if k not in SUPERBLOCK_TELEMETRY}
    assert fast_stats == ref_stats, "stats diverge"
    assert fast[2] == ref[2], "final global memory diverges"


@pytest.mark.parametrize("name", sorted(WORKLOADS))
def test_every_workload_tiny(name):
    """Baseline scheme, default scheduler, every workload."""
    instance = workload_by_name(name).instance("tiny")
    assert_paths_identical(instance, "baseline", "GTO")


@pytest.mark.parametrize("scheduler", ["GTO", "OLD", "LRR", "2LV"])
@pytest.mark.parametrize("scheme",
                         ["baseline", "flame", "dmr", "partial_thread"])
def test_scheduler_scheme_matrix(scheduler, scheme):
    """All four schedulers under every campaign-runnable runtime that
    works on arbitrary workloads: baseline, the full Flame runtime
    (boundary markers, RBQ descheduling, deferred retirement), the DMR
    strawman (compare-park at every region end), and partial thread
    protection (only the ranked vulnerable warps park)."""
    for name in ("LBM", "Histogram"):
        instance = workload_by_name(name).instance("tiny")
        assert_paths_identical(instance, scheme, scheduler)


@pytest.mark.parametrize("scheduler", ["GTO", "OLD", "LRR", "2LV"])
def test_abft_sgemm_matrix(scheduler):
    """The ABFT runtime on its checksum-augmented workload variant,
    across all four schedulers."""
    instance = workload_by_name("SGEMM_ABFT").instance("tiny")
    assert_paths_identical(instance, "abft_sgemm", scheduler)


def test_barrier_workload_matrix():
    """A shared-memory + barrier workload through the Flame and DMR
    runtimes on the age-based schedulers (the ones with the insort
    attach path)."""
    instance = workload_by_name("Transpose").instance("tiny")
    for scheduler in ("GTO", "OLD"):
        for scheme in ("flame", "dmr"):
            assert_paths_identical(instance, scheme, scheduler)


def superblock_spans(instance, scheme: str, scheduler: str):
    """The scripted-issue windows ``(first_cycle, last_cycle)`` of one
    fault-free fast run, recorded by wrapping the SM's three scripted
    applicators: prefetched and direct superblock scripts, plus the
    SM-level memory windows (which subsume superblocks on GTO +
    null-resilience launches)."""
    from repro.sim.sm import Sm

    spans = []
    orig_direct, orig_apply = Sm._run_script_direct, Sm._apply_script
    orig_open = Sm._open_window

    def direct(self, warp, info, s, cycle, pc):
        spans.append((cycle, cycle + s - 1))
        return orig_direct(self, warp, info, s, cycle, pc)

    def apply(self, warp, pf, j, s, cycle, pc):
        spans.append((cycle, cycle + s - 1))
        return orig_apply(self, warp, pf, j, s, cycle, pc)

    def open_window(self, cycle):
        opened = orig_open(self, cycle)
        if opened:
            spans.append((self._win_segs[0][0], self._win_segs[-1][1]))
        return opened

    Sm._run_script_direct, Sm._apply_script = direct, apply
    Sm._open_window = open_window
    try:
        run_scheme(instance, scheme, scheduler, fast=True)
    finally:
        Sm._run_script_direct, Sm._apply_script = orig_direct, orig_apply
        Sm._open_window = orig_open
    return spans


def widest_span(spans):
    """The widest scripted window — the superblock whose boundary
    cycles are furthest apart, hence the sharpest boundary test."""
    assert spans, "workload never executed a superblock"
    return max(spans, key=lambda span: span[1] - span[0])


def memory_window_spans(instance, scheme: str, scheduler: str):
    """The ``(first_cycle, last_cycle)`` spans of SM-level memory
    windows only (``Sm._open_window``) in one fault-free fast run."""
    from repro.sim.sm import Sm

    spans = []
    orig_open = Sm._open_window

    def open_window(self, cycle):
        opened = orig_open(self, cycle)
        if opened:
            spans.append((self._win_segs[0][0], self._win_segs[-1][1]))
        return opened

    Sm._open_window = open_window
    try:
        run_scheme(instance, scheme, scheduler, fast=True)
    finally:
        Sm._open_window = orig_open
    return spans


class TestMemoryWindows:
    """SM-level memory-window scripting (``Sm._open_window``): the
    windows must actually open on the memory-bound workload, break
    exactly at observer horizons, and never move a counter or byte."""

    WCDL = 20

    def _injector(self, cycle, site="dest_reg"):
        from repro.arch import SensorModel
        from repro.core.injection import FaultInjector

        return lambda: FaultInjector(
            strike_cycles=[cycle], wcdl=self.WCDL, seed=13, site=site,
            sensor=SensorModel(wcdl=self.WCDL))

    def test_windows_open_under_gto(self):
        """Fault-free LBM under GTO + the stateless baseline runs
        memory windows, byte-identically."""
        instance = workload_by_name("LBM").instance("tiny")
        spans = memory_window_spans(instance, "baseline", "GTO")
        assert spans, "memory windows never opened"
        assert_paths_identical(instance, "baseline", "GTO")

    @pytest.mark.parametrize("scheduler", ["OLD", "LRR", "2LV"])
    def test_non_gto_schedulers_fall_back(self, scheduler):
        """The window engine encodes GTO pick semantics; other
        schedulers must never open one (the "scheduler" fallback is
        booked instead) and still match the reference exactly."""
        instance = workload_by_name("LBM").instance("tiny")
        spans = memory_window_spans(instance, "baseline", scheduler)
        assert spans == []
        assert_paths_identical(instance, "baseline", scheduler)

    def test_window_telemetry_counts(self):
        """The window counters surface through stats: every LBM warp
        instruction stream is memory-laden enough that windows cover
        most of the dynamic instructions."""
        instance = workload_by_name("LBM").instance("tiny")
        _, stats, _ = run_scheme(instance, "baseline", "GTO", fast=True)
        windows = stats["mem_windows_executed"]
        insts = stats["mem_window_insts"]
        assert windows > 0
        assert insts / windows > 15, "windows too short to pay off"

    def test_strike_on_load_inside_window(self):
        """Strikes at the first, middle, and last cycle of the widest
        window (LBM windows are load/store-dominated, so the interior
        cycles sit on timed memory ops): the injector's next-event
        horizon must stop the window so each strike lands on the exact
        cycle-accurate machine."""
        instance = workload_by_name("LBM").instance("tiny")
        first, last = widest_span(
            memory_window_spans(instance, "baseline", "GTO"))
        assert last > first, "need a multi-cycle memory window"
        for cycle in (first, (first + last) // 2, last):
            assert_paths_identical(instance, "baseline", "GTO",
                                   injector=self._injector(cycle))

    @pytest.mark.parametrize("scheduler", ["GTO", "OLD", "LRR", "2LV"])
    @pytest.mark.parametrize("scheme", ["baseline", "flame"])
    def test_mid_window_strike_matrix(self, scheduler, scheme):
        """A strike aimed at a cycle the GTO + baseline run covers with
        one memory window, replayed across the scheduler × scheme
        matrix: under GTO + baseline the window must break at the
        injector horizon; under flame the stateful runtime disables
        windows ("resilience" fallback) and non-GTO schedulers never
        open them ("scheduler") — every combination must stay
        byte-identical on its own path."""
        instance = workload_by_name("LBM").instance("tiny")
        first, last = widest_span(
            memory_window_spans(instance, "baseline", "GTO"))
        assert_paths_identical(instance, scheme, scheduler,
                               injector=self._injector((first + last) // 2))

    def test_scalar_cache_oracle_identical(self, monkeypatch):
        """Cache state driven by scripted windows vs the per-access
        scalar oracle: REPRO_SCALAR_CACHE=1 swaps the NumPy-backed
        batch cache for the dict-LRU reference, and the whole run —
        hits, misses, cycles, memory — must not move."""
        instance = workload_by_name("LBM").instance("tiny")
        monkeypatch.delenv("REPRO_SCALAR_CACHE", raising=False)
        batched = run_scheme(instance, "baseline", "GTO", fast=True)
        monkeypatch.setenv("REPRO_SCALAR_CACHE", "1")
        scalar = run_scheme(instance, "baseline", "GTO", fast=True)
        assert batched == scalar


class TestMidSuperblockStrikes:
    """Strikes aimed at the exact cycles a fault-free fast run covers
    with one scripted superblock: the injector's next-event horizon must
    break the script so the strike lands on a cycle-accurate machine,
    and the run must stay byte-identical to the reference interpreter.
    """

    WCDL = 20

    def _injector(self, cycle, site="dest_reg"):
        from repro.arch import SensorModel
        from repro.core.injection import FaultInjector

        return lambda: FaultInjector(
            strike_cycles=[cycle], wcdl=self.WCDL, seed=13, site=site,
            sensor=SensorModel(wcdl=self.WCDL))

    def test_strike_on_superblock_boundary_cycles(self):
        instance = workload_by_name("SGEMM").instance("tiny")
        first, last = widest_span(
            superblock_spans(instance, "baseline", "GTO"))
        assert last > first, "need a multi-cycle superblock window"
        for cycle in (first, (first + last) // 2, last):
            assert_paths_identical(instance, "baseline", "GTO",
                                   injector=self._injector(cycle))

    def test_predicate_corruption_mid_superblock(self):
        """A predicate-write strike mid-window: corrupting a guard can
        change which lanes a later in-block instruction touches, so the
        fast path must abandon batching at the strike."""
        instance = workload_by_name("SGEMM").instance("tiny")
        first, last = widest_span(
            superblock_spans(instance, "baseline", "GTO"))
        mid = (first + last) // 2
        assert_paths_identical(
            instance, "baseline", "GTO",
            injector=self._injector(mid, site="predicate"))

    def test_strike_mid_superblock_under_flame(self):
        """Same boundary pressure with the full rollback runtime: the
        strike triggers sensing + rollback whose replay re-enters the
        superblock region."""
        instance = workload_by_name("SGEMM").instance("tiny")
        first, last = widest_span(
            superblock_spans(instance, "flame", "GTO"))
        assert_paths_identical(
            instance, "flame", "GTO",
            injector=self._injector((first + last) // 2))
