"""Property-based whole-stack tests.

Random structured kernels are generated through the builder, then:

* the cycle-level SIMT simulator must agree with the sequential
  per-thread reference interpreter (SIMT correctness), and
* every resilience scheme must agree with the uncompiled kernel
  (compiler correctness), and
* Flame under fault injection must agree bit-exactly with a fault-free
  run (recovery correctness).
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.compiler import compile_kernel, prepare_launch
from repro.core import FaultInjector, FlameRuntime
from repro.isa import CmpOp, KernelBuilder, Op
from repro.sim import Gpu, LaunchConfig, run_kernel
from repro.arch import GTX480
from tests.conftest import interpret_kernel

MEM_WORDS = 4096
OUT_BASE = 1024


@st.composite
def random_kernel(draw):
    """A random structured kernel over a small register pool.

    All memory addresses stay in-bounds by construction: loads read
    [0, 512), stores write [OUT_BASE + slot*64 + tid].
    """
    b = KernelBuilder("rand", num_params=1)
    base = b.params(1)[0]
    tid = b.tid_x()
    gid = b.global_index()
    pool = [tid, b.mov(1.0), b.mov(draw(st.integers(-4, 4))), gid]

    def pick_reg():
        return pool[draw(st.integers(0, len(pool) - 1))]

    def emit_op(depth):
        kind = draw(st.sampled_from(
            ["alu", "alu", "alu", "sfu", "guarded", "load", "store",
             "if", "loop"] if depth < 2 else
            ["alu", "alu", "sfu", "guarded", "load", "store"]))
        if kind == "alu":
            op = draw(st.sampled_from([Op.ADD, Op.SUB, Op.MUL, Op.MIN,
                                       Op.MAX, Op.XOR, Op.AND]))
            method = getattr(b, {"min": "min_", "max": "max_",
                                 "and": "and_"}.get(op.value, op.value))
            pool.append(method(pick_reg(), pick_reg()))
        elif kind == "sfu":
            fn = draw(st.sampled_from(["sqrt", "exp_clip", "abs_"]))
            if fn == "exp_clip":
                pool.append(b.exp(b.min_(pick_reg(), 10.0)))
            elif fn == "sqrt":
                pool.append(b.sqrt(b.abs_(pick_reg())))
            else:
                pool.append(b.abs_(pick_reg()))
        elif kind == "guarded":
            p = b.setp(draw(st.sampled_from(list(CmpOp))), pick_reg(),
                       pick_reg())
            # Never mutate tid/gid (pool[0]/pool[3]): stores are indexed
            # by them, and changing them would create cross-block races.
            mutable = [r for i, r in enumerate(pool) if i not in (0, 3)]
            target = mutable[draw(st.integers(0, len(mutable) - 1))]
            b.add(pick_reg(), 1.0, dst=target, guard=p)
        elif kind == "load":
            addr = b.and_(pick_reg(), 511.0)
            pool.append(b.ld_global(addr))
        elif kind == "store":
            slot = draw(st.integers(0, 7))
            addr = b.add(b.mov(float(OUT_BASE + slot * 128)), gid)
            b.st_global(addr, pick_reg())
        elif kind == "if":
            p = b.setp(draw(st.sampled_from([CmpOp.LT, CmpOp.GE])),
                       tid, float(draw(st.integers(1, 31))))
            with b.if_(p):
                for _ in range(draw(st.integers(1, 3))):
                    emit_op(depth + 1)
        elif kind == "loop":
            trips = draw(st.integers(1, 3))
            with b.loop(0, trips):
                for _ in range(draw(st.integers(1, 3))):
                    emit_op(depth + 1)

    for _ in range(draw(st.integers(3, 10))):
        emit_op(0)
    # Publish the register pool so every value is observable (slots are
    # gid-indexed: no cross-block aliasing).
    for slot, reg in enumerate(pool[:12]):
        addr = b.add(b.mov(float(OUT_BASE + 1024 + slot * 128)), gid)
        b.st_global(addr, reg)
    return b.build()


def fresh_memory():
    rng = np.random.default_rng(1234)
    mem = np.zeros(MEM_WORDS)
    mem[:512] = rng.uniform(-8, 8, 512).round(3)
    return mem


LAUNCH = LaunchConfig(grid=(2, 1), block=(64, 1), params=(0,))

relaxed = settings(max_examples=12, deadline=None,
                   suppress_health_check=[HealthCheck.too_slow,
                                          HealthCheck.data_too_large])


class TestSimtMatchesSequentialReference:
    @relaxed
    @given(random_kernel())
    def test_simulator_equals_interpreter(self, kernel):
        sim_mem = fresh_memory()
        run_kernel(kernel, LAUNCH, sim_mem)
        ref_mem = interpret_kernel(kernel, LAUNCH, fresh_memory())
        assert np.allclose(sim_mem, ref_mem, equal_nan=True)


class TestSchemesPreserveSemantics:
    @relaxed
    @given(random_kernel(),
           st.sampled_from(["flame", "checkpointing",
                            "duplication_renaming", "hybrid_renaming"]))
    def test_compiled_equals_uncompiled(self, kernel, scheme):
        golden = fresh_memory()
        run_kernel(kernel, LAUNCH, golden)
        compiled = compile_kernel(kernel, scheme)
        mem = fresh_memory()
        params, mem = prepare_launch(compiled, LAUNCH.params, mem,
                                     LAUNCH.num_blocks,
                                     LAUNCH.threads_per_block)
        launch = LaunchConfig(grid=LAUNCH.grid, block=LAUNCH.block,
                              params=params)
        runtime = FlameRuntime(20) if compiled.scheme.uses_sensor_runtime \
            else None
        gpu = Gpu(GTX480, resilience=runtime) if runtime else Gpu(GTX480)
        gpu.launch(compiled.kernel, launch, mem,
                   regs_per_thread=compiled.regs_per_thread)
        assert np.allclose(mem[:MEM_WORDS], golden, equal_nan=True)


class TestRecoveryIsExact:
    @relaxed
    @given(random_kernel(), st.integers(0, 2**16))
    def test_injected_run_equals_golden(self, kernel, seed):
        compiled = compile_kernel(kernel, "flame")

        def launch_once(injector):
            gpu = Gpu(GTX480, resilience=FlameRuntime(20))
            gpu.fault_injector = injector
            mem = fresh_memory()
            gpu.launch(compiled.kernel, LAUNCH, mem,
                       regs_per_thread=compiled.regs_per_thread)
            return mem

        golden = launch_once(None)
        injector = FaultInjector(strike_cycles=[40, 90, 140], wcdl=20,
                                 seed=seed)
        faulty = launch_once(injector)
        assert np.allclose(faulty, golden, equal_nan=True)
