"""Cross-module integration tests: the whole stack working together."""

import numpy as np
import pytest

from repro import quick_run
from repro.compiler import compile_kernel
from repro.core import FlameRuntime
from repro.isa import parse_kernel
from repro.sim import Gpu, LaunchConfig
from repro.workloads import WORKLOADS
from repro.arch import GTX480, GV100
from tests.conftest import run_compiled


class TestQuickRun:
    def test_quick_run_api(self):
        outcome = quick_run("Triad", scheme="flame", scale="tiny")
        assert outcome.verified
        assert outcome.cycles > 0

    def test_quick_run_other_gpu(self):
        outcome = quick_run("Triad", scheme="baseline", scale="tiny",
                            gpu="GV100", scheduler="LRR")
        assert outcome.verified


class TestSchemeOrdering:
    """The paper's qualitative result: Flame is far cheaper than
    duplication; hybrid sits in between."""

    @pytest.fixture(scope="class")
    def cycles(self):
        instance = WORKLOADS["LBM"].instance("tiny")
        results = {}
        for scheme in ("baseline", "flame", "hybrid_renaming",
                       "duplication_renaming"):
            result, _, ok = run_compiled(instance, scheme)
            assert ok
            results[scheme] = result.cycles
        return results

    def test_flame_cheapest_protection(self, cycles):
        assert cycles["flame"] < cycles["duplication_renaming"]

    def test_hybrid_between(self, cycles):
        assert cycles["flame"] <= cycles["hybrid_renaming"] \
            <= cycles["duplication_renaming"] * 1.05


class TestWcdlSensitivity:
    def test_overhead_grows_with_wcdl(self):
        instance = WORKLOADS["SGEMM"].instance("tiny")
        short, _, _ = run_compiled(instance, "flame", wcdl=5)
        long, _, _ = run_compiled(instance, "flame", wcdl=100)
        assert short.cycles < long.cycles


class TestSchedulersEndToEnd:
    @pytest.mark.parametrize("scheduler", ("GTO", "OLD", "LRR", "2LV"))
    def test_every_scheduler_correct_under_flame(self, scheduler):
        instance = WORKLOADS["CS"].instance("tiny")
        _, _, verified = run_compiled(instance, "flame",
                                      scheduler=scheduler)
        assert verified


class TestArchitecturesEndToEnd:
    @pytest.mark.parametrize("gpu", ("GTX480", "RTX2060", "GV100",
                                     "TITAN X"))
    def test_every_architecture_correct_under_flame(self, gpu):
        from repro.arch import gpu_by_name

        instance = WORKLOADS["Hotspot"].instance("tiny")
        _, _, verified = run_compiled(instance, "flame",
                                      gpu_config=gpu_by_name(gpu))
        assert verified


class TestAsmToSimulationPipeline:
    """Assembly text -> compile -> simulate, end to end."""

    ASM = """
.kernel double_it
.params 2
    ld.param r0, [0]
    ld.param r1, [1]
    mul r2, %ctaid.x, %ntid.x
    add r2, r2, %tid.x
    setp.ge p0, r2, r0
    @p0 exit
    add r3, r1, r2
    ld.global r4, [r3]
    st.global [r3], r4
    mul r5, r4, 2
    st.global [r3+64], r5
    exit
"""

    def test_asm_kernel_through_flame(self):
        kernel = parse_kernel(self.ASM)
        compiled = compile_kernel(kernel, "flame")
        gpu = Gpu(GTX480, resilience=FlameRuntime(20))
        mem = np.zeros(256)
        mem[:64] = np.arange(64.0)
        gpu.launch(compiled.kernel,
                   LaunchConfig(grid=(2, 1), block=(32, 1), params=(64, 0)),
                   mem, regs_per_thread=compiled.regs_per_thread)
        assert np.array_equal(mem[64:128], np.arange(64.0) * 2)


class TestStatsConsistency:
    def test_region_accounting_balances(self):
        outcome = quick_run("LBM", scheme="flame", scale="tiny")
        # Dynamic region sizes must average to instructions/regions.
        assert outcome.avg_region_size > 0
        assert outcome.boundaries > 0

    def test_checkpoint_traffic_counted(self):
        # SGEMM's tile loop keeps live-out anti-dependent registers, so
        # Penny-style checkpoint stores must appear in the stream.
        outcome = quick_run("SGEMM", scheme="checkpointing", scale="tiny")
        assert outcome.ckpt_instructions > 0

    def test_duplication_counted(self):
        outcome = quick_run("LBM", scheme="duplication_renaming",
                            scale="tiny")
        assert outcome.shadow_instructions > 0
