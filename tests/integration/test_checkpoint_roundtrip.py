"""Snapshot protocol round-trips: restore(capture(c)) must be invisible.

Property: for any checkpoint taken at cycle ``c`` of a run, restoring
it into a freshly configured GPU and running to completion is
byte-identical to the original run — same cycle count, same stats
counters, same final memory — with the per-cycle sanitizer attached
and silent throughout.  Exercised across every scheduler, both
schemes, and (the hard case) a double strike whose second hit lands
inside the first one's rollback window, so the restored state carries
in-flight RPT/RBQ bookkeeping and a mid-window fault injector.
"""

import numpy as np
import pytest

from repro.arch import SensorModel, gpu_by_name
from repro.compiler import compile_kernel, prepare_launch, scheme_by_name
from repro.core.injection import FaultInjector
from repro.core.runtime import FlameRuntime
from repro.sim import (CheckpointRecorder, Gpu, LaunchConfig,
                       NULL_RESILIENCE, SCHEDULERS, Sanitizer)
from repro.sim.stats import SUPERBLOCK_TELEMETRY
from repro.workloads import workload_by_name

WCDL = 20


def _launcher(scheme_name: str, scheduler: str, workload: str = "SGEMM",
              sanitize: bool = True):
    """A launch closure over a compiled workload, mirroring the
    campaign layer's golden-run setup (sanitizer attached by default;
    the per-cycle sanitizer inhibits superblock scripting, so tests
    targeting scripted windows opt out)."""
    instance = workload_by_name(workload).instance("tiny")
    scheme = scheme_by_name(scheme_name)
    compiled = compile_kernel(instance.kernel, scheme, wcdl=WCDL)
    config = gpu_by_name("GTX480")

    def launch_once(injector=None, **kwargs):
        runtime = (FlameRuntime(WCDL) if scheme.uses_sensor_runtime
                   else NULL_RESILIENCE)
        gpu = Gpu(config, resilience=runtime, scheduler=scheduler,
                  sanitizer=Sanitizer() if sanitize else None)
        gpu.fault_injector = injector
        mem = instance.fresh_memory()
        params, mem = prepare_launch(
            compiled, instance.launch.params, mem,
            instance.launch.num_blocks, instance.launch.threads_per_block,
            warp_size=config.warp_size)
        launch = LaunchConfig(grid=instance.launch.grid,
                              block=instance.launch.block, params=params)
        result = gpu.launch(compiled.kernel, launch, mem,
                            regs_per_thread=compiled.regs_per_thread,
                            **kwargs)
        return result, mem

    return launch_once


def _assert_identical(restored, reference):
    result_a, mem_a = restored
    result_b, mem_b = reference
    assert result_a.cycles == result_b.cycles
    assert np.array_equal(mem_a, mem_b)
    # Superblock batching telemetry depends on which observers are
    # attached (a recorder's liveness tracking disables batching), so
    # it legitimately differs between the checkpointed and plain runs;
    # every architectural counter must still match exactly.
    stats_a = {k: v for k, v in result_a.stats.as_dict().items()
               if k not in SUPERBLOCK_TELEMETRY}
    stats_b = {k: v for k, v in result_b.stats.as_dict().items()
               if k not in SUPERBLOCK_TELEMETRY}
    assert stats_a == stats_b


@pytest.mark.parametrize("scheduler", sorted(SCHEDULERS))
@pytest.mark.parametrize("scheme", ["baseline", "flame"])
def test_fault_free_roundtrip(scheme, scheduler):
    """Every (scheduler, scheme): restore from a mid-run checkpoint and
    finish byte-identically to an uncheckpointed run."""
    launch_once = _launcher(scheme, scheduler)
    reference = launch_once()
    recorder = CheckpointRecorder()  # adaptive spacing
    _assert_identical(launch_once(recorder=recorder), reference)
    assert len(recorder.checkpoints) >= 2
    middle = recorder.checkpoints[len(recorder.checkpoints) // 2]
    assert 0 < middle.cycle < reference[0].cycles
    _assert_identical(launch_once(resume_from=middle), reference)


@pytest.mark.parametrize("scheduler", sorted(SCHEDULERS))
@pytest.mark.parametrize("scheme", ["baseline", "flame"])
def test_strike_mid_rollback_roundtrip(scheme, scheduler):
    """Double strike with the second landing inside the first one's
    rollback window; restore points bracket the strikes (before, on
    the strike cycle, and after the window)."""
    launch_once = _launcher(scheme, scheduler)
    strikes = [500, 505]

    def injector():
        return FaultInjector(strike_cycles=list(strikes), wcdl=WCDL,
                             seed=7, sensor=SensorModel(wcdl=WCDL))

    ref_injector = injector()
    reference = launch_once(ref_injector)
    recorder = CheckpointRecorder(interval=100)
    _assert_identical(launch_once(injector(), recorder=recorder), reference)
    for checkpoint in recorder.checkpoints:
        if checkpoint.cycle not in (300, 500, 800):
            continue
        restored_injector = injector()
        _assert_identical(
            launch_once(restored_injector, resume_from=checkpoint),
            reference)
        # Injector state round-trips too: identical strike records.
        assert len(restored_injector.records) == len(ref_injector.records)
        for restored, original in zip(restored_injector.records,
                                      ref_injector.records):
            assert restored == original


def test_restore_inside_superblock_window():
    """Resume from a checkpoint whose cycle falls strictly inside a
    scripted superblock window of the plain fast run.

    The recorded run visits that cycle one instruction at a time (an
    attached recorder disables batching), but the *resumed* run batches
    again from the restored state — a warp whose PC sits mid-superblock
    must re-enter scripting and still finish byte-identically.

    SM-level memory windows subsume superblock scripts on this launch
    shape, so they are pinned off for the whole test to keep the
    superblock path under test (the window variant is
    ``test_restore_inside_memory_window``).
    """
    from repro.sim.sm import Sm

    launch_once = _launcher("baseline", "GTO", sanitize=False)
    spans = []
    orig_direct, orig_apply = Sm._run_script_direct, Sm._apply_script
    orig_open = Sm._open_window

    def direct(self, warp, info, s, cycle, pc):
        spans.append((cycle, cycle + s - 1))
        return orig_direct(self, warp, info, s, cycle, pc)

    def apply(self, warp, pf, j, s, cycle, pc):
        spans.append((cycle, cycle + s - 1))
        return orig_apply(self, warp, pf, j, s, cycle, pc)

    Sm._run_script_direct, Sm._apply_script = direct, apply
    Sm._open_window = lambda self, cycle: False
    try:
        reference = launch_once()

        wide = [s for s in spans if s[1] > s[0]]
        assert wide, "workload never executed a multi-cycle superblock"
        first, last = max(wide, key=lambda span: span[1] - span[0])
        inside = (first + last) // 2 or first + 1
        recorder = CheckpointRecorder(interval=max(inside, 1))
        _assert_identical(launch_once(recorder=recorder), reference)
        candidates = [c for c in recorder.checkpoints
                      if any(a < c.cycle <= b for a, b in wide)]
        assert candidates, "no checkpoint landed inside a scripted window"
        _assert_identical(launch_once(resume_from=candidates[0]),
                          reference)
    finally:
        Sm._run_script_direct, Sm._apply_script = orig_direct, orig_apply
        Sm._open_window = orig_open


def test_restore_inside_memory_window():
    """Capture and restore at a cycle the plain fast run covers with one
    SM-level memory window (LBM under GTO + baseline runs almost
    entirely inside them).

    The recorded run's recorder horizon stops every window exactly at
    the capture cycle, so the checkpoint sees a cycle-accurate machine;
    the resumed run re-opens windows from the restored mid-stream state
    (warps mid-superblock, cache arrays repopulated from the snapshot)
    and must still finish byte-identically.
    """
    from repro.sim.sm import Sm

    launch_once = _launcher("baseline", "GTO", workload="LBM",
                            sanitize=False)
    spans = []
    orig_open = Sm._open_window

    def open_window(self, cycle):
        opened = orig_open(self, cycle)
        if opened:
            spans.append((self._win_segs[0][0], self._win_segs[-1][1]))
        return opened

    Sm._open_window = open_window
    try:
        reference = launch_once()
    finally:
        Sm._open_window = orig_open

    wide = [s for s in spans if s[1] > s[0]]
    assert wide, "workload never executed a multi-cycle memory window"
    first, last = max(wide, key=lambda span: span[1] - span[0])
    inside = (first + last) // 2 or first + 1
    recorder = CheckpointRecorder(interval=max(inside, 1))
    _assert_identical(launch_once(recorder=recorder), reference)
    candidates = [c for c in recorder.checkpoints
                  if any(a < c.cycle <= b for a, b in wide)]
    assert candidates, "no checkpoint landed inside a memory window"
    _assert_identical(launch_once(resume_from=candidates[0]), reference)


def test_checkpoint_is_reusable():
    """Restoring must never mutate the checkpoint: two consecutive
    restores from the same snapshot give identical runs."""
    launch_once = _launcher("flame", "GTO")
    recorder = CheckpointRecorder()
    reference = launch_once(recorder=recorder)
    middle = recorder.checkpoints[len(recorder.checkpoints) // 2]
    _assert_identical(launch_once(resume_from=middle), reference)
    _assert_identical(launch_once(resume_from=middle), reference)


def test_version_mismatch_refused():
    import dataclasses

    from repro.errors import SimError

    launch_once = _launcher("baseline", "GTO")
    recorder = CheckpointRecorder()
    launch_once(recorder=recorder)
    stale = dataclasses.replace(recorder.checkpoints[0], version=0)
    with pytest.raises(SimError):
        launch_once(resume_from=stale)
