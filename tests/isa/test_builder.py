"""KernelBuilder: structured control flow, resource handing, finalize."""

import numpy as np
import pytest

from repro.errors import IsaError
from repro.isa import CmpOp, KernelBuilder, Op, Reg
from repro.sim import LaunchConfig, run_kernel


class TestResources:
    def test_fresh_regs_are_sequential(self):
        b = KernelBuilder("k")
        assert [b.reg().index for _ in range(3)] == [0, 1, 2]

    def test_value_returning_emitters(self):
        b = KernelBuilder("k")
        d = b.add(1, 2)
        assert isinstance(d, Reg)
        assert b._instructions[-1].dst == d

    def test_dst_override(self):
        b = KernelBuilder("k")
        target = b.reg()
        result = b.add(1, 2, dst=target)
        assert result is target

    def test_params_checked_against_declared(self):
        b = KernelBuilder("k", num_params=1)
        b.params(1)
        with pytest.raises(IsaError):
            KernelBuilder("k2", num_params=1).params(2)

    def test_duplicate_label_rejected(self):
        b = KernelBuilder("k")
        b.label("L")
        with pytest.raises(IsaError):
            b.label("L")


class TestFinalize:
    def test_auto_exit_appended(self):
        b = KernelBuilder("k")
        b.add(1, 2)
        kernel = b.build()
        assert kernel.instructions[-1].op is Op.EXIT

    def test_no_double_exit(self):
        b = KernelBuilder("k")
        b.add(1, 2)
        b.exit()
        kernel = b.build()
        assert sum(1 for i in kernel.instructions if i.op is Op.EXIT) == 1

    def test_trailing_label_gets_own_exit(self):
        """A branch to a label at the very end must not land inside the
        skipped body."""
        b = KernelBuilder("k")
        p = b.setp(CmpOp.LT, b.mov(0.0), 1.0)
        with b.if_(p):
            b.exit()
        kernel = b.build()
        # The ENDIF label must point at an EXIT that is not the body's.
        end = kernel.labels[next(iter(kernel.labels))]
        assert kernel.instructions[end].op is Op.EXIT
        assert end == len(kernel.instructions) - 1

    def test_empty_builder_still_produces_valid_kernel(self):
        kernel = KernelBuilder("k").build()
        kernel.validate()
        assert kernel.instructions[-1].op is Op.EXIT


class TestControlFlowSemantics:
    """Execute built kernels on the simulator and check the lowering."""

    def _run(self, kernel, n_threads=32, params=(), mem_size=256):
        mem = np.zeros(mem_size)
        run_kernel(kernel, LaunchConfig(grid=(1, 1), block=(n_threads, 1),
                                        params=params), mem)
        return mem

    def test_loop_executes_correct_trip_count(self):
        b = KernelBuilder("k", num_params=0)
        total = b.mov(0.0)
        with b.loop(0, 7) as i:
            total = b.add(total, 1.0, dst=total)
        b.st_global(b.mov(b.tid_x()), total)
        mem = self._run(b.build())
        assert (mem[:32] == 7).all()

    def test_loop_zero_trips(self):
        b = KernelBuilder("k")
        total = b.mov(5.0)
        with b.loop(3, 3):
            b.add(total, 100.0, dst=total)
        b.st_global(b.tid_x(), total)
        mem = self._run(b.build())
        assert (mem[:32] == 5).all()

    def test_loop_negative_step(self):
        b = KernelBuilder("k")
        total = b.mov(0.0)
        with b.loop(4, 0, step=-1) as i:
            b.add(total, i, dst=total)
        b.st_global(b.tid_x(), total)
        mem = self._run(b.build())
        assert (mem[:32] == 4 + 3 + 2 + 1).all()

    def test_if_divergent(self):
        b = KernelBuilder("k")
        tid = b.tid_x()
        p = b.setp(CmpOp.LT, tid, 10)
        val = b.mov(0.0)
        with b.if_(p):
            b.mov(1.0, dst=val)
        b.st_global(tid, val)
        mem = self._run(b.build())
        assert (mem[:10] == 1).all()
        assert (mem[10:32] == 0).all()

    def test_if_inverted_sense(self):
        b = KernelBuilder("k")
        tid = b.tid_x()
        p = b.setp(CmpOp.LT, tid, 10)
        val = b.mov(0.0)
        with b.if_(p, sense=False):
            b.mov(1.0, dst=val)
        b.st_global(tid, val)
        mem = self._run(b.build())
        assert (mem[:10] == 0).all()
        assert (mem[10:32] == 1).all()

    def test_nested_if_in_loop(self):
        b = KernelBuilder("k")
        tid = b.tid_x()
        total = b.mov(0.0)
        with b.loop(0, 6) as i:
            even = b.setp(CmpOp.EQ, b.rem(i, 2), 0)
            with b.if_(even):
                b.add(total, 1.0, dst=total)
        b.st_global(tid, total)
        mem = self._run(b.build())
        assert (mem[:32] == 3).all()

    def test_while_loop(self):
        b = KernelBuilder("k")
        tid = b.tid_x()
        x = b.mov(1.0)
        count = b.mov(0.0)
        with b.while_(lambda: b.setp(CmpOp.LT, x, 100)):
            b.mul(x, 2.0, dst=x)
            b.add(count, 1.0, dst=count)
        b.st_global(tid, count)
        mem = self._run(b.build())
        assert (mem[:32] == 7).all()   # 2^7 = 128 >= 100

    def test_global_index_spans_blocks(self):
        b = KernelBuilder("k")
        gi = b.global_index()
        b.st_global(gi, 1.0)
        mem = np.zeros(256)
        run_kernel(b.build(), LaunchConfig(grid=(4, 1), block=(32, 1)), mem)
        assert (mem[:128] == 1).all()
        assert (mem[128:] == 0).all()
