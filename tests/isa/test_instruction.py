"""Instruction validation, operand introspection, and rendering."""

import pytest

from repro.errors import IsaError
from repro.isa import (AtomOp, CmpOp, FuClass, Imm, Instruction, Op, OP_INFO,
                       Pred, Reg, Space)


def alu(op=Op.ADD, dst=Reg(0), srcs=(Reg(1), Reg(2)), **kw):
    return Instruction(op=op, dst=dst, srcs=srcs, **kw)


class TestValidation:
    def test_valid_add(self):
        alu().validate()

    def test_wrong_arity(self):
        with pytest.raises(IsaError):
            Instruction(op=Op.ADD, dst=Reg(0), srcs=(Reg(1),)).validate()

    def test_alu_requires_reg_dst(self):
        with pytest.raises(IsaError):
            Instruction(op=Op.ADD, dst=Pred(0),
                        srcs=(Reg(1), Reg(2))).validate()

    def test_setp_requires_pred_dst(self):
        with pytest.raises(IsaError):
            Instruction(op=Op.SETP, dst=Reg(0), srcs=(Reg(1), Reg(2)),
                        cmp=CmpOp.LT).validate()

    def test_setp_requires_cmp(self):
        with pytest.raises(IsaError):
            Instruction(op=Op.SETP, dst=Pred(0),
                        srcs=(Reg(1), Reg(2))).validate()

    def test_load_requires_space(self):
        with pytest.raises(IsaError):
            Instruction(op=Op.LD, dst=Reg(0), srcs=(Reg(1),)).validate()

    def test_load_address_must_be_reg(self):
        with pytest.raises(IsaError):
            Instruction(op=Op.LD, dst=Reg(0), srcs=(Imm(3),),
                        space=Space.GLOBAL).validate()

    def test_param_load_takes_imm(self):
        Instruction(op=Op.LD, dst=Reg(0), srcs=(Imm(0),),
                    space=Space.PARAM).validate()
        with pytest.raises(IsaError):
            Instruction(op=Op.LD, dst=Reg(0), srcs=(Reg(1),),
                        space=Space.PARAM).validate()

    def test_atom_requires_op(self):
        with pytest.raises(IsaError):
            Instruction(op=Op.ATOM, dst=Reg(0), srcs=(Reg(1), Reg(2)),
                        space=Space.GLOBAL).validate()

    def test_bra_requires_target(self):
        with pytest.raises(IsaError):
            Instruction(op=Op.BRA).validate()

    def test_exit_takes_no_dst(self):
        with pytest.raises(IsaError):
            Instruction(op=Op.EXIT, dst=Reg(0)).validate()


class TestIntrospection:
    def test_read_regs(self):
        inst = alu(srcs=(Reg(3), Imm(1.0)))
        assert inst.read_regs() == (Reg(3),)

    def test_guard_counts_as_pred_read(self):
        inst = alu(guard=Pred(2))
        assert Pred(2) in inst.read_preds()

    def test_written_reg(self):
        assert alu().written_reg() == Reg(0)
        setp = Instruction(op=Op.SETP, dst=Pred(1), srcs=(Reg(0), Imm(0)),
                           cmp=CmpOp.LT)
        assert setp.written_reg() is None
        assert setp.written_pred() == Pred(1)

    def test_with_replaces_fields(self):
        inst = alu()
        changed = inst.with_(dst=Reg(9))
        assert changed.dst == Reg(9)
        assert inst.dst == Reg(0)

    def test_fu_class(self):
        assert alu().fu is FuClass.ALU
        assert alu(op=Op.MUL).fu is FuClass.MUL
        sqrt = Instruction(op=Op.SQRT, dst=Reg(0), srcs=(Reg(1),))
        assert sqrt.fu is FuClass.SFU


class TestRendering:
    def test_alu_text(self):
        assert str(alu()) == "add r0, r1, r2"

    def test_guard_text(self):
        inst = alu(guard=Pred(0), guard_sense=False)
        assert str(inst).startswith("@!p0 ")

    def test_load_text(self):
        inst = Instruction(op=Op.LD, dst=Reg(2), srcs=(Reg(1),),
                           space=Space.GLOBAL, offset=8)
        assert str(inst) == "ld.global r2, [r1+8]"

    def test_store_negative_offset(self):
        inst = Instruction(op=Op.ST, srcs=(Reg(1), Reg(2)),
                           space=Space.SHARED, offset=-4)
        assert str(inst) == "st.shared [r1-4], r2"

    def test_atom_text(self):
        inst = Instruction(op=Op.ATOM, dst=Reg(0), srcs=(Reg(1), Imm(1)),
                           space=Space.GLOBAL, atom_op=AtomOp.ADD)
        assert "atom.global.add" in str(inst)

    def test_shadow_marker(self):
        assert "<dup>" in str(alu(shadow=True))

    def test_ckpt_marker(self):
        inst = Instruction(op=Op.ST, srcs=(Reg(1), Reg(2)),
                           space=Space.GLOBAL, ckpt=True)
        assert "<ckpt>" in str(inst)


class TestOpInfo:
    def test_every_op_has_info(self):
        for op in Op:
            assert op in OP_INFO

    def test_duplicable_excludes_memory_and_control(self):
        for op, info in OP_INFO.items():
            if info.is_load or info.is_store or info.is_atomic \
                    or info.is_branch or info.is_barrier or info.is_exit \
                    or info.is_boundary:
                assert not info.duplicable, op

    def test_boundary_is_meta(self):
        assert OP_INFO[Op.RB].is_boundary
        assert OP_INFO[Op.RB].fu is FuClass.META
