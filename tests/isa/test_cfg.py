"""CFG construction, dominators, back edges, and reconvergence points."""

from repro.isa import Cfg, CmpOp, KernelBuilder, Op, parse_kernel

STRAIGHT = """
.kernel s
    mov r0, 1
    add r0, r0, 1
    exit
"""

DIAMOND = """
.kernel d
    setp.lt p0, r0, 1
    @p0 bra THEN
    mov r1, 2
    bra JOIN
THEN:
    mov r1, 3
JOIN:
    st.global [r2], r1
    exit
"""

LOOP = """
.kernel l
    mov r0, 0
HEAD:
    setp.ge p0, r0, 10
    @p0 bra END
    add r0, r0, 1
    bra HEAD
END:
    exit
"""


class TestBlocks:
    def test_straight_line_single_block(self):
        cfg = Cfg(parse_kernel(STRAIGHT))
        assert len(cfg.blocks) == 1
        assert len(cfg.blocks[0]) == 3

    def test_diamond_block_structure(self):
        cfg = Cfg(parse_kernel(DIAMOND))
        # entry, else, then, join
        assert len(cfg.blocks) == 4
        join = cfg.block_at(cfg.kernel.labels["JOIN"])
        assert sorted(join.preds) == [1, 2]

    def test_block_of_maps_every_instruction(self):
        cfg = Cfg(parse_kernel(DIAMOND))
        for i in range(len(cfg.kernel.instructions)):
            block = cfg.block_at(i)
            assert i in block


class TestLoops:
    def test_back_edge_detected(self):
        cfg = Cfg(parse_kernel(LOOP))
        edges = cfg.back_edges()
        assert len(edges) == 1
        (_, header), = edges
        assert cfg.blocks[header].start == cfg.kernel.labels["HEAD"]

    def test_loop_headers(self):
        cfg = Cfg(parse_kernel(LOOP))
        headers = cfg.loop_headers()
        assert {cfg.blocks[h].start for h in headers} == \
            {cfg.kernel.labels["HEAD"]}

    def test_straight_line_has_no_back_edges(self):
        assert not Cfg(parse_kernel(STRAIGHT)).back_edges()


class TestMergePoints:
    def test_diamond_join_is_merge(self):
        cfg = Cfg(parse_kernel(DIAMOND))
        merges = cfg.merge_blocks()
        starts = {cfg.blocks[m].start for m in merges}
        assert cfg.kernel.labels["JOIN"] in starts

    def test_loop_header_is_merge(self):
        cfg = Cfg(parse_kernel(LOOP))
        starts = {cfg.blocks[m].start for m in cfg.merge_blocks()}
        assert cfg.kernel.labels["HEAD"] in starts


class TestReconvergence:
    def test_diamond_reconverges_at_join(self):
        kernel = parse_kernel(DIAMOND)
        cfg = Cfg(kernel)
        table = cfg.reconvergence_table()
        branch_pc = 1  # the guarded bra
        assert table[branch_pc] == kernel.labels["JOIN"]

    def test_loop_exit_branch_reconverges_at_end(self):
        kernel = parse_kernel(LOOP)
        table = Cfg(kernel).reconvergence_table()
        branch_pc = 2  # @p0 bra END
        assert table[branch_pc] == kernel.labels["END"]

    def test_unguarded_branches_not_in_table(self):
        kernel = parse_kernel(LOOP)
        table = Cfg(kernel).reconvergence_table()
        assert 4 not in table  # the unconditional back edge

    def test_guard_exit_reconverges_past_end(self):
        kernel = parse_kernel(
            ".kernel k\n setp.lt p0, r0, 1\n @p0 bra SKIP\n mov r1, 1\n"
            "SKIP:\n exit\n")
        table = Cfg(kernel).reconvergence_table()
        assert table[1] == kernel.labels["SKIP"]


class TestRpo:
    def test_rpo_starts_at_entry(self):
        for text in (STRAIGHT, DIAMOND, LOOP):
            order = Cfg(parse_kernel(text)).rpo()
            assert order[0] == 0

    def test_rpo_visits_all_reachable(self):
        cfg = Cfg(parse_kernel(DIAMOND))
        assert sorted(cfg.rpo()) == [b.index for b in cfg.blocks]

    def test_rpo_preds_before_succs_in_dag(self):
        cfg = Cfg(parse_kernel(DIAMOND))
        pos = {b: i for i, b in enumerate(cfg.rpo())}
        for block in cfg.blocks:
            for succ in block.succs:
                if (block.index, succ) not in cfg.back_edges():
                    assert pos[block.index] < pos[succ]
