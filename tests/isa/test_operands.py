"""Operand construction and coercion."""

import pytest
from hypothesis import given, strategies as st

from repro.isa import Imm, Pred, Reg, Special, as_operand


class TestRegPred:
    def test_reg_repr(self):
        assert repr(Reg(7)) == "r7"

    def test_pred_repr(self):
        assert repr(Pred(2)) == "p2"

    def test_regs_are_hashable_and_equal_by_index(self):
        assert Reg(3) == Reg(3)
        assert Reg(3) != Reg(4)
        assert len({Reg(1), Reg(1), Reg(2)}) == 2

    def test_reg_and_pred_are_distinct(self):
        assert Reg(1) != Pred(1)

    def test_regs_are_ordered(self):
        assert Reg(1) < Reg(2)
        assert sorted([Reg(5), Reg(1)]) == [Reg(1), Reg(5)]


class TestImm:
    def test_integral_repr_drops_decimal(self):
        assert repr(Imm(4.0)) == "4"

    def test_fractional_repr(self):
        assert repr(Imm(0.5)) == "0.5"


class TestSpecial:
    def test_value_names(self):
        assert str(Special.TID_X) == "%tid.x"
        assert str(Special.CTAID_Y) == "%ctaid.y"

    def test_all_specials_distinct(self):
        assert len({s.value for s in Special}) == len(list(Special))


class TestAsOperand:
    def test_passthrough(self):
        for operand in (Reg(0), Pred(1), Imm(2.0), Special.LANEID):
            assert as_operand(operand) is operand

    @given(st.integers(-1000, 1000))
    def test_int_becomes_imm(self, value):
        operand = as_operand(value)
        assert isinstance(operand, Imm)
        assert operand.value == float(value)

    @given(st.floats(allow_nan=False, allow_infinity=False))
    def test_float_becomes_imm(self, value):
        assert as_operand(value).value == value

    def test_bool_rejected(self):
        with pytest.raises(TypeError):
            as_operand(True)

    def test_junk_rejected(self):
        with pytest.raises(TypeError):
            as_operand("r1")
