"""Assembler: parsing, errors, and round-tripping through to_asm()."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import AsmError
from repro.isa import (AtomOp, CmpOp, Imm, Op, Pred, Reg, Space, Special,
                       parse_instruction, parse_kernel, parse_program)

ASM = """
.kernel saxpy
.params 4
.shared 8
    ld.param r0, [0]
    ld.param r1, [1]
    mul r2, %ctaid.x, %ntid.x
    add r3, r2, %tid.x
    setp.lt p0, r3, r0
    @!p0 bra END
    ld.global r4, [r3+16]
    st.shared [r3], r4
    atom.global.add r5, [r3], 1
END:
    exit
"""


class TestParseKernel:
    def test_full_kernel(self):
        kernel = parse_kernel(ASM)
        assert kernel.name == "saxpy"
        assert kernel.num_params == 4
        assert kernel.shared_words == 8
        assert kernel.labels["END"] == len(kernel.instructions) - 1

    def test_round_trip(self):
        kernel = parse_kernel(ASM)
        again = parse_kernel(kernel.to_asm())
        assert again.instructions == kernel.instructions
        assert again.labels == kernel.labels

    def test_comments_stripped(self):
        kernel = parse_kernel(".kernel k\n  mov r0, 1 ; comment\n  exit\n")
        assert kernel.instructions[0].op is Op.MOV

    def test_multiple_kernels(self):
        text = ".kernel a\n exit\n.kernel b\n exit\n"
        program = parse_program(text)
        assert set(program.kernels) == {"a", "b"}

    def test_branch_to_unknown_label_rejected(self):
        with pytest.raises(Exception):
            parse_kernel(".kernel k\n bra NOWHERE\n exit\n")

    def test_empty_text_rejected(self):
        with pytest.raises(AsmError):
            parse_program("\n\n")

    def test_duplicate_label_rejected(self):
        with pytest.raises(AsmError):
            parse_kernel(".kernel k\nA:\nA:\n exit\n")


class TestParseInstruction:
    def test_guard_senses(self):
        pos = parse_instruction("@p1 add r0, r1, r2")
        assert pos.guard == Pred(1) and pos.guard_sense
        neg = parse_instruction("@!p1 add r0, r1, r2")
        assert not neg.guard_sense

    def test_memory_offsets(self):
        inst = parse_instruction("ld.global r0, [r1-12]")
        assert inst.offset == -12

    def test_atom(self):
        inst = parse_instruction("atom.shared.max r0, [r1], r2")
        assert inst.atom_op is AtomOp.MAX
        assert inst.space is Space.SHARED

    def test_setp(self):
        inst = parse_instruction("setp.ge p0, r1, 3")
        assert inst.cmp is CmpOp.GE
        assert inst.srcs[1] == Imm(3.0)

    def test_specials(self):
        inst = parse_instruction("mov r0, %laneid")
        assert inst.srcs[0] is Special.LANEID

    def test_unknown_opcode(self):
        with pytest.raises(AsmError):
            parse_instruction("frobnicate r0, r1")

    def test_unknown_suffix(self):
        with pytest.raises(AsmError):
            parse_instruction("ld.texture r0, [r1]")

    def test_bad_operand(self):
        with pytest.raises(AsmError):
            parse_instruction("add r0, r1, banana")

    def test_non_pred_guard_rejected(self):
        with pytest.raises(AsmError):
            parse_instruction("@r1 add r0, r1, r2")


@st.composite
def simple_instruction(draw):
    """Random ALU/memory instructions for round-trip testing."""
    kind = draw(st.sampled_from(["alu", "ld", "st", "setp"]))
    reg = lambda: Reg(draw(st.integers(0, 15)))
    if kind == "alu":
        from repro.isa import Instruction

        op = draw(st.sampled_from([Op.ADD, Op.SUB, Op.MUL, Op.MIN, Op.XOR]))
        return Instruction(op=op, dst=reg(), srcs=(reg(), reg()))
    if kind == "ld":
        from repro.isa import Instruction

        return Instruction(op=Op.LD, dst=reg(), srcs=(reg(),),
                           space=draw(st.sampled_from([Space.GLOBAL,
                                                       Space.SHARED])),
                           offset=draw(st.integers(-64, 64)))
    if kind == "st":
        from repro.isa import Instruction

        return Instruction(op=Op.ST, srcs=(reg(), reg()),
                           space=Space.GLOBAL,
                           offset=draw(st.integers(-64, 64)))
    from repro.isa import Instruction

    return Instruction(op=Op.SETP, dst=Pred(draw(st.integers(0, 7))),
                       srcs=(reg(), reg()),
                       cmp=draw(st.sampled_from(list(CmpOp))))


class TestRoundTripProperty:
    @given(simple_instruction())
    def test_instruction_round_trips(self, inst):
        parsed = parse_instruction(str(inst))
        assert parsed == inst
