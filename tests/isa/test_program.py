"""Kernel and Program containers."""

import pytest

from repro.errors import IsaError
from repro.isa import (Instruction, Kernel, Op, Program, Reg, RegAllocator,
                       parse_kernel)


def tiny_kernel():
    return Kernel(
        name="t",
        instructions=[
            Instruction(op=Op.MOV, dst=Reg(0), srcs=(Reg(1),)),
            Instruction(op=Op.EXIT),
        ],
        labels={},
    )


class TestKernel:
    def test_num_regs_counts_max_index(self):
        assert tiny_kernel().num_regs == 2

    def test_validate_rejects_missing_exit(self):
        kernel = Kernel(name="k", instructions=[
            Instruction(op=Op.MOV, dst=Reg(0), srcs=(Reg(1),))])
        with pytest.raises(IsaError):
            kernel.validate()

    def test_validate_rejects_bad_label(self):
        with pytest.raises(IsaError):
            Kernel(name="k", instructions=[Instruction(op=Op.EXIT)],
                   labels={"L": 99})

    def test_validate_rejects_unknown_branch_target(self):
        kernel = Kernel(name="k", instructions=[
            Instruction(op=Op.BRA, target="X"),
            Instruction(op=Op.EXIT)])
        with pytest.raises(IsaError):
            kernel.validate()

    def test_clone_is_independent(self):
        kernel = tiny_kernel()
        clone = kernel.clone()
        clone.instructions.append(Instruction(op=Op.EXIT))
        assert len(kernel) == 2
        assert len(clone) == 3

    def test_labels_at(self):
        kernel = parse_kernel(".kernel k\nA:\nB:\n exit\n")
        assert sorted(kernel.labels_at(0)) == ["A", "B"]

    def test_to_asm_contains_body(self):
        text = tiny_kernel().to_asm()
        assert ".kernel t" in text
        assert "mov r0, r1" in text


class TestRegAllocator:
    def test_starts_above_floor(self):
        alloc = RegAllocator(next_reg=5)
        assert alloc.reg() == Reg(5)
        assert alloc.reg() == Reg(6)

    def test_pred_counter_independent(self):
        alloc = RegAllocator(next_reg=2, next_pred=1)
        assert alloc.pred().index == 1
        assert alloc.reg().index == 2


class TestProgram:
    def test_add_and_lookup(self):
        program = Program()
        program.add(tiny_kernel())
        assert program["t"].name == "t"

    def test_duplicate_rejected(self):
        program = Program()
        program.add(tiny_kernel())
        with pytest.raises(IsaError):
            program.add(tiny_kernel())

    def test_iteration(self):
        program = Program()
        program.add(tiny_kernel())
        assert [k.name for k in program] == ["t"]
