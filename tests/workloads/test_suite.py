"""Workload registry (Table I) and per-workload structural checks."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.isa import Op, Space
from repro.workloads import (SCALES, WORKLOADS, table1_rows,
                             workload_by_name)


class TestRegistry:
    def test_exactly_34_benchmarks(self):
        assert len(WORKLOADS) == 34

    def test_paper_abbreviations_present(self):
        expected = {"SGEMM", "LBM", "NN", "LPS", "AES", "BO", "CS", "SP",
                    "BS", "SQ", "WT", "Transpose", "DWT", "SN", "Histogram",
                    "IS", "CG", "BP", "BFS", "Gaussian", "Hotspot", "LavaMD",
                    "LUD", "NW", "PF", "SRAD", "SC", "CFD", "Kmeans", "KNN",
                    "Stencil", "TPACF", "Triad", "GUPS"}
        assert set(WORKLOADS) == expected

    def test_suite_assignment(self):
        assert WORKLOADS["SGEMM"].suite == "parboil"
        assert WORKLOADS["LUD"].suite == "rodinia"
        assert WORKLOADS["Triad"].suite == "shoc"
        assert WORKLOADS["IS"].suite == "npb"
        assert WORKLOADS["TPACF"].suite == "altis"
        assert WORKLOADS["AES"].suite == "gpgpusim"
        assert WORKLOADS["Histogram"].suite == "cuda_sdk"

    def test_table1_rows(self):
        rows = table1_rows()
        assert len(rows) == 34
        assert all(len(r) == 3 for r in rows)

    def test_lookup_errors(self):
        with pytest.raises(ConfigError):
            workload_by_name("NOPE")

    def test_bad_scale_rejected(self):
        with pytest.raises(ConfigError):
            WORKLOADS["Triad"].instance("huge")


class TestStructuralFlags:
    def test_barrier_flag_matches_kernel(self):
        for abbr, workload in WORKLOADS.items():
            kernel = workload.instance("tiny").kernel
            has_bar = any(i.op is Op.BAR for i in kernel.instructions)
            assert has_bar == workload.uses_barriers, abbr

    def test_atomics_flag_matches_kernel(self):
        for abbr, workload in WORKLOADS.items():
            kernel = workload.instance("tiny").kernel
            has_atom = any(i.info.is_atomic for i in kernel.instructions)
            assert has_atom == workload.uses_atomics, abbr

    def test_shared_usage_declared(self):
        for abbr, workload in WORKLOADS.items():
            kernel = workload.instance("tiny").kernel
            uses_shared = any(
                i.space is Space.SHARED for i in kernel.instructions
                if i.space is not None)
            if uses_shared:
                assert kernel.shared_words > 0, abbr


class TestInstances:
    @pytest.mark.parametrize("abbr", sorted(WORKLOADS))
    def test_instance_well_formed(self, abbr):
        instance = WORKLOADS[abbr].instance("tiny")
        instance.kernel.validate()
        assert instance.expected is not None
        assert instance.global_mem.size == instance.expected.size
        assert instance.launch.num_blocks >= 2
        assert instance.launch.threads_per_block >= 16

    @pytest.mark.parametrize("abbr", sorted(WORKLOADS))
    def test_fresh_memory_is_a_copy(self, abbr):
        instance = WORKLOADS[abbr].instance("tiny")
        mem = instance.fresh_memory()
        mem[:] = -1
        assert not np.array_equal(mem, instance.global_mem)

    def test_scales_grow(self):
        for abbr in ("Triad", "SGEMM", "LBM"):
            sizes = [WORKLOADS[abbr].instance(s).global_mem.size
                     for s in SCALES]
            assert sizes == sorted(sizes)
            assert sizes[0] < sizes[-1]

    def test_deterministic_instances(self):
        a = WORKLOADS["LBM"].instance("tiny")
        b = WORKLOADS["LBM"].instance("tiny")
        assert np.array_equal(a.global_mem, b.global_mem)
        assert np.array_equal(a.expected, b.expected)
