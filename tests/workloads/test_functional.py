"""Functional correctness of all 34 benchmarks against their NumPy
references, under the baseline and under Flame compilation."""

import pytest

from repro.workloads import WORKLOADS
from tests.conftest import run_compiled

ALL = sorted(WORKLOADS)


@pytest.mark.parametrize("abbr", ALL)
def test_baseline_matches_reference(abbr):
    instance = WORKLOADS[abbr].instance("tiny")
    _, _, verified = run_compiled(instance, "baseline")
    assert verified, abbr


@pytest.mark.parametrize("abbr", ALL)
def test_flame_matches_reference(abbr):
    instance = WORKLOADS[abbr].instance("tiny")
    result, _, verified = run_compiled(instance, "flame")
    assert verified, abbr
    assert result.stats.verified_regions > 0


@pytest.mark.parametrize("abbr", ("SGEMM", "LUD", "Histogram", "BFS",
                                  "GUPS", "SN", "BO", "CG"))
@pytest.mark.parametrize("scheme", ("checkpointing", "duplication_renaming",
                                    "hybrid_renaming",
                                    "sensor_checkpointing"))
def test_remaining_schemes_on_tricky_workloads(abbr, scheme):
    instance = WORKLOADS[abbr].instance("tiny")
    _, _, verified = run_compiled(instance, scheme)
    assert verified, (abbr, scheme)


@pytest.mark.parametrize("abbr", ("Triad", "SGEMM", "NW"))
def test_small_scale_also_correct(abbr):
    instance = WORKLOADS[abbr].instance("small")
    _, _, verified = run_compiled(instance, "flame")
    assert verified, abbr
