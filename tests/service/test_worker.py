"""Shard worker: crash-safe shard journals, idempotent resume, chaos hook."""

import os

import pytest

from repro.core.campaign import CampaignJournal, CampaignSpec, MASKED, \
    TrialResult
from repro.errors import ConfigError
from repro.service.shard import split_campaign
from repro.service.worker import (ShardAssignment, _chaos_kill_plan,
                                  run_shard, shard_complete)


def fake_spec(trials=3):
    return CampaignSpec(workloads=("Triad",), schemes=("baseline", "flame"),
                        trials=trials, seed=5, scale="tiny")


def fake_execute(trial):
    return TrialResult(workload=trial.workload, scheme=trial.scheme,
                       index=trial.index, outcome=MASKED, site=trial.site,
                       cycles=100 + trial.index)


def assignment_for(tmp_path, shard_id=0, num_shards=2, trials=3, **kwargs):
    spec = fake_spec(trials=trials)
    shard = split_campaign(spec, num_shards)[shard_id]
    return ShardAssignment(shard=shard,
                           journal_path=str(tmp_path / shard.journal_name()),
                           lease_id="L000001", **kwargs)


class TestShardAssignment:
    def test_save_load_round_trip(self, tmp_path):
        original = assignment_for(tmp_path, heartbeat_path="hb.jsonl",
                                  fsync_interval=4,
                                  heartbeat_interval_s=0.25)
        path = str(tmp_path / "assignment.json")
        original.save(path)
        loaded = ShardAssignment.load(path)
        assert loaded.shard == original.shard
        assert loaded.journal_path == original.journal_path
        assert loaded.lease_id == "L000001"
        assert loaded.heartbeat_path == "hb.jsonl"
        assert loaded.fsync_interval == 4
        assert loaded.heartbeat_interval_s == 0.25


class TestRunShard:
    def test_runs_exactly_the_shards_trials_in_order(self, tmp_path):
        assignment = assignment_for(tmp_path, shard_id=1)
        executed = []

        def execute(trial):
            executed.append(trial.key)
            return fake_execute(trial)

        rows = run_shard(assignment, execute=execute)
        expected = [t.key for t in assignment.shard.trial_specs()]
        assert executed == expected
        assert [r.key for r in rows] == expected
        assert all(r.attempts == 1 for r in rows)
        assert shard_complete(assignment)

    def test_rerun_is_idempotent(self, tmp_path):
        assignment = assignment_for(tmp_path)
        first = run_shard(assignment, execute=fake_execute)
        executed = []
        second = run_shard(assignment, execute=lambda t: executed.append(t)
                           or fake_execute(t))
        assert executed == []  # everything came from the journal
        assert [r.as_dict() for r in second] == \
            [r.as_dict() for r in first]

    def test_resumes_past_a_torn_journal_tail(self, tmp_path):
        assignment = assignment_for(tmp_path)
        run_shard(assignment, execute=fake_execute)
        with open(assignment.journal_path, "rb+") as handle:
            data = handle.read()
            handle.seek(len(data) - 19)  # tear the final record mid-line
            handle.truncate()
        executed = []
        rows = run_shard(assignment, execute=lambda t: executed.append(t)
                         or fake_execute(t))
        assert len(executed) == 1  # only the torn trial re-ran
        assert [r.key for r in rows] == \
            [t.key for t in assignment.shard.trial_specs()]
        with open(assignment.journal_path, "rb") as handle:
            assert handle.read().endswith(b"\n")
        assert shard_complete(assignment)

    def test_should_abort_stops_between_trials(self, tmp_path):
        assignment = assignment_for(tmp_path)
        calls = []

        def execute(trial):
            calls.append(trial)
            return fake_execute(trial)

        rows = run_shard(assignment, execute=execute,
                         should_abort=lambda: len(calls) >= 1)
        assert len(calls) == 1
        assert len(rows) == 1
        assert not shard_complete(assignment)

    def test_on_trial_observes_fresh_rows_only(self, tmp_path):
        assignment = assignment_for(tmp_path)
        run_shard(assignment, execute=fake_execute)
        observed = []
        run_shard(assignment, execute=fake_execute,
                  on_trial=observed.append)
        assert observed == []  # resumed rows are not re-announced

    def test_fsync_interval_batches_syncs(self, tmp_path, monkeypatch):
        syncs = []
        real_fsync = os.fsync
        monkeypatch.setattr(os, "fsync",
                            lambda fd: syncs.append(fd) or real_fsync(fd))
        eager = assignment_for(tmp_path, shard_id=0, fsync_interval=1)
        run_shard(eager, execute=fake_execute)
        eager_syncs = len(syncs)
        syncs.clear()
        lazy = assignment_for(tmp_path, shard_id=1, fsync_interval=100)
        run_shard(lazy, execute=fake_execute)
        assert len(syncs) < eager_syncs
        assert len(syncs) == 1  # one residual sync at close
        assert shard_complete(lazy)


class TestChaosHook:
    def test_plan_targets_only_the_named_shard(self, tmp_path,
                                               monkeypatch):
        sentinel = str(tmp_path / "fired")
        monkeypatch.setenv("REPRO_CHAOS_KILL", f"2:1:{sentinel}")
        assert _chaos_kill_plan(0) is None
        assert _chaos_kill_plan(2) == (1, sentinel)

    def test_plan_fires_once_per_sentinel(self, tmp_path, monkeypatch):
        sentinel = tmp_path / "fired"
        monkeypatch.setenv("REPRO_CHAOS_KILL", f"0:1:{sentinel}")
        assert _chaos_kill_plan(0) is not None
        sentinel.write_text("fired")
        assert _chaos_kill_plan(0) is None  # already fired

    def test_dash_sentinel_fires_on_every_lease(self, monkeypatch):
        monkeypatch.setenv("REPRO_CHAOS_KILL", "0:0:-")
        assert _chaos_kill_plan(0) == (0, "-")
        assert _chaos_kill_plan(0) == (0, "-")

    def test_unset_and_malformed_hooks(self, monkeypatch):
        monkeypatch.delenv("REPRO_CHAOS_KILL", raising=False)
        assert _chaos_kill_plan(0) is None
        monkeypatch.setenv("REPRO_CHAOS_KILL", "not-a-plan")
        with pytest.raises(ConfigError):
            _chaos_kill_plan(0)
